(* Reproduction harness: one section per table and figure of the paper
   (SPAA'22 "Spatial Locality and Granularity Change in Caching"), plus the
   empirical validations of Theorems 2-4 and 8-11, the LP cross-check of
   Theorems 5-7, and Bechamel throughput micro-benchmarks of every policy.

   Run everything:        dune exec bench/main.exe
   Run selected sections: dune exec bench/main.exe -- table1 figure3 perf
   Machine-readable run:  dune exec bench/main.exe -- --json BENCH.json perf

   See EXPERIMENTS.md for the paper-vs-measured record produced from this
   output. *)

open Gc_trace
open Gc_cache

let block_size_paper = 64.
let k_paper = 1_280_000.

(* With --json FILE, per-section wall times and the perf section's
   throughput estimates also go into a run manifest (see
   doc/OBSERVABILITY.md).  Each perf row carries the policy's bare name,
   its OLS throughput estimate (ns_per_run / ns_per_access) and a
   deterministic single-run allocation profile (minor_allocated /
   minor_words_per_access) — the fields `gcprof compare` gates on. *)
let perf_rows : Gc_obs.Json.t list ref = ref []

(* --smoke: shrink the workload and measurement quota so the whole perf
   section runs in seconds — the @bench-smoke alias.  Smoke numbers are
   noisy; never compare them against a full baseline. *)
let smoke = ref false

let section_header name doc =
  Format.printf "@.============================================================@.";
  Format.printf "== %s@." name;
  Format.printf "== %s@." doc;
  Format.printf "============================================================@."

(* ----------------------------------------------------------------- Table 1 *)

let table1 () =
  section_header "table1"
    "Table 1: salient (augmentation => ratio) points, paper vs exact";
  let h = 10_000. in
  let families =
    [ (Gc_bounds.Table1.St, "Sleator-Tarjan");
      (Gc_bounds.Table1.Gc_lower, "GC lower bound");
      (Gc_bounds.Table1.Gc_upper, "GC upper bound") ]
  in
  List.iter
    (fun row ->
      Format.printf "%s@." row.Gc_bounds.Table1.setting;
      List.iter
        (fun (family, name) ->
          let p = row.Gc_bounds.Table1.point family in
          Format.printf "  %-16s  paper: %-36s  exact: k = %8.3f h => %8.3fx@."
            name
            (row.Gc_bounds.Table1.paper_form family)
            p.Gc_bounds.Table1.augmentation p.Gc_bounds.Table1.ratio)
        families)
    (Gc_bounds.Table1.rows ~h ~block_size:block_size_paper)

(* ----------------------------------------------------------------- Table 2 *)

let table2 () =
  section_header "table2"
    "Table 2: fault-rate bounds for an equally split IBLP (i = b = h)";
  List.iter
    (fun p ->
      let size = 100_000. in
      Format.printf "@.f(n) = n^(1/%g), i = b = h = %g, B = %g@." p size
        block_size_paper;
      Format.printf "  %-24s %-22s %-22s %-22s@." "g(n)" "lower bound"
        "item layer UB" "block layer UB";
      List.iter
        (fun r ->
          Format.printf "  %-24s %-22s %-22s %-22s@." r.Gc_bounds.Table2.g_desc
            r.Gc_bounds.Table2.lower_asym r.Gc_bounds.Table2.item_asym
            r.Gc_bounds.Table2.block_asym;
          Format.printf "  %-24s %-22.4e %-22.4e %-22.4e@." ""
            r.Gc_bounds.Table2.lower r.Gc_bounds.Table2.item_ub
            r.Gc_bounds.Table2.block_ub)
        (Gc_bounds.Table2.rows ~p ~block_size:block_size_paper ~size))
    [ 2.; 4. ]

(* ---------------------------------------------------------------- Figure 1 *)

let figure1 () =
  section_header "figure1"
    "Figure 1: a GC cache loads any subset of the backing block for unit cost";
  (* Trace: A1 requested, A2 used soon after, A3 never; the clairvoyant
     cache loads exactly {A1, A2} of block {A1, A2, A3}. *)
  let blocks = Block_map.of_blocks [ [| 1; 2; 3 |] ] in
  let trace = Trace.of_list blocks [ 1; 2 ] in
  let policy = Gc_offline.Clairvoyant.create ~k:2 trace in
  ignore
    (Simulator.run_with
       ~f:(fun pos item outcome ->
         match outcome with
         | Policy.Miss { loaded; _ } ->
             Format.printf
               "access %d: item A%d misses; cache loads the subset {%s} of \
                block {A1,A2,A3} for ONE block cost@."
               pos item
               (String.concat ","
                  (List.map
                     (fun x -> Printf.sprintf "A%d" x)
                     (List.sort compare loaded)))
         | Policy.Hit _ ->
             Format.printf
               "access %d: item A%d HITS - it was brought in by the earlier \
                subset load (a spatial hit)@."
               pos item)
       policy trace)

(* ---------------------------------------------------------------- Figure 2 *)

let figure2 () =
  section_header "figure2"
    "Figure 2 / Theorem 1: variable-size caching -> GC caching reduction";
  (* The figure's instance: items A (size 2), B (size 1), C (size 3),
     trace A B A C A, cache of size 3. *)
  let inst =
    {
      Gc_offline.Varsize.sizes = [| 2; 1; 3 |];
      capacity = 3;
      requests = [| 0; 1; 0; 2; 0 |];
    }
  in
  let r = Gc_offline.Reduction.reduce inst in
  Format.printf
    "variable-size instance: sizes A=2 B=1 C=3, capacity 3, trace A B A C A@.";
  Format.printf "reduced GC trace: %a@." Trace.pp r.Gc_offline.Reduction.trace;
  Format.printf "  (each request to an item of size z becomes z round-robin@.";
  Format.printf "   sweeps of its z-item active set: %d accesses in total)@."
    (Trace.length r.Gc_offline.Reduction.trace);
  (match Gc_offline.Reduction.verify inst with
  | Ok (vs, gc) ->
      Format.printf
        "exact optimal costs agree: varsize OPT = %d, reduced GC OPT = %d@." vs
        gc
  | Error e -> Format.printf "MISMATCH: %s@." e);
  (* And a randomized sweep. *)
  let rng = Rng.create 11 in
  let ok = ref 0 and total = 20 in
  for _ = 1 to total do
    let inst =
      Gc_offline.Varsize.random_instance rng ~n_items:3 ~max_size:3 ~capacity:4
        ~length:6
    in
    match Gc_offline.Reduction.verify inst with
    | Ok _ -> incr ok
    | Error e -> Format.printf "random instance FAILED: %s@." e
  done;
  Format.printf "randomized check: %d/%d instances preserve the optimum@." !ok
    total;
  (* The figure's lower panel: the optimal cache's space-time usage on the
     reduced trace, from an exactly reconstructed optimal schedule. *)
  let small =
    {
      Gc_offline.Varsize.sizes = [| 2; 1; 3 |];
      capacity = 3;
      requests = [| 0; 1; 2; 0 |];
    }
  in
  let rsmall = Gc_offline.Reduction.reduce small in
  let cost, sched =
    Gc_offline.Exact_gc.solve_schedule ~k:rsmall.Gc_offline.Reduction.capacity
      rsmall.Gc_offline.Reduction.trace
  in
  (match
     Gc_offline.Schedule.check rsmall.Gc_offline.Reduction.trace
       ~capacity:rsmall.Gc_offline.Reduction.capacity sched
   with
  | Ok _ ->
      Format.printf
        "@.optimal space-time on the reduced trace of A B C A (cost %d):@.\
         items 0-1 = A's active set, 2 = B's, 3-5 = C's@.@.%s@."
        cost
        (Gc_plot.Occupancy.render ~trace:rsmall.Gc_offline.Reduction.trace
           ~schedule:sched ())
  | Error e -> Format.printf "schedule invalid: %s@." e);
  Format.printf
    "Exactly the paper's Figure 2: active sets load and evict as units,@.\
     because partial loads only cause repeat misses on the round-robin@.\
     sweeps.@."

(* ---------------------------------------------------------------- Figure 3 *)

let figure3 () =
  section_header "figure3"
    "Figure 3: competitive-ratio bounds vs h (k = 1.28M, B = 64)";
  Format.printf "%12s %14s %10s %12s %12s %12s@." "h" "sleator-tarjan"
    "gc-lower" "iblp-upper" "item-cache" "block-cache";
  let hs = Gc_bounds.Figures.default_hs ~k:k_paper ~steps:16 in
  List.iter
    (fun (pt : Gc_bounds.Figures.figure3_point) ->
      let fmt v = if v = infinity then "inf" else Printf.sprintf "%.3f" v in
      Format.printf "%12.0f %14s %10s %12s %12s %12s@." pt.Gc_bounds.Figures.h
        (fmt pt.Gc_bounds.Figures.sleator_tarjan)
        (fmt pt.Gc_bounds.Figures.gc_lower)
        (fmt pt.Gc_bounds.Figures.iblp_upper)
        (fmt pt.Gc_bounds.Figures.item_cache_lower)
        (fmt pt.Gc_bounds.Figures.block_cache_lower))
    (Gc_bounds.Figures.figure3 ~k:k_paper ~block_size:block_size_paper ~hs);
  (* The two crossovers the paper highlights. *)
  let at h =
    List.hd
      (Gc_bounds.Figures.figure3 ~k:k_paper ~block_size:block_size_paper
         ~hs:[ h ])
  in
  let find_crossover f =
    (* f is negative where IBLP provably wins and increases with h; bisect
       for the sign change on [2, k/2]. *)
    let lo = ref 2. and hi = ref (k_paper /. 2.) in
    for _ = 1 to 100 do
      let mid = sqrt (!lo *. !hi) in
      if f (at mid) < 0. then lo := mid else hi := mid
    done;
    sqrt (!lo *. !hi)
  in
  let item_cross =
    find_crossover (fun p ->
        p.Gc_bounds.Figures.iblp_upper -. p.Gc_bounds.Figures.item_cache_lower)
  in
  Format.printf
    "@.crossover IBLP vs Item Cache at h = %.0f (k/h = %.2f; paper: k ~ 3h)@."
    item_cross (k_paper /. item_cross);
  let block_cross =
    (* IBLP provably beats the Block Cache where its upper bound drops
       below the block cache's lower bound — the large-h side here. *)
    find_crossover (fun p ->
        p.Gc_bounds.Figures.block_cache_lower -. p.Gc_bounds.Figures.iblp_upper)
  in
  Format.printf
    "crossover IBLP vs Block Cache at h = %.0f (k/(Bh) = %.2f; paper: k ~ \
     4Bh)@."
    block_cross
    (k_paper /. (block_size_paper *. block_cross));

  (* Render the figure itself. *)
  let dense = Gc_bounds.Figures.default_hs ~k:k_paper ~steps:60 in
  let pts = Gc_bounds.Figures.figure3 ~k:k_paper ~block_size:block_size_paper ~hs:dense in
  let ser marker label f =
    { Gc_plot.Ascii_plot.marker; label;
      points = List.map (fun (p : Gc_bounds.Figures.figure3_point) ->
        (p.Gc_bounds.Figures.h, f p)) pts }
  in
  Format.printf "@.%s@."
    (Gc_plot.Ascii_plot.render ~x_scale:Gc_plot.Ascii_plot.Log10
       ~y_scale:Gc_plot.Ascii_plot.Log10
       ~title:"Figure 3 (ASCII): competitive ratio vs h; k = 1.28M, B = 64"
       [ ser '.' "sleator-tarjan" (fun p -> p.Gc_bounds.Figures.sleator_tarjan);
         ser 'o' "gc lower bound" (fun p -> p.Gc_bounds.Figures.gc_lower);
         ser '#' "iblp upper bound" (fun p -> p.Gc_bounds.Figures.iblp_upper);
         ser 'i' "item-cache lower" (fun p -> p.Gc_bounds.Figures.item_cache_lower);
         ser 'B' "block-cache lower" (fun p -> p.Gc_bounds.Figures.block_cache_lower) ])

(* ---------------------------------------------------------------- Figure 4 *)

let figure4 () =
  section_header "figure4"
    "Figure 4: IBLP structure - item layer in front of a block layer";
  let block_size = 16 in
  let k = 1024 in
  let blocks = Block_map.uniform ~block_size in
  let rng = Rng.create 5 in
  let trace =
    Generators.interleave
      (Generators.zipf_items (Rng.split rng) ~n:50_000 ~universe:8192
         ~block_size ~alpha:1.1)
      (Generators.spatial_mix (Rng.split rng) ~n:50_000 ~universe:32768
         ~block_size ~p_spatial:0.9)
  in
  Format.printf
    "mixed workload (hot items + streaming blocks); k = %d, B = %d@.@." k
    block_size;
  Format.printf "%-24s %10s %12s %12s@." "split (i/b)" "misses" "spatial hits"
    "temporal hits";
  List.iter
    (fun (i, b) ->
      let p = Iblp.create ~i ~b ~blocks () in
      let m = Simulator.run p trace in
      Format.printf "%-24s %10d %12d %12d@."
        (Printf.sprintf "i = %4d, b = %4d" i b)
        m.Metrics.misses m.Metrics.spatial_hits m.Metrics.temporal_hits)
    [ (k, 0); (3 * k / 4, k / 4); (k / 2, k / 2); (k / 4, 3 * k / 4); (0, k) ];
  Format.printf
    "@.The two layers split the work: the item layer turns the hot-item@.\
     stream into temporal hits, the block layer turns streaming into@.\
     spatial hits; pure splits lose one of the two.@."

(* ---------------------------------------------------------------- Figure 5 *)

let figure5 () =
  section_header "figure5"
    "Figure 5: worst-case spatial/temporal patterns vs IBLP layers";
  let block_size = 16 in
  let i = 64 and b = 256 in
  let h = 12 in
  let blocks = Block_map.uniform ~block_size in
  Format.printf "IBLP with i = %d, b = %d, B = %d vs offline h = %d@.@." i b
    block_size h;
  (* The block-A pattern: t items of one block spaced b/B fillers apart. *)
  Format.printf "%-34s %10s %14s %10s@." "pattern" "measured" "pattern-bound"
    "thm bound";
  List.iter
    (fun t_load ->
      let p = Iblp.create ~i ~b ~blocks () in
      let c =
        Attack.spatial_stress p ~h ~block_size ~t_load
          ~spacing:(b / block_size) ~cycles:50
      in
      Format.printf "%-34s %10.3f %14.3f %10.3f@."
        (Printf.sprintf "spatial (t = %d, spacing = %d)" t_load
           (b / block_size))
        (Adversary.measured_ratio c)
        c.Adversary.bound
        (Gc_bounds.Iblp_upper.spatial ~b:(float_of_int b)
           ~block_size:(float_of_int block_size) ~h:(float_of_int h)))
    [ 2; 4; 8; 11 ];
  (* The dense pipelined pattern: no fillers, every access is part of some
     block's triangle; the measured ratio approaches t and hence the
     Theorem-6 optimum once h accommodates the triangle. *)
  Format.printf "@.dense pipeline (width = cap + 1 = %d):@."
    ((b / block_size) + 1);
  List.iter
    (fun t_load ->
      let width = (b / block_size) + 1 in
      let h_dense = 1 + ((width * (t_load + 1)) + 1) / 2 in
      let p = Iblp.create ~i ~b ~blocks () in
      let c =
        Attack.spatial_stress_pipelined p ~h:h_dense ~block_size ~t_load ~width
          ~rotations:400
      in
      Format.printf "%-34s %10.3f %14.3f %10.3f@."
        (Printf.sprintf "pipelined (t = %d, h = %d)" t_load h_dense)
        (Adversary.measured_ratio c)
        c.Adversary.bound
        (Gc_bounds.Iblp_upper.spatial ~b:(float_of_int b)
           ~block_size:(float_of_int block_size)
           ~h:(float_of_int h_dense)))
    [ 2; 4; 8 ];
  (* The item-B1 pattern: hot items re-referenced past the item layer. *)
  let p = Iblp.create ~i ~b ~blocks () in
  let c = Attack.temporal_stress p ~h ~block_size ~spacing:(i + b) ~cycles:50 in
  Format.printf "@.%-34s %10.3f %14.3f %10.3f@."
    (Printf.sprintf "temporal (spacing = %d)" (i + b))
    (Adversary.measured_ratio c)
    c.Adversary.bound
    (Gc_bounds.Iblp_upper.temporal ~i:(float_of_int i) ~h:(float_of_int h));
  (* The figure itself: space-time occupancy of the offline cache on the
     paper's mini-trace (block A spatially, item B1 temporally). *)
  let fig_blocks = Block_map.of_blocks [ [| 1; 2; 3 |]; [| 10; 11; 12 |] ] in
  let fig_trace = Trace.of_list fig_blocks [ 1; 10; 2; 10; 3; 10; 1; 2; 3 ] in
  let clair = Gc_offline.Clairvoyant.create ~k:4 fig_trace in
  let sched, _ = Gc_offline.Schedule.record clair fig_trace in
  (match Gc_offline.Schedule.check fig_trace ~capacity:4 sched with
  | Ok cost ->
      Format.printf
        "@.space-time occupancy of a size-4 clairvoyant cache (cost %d) on@.\
         trace A1 B1 A2 B1 A3 B1 A1 A2 A3 (A = {1,2,3}, B1 = 10):@.@.%s@."
        cost
        (Gc_plot.Occupancy.render ~trace:fig_trace ~schedule:sched ())
  | Error e -> Format.printf "schedule error: %s@." e);
  Format.printf
    "@.Measured ratios stay below the layer bounds of Theorems 5/6; the@.\
     dense pipeline realizes the triangle space-time pattern of Figure 5@.\
     with no wasted accesses and pushes the measured ratio to ~t, near@.\
     the Theorem-6 value for its h.@."

(* ---------------------------------------------------------------- Figure 6 *)

let figure6 () =
  section_header "figure6"
    "Figure 6: fixed IBLP splits vs per-h optimal split (k = 1.28M, B = 64)";
  let h0s = [ 1000.; 10_000.; 100_000. ] in
  let fixed_is =
    List.map
      (fun h0 ->
        Gc_bounds.Partitioning.optimal_i ~k:k_paper ~h:h0
          ~block_size:block_size_paper)
      h0s
  in
  Format.printf "fixed splits optimized for h0 in {1k, 10k, 100k}:@.";
  List.iter2
    (fun h0 i -> Format.printf "  h0 = %8.0f -> i = %.0f@." h0 i)
    h0s fixed_is;
  Format.printf "@.%12s %12s %14s %14s %14s@." "h" "optimal" "fix@1k" "fix@10k"
    "fix@100k";
  let hs = Gc_bounds.Figures.default_hs ~k:k_paper ~steps:16 in
  List.iter
    (fun (pt : Gc_bounds.Figures.figure6_point) ->
      let cells =
        List.map
          (fun (_, ratio) ->
            if ratio = infinity then "inf" else Printf.sprintf "%.3f" ratio)
          pt.Gc_bounds.Figures.fixed_splits
      in
      match cells with
      | [ a; b; c ] ->
          Format.printf "%12.0f %12.3f %14s %14s %14s@." pt.Gc_bounds.Figures.h
            pt.Gc_bounds.Figures.optimal_split a b c
      | _ -> assert false)
    (Gc_bounds.Figures.figure6 ~k:k_paper ~block_size:block_size_paper
       ~fixed_is ~hs);
  let dense = Gc_bounds.Figures.default_hs ~k:k_paper ~steps:60 in
  let pts6 =
    Gc_bounds.Figures.figure6 ~k:k_paper ~block_size:block_size_paper
      ~fixed_is ~hs:dense
  in
  let series6 =
    { Gc_plot.Ascii_plot.marker = '#'; label = "optimal split";
      points =
        List.map (fun (p : Gc_bounds.Figures.figure6_point) ->
            (p.Gc_bounds.Figures.h, p.Gc_bounds.Figures.optimal_split)) pts6 }
    :: List.mapi
         (fun idx h0 ->
           { Gc_plot.Ascii_plot.marker = Char.chr (Char.code '1' + idx);
             label = Printf.sprintf "fixed split tuned for h0 = %.0f" h0;
             points =
               List.filter_map (fun (p : Gc_bounds.Figures.figure6_point) ->
                   let _, r = List.nth p.Gc_bounds.Figures.fixed_splits idx in
                   if Float.is_finite r then Some (p.Gc_bounds.Figures.h, r)
                   else None) pts6 })
         h0s
  in
  Format.printf "@.%s@."
    (Gc_plot.Ascii_plot.render ~x_scale:Gc_plot.Ascii_plot.Log10
       ~y_scale:Gc_plot.Ascii_plot.Log10
       ~title:"Figure 6 (ASCII): fixed vs optimal splits; k = 1.28M, B = 64"
       series6);
  Format.printf
    "@.Each fixed split is optimal at its design h0, degrades sharply for@.\
     larger h and only mildly for smaller h - the Section 5.3 dependence@.\
     of the best partition on the comparison size.@."

(* ---------------------------------------------------- empirical Figure 3 *)

let empirical_figure3 () =
  section_header "empirical_figure3"
    "Figure 3, measured: adversarial ratios vs h at k = 512, B = 16";
  let k = 512 and block_size = 16 in
  let blocks = Block_map.uniform ~block_size in
  let hs = [ 18; 24; 32; 48; 64; 96; 128; 192; 256 ] in
  let kf = float_of_int k and bf = float_of_int block_size in
  Format.printf "%6s %12s %12s %14s %12s %12s@." "h" "lru(thm2)" "bound"
    "param-a:1(thm4)" "bound" "iblp(thm2)";
  let lru_pts = ref [] and pa_pts = ref [] and iblp_pts = ref [] in
  List.iter
    (fun h ->
      let hf = float_of_int h in
      let lru = Lru.create ~k in
      let c2 = Attack.item_cache lru ~k ~h ~block_size ~cycles:20 in
      let r_lru = Adversary.measured_ratio c2 in
      let pa = Param_a.create ~k ~a:1 ~blocks in
      let c4 = Attack.general_a pa ~k ~h ~block_size ~cycles:20 in
      let r_pa = Adversary.measured_ratio c4 in
      let i_opt =
        int_of_float (Gc_bounds.Partitioning.optimal_i ~k:kf ~h:hf ~block_size:bf)
      in
      let i_opt = max 0 (min k i_opt) in
      let iblp = Iblp.create ~i:i_opt ~b:(k - i_opt) ~blocks () in
      let c_i = Attack.item_cache iblp ~k ~h ~block_size ~cycles:20 in
      let r_iblp = Adversary.measured_ratio c_i in
      lru_pts := (hf, r_lru) :: !lru_pts;
      pa_pts := (hf, r_pa) :: !pa_pts;
      iblp_pts := (hf, r_iblp) :: !iblp_pts;
      Format.printf "%6d %12.3f %12.3f %14.3f %12.3f %12.3f@." h r_lru
        (Gc_bounds.Lower_bounds.item_cache ~k:kf ~h:hf ~block_size:bf)
        r_pa
        (Gc_bounds.Lower_bounds.general ~a:1. ~k:kf ~h:hf ~block_size:bf)
        r_iblp)
    hs;
  let curve label marker f =
    { Gc_plot.Ascii_plot.marker; label;
      points = List.map (fun h -> (float_of_int h, f (float_of_int h))) hs }
  in
  Format.printf "@.%s@."
    (Gc_plot.Ascii_plot.render ~x_scale:Gc_plot.Ascii_plot.Log10
       ~y_scale:Gc_plot.Ascii_plot.Log10
       ~title:"Figure 3, measured (markers) vs formulas (curves); k=512, B=16"
       [ { Gc_plot.Ascii_plot.marker = 'L'; label = "LRU measured (thm2 trace)";
           points = !lru_pts };
         curve "thm2 item-cache bound" 'i' (fun h ->
             Gc_bounds.Lower_bounds.item_cache ~k:kf ~h ~block_size:bf);
         { Gc_plot.Ascii_plot.marker = 'P';
           label = "param-a:1 measured (thm4 trace)"; points = !pa_pts };
         curve "thm4 a=1 bound" 'o' (fun h ->
             Gc_bounds.Lower_bounds.general ~a:1. ~k:kf ~h ~block_size:bf);
         { Gc_plot.Ascii_plot.marker = '#';
           label = "IBLP (optimal split) on the same thm2 trace";
           points = !iblp_pts } ]);
  Format.printf
    "Measured adversarial ratios land on their bound curves; IBLP shrugs@.\
     off the Item-Cache adversary - the shape of Figure 3, simulated.@."

(* ------------------------------------------------- empirical Theorems 2-4 *)

let certified name c ~h =
  let measured = Adversary.measured_ratio c in
  let clair = Gc_offline.Clairvoyant.cost ~k:h c.Adversary.trace in
  let claimed = c.Adversary.opt_misses + c.Adversary.warmup_opt_misses in
  Format.printf
    "%-26s measured %8.3f   bound %8.3f   (OPT claimed %d, certified %d)@."
    name measured c.Adversary.bound claimed clair

let empirical_thm2 () =
  section_header "empirical_thm2"
    "Theorem 2: Item Caches on the whole-block adversarial trace";
  let k = 512 and block_size = 16 in
  List.iter
    (fun h ->
      Format.printf "@.h = %d (bound = B(k-B+1)/(k-h+1)):@." h;
      List.iter
        (fun name ->
          let p =
            Registry.make name ~k
              ~blocks:(Block_map.uniform ~block_size)
              ~seed:3
          in
          let c = Attack.item_cache p ~k ~h ~block_size ~cycles:30 in
          certified name c ~h)
        [ "lru"; "fifo"; "clock"; "lfu"; "arc"; "s3-fifo" ];
      Format.printf "   (Sleator-Tarjan would predict only %.3f)@."
        (Gc_bounds.Sleator_tarjan.competitive_ratio ~k:(float_of_int k)
           ~h:(float_of_int h)))
    [ 32; 64; 128 ]

let empirical_thm3 () =
  section_header "empirical_thm3"
    "Theorem 3: Block Caches on the one-item-per-block adversarial trace";
  let k = 512 and block_size = 16 in
  List.iter
    (fun h ->
      let p =
        Registry.make "block-lru" ~k
          ~blocks:(Block_map.uniform ~block_size)
          ~seed:3
      in
      let c = Attack.block_cache p ~k ~h ~block_size ~cycles:30 in
      certified (Printf.sprintf "block-lru (h = %d)" h) c ~h)
    [ 4; 8; 16; 24; 32 ];
  Format.printf
    "   (as B(h-1) -> k the bound k/(k - B(h-1)) diverges: the block cache@.\
    \    behaves like a cache of k/B = %d items)@."
    (512 / 16)

let empirical_thm4 () =
  section_header "empirical_thm4"
    "Theorem 4: the a-parameter family - extremes beat the middle";
  let k = 512 and h = 64 and block_size = 16 in
  Format.printf "k = %d, h = %d, B = %d@.@." k h block_size;
  List.iter
    (fun a ->
      let p = Param_a.create ~k ~a ~blocks:(Block_map.uniform ~block_size) in
      let c = Attack.general_a p ~k ~h ~block_size ~cycles:30 in
      certified (Printf.sprintf "param-a (a = %2d)" a) c ~h)
    [ 1; 2; 4; 8; 12; 16 ];
  Format.printf
    "@.The ratio (a(k-h+1) + B(h-a))/(k-h+1) is linear in a: with@.\
     k - h + 1 > B it is minimized at a = 1, so intermediate ski-rental@.\
     style policies lose (Section 4.4).@."

(* ------------------------------------------------ empirical Theorems 8-11 *)

let empirical_fault_rate () =
  section_header "empirical_fault_rate"
    "Theorems 8-11: fault rates in the extended locality model";
  (* Part 1: the Theorem-8 family forces faults on every policy. *)
  let module Thm8 = Gc_locality.Synthesis.Thm8 (Policy.Oracle) in
  let k = 48 and block_size = 16 in
  let f_inv m = m * m in
  let g n = max 1 (int_of_float (sqrt (float_of_int n)) / 4) in
  Format.printf
    "Theorem-8 traces (f = sqrt, g = f/4), k = %d: measured vs guaranteed@." k;
  List.iter
    (fun name ->
      let p =
        Registry.make name ~k ~blocks:(Block_map.uniform ~block_size) ~seed:7
      in
      let r = Thm8.run p ~k ~f_inv ~g ~block_size ~phases:10 in
      Format.printf "  %-12s fault rate %8.4f  >= bound %.4f@." name
        (float_of_int r.Thm8.online_faults /. float_of_int r.Thm8.accesses)
        (r.Thm8.bound_faults /. float_of_int r.Thm8.accesses))
    [ "lru"; "fifo"; "iblp"; "block-lru"; "gcm" ];
  (* The Theorem-8 floor binds ONLINE deterministic policies; a clairvoyant
     schedule on the same trace demonstrates the online/offline separation
     in the fault-rate model too. *)
  let lru_ref = Registry.make "lru" ~k ~blocks:(Block_map.uniform ~block_size) ~seed:7 in
  let r = Thm8.run lru_ref ~k ~f_inv ~g ~block_size ~phases:10 in
  Format.printf "  %-12s fault rate %8.4f  (offline: the floor does not bind)@."
    "clairvoyant"
    (float_of_int (Gc_offline.Clairvoyant.cost ~k r.Thm8.trace)
    /. float_of_int r.Thm8.accesses);
  (* Part 2: measured IBLP fault rates vs the Theorem-11 upper bound, on
     power-law traces of varying spatial locality. *)
  Format.printf
    "@.Power-law traces (f ~ n^(1/2)): measured IBLP (i = b) vs Theorem 11@.";
  Format.printf "  %-8s %-8s %12s %12s %12s@." "rho" "k" "measured" "thm11"
    "thm8 floor";
  List.iter
    (fun rho ->
      let trace =
        Gc_locality.Synthesis.power_law (Rng.create 23) ~n:100_000 ~p:2. ~rho
          ~block_size
      in
      let windows =
        List.filter
          (fun n -> n >= 64)
          (Gc_locality.Working_set.geometric_windows trace ~steps:14)
      in
      let profile = Gc_locality.Working_set.profile trace ~windows in
      let fit_f =
        Gc_locality.Concave_fit.fit_power
          (List.map (fun (n, f, _) -> (n, f)) profile)
      in
      let fit_g =
        Gc_locality.Concave_fit.fit_power
          (List.map (fun (n, _, g) -> (n, g)) profile)
      in
      let f =
        Gc_bounds.Locality_fn.power ~coeff:fit_f.Gc_locality.Concave_fit.coeff
          ~p:fit_f.Gc_locality.Concave_fit.p ()
      in
      let g =
        Gc_bounds.Locality_fn.power ~coeff:fit_g.Gc_locality.Concave_fit.coeff
          ~p:fit_g.Gc_locality.Concave_fit.p ()
      in
      List.iter
        (fun k ->
          let p =
            Iblp.create ~i:(k / 2) ~b:(k - (k / 2)) ~blocks:trace.Trace.blocks ()
          in
          let m = Simulator.run p trace in
          let kf = float_of_int k in
          Format.printf "  %-8.0f %-8d %12.4f %12.4f %12.4f@." rho k
            (Metrics.fault_rate m)
            (Gc_bounds.Fault_rate.iblp ~i:(kf /. 2.) ~b:(kf /. 2.)
               ~block_size:(float_of_int block_size) ~f ~g)
            (Gc_bounds.Fault_rate.lower ~k:kf ~f ~g))
        [ 128; 512 ])
    [ 1.; 4.; 16. ];
  Format.printf
    "@.Measured rates respect the Theorem-11 upper bound; the Theorem-8@.\
     column is the worst-case floor over all traces with that profile.@."

(* ------------------------------------------------------------- randomized *)

let randomized () =
  section_header "randomized"
    "Section 6: marking, whole-block marking, and GCM across locality mixes";
  let block_size = 16 in
  let k = 512 in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let avg_misses name trace =
    let total =
      List.fold_left
        (fun acc seed ->
          let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed in
          acc + (Simulator.run p trace).Metrics.misses)
        0 seeds
    in
    float_of_int total /. float_of_int (List.length seeds)
  in
  let workloads =
    [
      ( "whole-block scans (max spatial)",
        Generators.spatial_mix (Rng.create 10) ~n:40_000 ~universe:8192
          ~block_size ~p_spatial:0.9 );
      ( "one item per block (no spatial)",
        Generators.zipf_blocks (Rng.create 11) ~n:40_000 ~blocks:2048
          ~block_size ~alpha:0.7 ~within:`First );
      ( "mixed",
        Generators.spatial_mix (Rng.create 12) ~n:40_000 ~universe:8192
          ~block_size ~p_spatial:0.5 );
    ]
  in
  Format.printf "%-36s %12s %14s %10s %10s@." "workload (5-seed mean misses)"
    "marking" "block-marking" "gcm" "lru";
  List.iter
    (fun (wname, trace) ->
      Format.printf "%-36s %12.0f %14.0f %10.0f %10.0f@." wname
        (avg_misses "marking" trace)
        (avg_misses "block-marking" trace)
        (avg_misses "gcm" trace)
        (avg_misses "lru" trace))
    workloads;
  Format.printf
    "@.Section 6's claims, live: plain marking pays the ~Bx spatial penalty@.     on block scans; marking whole blocks fixes that but collapses when@.     blocks are sparsely used (marked pollution); GCM - load the block,@.     mark only the request - is competitive on both extremes.@.";
  (* Classical context: against an OBLIVIOUS adversary, marking's expected
     ratio is at most 2 H_k.  Fix a worst-case trace built against LRU
     (oblivious for marking) and average across seeds. *)
  let k_small = 32 and h = 32 in
  let lru = Lru.create ~k:k_small in
  let c = Attack.sleator_tarjan lru ~k:k_small ~h ~cycles:40 in
  let opt =
    float_of_int (c.Adversary.opt_misses + c.Adversary.warmup_opt_misses)
  in
  let s =
    Replicates.misses
      ~make:(fun ~seed -> Marking.create ~k:k_small ~rng:(Rng.create seed))
      ~trace:c.Adversary.trace
      ~seeds:(List.init 20 (fun seed -> seed))
  in
  Format.printf
    "@.oblivious worst-case trace (k = h = %d): marking expected ratio %.2f@."
    k_small
    (s.Replicates.mean /. opt);
  Format.printf "(20 seeds), vs 2 H_k = %.2f and the deterministic floor k = %d@."
    (Gc_bounds.Randomized.marking_upper ~k:k_small)
    k_small;
  (* Section 6.1's open question: load SOME of the block?  Sweep GCM's
     load limit m across the two extreme workloads. *)
  let sweep_trace name trace =
    Format.printf "@.GCM load-limit sweep on %s (5-seed mean misses):@." name;
    List.iter
      (fun m ->
        let s =
          Replicates.misses
            ~make:(fun ~seed ->
              Gcm.create ~load_limit:m ~k:512
                ~blocks:trace.Trace.blocks ~rng:(Rng.create seed) ())
            ~trace ~seeds:[ 1; 2; 3; 4; 5 ]
        in
        Format.printf "  m = %2d: %a@." m Replicates.pp s)
      [ 1; 2; 4; 8; 16 ]
  in
  sweep_trace "whole-block scans"
    (Generators.spatial_mix (Rng.create 10) ~n:40_000 ~universe:8192
       ~block_size:16 ~p_spatial:0.9);
  sweep_trace "one item per block"
    (Generators.zipf_blocks (Rng.create 11) ~n:40_000 ~blocks:2048
       ~block_size:16 ~alpha:0.7 ~within:`First);
  Format.printf
    "@.m = 1 is plain marking, m = B is GCM: the extremes win their own@.\
     workload and intermediate m interpolates - echoing Section 4.4's@.\
     all-or-nothing conclusion, now on the randomized side.@."

(* --------------------------------------------------------------- ablation *)

let ablation () =
  section_header "ablation"
    "Design-choice ablations the paper calls out (Section 5.1)";
  let block_size = 16 in
  let blocks = Block_map.uniform ~block_size in
  (* 1. Block-layer reordering on item-layer hits.  The paper: allowing it
     would let blocks with a few hot items pollute the block layer.
     Workload: hot items hammered through the item layer + streaming. *)
  let i = 128 and b = 384 in
  let rng = Rng.create 21 in
  let hot =
    Generators.zipf_items (Rng.split rng) ~n:60_000 ~universe:512 ~block_size
      ~alpha:1.2
  in
  let streaming =
    Generators.spatial_mix (Rng.split rng) ~n:60_000 ~universe:65_536
      ~block_size ~p_spatial:0.9
  in
  let trace = Generators.interleave hot streaming in
  let run reorder =
    let p = Iblp.create ~reorder_on_item_hit:reorder ~i ~b ~blocks () in
    (Simulator.run p trace).Metrics.misses
  in
  let faithful = run false and reordering = run true in
  Format.printf
    "IBLP block-layer ordering on an organic hot+streaming mix (i = %d, b = %d):@." i b;
  Format.printf "  paper design (no reorder on item hits): %d misses@." faithful;
  Format.printf "  ablated      (reorder on item hits):    %d misses (%+.1f%%)@."
    reordering
    (100. *. (float_of_int reordering /. float_of_int faithful -. 1.));
  Format.printf
    "  (on benign mixes the choice barely matters; the paper's argument is@.";
  Format.printf "   about the worst case below)@.";
  (* 2. The pattern the paper worries about: blocks whose single hot item
     is served by the item layer.  With reordering, every item-layer hit
     refreshes the hot item's block, pinning nearly-empty blocks in the
     block layer; the concurrently streamed scan then never fits.  The
     faithful design lets the hot blocks age out and the scan hits. *)
  let n_hot = b / block_size in
  let hot_blocks = Array.init n_hot (fun j -> 1000 + j) in
  let scan_blocks = Array.init (n_hot - 4) (fun j -> 2000 + j) in
  let requests = ref [] in
  let push x = requests := x :: !requests in
  (* Setup: load each hot block via a sibling, then pin its hot item in the
     item layer. *)
  Array.iter
    (fun blk ->
      push ((blk * block_size) + 1);
      push (blk * block_size))
    hot_blocks;
  for round = 0 to 4000 do
    (* The scan rotates through the items of each scanned block so the item
       layer cannot absorb it: only a resident block serves it. *)
    let scan = scan_blocks.(round mod Array.length scan_blocks) in
    let offset = round / Array.length scan_blocks mod block_size in
    push ((scan * block_size) + offset);
    (* Touch every hot item between scan accesses: the item layer serves
       them all, and - ablated - each touch refreshes its block, keeping
       all the nearly-empty hot blocks pinned above the scanned ones. *)
    Array.iter (fun blk -> push (blk * block_size)) hot_blocks
  done;
  let pin_trace = Trace.make blocks (Array.of_list (List.rev !requests)) in
  let run_pin reorder =
    (* The item layer is sized to keep the hot items resident but too small
       to memorize the rotating scan. *)
    let p = Iblp.create ~reorder_on_item_hit:reorder ~i:64 ~b ~blocks () in
    (Simulator.run p pin_trace).Metrics.misses
  in
  let pin_faithful = run_pin false and pin_ablated = run_pin true in
  Format.printf
    "@.hot-item pinning pattern: faithful %d vs ablated %d misses (%+.1f%%)@."
    pin_faithful pin_ablated
    (100. *. ((float_of_int pin_ablated /. float_of_int pin_faithful) -. 1.));
  (* 3. GCM marking discipline: mark only the request (GCM) vs mark the
     whole block - same comparison as the randomized section but head to
     head on a sparse workload. *)
  let sparse =
    Generators.zipf_blocks (Rng.create 22) ~n:40_000 ~blocks:2048 ~block_size
      ~alpha:0.7 ~within:`First
  in
  let misses name =
    (Simulator.run
       (Registry.make name ~k:512 ~blocks:sparse.Trace.blocks ~seed:9)
       sparse)
      .Metrics.misses
  in
  Format.printf
    "@.marking discipline on sparse blocks: gcm %d vs block-marking %d misses@."
    (misses "gcm") (misses "block-marking")

(* --------------------------------------------------------------- adaptive *)

let adaptive () =
  section_header "adaptive"
    "Extension: ghost-feedback IBLP vs fixed splits across workload phases";
  let block_size = 16 in
  let k = 512 in
  let rng = Rng.create 33 in
  (* Three phases with opposite demands: temporal, spatial, temporal. *)
  let temporal seed =
    Generators.zipf_items (Rng.create seed) ~n:40_000 ~universe:4096
      ~block_size ~alpha:1.0
  in
  let spatial =
    Generators.spatial_mix (Rng.split rng) ~n:40_000 ~universe:16_384
      ~block_size ~p_spatial:0.9
  in
  let trace =
    Generators.concat_phases [ temporal 41; spatial; temporal 43 ]
  in
  Format.printf "phased workload: temporal | spatial | temporal (120k accesses)@.@.";
  Format.printf "%-28s %10s@." "policy" "misses";
  List.iter
    (fun name ->
      let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:5 in
      Format.printf "%-28s %10d@." name (Simulator.run p trace).Metrics.misses)
    [ "lru"; "block-lru"; "iblp:i=448,b=64"; "iblp"; "iblp:i=64,b=448";
      "iblp-adaptive"; "arc"; "2q"; "gcm" ];
  (* Adversarial characterization: the adaptive variant is still a
     deterministic policy, so Theorem 4 applies; the adversary measures its
     effective a-parameter. *)
  let pa =
    Registry.make "iblp-adaptive" ~k:512
      ~blocks:(Block_map.uniform ~block_size) ~seed:5
  in
  let c = Attack.general_a pa ~k:512 ~h:64 ~block_size ~cycles:20 in
  Format.printf
    "@.under the Theorem-4 adversary (k = 512, h = 64, B = %d): measured@.\
     a = %.0f, ratio %.3f vs the a-specific bound %.3f - adaptation does@.\
     not escape the deterministic lower bound, as Section 6 predicts for@.\
     any single policy.@."
    block_size
    (List.assoc "a" c.Adversary.info)
    (Adversary.measured_ratio c)
    c.Adversary.bound;
  Format.printf
    "@.No fixed split wins both phase types; the ghost-feedback variant@.     re-partitions itself and tracks the better fixed split in each phase@.     (Section 5.3 leaves the unknown-h split open; this is one practical@.     answer, in the spirit of ARC's recency/frequency adaptation).@."

(* ----------------------------------------------------- ratio brackets *)

let ratio_brackets () =
  section_header "ratio_brackets"
    "Competitive-ratio brackets on organic workloads (Opt_bounds)";
  let block_size = 16 in
  let k = 256 and h = 64 in
  let workloads =
    [
      ( "spatial-mix 0.7",
        Generators.spatial_mix (Rng.create 51) ~n:30_000 ~universe:8192
          ~block_size ~p_spatial:0.7 );
      ( "zipf 1.0",
        Generators.zipf_items (Rng.create 52) ~n:30_000 ~universe:4096
          ~block_size ~alpha:1.0 );
      ( "pointer chase",
        Generators.pointer_chase (Rng.create 53) ~n:30_000 ~universe:2048
          ~block_size );
    ]
  in
  Format.printf
    "online k = %d vs offline h = %d; ratio bracketed by clairvoyant cost@.     (upper schedule) and the windowed OPT lower bound@.@."
    k h;
  Format.printf "%-20s %-14s %16s %18s@." "workload" "policy" "ratio >="
    "ratio <=";
  List.iter
    (fun (wname, trace) ->
      List.iter
        (fun name ->
          let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:3 in
          let online = (Simulator.run p trace).Metrics.misses in
          let lo, hi = Gc_offline.Opt_bounds.ratio_interval ~online trace ~h in
          Format.printf "%-20s %-14s %16.3f %18.3f@." wname name lo hi)
        [ "lru"; "iblp" ])
    workloads;
  Format.printf
    "@.On benign traces both policies sit far below their worst-case@.     bounds - competitive analysis prices the adversary, not the average.@."

(* ---------------------------------------------------------------- b sweep *)

let b_sweep () =
  section_header "b_sweep"
    "How the GC penalty scales with block size B (theory and measured)";
  let h = 10_000. in
  Format.printf
    "theory at h = %g: the Theta(B) gap spreads across ratio and@.\
     augmentation (Table 1 columns as functions of B)@.@."
    h;
  Format.printf "%6s %14s %14s %16s %16s@." "B" "ratio@k=2h" "UB ratio@2h"
    "meet point k/h" "k/h for ratio 2";
  List.iter
    (fun b ->
      let lower2h = Gc_bounds.Lower_bounds.best ~k:(2. *. h) ~h ~block_size:b in
      let upper2h =
        Gc_bounds.Partitioning.optimal_ratio ~k:(2. *. h) ~h ~block_size:b
      in
      let rows = Gc_bounds.Table1.rows ~h ~block_size:b in
      let meet = List.nth rows 1 in
      let const = List.nth rows 2 in
      let meet_pt = meet.Gc_bounds.Table1.point Gc_bounds.Table1.Gc_lower in
      let const_pt = const.Gc_bounds.Table1.point Gc_bounds.Table1.Gc_lower in
      Format.printf "%6.0f %14.2f %14.2f %16.3f %16.1f@." b lower2h upper2h
        meet_pt.Gc_bounds.Table1.augmentation
        const_pt.Gc_bounds.Table1.augmentation)
    [ 4.; 16.; 64.; 256. ];
  (* Measured: the Theorem-2 adversary's ratio against LRU grows linearly
     with B at fixed k/h. *)
  Format.printf "@.measured thm2 ratio vs LRU (k = 512, h = 64):@.";
  List.iter
    (fun block_size ->
      let lru = Lru.create ~k:512 in
      let c = Attack.item_cache lru ~k:512 ~h:64 ~block_size ~cycles:20 in
      Format.printf "  B = %3d: measured %8.3f   bound %8.3f@." block_size
        (Adversary.measured_ratio c)
        c.Adversary.bound)
    [ 2; 4; 8; 16; 32; 64 ];
  (* And the same trace re-interpreted under different B shows measured
     spatial locality scaling on fixed references. *)
  let base =
    Generators.spatial_mix (Rng.create 9) ~n:50_000 ~universe:16_384
      ~block_size:64 ~p_spatial:0.8
  in
  Format.printf
    "@.one reference stream, reinterpreted at different block sizes@.\
     (k = 1024; spatial hits need B > 1):@.";
  List.iter
    (fun bsize ->
      let t = Transform.with_block_size base ~block_size:bsize in
      let p = Registry.make "iblp" ~k:1024 ~blocks:t.Trace.blocks ~seed:3 in
      let m = Simulator.run p t in
      Format.printf "  B = %3d: misses %6d, spatial hits %6d, f/g = %5.2f@."
        bsize m.Metrics.misses m.Metrics.spatial_hits
        (Gc_trace.Stats.spatial_ratio t))
    [ 1; 4; 16; 64 ]

(* --------------------------------------------------------- LP crosscheck *)

let lp_crosscheck () =
  section_header "lp_crosscheck"
    "Theorems 5-7: closed forms vs from-scratch simplex / numeric optimizer";
  Format.printf "Theorem 5 (temporal), i = 2048:@.";
  List.iter
    (fun h ->
      Format.printf "  h = %6.0f: closed %10.4f   numeric %10.4f@." h
        (Gc_bounds.Iblp_upper.temporal ~i:2048. ~h)
        (Gc_lp.Fractional.theorem5 ~i:2048. ~h))
    [ 64.; 512.; 1024.; 2000. ];
  Format.printf "@.Theorem 6 (spatial), b = 2048, B = 64:@.";
  List.iter
    (fun h ->
      Format.printf "  h = %6.0f: closed %10.4f   numeric %10.4f@." h
        (Gc_bounds.Iblp_upper.spatial ~b:2048. ~block_size:64. ~h)
        (Gc_lp.Fractional.theorem6 ~b:2048. ~block_size:64. ~h))
    [ 8.; 64.; 512.; 4096. ];
  Format.printf
    "@.Theorem 7 (combined), B = 64 (closed form is loose when the paper's@.\
     interior optimum would need r < 0; the numeric LP is the true value):@.";
  Format.printf "  %-30s %12s %12s %8s@." "(i, b, h)" "closed" "numeric"
    "tight?";
  List.iter
    (fun (i, b, h) ->
      let closed = Gc_bounds.Iblp_upper.combined ~i ~b ~block_size:64. ~h in
      let numeric = Gc_lp.Fractional.theorem7 ~i ~b ~block_size:64. ~h in
      Format.printf "  %-30s %12.4f %12.4f %8s@."
        (Printf.sprintf "(%.0f, %.0f, %.0f)" i b h)
        closed numeric
        (if Float.abs (closed -. numeric) /. closed < 0.01 then "yes"
         else "loose"))
    [ (1500., 500., 1000.); (2000., 1000., 1400.); (800., 4000., 700.);
      (2000., 2000., 100.); (10000., 10000., 1000.) ];
  Format.printf "@.Optimal partitioning (closed form vs numeric argmin):@.";
  List.iter
    (fun (k, h) ->
      let closed = Gc_bounds.Partitioning.optimal_ratio ~k ~h ~block_size:64. in
      let i_num, numeric =
        Gc_bounds.Partitioning.numeric_best_split ~k ~h ~block_size:64.
      in
      Format.printf
        "  k = %9.0f h = %7.0f: closed %8.4f (i = %8.0f)  numeric %8.4f (i = \
         %8.0f)@."
        k h closed
        (Gc_bounds.Partitioning.optimal_i ~k ~h ~block_size:64.)
        numeric i_num)
    [ (k_paper, 1000.); (k_paper, 10_000.); (k_paper, 100_000.);
      (20_000., 5000.) ]

(* ---------------------------------------------------------------- kernels *)

let kernels () =
  section_header "kernels"
    "Computational kernels at the granularity boundary (64 B lines, 512 B rows)";
  let geo = Gc_memhier.Geometry.create ~line_bytes:64 ~row_bytes:512 in
  let run name addrs =
    let h =
      Gc_memhier.Hierarchy.create geo ~capacity_lines:512
        ~make_policy:(fun ~k ~blocks -> Registry.make name ~k ~blocks ~seed:2)
    in
    Gc_memhier.Hierarchy.run h addrs;
    (Gc_memhier.Hierarchy.stats h).Gc_memhier.Hierarchy.misses
  in
  let policies = [ "lru"; "block-lru"; "iblp"; "iblp-adaptive" ] in
  (* Streams come from the shared kernel catalog at Bench size, the same
     generators test_memhier and gcanalyze consume at Small size. *)
  let cases =
    List.map
      (fun e ->
        ( e.Gc_memhier.Kernels.name,
          e.Gc_memhier.Kernels.generate Gc_memhier.Kernels.Bench ~seed:77 ))
      Gc_memhier.Kernels.catalog
  in
  Format.printf "%-32s %10s %10s %10s %14s@." "kernel (row opens)" "lru"
    "block-lru" "iblp" "iblp-adaptive";
  List.iter
    (fun (name, addrs) ->
      Format.printf "%-32s" name;
      List.iter (fun p -> Format.printf " %10d" (run p addrs)) policies;
      Format.printf "@.")
    cases;
  Format.printf
    "@.Streaming kernels (matmul A/C, stencil) reward whole-row loading;@.\
     pointer-heavy ones (hash buckets, b-tree nodes) punish it.  The GC@.\
     policies track the better side per kernel - the paper's trade-off on@.\
     real computation shapes.@."

(* ------------------------------------------------------------------ perf *)

let perf () =
  section_header "perf"
    "Bechamel micro-benchmarks: simulation cost per policy (ns per access)";
  let block_size = 16 in
  let k = if !smoke then 256 else 4096 in
  let n = if !smoke then 4_000 else 100_000 in
  let trace =
    Generators.spatial_mix (Rng.create 1) ~n ~universe:65_536 ~block_size
      ~p_spatial:0.6
  in
  let blocks = trace.Trace.blocks in
  let policies =
    [ "lru"; "fifo"; "lfu"; "clock"; "random"; "marking"; "block-lru";
      "gcm"; "iblp"; "param-a:1"; "arc"; "2q"; "block-marking";
      "iblp-adaptive"; "fwf"; "lru-k"; "s3-fifo"; "setassoc-lru" ]
  in
  let accesses = float_of_int (Trace.length trace) in
  (* Allocation profile: one deterministic run per policy, bracketed by
     Gc.minor_words.  Unlike the throughput estimate this is exact and
     repeatable, so the regression gate can hold it to a tight bound. *)
  let minor_words =
    List.map
      (fun name ->
        let p = Registry.make name ~k ~blocks ~seed:1 in
        let before = Gc.minor_words () in
        ignore (Simulator.run ~check:false p trace);
        (name, Gc.minor_words () -. before))
      policies
  in
  let open Bechamel in
  let make_test name =
    Test.make ~name
      (Staged.stage (fun () ->
           let p = Registry.make name ~k ~blocks ~seed:1 in
           ignore (Simulator.run ~check:false p trace)))
  in
  let tests =
    Test.make_grouped ~name:"simulate" ~fmt:"%s %s" (List.map make_test policies)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = Time.second (if !smoke then 0.05 else 1.0) in
  let cfg = Benchmark.cfg ~limit:50 ~quota ~stabilize:false () in
  (* Noise on a shared machine is one-sided — contention and frequency
     dips only ever slow a run down — so the per-policy estimate is the
     MIN over independent measurement repeats, the usual robust statistic
     for a regression gate. *)
  let repeats = if !smoke then 1 else 5 in
  let estimates = Hashtbl.create 32 in
  for _ = 1 to repeats do
    let raw = Benchmark.all cfg [ instance ] tests in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name res ->
        match Analyze.OLS.estimates res with
        | Some (est :: _) ->
            let best =
              match Hashtbl.find_opt estimates name with
              | Some prev -> Float.min prev est
              | None -> est
            in
            Hashtbl.replace estimates name best
        | _ -> ())
      results
  done;
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) estimates []
    |> List.sort compare
  in
  (* Bechamel reports grouped tests as "simulate <policy>"; the manifest
     rows carry the bare policy name gcprof keys on. *)
  let bare name =
    match String.index_opt name ' ' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  Format.printf "%-28s %14s %14s %16s@." "policy" "ns/run" "ns/access"
    "minor words/acc";
  List.iter
    (fun (name, est) ->
      let policy = bare name in
      let minor = List.assoc policy minor_words in
      perf_rows :=
        Gc_obs.Json.Obj
          [
            ("policy", Gc_obs.Json.String policy);
            ("ns_per_run", Gc_obs.Json.Float est);
            ("ns_per_access", Gc_obs.Json.Float (est /. accesses));
            ("minor_allocated", Gc_obs.Json.Float minor);
            ("minor_words_per_access", Gc_obs.Json.Float (minor /. accesses));
          ]
        :: !perf_rows;
      Format.printf "%-28s %14.0f %14.1f %16.2f@." name est (est /. accesses)
        (minor /. accesses))
    rows

(* ------------------------------------------------------------------ main *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure1", figure1);
    ("figure2", figure2);
    ("figure3", figure3);
    ("figure4", figure4);
    ("figure5", figure5);
    ("figure6", figure6);
    ("empirical_figure3", empirical_figure3);
    ("empirical_thm2", empirical_thm2);
    ("empirical_thm3", empirical_thm3);
    ("empirical_thm4", empirical_thm4);
    ("empirical_fault_rate", empirical_fault_rate);
    ("randomized", randomized);
    ("ablation", ablation);
    ("adaptive", adaptive);
    ("ratio_brackets", ratio_brackets);
    ("kernels", kernels);
    ("b_sweep", b_sweep);
    ("lp_crosscheck", lp_crosscheck);
    ("perf", perf);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | "--json" :: [] ->
        Format.eprintf "--json needs a file argument@.";
        exit 1
    | "--smoke" :: rest ->
        smoke := true;
        split_json acc rest
    | arg :: rest -> split_json (arg :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, names = split_json [] args in
  let requested = if names = [] then List.map fst sections else names in
  let t0 = Unix.gettimeofday () in
  let section_times =
    List.map
      (fun name ->
        match List.assoc_opt name sections with
        | Some f ->
            let s0 = Unix.gettimeofday () in
            f ();
            (name, Gc_obs.Json.Float (Unix.gettimeofday () -. s0))
        | None ->
            Format.eprintf "unknown section %S; available: %s@." name
              (String.concat ", " (List.map fst sections));
            exit 1)
      requested
  in
  match json with
  | None -> ()
  | Some out ->
      let manifest =
        Gc_cache.Obs_run.manifest ~tool:"bench"
          ~command:(String.concat " " requested)
          ~wall_time_s:(Unix.gettimeofday () -. t0)
          ~extra:
            ([ ("sections", Gc_obs.Json.Obj section_times) ]
            @
            match !perf_rows with
            | [] -> []
            | rows -> [ ("perf", Gc_obs.Json.Array (List.rev rows)) ])
          []
      in
      Gc_obs.Export.write_json_atomic out (Gc_obs.Manifest.to_json manifest);
      Format.eprintf "manifest written to %s@." out
