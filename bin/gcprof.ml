(* gcprof: the profiling companion to bench/main.exe and gcserved.

   Subcommands:
     gcprof compare OLD.json NEW.json
         Gate a fresh bench manifest against a committed baseline: exit 1
         when any policy's ns_per_access regressed by more than the
         threshold (default 10%) or its minor allocation per access grew
         beyond the allocation threshold.  The @bench-regress alias runs
         this against the repo's committed BENCH_*.json.
     gcprof trace DUMP.json OUT.json
         Convert a raw span dump ({"spans": [...]}, the form written by
         Gc_prof.Tracer.dump_to_json) into Chrome trace-event JSON,
         loadable in Perfetto.  "-" reads stdin / writes stdout.

   Exit codes follow the shared contract (doc/ROBUSTNESS.md): 0 ok,
   1 runtime failure (missing/corrupt file, regression detected),
   2 usage error. *)

open Cmdliner
module Json = Gc_obs.Json

(* ------------------------------------------------------------- manifests *)

let read_json path =
  let text =
    if path = "-" then In_channel.input_all stdin
    else
      match In_channel.with_open_bin path In_channel.input_all with
      | s -> s
      | exception Sys_error msg -> Cli_common.fail_runtime "%s" msg
  in
  match Json.parse text with
  | Ok j -> j
  | Error e ->
      Cli_common.fail_runtime "%s: %s"
        (if path = "-" then "stdin" else path)
        (Json.string_of_parse_error e)

type perf_row = {
  ns_per_access : float;
  minor_per_access : float option;
      (* absent in manifests written before allocation profiling *)
}

let float_member name json =
  match Json.member name json with
  | Some (Json.Float v) -> Some v
  | Some (Json.Int v) -> Some (float_of_int v)
  | _ -> None

(* The perf rows of a bench manifest: extra.perf, one object per policy
   (see bench/main.ml).  A manifest without a perf section is a runtime
   error — comparing it would vacuously pass. *)
let perf_rows path json =
  let rows =
    match Option.bind (Json.member "extra" json) (Json.member "perf") with
    | Some (Json.Array rows) -> rows
    | _ ->
        Cli_common.fail_runtime
          "%s: no extra.perf section (not a bench --json manifest covering \
           the perf section?)"
          path
  in
  List.map
    (fun row ->
      match (Json.member "policy" row, float_member "ns_per_access" row) with
      | Some (Json.String policy), Some ns ->
          ( policy,
            {
              ns_per_access = ns;
              minor_per_access = float_member "minor_words_per_access" row;
            } )
      | _ ->
          Cli_common.fail_runtime
            "%s: malformed perf row (need string \"policy\" and numeric \
             \"ns_per_access\")"
            path)
    rows

let compare_cmd =
  let compare old_path new_path threshold alloc_threshold alloc_slack =
    let old_rows = perf_rows old_path (read_json old_path) in
    let new_rows = perf_rows new_path (read_json new_path) in
    let regressions = ref 0 in
    let pct a b = 100. *. ((b /. a) -. 1.) in
    Format.printf "%-18s %12s %12s %8s  %s@." "policy" "old ns/acc"
      "new ns/acc" "delta" "verdict";
    List.iter
      (fun (policy, old_row) ->
        match List.assoc_opt policy new_rows with
        | None ->
            incr regressions;
            Format.printf "%-18s %12.1f %12s %8s  MISSING from %s@." policy
              old_row.ns_per_access "-" "-" new_path
        | Some new_row ->
            let d = pct old_row.ns_per_access new_row.ns_per_access in
            let slow = d > threshold in
            let alloc_verdict =
              match (old_row.minor_per_access, new_row.minor_per_access) with
              | Some old_m, Some new_m
                when new_m > (old_m *. (1. +. (alloc_threshold /. 100.)))
                     +. alloc_slack ->
                  Some
                    (Printf.sprintf "minor words/acc %.2f -> %.2f" old_m new_m)
              | _ -> None
            in
            if slow || alloc_verdict <> None then incr regressions;
            Format.printf "%-18s %12.1f %12.1f %+7.1f%%  %s@." policy
              old_row.ns_per_access new_row.ns_per_access d
              (match (slow, alloc_verdict) with
              | false, None -> "ok"
              | true, None -> "REGRESSED"
              | false, Some a -> "ALLOC GREW (" ^ a ^ ")"
              | true, Some a -> "REGRESSED, ALLOC GREW (" ^ a ^ ")"))
      old_rows;
    List.iter
      (fun (policy, _) ->
        if not (List.mem_assoc policy old_rows) then
          Format.printf "%-18s (new policy, no baseline — not compared)@."
            policy)
      new_rows;
    if !regressions > 0 then
      Cli_common.fail_runtime
        "%d polic%s regressed beyond the %.0f%% throughput / %.0f%% \
         allocation thresholds"
        !regressions
        (if !regressions = 1 then "y" else "ies")
        threshold alloc_threshold
    else begin
      Format.printf "no regressions beyond %.0f%% (allocation: %.0f%% + %.1f \
                     words/access slack)@."
        threshold alloc_threshold alloc_slack;
      Cli_common.ok
    end
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Gate a fresh bench manifest against a baseline; non-zero exit on \
          a throughput or allocation regression")
    Term.(
      const compare
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"OLD" ~doc:"Baseline bench manifest (JSON).")
      $ Arg.(
          required
          & pos 1 (some string) None
          & info [] ~docv:"NEW" ~doc:"Fresh bench manifest to gate.")
      $ Arg.(
          value
          & opt float 10.
          & info [ "threshold" ] ~docv:"PCT"
              ~doc:
                "Maximum tolerated ns-per-access growth, in percent \
                 (default 10).")
      $ Arg.(
          value
          & opt float 10.
          & info [ "alloc-threshold" ] ~docv:"PCT"
              ~doc:
                "Maximum tolerated minor-words-per-access growth, in \
                 percent (default 10).")
      $ Arg.(
          value
          & opt float 0.5
          & info [ "alloc-slack" ] ~docv:"WORDS"
              ~doc:
                "Absolute minor-words-per-access slack added on top of \
                 the percentage, so near-zero baselines do not trip on \
                 noise (default 0.5)."))

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let trace in_path out_path =
    match Gc_prof.Tracer.dump_of_json (read_json in_path) with
    | Error msg ->
        Cli_common.fail_runtime "%s: not a span dump: %s"
          (if in_path = "-" then "stdin" else in_path)
          msg
    | Ok spans ->
        let chrome = Gc_prof.Chrome.to_json spans in
        if out_path = "-" then Format.printf "%a@." Json.pp chrome
        else begin
          Gc_obs.Export.write_json_atomic out_path chrome;
          Format.eprintf "%d spans -> %s@." (List.length spans) out_path
        end;
        Cli_common.ok
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Convert a raw Gc_prof span dump to Chrome trace-event JSON \
          (Perfetto-loadable)")
    Term.(
      const trace
      $ Arg.(
          required
          & pos 0 (some string) None
          & info [] ~docv:"DUMP"
              ~doc:
                "Raw span dump ({\"spans\": [...]}); $(b,-) reads stdin.")
      $ Arg.(
          value
          & pos 1 string "-"
          & info [] ~docv:"OUT"
              ~doc:"Output path; $(b,-) (the default) writes stdout."))

let () =
  let info =
    Cmd.info "gcprof" ~doc:"Profiling artifacts: perf-regression gate and \
                            trace conversion"
      ~exits:
        [
          Cmd.Exit.info 0 ~doc:"on success (no regression; trace converted).";
          Cmd.Exit.info 1
            ~doc:
              "on runtime failure (missing or corrupt manifest, a detected \
               regression).";
          Cmd.Exit.info 2 ~doc:"on usage errors.";
        ]
  in
  exit (Cli_common.eval (Cmd.group info [ compare_cmd; trace_cmd ]))
