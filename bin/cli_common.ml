(* Shared CLI plumbing for the gc* binaries: one exit-code contract,
   diagnostic-preserving trace loading, and validated argument converters.

   Exit codes:
     0  success
     1  runtime failure (unreadable/corrupt trace, I/O error, policy crash)
     2  usage error (unknown flag, unknown policy/kind/construction)
     3  model violation (the shadow audit caught an inconsistent policy) *)

open Cmdliner

let ok = 0
let runtime_error = 1
let usage_error = 2
let model_violation = 3

(* Post-parse failures that already know their exit code. *)
exception Fatal of int * string

let fail_runtime fmt =
  Printf.ksprintf (fun m -> raise (Fatal (runtime_error, m))) fmt

let fail_usage fmt =
  Printf.ksprintf (fun m -> raise (Fatal (usage_error, m))) fmt

(* ------------------------------------------------------------- trace I/O *)

let read_trace path =
  let result =
    if path = "-" then Gc_trace.Trace_io.of_channel_result stdin
    else Gc_trace.Trace_io.load_any_result path
  in
  match result with
  | Ok t -> t
  | Error e ->
      fail_runtime "%s: %s"
        (if path = "-" then "stdin" else path)
        (Gc_trace.Trace_io.string_of_error e)

let write_trace path t =
  if path = "-" then Gc_trace.Trace_io.to_channel stdout t
  else if Filename.check_suffix path ".gctb" then
    Gc_trace.Trace_io.save_binary path t
  else Gc_trace.Trace_io.save path t

(* ------------------------------------------------------------ converters *)

(* A registry policy spec, validated by base name at parse time so typos
   are usage errors listing the valid choices (parameter syntax after ':'
   is validated at construction time). *)
let policy_conv =
  let parse s =
    let base =
      match String.index_opt s ':' with
      | Some i -> String.sub s 0 i
      | None -> s
    in
    if base = "broken" || List.mem base Gc_cache.Registry.names then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown policy %S, expected one of: %s, broken" s
              (String.concat ", " Gc_cache.Registry.names)))
  in
  Arg.conv (parse, Format.pp_print_string)

(* An exact-choice string: cmdliner's enum reports bad values as usage
   errors listing every valid choice. *)
let choice_conv choices = Arg.enum (List.map (fun c -> (c, c)) choices)

let inject_conv =
  let parse s =
    match Gc_fault.Spec.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let pp fmt spec =
    Format.pp_print_string fmt (Gc_fault.Spec.spec_string spec)
  in
  Arg.conv (parse, pp)

(* ------------------------------------------------------------ evaluation *)

(* Commands are int terms returning one of the codes above; everything the
   command lets escape is mapped onto the same contract here. *)
let eval cmd =
  match Cmd.eval' ~catch:false cmd with
  | code when code = Cmd.Exit.cli_error -> usage_error
  | code when code = Cmd.Exit.internal_error -> runtime_error
  | code -> code
  | exception Fatal (code, msg) ->
      Printf.eprintf "%s\n%!" msg;
      code
  | exception Gc_cache.Simulator.Model_violation msg ->
      Printf.eprintf "model violation: %s\n%!" msg;
      model_violation
  | exception Invalid_argument msg ->
      (* Parameterized construction rejected the arguments
         (Registry.make and friends). *)
      Printf.eprintf "%s\n%!" msg;
      usage_error
  | exception Failure msg ->
      Printf.eprintf "%s\n%!" msg;
      runtime_error
  | exception Sys_error msg ->
      Printf.eprintf "%s\n%!" msg;
      runtime_error
