(* Shared CLI plumbing for the gc* binaries: one exit-code contract,
   diagnostic-preserving trace loading, and validated argument converters.

   Exit codes:
     0  success
     1  runtime failure (unreadable/corrupt trace, I/O error, policy crash)
     2  usage error (unknown flag, unknown policy/kind/construction)
     3  model violation (the shadow audit caught an inconsistent policy)
   130  interrupted (SIGINT/SIGTERM; partial artifacts were written) *)

open Cmdliner

let ok = 0
let runtime_error = 1
let usage_error = 2
let model_violation = 3
let interrupted = Gc_exec.Supervisor.exit_interrupted

(* Post-parse failures that already know their exit code. *)
exception Fatal of int * string

let fail_runtime fmt =
  Printf.ksprintf (fun m -> raise (Fatal (runtime_error, m))) fmt

let fail_usage fmt =
  Printf.ksprintf (fun m -> raise (Fatal (usage_error, m))) fmt

let fail_model fmt =
  Printf.ksprintf (fun m -> raise (Fatal (model_violation, m))) fmt

(* ------------------------------------------------------------- trace I/O *)

let read_trace path =
  let result =
    if path = "-" then Gc_trace.Trace_io.of_channel_result stdin
    else Gc_trace.Trace_io.load_any_result path
  in
  match result with
  | Ok t -> t
  | Error e ->
      fail_runtime "%s: %s"
        (if path = "-" then "stdin" else path)
        (Gc_trace.Trace_io.string_of_error e)

let write_trace path t =
  if path = "-" then Gc_trace.Trace_io.to_channel stdout t
  else if Filename.check_suffix path ".gctb" then
    Gc_trace.Trace_io.save_binary path t
  else Gc_trace.Trace_io.save path t

(* ------------------------------------------------------------ converters *)

(* A registry policy spec, validated by base name at parse time so typos
   are usage errors listing the valid choices (parameter syntax after ':'
   is validated at construction time). *)
let policy_conv =
  let parse s =
    let base =
      match String.index_opt s ':' with
      | Some i -> String.sub s 0 i
      | None -> s
    in
    if base = "broken" || List.mem base Gc_cache.Registry.names then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown policy %S, expected one of: %s, broken" s
              (String.concat ", " Gc_cache.Registry.names)))
  in
  Arg.conv (parse, Format.pp_print_string)

(* An exact-choice string: cmdliner's enum reports bad values as usage
   errors listing every valid choice. *)
let choice_conv choices = Arg.enum (List.map (fun c -> (c, c)) choices)

let inject_conv =
  let parse s =
    match Gc_fault.Spec.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let pp fmt spec =
    Format.pp_print_string fmt (Gc_fault.Spec.spec_string spec)
  in
  Arg.conv (parse, pp)

(* ----------------------------------------------------- supervised sweeps *)

(* Flags shared by the checkpointed sweep commands (gcexp miss-curve,
   gcsim suite). *)

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Checkpoint completed sweep cells to $(docv) (JSONL, one \
           checksummed line per cell) so an interrupted run can be \
           continued with $(b,--resume).  Truncates any existing file.")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"JOURNAL"
        ~doc:
          "Resume from a checkpoint journal written by $(b,--journal): \
           cells already recorded are not re-simulated, new completions \
           are appended to the same journal.  The journal must come from \
           an identical invocation.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-cell wall-clock budget.  A cell past its deadline is \
           cancelled (a wedged one abandoned) and recorded as a \
           $(b,timeout) error slot; the rest of the sweep continues.")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ] ~docv:"N"
        ~doc:"Extra attempts for transiently failing cells (default 1).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Max cells simulated concurrently (default: cores - 1).")

(* [--journal] starts a fresh journal; [--resume] continues one.  Exactly
   one file can be in play. *)
let journal_mode ~journal ~resume =
  match (journal, resume) with
  | Some _, Some _ -> fail_usage "--journal and --resume are mutually exclusive"
  | None, Some path -> (Some path, true)
  | journal, None -> (journal, false)

let pool_config ?domains ?deadline ?retries () =
  let c = Gc_exec.Pool.default_config () in
  {
    c with
    Gc_exec.Pool.domains =
      (match domains with
      | Some d when d >= 1 -> d
      | Some d -> Printf.ksprintf invalid_arg "--domains must be >= 1, got %d" d
      | None -> c.Gc_exec.Pool.domains);
    deadline;
    retries = Option.value retries ~default:c.Gc_exec.Pool.retries;
  }

(* ------------------------------------------------------------ evaluation *)

(* Commands are int terms returning one of the codes above; everything the
   command lets escape is mapped onto the same contract here. *)
let eval cmd =
  match Cmd.eval' ~catch:false cmd with
  | code when code = Cmd.Exit.cli_error -> usage_error
  | code when code = Cmd.Exit.internal_error -> runtime_error
  | code -> code
  | exception Fatal (code, msg) ->
      Printf.eprintf "%s\n%!" msg;
      code
  | exception Gc_cache.Simulator.Model_violation msg ->
      Printf.eprintf "model violation: %s\n%!" msg;
      model_violation
  | exception Invalid_argument msg ->
      (* Parameterized construction rejected the arguments
         (Registry.make and friends). *)
      Printf.eprintf "%s\n%!" msg;
      usage_error
  | exception Failure msg ->
      Printf.eprintf "%s\n%!" msg;
      runtime_error
  | exception Sys_error msg ->
      Printf.eprintf "%s\n%!" msg;
      runtime_error
