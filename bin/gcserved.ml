(* gcserved: the supervised simulation service.

   Examples:
     gcserved serve --socket /tmp/gc.sock --workers 4 --deadline 30
     gcserved serve --socket /tmp/gc.sock --manifest shutdown.json
     gcserved supervise --socket /tmp/gc.sock -- --workers 4
     gcserved client --socket /tmp/gc.sock health
     gcserved client --socket /tmp/gc.sock sim --policy lru --k 1024 \
         --workload zipf --n 20000
     gcserved client --socket /tmp/gc.sock miss-curve --policy iblp \
         --ks 64,256,1024
     gcserved client --socket /tmp/gc.sock raw --json '{"op":"stats"}'

   Protocol, overload semantics, and drain behavior: doc/SERVING.md.
   Exit codes (see doc/ROBUSTNESS.md): serve exits 0 after a clean
   SIGTERM/SIGINT drain (a second signal hard-exits 130), 1 on runtime
   failure, 2 on usage errors.  client maps the reply's error kind onto
   the shared contract: 0 ok, 1 runtime-ish kinds (exception, timeout,
   overloaded, expired, draining, cancelled), 2 usage/protocol, 3
   model-violation.  Error replies also get a one-line stderr summary
   naming the kind as retryable or terminal, with the server's
   retry_after_ms hint when it sent one. *)

open Cmdliner
module Json = Gc_obs.Json

(* ---------------------------------------------------------------- serve *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to serve on (or connect to).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on (connect to) TCP $(docv).")

let tcp_host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "tcp-host" ] ~docv:"HOST" ~doc:"Host for $(b,--tcp).")

let listeners ~socket ~tcp ~tcp_host =
  let socket = if socket = None && tcp = None then Some "gcserved.sock" else socket in
  (socket, Option.map (fun p -> (tcp_host, p)) tcp)

let serve socket tcp tcp_host workers min_workers queue_depth deadline retries
    max_frame frame_timeout max_conns codel_target codel_interval
    retry_after_ms seed manifest trace name =
  let socket_path, tcp = listeners ~socket ~tcp ~tcp_host in
  let base = Gc_serve.Server.default_config in
  let config =
    {
      base with
      Gc_serve.Server.socket_path;
      tcp;
      queue_depth = Option.value queue_depth ~default:base.Gc_serve.Server.queue_depth;
      workers = Option.value workers ~default:base.Gc_serve.Server.workers;
      min_workers =
        Option.value min_workers ~default:base.Gc_serve.Server.min_workers;
      deadline = Option.value deadline ~default:base.Gc_serve.Server.deadline;
      retries = Option.value retries ~default:base.Gc_serve.Server.retries;
      max_frame = Option.value max_frame ~default:base.Gc_serve.Server.max_frame;
      frame_timeout =
        Option.value frame_timeout ~default:base.Gc_serve.Server.frame_timeout;
      max_connections =
        Option.value max_conns ~default:base.Gc_serve.Server.max_connections;
      codel_target =
        Option.value codel_target ~default:base.Gc_serve.Server.codel_target;
      codel_interval =
        Option.value codel_interval ~default:base.Gc_serve.Server.codel_interval;
      retry_after_ms =
        Option.value retry_after_ms ~default:base.Gc_serve.Server.retry_after_ms;
      seed = Option.value seed ~default:base.Gc_serve.Server.seed;
      trace;
      name;
    }
  in
  Printf.eprintf "gcserved: serving%s%s%s (workers %d, queue %d, deadline %gs)\n%!"
    (match name with
    | Some n -> Printf.sprintf " as %s" n
    | None -> "")
    (match socket_path with
    | Some p -> Printf.sprintf " on %s" p
    | None -> "")
    (match tcp with
    | Some (h, p) -> Printf.sprintf " and tcp %s:%d" h p
    | None -> "")
    config.Gc_serve.Server.workers config.Gc_serve.Server.queue_depth
    config.Gc_serve.Server.deadline;
  Gc_serve.Server.run ?manifest_path:manifest config;
  prerr_endline "gcserved: drained";
  Cli_common.ok

let serve_cmd =
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the simulation daemon until SIGTERM/SIGINT")
    Term.(
      const serve $ socket_arg $ tcp_arg $ tcp_host_arg
      $ Arg.(
          value
          & opt (some int) None
          & info [ "workers" ] ~docv:"N"
              ~doc:
                "Concurrent simulations (default: cores - 1); also the \
                 ceiling of the adaptive concurrency limit.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "min-workers" ] ~docv:"N"
              ~doc:
                "Floor of the adaptive (AIMD) concurrency limit \
                 (default 1).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "queue-depth" ] ~docv:"N"
              ~doc:
                "Admission-queue bound; beyond it requests are shed with \
                 an $(b,overloaded) reply (default 64).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "deadline" ] ~docv:"SECONDS"
              ~doc:"Per-request wall-clock budget (default 30).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "retries" ] ~docv:"N"
              ~doc:"Extra attempts for transiently failing requests (default 1).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-frame" ] ~docv:"BYTES"
              ~doc:"Frame payload cap (default 1MiB).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "frame-timeout" ] ~docv:"SECONDS"
              ~doc:
                "Whole-frame delivery budget; slower senders are cut off \
                 (default 10).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-conns" ] ~docv:"N"
              ~doc:"Concurrent connection cap (default 256).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "codel-target" ] ~docv:"SECONDS"
              ~doc:
                "Acceptable queue sojourn before CoDel-style shedding \
                 kicks in; 0 disables sojourn shedding and the \
                 LIFO-under-overload switch (default 0.1).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "codel-interval" ] ~docv:"SECONDS"
              ~doc:
                "How long sojourn must stay above the target before \
                 shedding starts; also the AIMD decrease cooldown \
                 (default 0.5).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "retry-after-ms" ] ~docv:"MS"
              ~doc:
                "Base backoff hint attached to overloaded/expired \
                 replies; the wire value is jittered in [base/2, \
                 3*base/2] (default 100).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "seed" ] ~docv:"N"
              ~doc:
                "Seed for the retry-after jitter stream — drills replay \
                 byte-identically under a fixed seed (default 0).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "manifest" ] ~docv:"FILE"
              ~doc:
                "Write a shutdown manifest (final metric registry: queue \
                 depth, shed count, latency histograms) to $(docv) after \
                 the drain.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "trace" ] ~docv:"FILE"
              ~doc:
                "Enable request-path span tracing (decode, queue-wait, \
                 execute, encode, reply) and write a Chrome trace-event \
                 JSON — loadable in Perfetto — to $(docv) after the \
                 drain.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "name" ] ~docv:"NAME"
              ~doc:
                "Replica identity within a fleet: echoed as a \
                 $(i,replica) field in health/stats replies and the \
                 shutdown manifest.  Set automatically by $(b,fleet)."))

(* ------------------------------------------------------------ supervise *)

(* The watchdog: spawn `gcserved serve` as a child and keep it up.  All
   the machinery lives in Gc_resil.Supervise; this command wires flags,
   signals (first SIGTERM/SIGINT forwards the drain, a second hard-exits
   130 via the shared Supervisor contract), and the exit code: 0 after a
   clean drain, 3 when the restart budget is spent (give-up). *)
let supervise socket tcp tcp_host server_exe child_args health_interval
    health_timeout startup_grace wedge_threshold restart_window max_restarts
    term_grace drain_grace seed =
  let socket_path, tcp = listeners ~socket ~tcp ~tcp_host in
  let health_addr =
    match (socket_path, tcp) with
    | Some p, _ -> Gc_serve.Client.Unix_path p
    | None, Some (h, p) -> Gc_serve.Client.Tcp (h, p)
    | None, None -> Gc_serve.Client.Unix_path "gcserved.sock"
  in
  let exe = Option.value server_exe ~default:Sys.executable_name in
  let argv =
    Array.of_list
      ([ exe; "serve" ]
      @ (match socket_path with Some p -> [ "--socket"; p ] | None -> [])
      @ (match tcp with
        | Some (h, p) -> [ "--tcp"; string_of_int p; "--tcp-host"; h ]
        | None -> [])
      @ child_args)
  in
  let base = Gc_resil.Supervise.default_config ~argv ~health_addr in
  let config =
    {
      base with
      Gc_resil.Supervise.socket_path;
      health_interval =
        Option.value health_interval
          ~default:base.Gc_resil.Supervise.health_interval;
      health_timeout =
        Option.value health_timeout
          ~default:base.Gc_resil.Supervise.health_timeout;
      startup_grace =
        Option.value startup_grace ~default:base.Gc_resil.Supervise.startup_grace;
      wedge_threshold =
        Option.value wedge_threshold
          ~default:base.Gc_resil.Supervise.wedge_threshold;
      restart_window =
        Option.value restart_window
          ~default:base.Gc_resil.Supervise.restart_window;
      max_restarts =
        Option.value max_restarts ~default:base.Gc_resil.Supervise.max_restarts;
      term_grace =
        Option.value term_grace ~default:base.Gc_resil.Supervise.term_grace;
      drain_grace =
        Option.value drain_grace ~default:base.Gc_resil.Supervise.drain_grace;
      seed = Option.value seed ~default:base.Gc_resil.Supervise.seed;
    }
  in
  Printf.eprintf "gcserved: supervising %s\n%!"
    (String.concat " " (Array.to_list argv));
  let outcome =
    Gc_exec.Supervisor.with_interrupt
      ~message:"gcserved: supervisor draining (signal again to hard-exit)"
      (fun token ->
        Gc_resil.Supervise.run
          ~on_event:(fun e ->
            Printf.eprintf "gcserved: supervisor: %s\n%!"
              (Gc_resil.Supervise.event_string e))
          ~stop:token config)
  in
  match outcome.Gc_resil.Supervise.result with
  | `Drained ->
      Printf.eprintf "gcserved: supervisor drained (%d restarts)\n%!"
        outcome.Gc_resil.Supervise.restarts;
      Cli_common.ok
  | `Gave_up ->
      Cli_common.fail_model
        "supervisor gave up: %d restarts inside the %gs window"
        outcome.Gc_resil.Supervise.restarts config.Gc_resil.Supervise.restart_window

let supervise_cmd =
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Run the serve daemon as a supervised child: restart it on crash \
          or wedge (health-probe liveness), with exponential backoff and a \
          restart budget.  Exit 0 after a signal-driven drain, 3 when the \
          budget is spent.  Arguments after $(b,--) are passed to the \
          child's $(b,serve) command.")
    Term.(
      const supervise $ socket_arg $ tcp_arg $ tcp_host_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "server" ] ~docv:"EXE"
              ~doc:
                "The gcserved executable to spawn (default: this binary).")
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"SERVE_ARG"
              ~doc:"Extra flags for the child's $(b,serve) command.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "health-interval" ] ~docv:"SECONDS"
              ~doc:"Seconds between health probes (default 0.25).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "health-timeout" ] ~docv:"SECONDS"
              ~doc:"Per-probe reply budget (default 2).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "startup-grace" ] ~docv:"SECONDS"
              ~doc:"Budget for the first healthy probe after a spawn (default 10).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "wedge-threshold" ] ~docv:"N"
              ~doc:
                "Consecutive failed probes that declare a live child \
                 wedged (default 8).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "restart-window" ] ~docv:"SECONDS"
              ~doc:"Sliding window for the restart budget (default 60).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-restarts" ] ~docv:"N"
              ~doc:
                "Restarts allowed per window before giving up with exit 3 \
                 (default 5).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "term-grace" ] ~docv:"SECONDS"
              ~doc:"SIGTERM-to-SIGKILL grace for a wedged child (default 5).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "drain-grace" ] ~docv:"SECONDS"
              ~doc:"How long a requested drain may take (default 30).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "seed" ] ~docv:"N"
              ~doc:"Backoff jitter seed (default 0)."))

(* ---------------------------------------------------------------- fleet *)

(* A replica set: N supervised serve children, one socket and one restart
   budget each (Gc_resil.Fleet).  One crash-looping replica spends its
   own budget and goes dark while the rest keep serving; only when every
   replica has given up does the fleet exit 3. *)
let fleet socket replicas server_exe child_args health_interval health_timeout
    startup_grace wedge_threshold restart_window max_restarts term_grace
    drain_grace seed manifest =
  if replicas < 1 then Cli_common.fail_usage "--replicas must be >= 1";
  let base_socket = Option.value socket ~default:"gcserved.sock" in
  let base_seed = Option.value seed ~default:0 in
  let exe = Option.value server_exe ~default:Sys.executable_name in
  let config i =
    let sock = Gc_resil.Fleet.replica_socket ~base:base_socket i in
    let name = Printf.sprintf "replica-%d" i in
    let argv =
      Array.of_list
        ([ exe; "serve"; "--socket"; sock; "--name"; name ] @ child_args)
    in
    let base =
      Gc_resil.Supervise.default_config ~argv
        ~health_addr:(Gc_serve.Client.Unix_path sock)
    in
    {
      base with
      Gc_resil.Supervise.socket_path = Some sock;
      health_interval =
        Option.value health_interval
          ~default:base.Gc_resil.Supervise.health_interval;
      health_timeout =
        Option.value health_timeout
          ~default:base.Gc_resil.Supervise.health_timeout;
      startup_grace =
        Option.value startup_grace ~default:base.Gc_resil.Supervise.startup_grace;
      wedge_threshold =
        Option.value wedge_threshold
          ~default:base.Gc_resil.Supervise.wedge_threshold;
      restart_window =
        Option.value restart_window
          ~default:base.Gc_resil.Supervise.restart_window;
      max_restarts =
        Option.value max_restarts ~default:base.Gc_resil.Supervise.max_restarts;
      term_grace =
        Option.value term_grace ~default:base.Gc_resil.Supervise.term_grace;
      drain_grace =
        Option.value drain_grace ~default:base.Gc_resil.Supervise.drain_grace;
      (* Distinct seeds: backoff jitter must never synchronize restarts
         across the set. *)
      seed = base_seed + i;
    }
  in
  let configs = Array.init replicas config in
  Printf.eprintf "gcserved: fleet of %d replicas on %s.0..%d\n%!" replicas
    base_socket (replicas - 1);
  let outcome =
    Gc_exec.Supervisor.with_interrupt
      ~message:"gcserved: fleet draining (signal again to hard-exit)"
      (fun token ->
        Gc_resil.Fleet.run
          ~on_event:(fun ~replica e ->
            Printf.eprintf "gcserved: fleet[%d]: %s\n%!" replica
              (Gc_resil.Supervise.event_string e))
          ~stop:token configs)
  in
  let replica_json i (o : Gc_resil.Supervise.outcome) =
    Json.Obj
      [
        ("replica", Json.Int i);
        ( "result",
          Json.String
            (match o.Gc_resil.Supervise.result with
            | `Drained -> "drained"
            | `Gave_up -> "gave-up") );
        ("restarts", Json.Int o.Gc_resil.Supervise.restarts);
      ]
  in
  (match manifest with
  | None -> ()
  | Some path ->
      let m =
        Gc_obs.Manifest.make ~tool:"gcserved" ~command:"fleet" ~seed:base_seed
          ~extra:
            [
              ( "status",
                Json.String
                  (match outcome.Gc_resil.Fleet.result with
                  | `Drained -> "drained"
                  | `All_gave_up -> "all-gave-up") );
              ( "replicas",
                Json.Array
                  (Array.to_list
                     (Array.mapi replica_json outcome.Gc_resil.Fleet.replicas))
              );
            ]
          []
      in
      Gc_obs.Export.write_json_atomic path (Gc_obs.Manifest.to_json m));
  match outcome.Gc_resil.Fleet.result with
  | `Drained ->
      Array.iteri
        (fun i (o : Gc_resil.Supervise.outcome) ->
          match o.Gc_resil.Supervise.result with
          | `Drained ->
              Printf.eprintf "gcserved: fleet[%d]: drained (%d restarts)\n%!" i
                o.Gc_resil.Supervise.restarts
          | `Gave_up ->
              Printf.eprintf
                "gcserved: fleet[%d]: gave up (%d restarts) — bulkheaded, \
                 rest of the fleet served on\n\
                 %!"
                i o.Gc_resil.Supervise.restarts)
        outcome.Gc_resil.Fleet.replicas;
      Cli_common.ok
  | `All_gave_up ->
      Cli_common.fail_model "fleet outage: all %d replicas spent their restart budgets"
        replicas

let fleet_cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run N independently supervised serve replicas, one Unix socket \
          each ($(b,BASE.0) .. $(b,BASE.N-1)) with per-replica restart \
          budgets: a crash-looping replica goes dark alone (bulkhead) \
          while the rest keep serving.  Exit 0 after a signal-driven \
          drain, 3 only when $(i,every) replica spent its budget.  \
          Arguments after $(b,--) are passed to each child's $(b,serve) \
          command.")
    Term.(
      const fleet $ socket_arg
      $ Arg.(
          value & opt int 3
          & info [ "replicas" ] ~docv:"N"
              ~doc:"Replica count (default 3).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "server" ] ~docv:"EXE"
              ~doc:
                "The gcserved executable to spawn (default: this binary).")
      $ Arg.(
          value & pos_all string []
          & info [] ~docv:"SERVE_ARG"
              ~doc:"Extra flags for each child's $(b,serve) command.")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "health-interval" ] ~docv:"SECONDS"
              ~doc:"Seconds between health probes (default 0.25).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "health-timeout" ] ~docv:"SECONDS"
              ~doc:"Per-probe reply budget (default 2).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "startup-grace" ] ~docv:"SECONDS"
              ~doc:"Budget for the first healthy probe after a spawn (default 10).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "wedge-threshold" ] ~docv:"N"
              ~doc:
                "Consecutive failed probes that declare a live child \
                 wedged (default 8).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "restart-window" ] ~docv:"SECONDS"
              ~doc:"Sliding window for each replica's restart budget (default 60).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-restarts" ] ~docv:"N"
              ~doc:"Restarts allowed per window, per replica (default 5).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "term-grace" ] ~docv:"SECONDS"
              ~doc:"SIGTERM-to-SIGKILL grace for a wedged child (default 5).")
      $ Arg.(
          value
          & opt (some float) None
          & info [ "drain-grace" ] ~docv:"SECONDS"
              ~doc:"How long a requested drain may take (default 30).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "seed" ] ~docv:"N"
              ~doc:
                "Base backoff jitter seed; replica $(i,i) uses seed + i \
                 (default 0).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "manifest" ] ~docv:"FILE"
              ~doc:
                "Write a fleet manifest (per-replica outcome and restart \
                 counts) to $(docv) after the drain."))

(* --------------------------------------------------------------- client *)

let addr ~socket ~tcp ~tcp_host =
  match (socket, tcp) with
  | Some _, Some _ ->
      Cli_common.fail_usage "--socket and --tcp are mutually exclusive"
  | None, Some port -> Gc_serve.Client.Tcp (tcp_host, port)
  | Some path, None -> Gc_serve.Client.Unix_path path
  | None, None -> Gc_serve.Client.Unix_path "gcserved.sock"

let ks_conv =
  let parse s =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
          match int_of_string_opt (String.trim x) with
          | Some k -> go (k :: acc) rest
          | None -> Error (`Msg (Printf.sprintf "bad capacity %S in %S" x s)))
    in
    match go [] (String.split_on_char ',' s) with
    | Ok [] -> Error (`Msg "empty capacity list")
    | r -> r
  in
  Arg.conv
    ( parse,
      fun fmt ks ->
        Format.pp_print_string fmt
          (String.concat "," (List.map string_of_int ks)) )

let exit_of_reply = function
  | Gc_serve.Protocol.Ok_result _ -> Cli_common.ok
  | Gc_serve.Protocol.Err (kind, _) ->
      if kind = "model-violation" then Cli_common.model_violation
      else if
        kind = Gc_serve.Protocol.kind_usage
        || kind = Gc_serve.Protocol.kind_protocol
      then Cli_common.usage_error
      else Cli_common.runtime_error

(* Kinds a caller can sensibly try again later (the reply may carry a
   retry_after_ms hint); every other kind is terminal for this request. *)
let retryable_kind kind =
  kind = Gc_serve.Protocol.kind_overloaded
  || kind = Gc_serve.Protocol.kind_expired
  || kind = Gc_serve.Protocol.kind_timeout

(* One stderr line classifying an error reply, so scripts that only read
   the exit code and humans who only read the last line both learn
   whether retrying is worthwhile — and how long to wait. *)
let describe_error_reply reply_json reply =
  match reply with
  | Gc_serve.Protocol.Ok_result _ -> ()
  | Gc_serve.Protocol.Err (kind, message) ->
      let hint =
        match Gc_serve.Protocol.retry_after_ms reply_json with
        | Some ms -> Printf.sprintf "; retry after ~%dms" ms
        | None -> ""
      in
      Printf.eprintf "gcserved: %s %s reply: %s%s\n%!"
        (if retryable_kind kind then "retryable" else "terminal")
        kind message hint

(* Render a stats reply's registry snapshot as Prometheus text
   exposition instead of echoing the framed JSON. *)
let print_prometheus reply_json =
  match Gc_serve.Protocol.reply_of_json reply_json with
  | Error msg -> Cli_common.fail_runtime "malformed reply: %s" msg
  | Ok (_id, (Gc_serve.Protocol.Err _ as reply)) ->
      Format.printf "%a@." Json.pp reply_json;
      exit_of_reply reply
  | Ok (_id, Gc_serve.Protocol.Ok_result result) -> (
      match Json.member "metrics" result with
      | None -> Cli_common.fail_runtime "stats reply has no \"metrics\" field"
      | Some metrics -> (
          match Gc_obs.Export.prometheus_of_json metrics with
          | Error msg ->
              Cli_common.fail_runtime "malformed metrics snapshot: %s" msg
          | Ok text ->
              print_string text;
              Cli_common.ok))

(* "host:PORT" (all-digit port) is TCP; anything else is a socket path. *)
let parse_endpoint s =
  match String.rindex_opt s ':' with
  | Some i
    when i > 0
         && i < String.length s - 1
         && String.for_all
              (fun c -> c >= '0' && c <= '9')
              (String.sub s (i + 1) (String.length s - i - 1)) ->
      Gc_serve.Client.Tcp
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
  | _ -> Gc_serve.Client.Unix_path s

let client socket tcp tcp_host op policy k seed workload n universe block_size
    check ks raw budget_ms timeout prom json_only attempts endpoints hedge_ms =
  if prom && op <> "stats" then
    Cli_common.fail_usage "--prom only applies to the stats op";
  if endpoints <> [] && (socket <> None || tcp <> None) then
    Cli_common.fail_usage "--endpoint and --socket/--tcp are mutually exclusive";
  if hedge_ms <> None && endpoints = [] then
    Cli_common.fail_usage "--hedge-ms needs --endpoint";
  let load =
    {
      Gc_serve.Protocol.workload;
      n = Option.value n ~default:20_000;
      universe = Option.value universe ~default:16_384;
      block_size = Option.value block_size ~default:16;
    }
  in
  let request =
    match op with
    | "health" -> Json.Obj [ ("op", Json.String "health") ]
    | "stats" -> Json.Obj [ ("op", Json.String "stats") ]
    | "sim" ->
        Gc_serve.Protocol.request_to_json
          {
            Gc_serve.Protocol.id = None;
            op = Gc_serve.Protocol.Sim
                { Gc_serve.Protocol.policy; k; seed; load; check };
            budget_ms;
          }
    | "miss-curve" ->
        Gc_serve.Protocol.request_to_json
          {
            Gc_serve.Protocol.id = None;
            op =
              Gc_serve.Protocol.Miss_curve
                {
                  Gc_serve.Protocol.curve_policy = policy;
                  ks;
                  curve_seed = seed;
                  curve_load = load;
                };
            budget_ms;
          }
    | "raw" -> (
        match raw with
        | None -> Cli_common.fail_usage "raw needs --json REQUEST"
        | Some s -> (
            match Json.parse s with
            | Ok j -> j
            | Error e ->
                Cli_common.fail_usage "--json: %s"
                  (Json.string_of_parse_error e)))
    | _ ->
        (assert false [@lint.allow "exit-contract"])
        (* the enum converter rejects anything else *)
  in
  if attempts < 1 then Cli_common.fail_usage "--attempts must be >= 1";
  let retry =
    { Gc_resil.Retry.default with Gc_resil.Retry.max_attempts = attempts }
  in
  (* The resilient client rides over a supervised restart mid-request:
     classified transport failures (refused/timeout/reset) and overloaded
     sheds retry with jittered backoff; protocol faults and draining
     replies fail fast.  With --endpoint the multi-endpoint mode adds
     rotation across the listed replicas, same-attempt failover, and
     (with --hedge-ms) hedged requests. *)
  let result =
    match endpoints with
    | [] ->
        let rc =
          Gc_resil.Resilient_client.create ~timeout ~retry
            (addr ~socket ~tcp ~tcp_host)
        in
        let r = Gc_resil.Resilient_client.request rc request in
        Gc_resil.Resilient_client.close rc;
        r
    | eps ->
        let module Multi = Gc_resil.Resilient_client.Multi in
        let hedge =
          Option.map
            (fun ms ->
              let d = Float.of_int ms /. 1000. in
              {
                Multi.default_hedge with
                Multi.min_delay = d;
                max_delay = d;
                initial_delay = d;
              })
            hedge_ms
        in
        let mc =
          Multi.create ~timeout ~retry ?hedge (List.map parse_endpoint eps)
        in
        let r = Multi.request mc request in
        Multi.close mc;
        r
  in
  match result with
  | Error (Gc_resil.Resilient_client.Rejected (kind, message)) ->
      (* The retry policy (or its budget) gave up on a refusal the server
         framed properly; classify it the same way a direct reply is. *)
      Cli_common.fail_runtime "%s %s reply: %s"
        (if retryable_kind kind then "retryable" else "terminal")
        kind message
  | Error failure ->
      Cli_common.fail_runtime "%s"
        (Gc_resil.Resilient_client.string_of_failure failure)
  | Ok reply_json when prom -> print_prometheus reply_json
  | Ok reply_json -> (
      if json_only then print_endline (Json.to_string reply_json)
      else Format.printf "%a@." Json.pp reply_json;
      match Gc_serve.Protocol.reply_of_json reply_json with
      | Ok (_id, reply) ->
          if not json_only then describe_error_reply reply_json reply;
          exit_of_reply reply
      | Error msg -> Cli_common.fail_runtime "malformed reply: %s" msg)

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running daemon and print the framed reply")
    Term.(
      const client $ socket_arg $ tcp_arg $ tcp_host_arg
      $ Arg.(
          value
          & pos 0
              (Cli_common.choice_conv
                 [ "health"; "stats"; "sim"; "miss-curve"; "raw" ])
              "health"
          & info [] ~docv:"OP"
              ~doc:"One of: health, stats, sim, miss-curve, raw.")
      $ Arg.(
          value
          & opt Cli_common.policy_conv "lru"
          & info [ "policy"; "p" ] ~docv:"NAME" ~doc:"Policy to simulate.")
      $ Arg.(value & opt int 1024 & info [ "k" ] ~doc:"Cache capacity.")
      $ Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
      $ Arg.(
          value
          & opt
              (Cli_common.choice_conv Gc_trace.Workload_suite.standard_names)
              "zipf"
          & info [ "workload" ] ~docv:"NAME" ~doc:"Synthetic workload.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "n" ] ~docv:"N" ~doc:"Trace length (default 20000).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "universe" ] ~docv:"N" ~doc:"Item universe (default 16384).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "block-size"; "B" ] ~docv:"N" ~doc:"Block size (default 16).")
      $ Arg.(
          value & flag
          & info [ "check" ] ~doc:"Run the shadow-model audit server-side.")
      $ Arg.(
          value
          & opt ks_conv [ 64; 256; 1024 ]
          & info [ "ks" ] ~docv:"K1,K2,..."
              ~doc:"Capacities for miss-curve.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "json" ] ~docv:"REQUEST"
              ~doc:"Raw JSON request body for the $(b,raw) op.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "budget-ms" ] ~docv:"MS"
              ~doc:
                "End-to-end budget propagated with sim/miss-curve \
                 requests; the server refuses (kind $(b,expired)) rather \
                 than execute a request whose budget lapsed in its \
                 queue.")
      $ Arg.(
          value
          & opt float 60.
          & info [ "timeout" ] ~docv:"SECONDS"
              ~doc:"Give up waiting for the reply after $(docv).")
      $ Arg.(
          value & flag
          & info [ "prom" ]
              ~doc:
                "Print the $(b,stats) reply's metric registry in \
                 Prometheus text exposition format instead of JSON.")
      $ Arg.(
          value & flag
          & info [ "json-only" ]
              ~doc:
                "Print the reply as a single JSON line on stdout and \
                 nothing else (no pretty-printing, no stderr \
                 classification) — for scripts; error replies still \
                 carry $(i,kind), $(i,message), and $(i,retry_after_ms) \
                 as fields.")
      $ Arg.(
          value
          & opt int 3
          & info [ "attempts" ] ~docv:"N"
              ~doc:
                "Total tries for retryable failures (refused, timeout, \
                 reset, overloaded) with jittered backoff; requests \
                 without an explicit $(i,id) are stamped with one so a \
                 retried reply can be matched by its id echo.  1 \
                 disables retry.")
      $ Arg.(
          value
          & opt_all string []
          & info [ "endpoint" ] ~docv:"ADDR"
              ~doc:
                "Replica endpoint: a socket path, or $(i,host:port) for \
                 TCP.  Repeatable; with several, requests rotate \
                 round-robin across healthy replicas and transport \
                 failures of idempotent requests fail over to the next \
                 one within the same attempt.  Mutually exclusive with \
                 $(b,--socket)/$(b,--tcp).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "hedge-ms" ] ~docv:"MS"
              ~doc:
                "With two or more $(b,--endpoint)s: fire a second \
                 attempt at another replica when the first has not \
                 answered within $(docv) milliseconds; first reply wins, \
                 the loser is cancelled."))

let () =
  let info =
    Cmd.info "gcserved" ~doc:"GC-caching simulation service"
      ~exits:
        [
          Cmd.Exit.info 0
            ~doc:
              "on success ($(b,serve): clean drain after SIGTERM/SIGINT; \
               $(b,client): an $(i,ok) reply).";
          Cmd.Exit.info 1
            ~doc:
              "on runtime failure (cannot bind or connect; error replies \
               of kind exception, timeout, overloaded, expired, \
               draining).";
          Cmd.Exit.info 2
            ~doc:"on usage errors (bad flags; usage/protocol error replies).";
          Cmd.Exit.info 3 ~doc:"on a model-violation reply.";
          Cmd.Exit.info 130
            ~doc:
              "when a second signal hard-exits a drain already in progress.";
        ]
  in
  exit
    (Cli_common.eval
       (Cmd.group info [ serve_cmd; supervise_cmd; fleet_cmd; client_cmd ]))
