(* gctrace: generate, inspect, validate, and convert GC-caching traces.

   Examples:
     gctrace gen --kind spatial-mix --n 100000 --universe 8192 \
       --block-size 16 --p 0.7 --seed 1 -o trace.gct
     gctrace stats trace.gct
     gctrace validate trace.gctb
     gctrace validate --lenient damaged.gct
     gctrace locality trace.gct --steps 12

   Exit codes: 0 ok, 1 runtime failure (including an invalid trace),
   2 usage error. *)

open Cmdliner

let read_trace = Cli_common.read_trace
let write_trace = Cli_common.write_trace

(* ------------------------------------------------------------------ gen *)

let gen kind n universe block_size alpha p stride seed out =
  let rng = Gc_trace.Rng.create seed in
  let open Gc_trace.Generators in
  let trace =
    match kind with
    | "sequential" -> sequential ~n ~universe ~block_size
    | "strided" -> strided ~n ~stride ~universe ~block_size
    | "uniform" -> uniform_random rng ~n ~universe ~block_size
    | "zipf" -> zipf_items rng ~n ~universe ~block_size ~alpha
    | "zipf-blocks" ->
        zipf_blocks rng ~n
          ~blocks:(max 1 (universe / block_size))
          ~block_size ~alpha ~within:`Sequential
    | "spatial-mix" -> spatial_mix rng ~n ~universe ~block_size ~p_spatial:p
    | "pointer-chase" -> pointer_chase rng ~n ~universe ~block_size
    | "power-law" ->
        Gc_locality.Synthesis.power_law rng ~n ~p:2.0
          ~rho:
            (Float.min (float_of_int block_size) (p *. float_of_int block_size))
          ~block_size
    | _ ->
        (assert false [@lint.allow "exit-contract"])
        (* the enum converter rejects anything else *)
  in
  write_trace out trace;
  if out <> "-" then
    Format.eprintf "wrote %a to %s@." Gc_trace.Trace.pp trace out;
  Cli_common.ok

let kinds =
  [
    "sequential";
    "strided";
    "uniform";
    "zipf";
    "zipf-blocks";
    "spatial-mix";
    "pointer-chase";
    "power-law";
  ]

let kind_arg =
  let doc = Printf.sprintf "Workload kind: %s." (String.concat ", " kinds) in
  Arg.(
    value
    & opt (Cli_common.choice_conv kinds) "uniform"
    & info [ "kind" ] ~docv:"KIND" ~doc)

let n_arg =
  Arg.(value & opt int 100_000 & info [ "n"; "length" ] ~doc:"Trace length.")

let universe_arg =
  Arg.(value & opt int 8192 & info [ "universe" ] ~doc:"Number of items.")

let block_size_arg =
  Arg.(value & opt int 16 & info [ "block-size"; "B" ] ~doc:"Items per block.")

let alpha_arg =
  Arg.(value & opt float 1.0 & info [ "alpha" ] ~doc:"Zipf exponent.")

let p_arg =
  Arg.(
    value & opt float 0.5
    & info [ "p" ] ~doc:"Spatial-mix probability / power-law rho fraction.")

let stride_arg = Arg.(value & opt int 17 & info [ "stride" ] ~doc:"Stride.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let out_arg =
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~doc:"Output path.")

let gen_cmd =
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic trace")
    Term.(
      const gen $ kind_arg $ n_arg $ universe_arg $ block_size_arg $ alpha_arg
      $ p_arg $ stride_arg $ seed_arg $ out_arg)

(* ---------------------------------------------------------------- stats *)

let stats path =
  let t = read_trace path in
  Format.printf "%a@." Gc_trace.Trace.pp t;
  Format.printf "spatial ratio (whole trace): %.3f@."
    (Gc_trace.Stats.spatial_ratio t);
  let h = Gc_trace.Stats.stack_distances t in
  Format.printf "cold misses: %d@." h.Gc_trace.Stats.cold;
  let sizes = [ 64; 256; 1024; 4096 ] in
  List.iter
    (fun k ->
      Format.printf "LRU misses at k=%-5d: %d@." k
        (Gc_trace.Stats.lru_misses_at h k))
    sizes;
  Format.printf "mean same-block run length: %.2f@."
    (Gc_trace.Stats.mean_block_run_length t);
  let hb = Gc_trace.Stats.block_stack_distances t in
  List.iter
    (fun kb ->
      Format.printf "Block-LRU misses at %d blocks: %d@." kb
        (Gc_trace.Stats.lru_misses_at hb kb))
    [ 16; 64; 256 ];
  Cli_common.ok

let path_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"TRACE" ~doc:"Trace file.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print trace statistics and Mattson miss curves")
    Term.(const stats $ path_arg)

(* ------------------------------------------------------------- validate *)

let validate lenient path =
  if lenient then begin
    if path = "-" then
      Cli_common.fail_usage "validate --lenient needs a file path, not stdin";
    match Gc_trace.Trace_io.load_lenient path with
    | Error e ->
        Printf.printf "%s: unrecoverable: %s\n" path
          (Gc_trace.Trace_io.string_of_error e);
        Cli_common.runtime_error
    | Ok r ->
        let t = r.Gc_trace.Trace_io.trace in
        Printf.printf "%s: recovered %d requests, dropped %d\n" path
          (Gc_trace.Trace.length t) r.Gc_trace.Trace_io.dropped;
        List.iter
          (fun e ->
            Printf.printf "  %s\n" (Gc_trace.Trace_io.string_of_error e))
          r.Gc_trace.Trace_io.diagnostics;
        if r.Gc_trace.Trace_io.dropped = 0
           && r.Gc_trace.Trace_io.diagnostics = []
        then Cli_common.ok
        else Cli_common.runtime_error
  end
  else
    let result =
      if path = "-" then Gc_trace.Trace_io.of_channel_result stdin
      else Gc_trace.Trace_io.load_any_result path
    in
    let display = if path = "-" then "stdin" else path in
    match result with
    | Ok t ->
        Printf.printf "%s: ok (%d requests, %d items, block size %d)\n" display
          (Gc_trace.Trace.length t)
          (Gc_trace.Trace.distinct_items t)
          (Gc_trace.Block_map.block_size t.Gc_trace.Trace.blocks);
        Cli_common.ok
    | Error e ->
        Printf.printf "%s: invalid: %s\n" display
          (Gc_trace.Trace_io.string_of_error e);
        Cli_common.runtime_error

let lenient_arg =
  Arg.(
    value & flag
    & info [ "lenient" ]
        ~doc:
          "Recovery mode: skip malformed records, report what was dropped.  \
           Exits 0 only if nothing was dropped.")

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Check a trace file (text or .gctb binary, including its checksum \
          footer); exits 0 iff the file is fully valid")
    Term.(const validate $ lenient_arg $ path_arg)

(* ------------------------------------------------------------- locality *)

let locality path steps =
  let t = read_trace path in
  let windows =
    List.filter
      (fun n -> n >= 4)
      (Gc_locality.Working_set.geometric_windows t ~steps)
  in
  Format.printf "%10s %10s %10s %8s@." "n" "f(n)" "g(n)" "f/g";
  let profile = Gc_locality.Working_set.profile t ~windows in
  List.iter
    (fun (n, f, g) ->
      Format.printf "%10d %10d %10d %8.2f@." n f g
        (float_of_int f /. float_of_int (max 1 g)))
    profile;
  (match
     Gc_locality.Concave_fit.fit_power
       (List.map (fun (n, f, _) -> (n, f)) profile)
   with
  | fit ->
      Format.printf "fit: f(n) ~ %.2f n^(1/%.2f) (rmse %.3f)@."
        fit.Gc_locality.Concave_fit.coeff fit.Gc_locality.Concave_fit.p
        fit.Gc_locality.Concave_fit.rmse
  | exception Invalid_argument _ -> ());
  Cli_common.ok

let steps_arg =
  Arg.(value & opt int 12 & info [ "steps" ] ~doc:"Window grid resolution.")

let locality_cmd =
  Cmd.v
    (Cmd.info "locality" ~doc:"Measure f(n)/g(n) locality profile")
    Term.(const locality $ path_arg $ steps_arg)

let () =
  let info = Cmd.info "gctrace" ~doc:"GC-caching trace toolkit" in
  exit
    (Cli_common.eval
       (Cmd.group info [ gen_cmd; stats_cmd; validate_cmd; locality_cmd ]))
