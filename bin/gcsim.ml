(* gcsim: run caching policies over a trace and report metrics.

   Examples:
     gcsim run --policy lru --policy iblp --k 1024 trace.gct
     gcsim run --all --k 1024 --offline trace.gct
     gcsim run --all --json out.json --events events.jsonl --histograms t.gct
     gcsim run --policy lru --inject phantom-hit@100 trace.gct
     gcsim suite --policy lru --policy broken:crash@50 --json out.json
     gcsim suite --journal suite.jsonl --deadline 30   (resumable sweep)
     gcsim suite --resume suite.jsonl
     gcsim attack --construction thm2 --policy lru --k 512 --h 64 -B 16

   Exit codes (see doc/ROBUSTNESS.md): 0 ok, 1 runtime failure, 2 usage
   error, 3 model violation, 130 interrupted. *)

open Cmdliner

(* ------------------------------------------------------------------ run *)

let is_violation = function
  | Error f -> f.Gc_cache.Obs_run.kind = "model-violation"
  | Ok _ -> false

let is_failure = function Error _ -> true | Ok _ -> false

let run policies all k seed offline no_check inject json events histograms path
    =
  let trace = Cli_common.read_trace path in
  let blocks = trace.Gc_trace.Trace.blocks in
  let names = if all then Gc_cache.Registry.names else policies in
  if names = [] then
    Cli_common.fail_usage "no policies selected (use --policy or --all)";
  let t0 = Unix.gettimeofday () in
  (* Streaming JSONL: incremental by nature, so unlike the manifest it
     cannot go through the atomic temp-file path — a crash can only tear
     the final line, which JSONL consumers skip. *)
  let events_oc =
    Option.map (open_out [@lint.allow "raw-artifact-write"]) events
  in
  Format.printf "%-14s %s@." "policy" "metrics";
  let outcomes =
    List.map
      (fun name ->
        let sink =
          Option.map
            (fun oc -> Gc_obs.Sink.jsonl ~labels:[ ("policy", name) ] oc)
            events_oc
        in
        (* Fresh injector per policy; its fired-probe feeds the drill
           report below. *)
        let fired = ref (fun () -> None) in
        let wrap =
          Option.map
            (fun spec p ->
              let p, f = Gc_fault.Injector.wrap spec ~blocks p in
              fired := f;
              p)
            inject
        in
        let outcome =
          Gc_cache.Obs_run.run_policy_result ~check:(not no_check) ~histograms
            ?sink ?wrap ~k ~seed name trace
        in
        (match outcome with
        | Ok r ->
            Format.printf "%-14s %s@." name
              (Gc_cache.Metrics.to_row r.Gc_cache.Obs_run.metrics)
        | Error f ->
            Format.printf "%-14s %s: %s@." name f.Gc_cache.Obs_run.kind
              f.Gc_cache.Obs_run.message);
        (match inject with
        | None -> ()
        | Some spec ->
            Format.printf "%-14s drill %s: %s@." "" (Gc_fault.Spec.spec_string spec)
              (match (!fired (), outcome) with
              | None, _ -> "never became eligible"
              | Some i, Error { Gc_cache.Obs_run.kind = "model-violation"; _ }
                ->
                  Printf.sprintf "fired at access %d, caught by the audit" i
              | Some i, Error _ -> Printf.sprintf "fired at access %d, run failed" i
              | Some i, Ok _ ->
                  Printf.sprintf "fired at access %d, NOT detected" i));
        outcome)
      names
  in
  Option.iter close_out events_oc;
  let results = List.filter_map Result.to_option outcomes in
  if offline then begin
    Format.printf "%-14s misses=%d@." "belady"
      (Gc_offline.Belady.cost ~k trace);
    let bsize = Gc_trace.Block_map.block_size blocks in
    if k >= bsize then
      Format.printf "%-14s misses=%d@." "block-belady"
        (Gc_offline.Block_belady.cost ~k trace);
    Format.printf "%-14s misses=%d@." "clairvoyant"
      (Gc_offline.Clairvoyant.cost ~k trace)
  end;
  (* Histograms on a terminal run, when they are not already going to a
     manifest. *)
  if histograms && json = None then
    List.iter
      (fun r ->
        match r.Gc_cache.Obs_run.registry with
        | Some reg ->
            Format.printf "@.-- %s --@.%a@." r.Gc_cache.Obs_run.policy
              Gc_obs.Registry.pp reg
        | None -> ())
      results;
  (match json with
  | None -> ()
  | Some out ->
      let manifest =
        Gc_cache.Obs_run.manifest_of_outcomes ~tool:"gcsim" ~command:"run"
          ~seed ~k
          ~trace:(Gc_cache.Obs_run.trace_info ~path trace)
          ~wall_time_s:(Unix.gettimeofday () -. t0)
          outcomes
      in
      Gc_obs.Export.write_json_atomic out (Gc_obs.Manifest.to_json manifest);
      Format.printf "@.manifest written to %s@." out);
  if List.exists is_violation outcomes then Cli_common.model_violation
  else if List.exists is_failure outcomes then Cli_common.runtime_error
  else Cli_common.ok

let policy_arg =
  Arg.(
    value
    & opt_all Cli_common.policy_conv []
    & info [ "policy"; "p" ] ~docv:"NAME"
        ~doc:"Policy to simulate (repeatable); see gc_cache registry.")

let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run every policy.")
let k_arg = Arg.(value & opt int 1024 & info [ "k" ] ~doc:"Cache capacity.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let offline_arg =
  Arg.(value & flag & info [ "offline" ] ~doc:"Also run offline baselines.")

let no_check_arg =
  Arg.(value & flag & info [ "no-check" ] ~doc:"Disable model checking.")

let inject_arg =
  Arg.(
    value
    & opt (some Cli_common.inject_conv) None
    & info [ "inject" ] ~docv:"SPEC"
        ~doc:
          "Fault drill: wrap each policy in a single-shot fault injector \
           (CLASS or CLASS@INDEX, e.g. $(b,phantom-hit@100)); the checked \
           simulator should flag it (exit 3).  Classes: phantom-hit, \
           phantom-miss, drop-requested, wrong-block-load, double-load, \
           reload-cached, spurious-evict, ghost-evict, hidden-evict, \
           over-occupancy.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write a machine-readable run manifest to $(docv).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:"Stream structured events to $(docv), one JSON object per line.")

let histograms_arg =
  Arg.(
    value & flag
    & info [ "histograms" ]
        ~doc:
          "Collect eviction-age / reuse-distance / load-width / occupancy \
           histograms (into the manifest with $(b,--json), else printed).")

let path_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"TRACE" ~doc:"Trace file.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate policies over a trace")
    Term.(
      const run $ policy_arg $ all_arg $ k_arg $ seed_arg $ offline_arg
      $ no_check_arg $ inject_arg $ json_arg $ events_arg $ histograms_arg
      $ path_arg)

(* ---------------------------------------------------------------- suite *)

let suite policies k seed block_size domains deadline retries journal resume
    json =
  let journal, resuming = Cli_common.journal_mode ~journal ~resume in
  let entries = Gc_trace.Workload_suite.standard ~seed ~block_size () in
  let policies = if policies = [] then Gc_cache.Registry.names else policies in
  let t0 = Unix.gettimeofday () in
  (* One supervised cell per (policy, workload); the cell's journal
     payload is its finished manifest slot, so a resumed run replays
     completed slots verbatim.  A policy that crashes (or violates the
     model) is captured by run_policy_result inside the cell — only
     runtime-level outcomes (timeout, retries exhausted) reach the
     pool's failure path. *)
  let cells =
    List.concat_map
      (fun pname ->
        List.map
          (fun e ->
            let tag = pname ^ "@" ^ e.Gc_trace.Workload_suite.name in
            ( tag,
              fun ~cancel:_ ->
                let outcome =
                  Gc_cache.Obs_run.run_policy_result ~check:false ~k ~seed
                    pname e.Gc_trace.Workload_suite.trace
                in
                Gc_obs.Manifest.run_to_json
                  (match outcome with
                  | Ok r ->
                      Gc_cache.Obs_run.manifest_run
                        { r with Gc_cache.Obs_run.policy = tag }
                  | Error f ->
                      Gc_cache.Obs_run.failed_run
                        { f with Gc_cache.Obs_run.policy = tag }) ))
          entries)
      policies
  in
  let to_error ~key ~kind ~message =
    Gc_obs.Manifest.run_to_json
      (Gc_cache.Obs_run.failed_run
         { Gc_cache.Obs_run.policy = key; kind; message })
  in
  let meta =
    Gc_obs.Json.Obj
      [
        ("tool", Gc_obs.Json.String "gcsim");
        ("command", Gc_obs.Json.String "suite");
        ("k", Gc_obs.Json.Int k);
        ("seed", Gc_obs.Json.Int seed);
        ("block_size", Gc_obs.Json.Int block_size);
        ( "policies",
          Gc_obs.Json.Array
            (List.map (fun p -> Gc_obs.Json.String p) policies) );
      ]
  in
  let results, stats =
    Gc_exec.Supervisor.with_interrupt (fun interrupt ->
        Gc_exec.Checkpoint.run
          ~config:(Cli_common.pool_config ?domains ?deadline ?retries ())
          ~interrupt ?journal ~resume:resuming ~meta ~to_error cells)
  in
  if stats.Gc_exec.Checkpoint.resumed > 0 then
    Printf.eprintf "gcsim: resumed %d of %d cells from %s\n%!"
      stats.Gc_exec.Checkpoint.resumed stats.Gc_exec.Checkpoint.total
      (Option.value journal ~default:"journal");
  let runs =
    List.map
      (fun (c : Gc_exec.Checkpoint.cell) ->
        match c.Gc_exec.Checkpoint.payload with
        | None -> None (* cancelled by the interrupt *)
        | Some payload -> (
            match Gc_obs.Manifest.run_of_json payload with
            | Ok run -> Some run
            | Error msg ->
                Cli_common.fail_runtime "cell %s: malformed payload: %s"
                  c.Gc_exec.Checkpoint.key msg))
      results
  in
  Format.printf "misses at k = %d (workload x policy)@.@." k;
  Format.printf "%-14s" "";
  List.iter
    (fun e -> Format.printf " %12s" e.Gc_trace.Workload_suite.name)
    entries;
  Format.printf "@.";
  let arr = Array.of_list runs in
  let per_policy = List.length entries in
  List.iteri
    (fun pi pname ->
      Format.printf "%-14s" pname;
      List.iteri
        (fun ei _ ->
          match arr.((pi * per_policy) + ei) with
          | None -> Format.printf " %12s" "-"
          | Some run -> (
              match run.Gc_obs.Manifest.error with
              | Some _ -> Format.printf " %12s" "error"
              | None -> (
                  match
                    List.assoc_opt "misses" run.Gc_obs.Manifest.metrics
                  with
                  | Some (Gc_obs.Json.Int n) -> Format.printf " %12d" n
                  | _ -> Format.printf " %12s" "?")))
        entries;
      Format.printf "@.")
    policies;
  let completed = List.filter_map Fun.id runs in
  (match json with
  | None -> ()
  | Some out ->
      let wall_time_s = Unix.gettimeofday () -. t0 in
      let manifest =
        if stats.Gc_exec.Checkpoint.interrupted then
          Gc_obs.Manifest.make ~tool:"gcsim" ~command:"suite" ~seed ~k
            ~wall_time_s
            ~extra:[ ("status", Gc_obs.Json.String "interrupted") ]
            completed
        else
          Gc_obs.Manifest.make ~tool:"gcsim" ~command:"suite" ~seed ~k
            ~wall_time_s completed
      in
      Gc_obs.Export.write_json_atomic out (Gc_obs.Manifest.to_json manifest);
      Format.printf "@.manifest written to %s@." out);
  if stats.Gc_exec.Checkpoint.interrupted then begin
    Printf.eprintf "gcsim: interrupted; %d of %d cells completed%s\n%!"
      (stats.Gc_exec.Checkpoint.total - stats.Gc_exec.Checkpoint.cancelled)
      stats.Gc_exec.Checkpoint.total
      (match journal with
      | Some j -> Printf.sprintf " (continue with --resume %s)" j
      | None -> "");
    Cli_common.interrupted
  end
  else if
    List.exists
      (function
        | Some { Gc_obs.Manifest.error = Some _; _ } -> true | _ -> false)
      runs
  then Cli_common.runtime_error
  else Cli_common.ok

let suite_cmd =
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Registry policies on the standard workload suite (a failing \
          policy is reported per-cell instead of killing the sweep)")
    Term.(
      const suite
      $ Arg.(
          value
          & opt_all Cli_common.policy_conv []
          & info [ "policy"; "p" ] ~docv:"NAME"
              ~doc:"Policy to include (repeatable; default: all).")
      $ Arg.(value & opt int 512 & info [ "k" ] ~doc:"Cache capacity.")
      $ Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Suite seed.")
      $ Arg.(value & opt int 16 & info [ "block-size"; "B" ] ~doc:"Block size.")
      $ Cli_common.domains_arg $ Cli_common.deadline_arg
      $ Cli_common.retries_arg $ Cli_common.journal_arg
      $ Cli_common.resume_arg
      $ Arg.(
          value
          & opt (some string) None
          & info [ "json" ] ~docv:"FILE"
              ~doc:
                "Write a run manifest (one slot per policy x workload, \
                 structured per-cell errors) to $(docv)."))

(* --------------------------------------------------------------- attack *)

let attack construction policy k h block_size cycles seed certify =
  let blocks = Gc_trace.Block_map.uniform ~block_size in
  let p = Gc_cache.Registry.make policy ~k ~blocks ~seed in
  let c =
    match construction with
    | "st" -> Gc_cache.Attack.sleator_tarjan p ~k ~h ~cycles
    | "thm2" -> Gc_cache.Attack.item_cache p ~k ~h ~block_size ~cycles
    | "thm3" -> Gc_cache.Attack.block_cache p ~k ~h ~block_size ~cycles
    | "thm4" -> Gc_cache.Attack.general_a p ~k ~h ~block_size ~cycles
    | _ ->
        (assert false [@lint.allow "exit-contract"])
        (* the enum converter rejects anything else *)
  in
  let open Gc_trace.Adversary in
  Format.printf "construction: %s vs %s (k=%d h=%d B=%d, %d cycles)@."
    construction policy k h block_size cycles;
  Format.printf "online misses:  %d@." c.online_misses;
  Format.printf "offline misses: %d (per the proof's schedule)@." c.opt_misses;
  Format.printf "measured ratio: %.3f@." (measured_ratio c);
  Format.printf "theorem bound:  %.3f@." c.bound;
  List.iter (fun (key, v) -> Format.printf "%s = %g@." key v) c.info;
  if certify then begin
    let cost = Gc_offline.Clairvoyant.cost ~k:h c.trace in
    let claimed = c.opt_misses + c.warmup_opt_misses in
    Format.printf
      "certification: clairvoyant(h) schedule costs %d vs %d claimed%s@." cost
      claimed
      (if cost <= claimed then " (certified)" else " (heuristic gap)")
  end;
  Cli_common.ok

let construction_arg =
  Arg.(
    value
    & opt (Cli_common.choice_conv [ "st"; "thm2"; "thm3"; "thm4" ]) "thm2"
    & info [ "construction"; "c" ] ~doc:"One of: st, thm2, thm3, thm4.")

let one_policy_arg =
  Arg.(
    value
    & opt Cli_common.policy_conv "lru"
    & info [ "policy"; "p" ] ~doc:"Target policy.")

let h_arg = Arg.(value & opt int 64 & info [ "h" ] ~doc:"Offline cache size.")

let block_size_arg =
  Arg.(value & opt int 16 & info [ "block-size"; "B" ] ~doc:"Items per block.")

let cycles_arg = Arg.(value & opt int 30 & info [ "cycles" ] ~doc:"Cycles.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Check the offline cost with a clairvoyant schedule.")

let attack_k_arg = Arg.(value & opt int 512 & info [ "k" ] ~doc:"Online size.")

let attack_cmd =
  Cmd.v
    (Cmd.info "attack" ~doc:"Run an adversarial lower-bound construction")
    Term.(
      const attack $ construction_arg $ one_policy_arg $ attack_k_arg $ h_arg
      $ block_size_arg $ cycles_arg $ seed_arg $ certify_arg)

let () =
  let info =
    Cmd.info "gcsim" ~doc:"GC-caching policy simulator"
      ~exits:
        [
          Cmd.Exit.info 0 ~doc:"on success.";
          Cmd.Exit.info 1 ~doc:"on runtime failure (bad trace, policy crash).";
          Cmd.Exit.info 2 ~doc:"on usage errors.";
          Cmd.Exit.info 3 ~doc:"on a model violation caught by the audit.";
          Cmd.Exit.info 130
            ~doc:
              "when interrupted (partial artifacts written; sweeps with a \
               journal can continue with $(b,--resume)).";
        ]
  in
  exit (Cli_common.eval (Cmd.group info [ run_cmd; suite_cmd; attack_cmd ]))
