(* gcanalyze: static must/may hit-miss analysis of access programs,
   cross-validated against the dynamic simulator.

   Examples:
     gcanalyze list
     gcanalyze run --program matmul-blocked --policy lru --ways 4
     gcanalyze run --program demo --grid --json -
     gcanalyze run trace.gct --policy plru --sets 2 --ways 2
     gcanalyze check
     gcanalyze check --unsound        # must exit 3: the harness catches it

   Exit codes: 0 ok, 1 runtime failure, 2 usage error, 3 when
   cross-validation finds a contradiction (a static always-* claim the
   simulator refutes — same category as a model violation). *)

open Cmdliner
module A = Gc_analysis

let policy_names = [ "lru"; "fifo"; "plru" ]

let resolve_program prog trace =
  match (prog, trace) with
  | Some name, None -> (
      match A.Catalog.find name with
      | Some p -> (name, p)
      | None ->
          Cli_common.fail_usage "unknown program %S, expected one of: %s" name
            (String.concat ", " (A.Catalog.names ())))
  | None, Some path ->
      let t = Cli_common.read_trace path in
      ( (if path = "-" then "stdin" else Filename.basename path),
        A.Reroll.of_trace t )
  | None, None ->
      Cli_common.fail_usage "one of --program NAME or a TRACE file is required"
  | Some _, Some _ ->
      Cli_common.fail_usage "--program and a TRACE file are mutually exclusive"

let emit_doc json runs =
  match json with
  | Some "-" -> Format.printf "%a@." Gc_obs.Json.pp (A.Report.doc_to_json runs)
  | Some path ->
      Gc_obs.Export.write_json_atomic path (A.Report.doc_to_json runs)
  | None ->
      List.iter (fun r -> Format.printf "%a@." A.Report.pp_run r) runs

(* ------------------------------------------------------------------ list *)

let list_programs () =
  List.iter
    (fun (name, p) ->
      Format.printf "%-16s %4d points  %6d accesses unrolled  %5.1fx rerolled@."
        name p.A.Program.points
        (A.Program.unrolled_length p)
        (A.Reroll.compression p))
    (A.Catalog.programs ());
  Cli_common.ok

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in analyzable programs")
    Term.(const list_programs $ const ())

(* ------------------------------------------------------------- arguments *)

let program_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "program" ] ~docv:"NAME"
        ~doc:"Analyze a built-in program (see $(b,gcanalyze list)).")

let trace_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"TRACE"
        ~doc:
          "Analyze a trace file instead: loops are re-rolled from exact \
           repeats, then the program is analyzed like a built-in one.")

let policy_arg =
  Arg.(
    value
    & opt (Cli_common.choice_conv policy_names) "lru"
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Replacement policy: $(b,lru), $(b,fifo) or $(b,plru).")

let sets_arg =
  Arg.(value & opt int 1 & info [ "sets" ] ~docv:"N" ~doc:"Cache sets.")

let ways_arg =
  Arg.(value & opt int 4 & info [ "ways" ] ~docv:"N" ~doc:"Ways per set.")

let engine_arg =
  Arg.(
    value
    & opt (Cli_common.choice_conv [ "exact"; "age"; "both" ]) "both"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "$(b,exact) (collecting semantics, any policy), $(b,age) \
           (must/may age bounds, LRU only), or $(b,both) (age added on \
           LRU configs).")

let grid_arg =
  Arg.(
    value
    & flag
    & info [ "grid" ]
        ~doc:
          "Ignore $(b,--policy)/$(b,--sets)/$(b,--ways)/$(b,--engine) and \
           run the full standard grid (every policy x geometry, both \
           engines where applicable) — the golden-fixture surface.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the report as JSON to $(docv) ($(b,-) for stdout).")

(* ------------------------------------------------------------------- run *)

let run_analysis prog trace policy sets ways engine grid json =
  let name, p = resolve_program prog trace in
  let runs =
    if grid then A.Engine.grid ~name p
    else
      let policy =
        match A.Cache_model.policy_of_name policy with
        | Some p -> p
        | None -> Cli_common.fail_usage "unknown policy %S" policy
      in
      let cfg = { A.Cache_model.policy; sets; ways } in
      let kinds =
        match engine with
        | "exact" -> [ A.Engine.Exact ]
        | "age" ->
            if policy <> A.Cache_model.Lru then
              Cli_common.fail_usage
                "--engine age models LRU only; use --engine exact for %s"
                (A.Cache_model.policy_name policy);
            [ A.Engine.Age ]
        | _ ->
            if policy = A.Cache_model.Lru then
              [ A.Engine.Exact; A.Engine.Age ]
            else [ A.Engine.Exact ]
      in
      List.map (fun k -> A.Engine.run k cfg ~name p) kinds
  in
  emit_doc json runs;
  Cli_common.ok

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Classify every program point of one program")
    Term.(
      const run_analysis $ program_arg $ trace_arg $ policy_arg $ sets_arg
      $ ways_arg $ engine_arg $ grid_arg $ json_arg)

(* ----------------------------------------------------------------- check *)

let programs_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "program" ] ~docv:"NAME"
        ~doc:"Restrict the audit to $(docv) (repeatable; default: all).")

let unsound_arg =
  Arg.(
    value
    & flag
    & info [ "unsound" ]
        ~doc:
          "Swap the age engine for a deliberately broken must-domain \
           (fault injection): the audit is then expected to find \
           contradictions and exit 3.")

let max_paths_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-paths" ] ~docv:"N"
        ~doc:"Cap on enumerated branch resolutions per program.")

let check progs unsound max_paths json =
  let programs =
    match progs with
    | [] -> A.Catalog.programs ()
    | names ->
        List.map
          (fun n ->
            match A.Catalog.find n with
            | Some p -> (n, p)
            | None ->
                Cli_common.fail_usage "unknown program %S, expected one of: %s"
                  n
                  (String.concat ", " (A.Catalog.names ())))
          names
  in
  let summary =
    A.Crosscheck.check ~unsound ?max_paths programs A.Engine.standard_configs
  in
  (match json with
  | Some "-" ->
      Format.printf "%a@." Gc_obs.Json.pp (A.Crosscheck.summary_to_json summary)
  | Some path ->
      Gc_obs.Export.write_json_atomic path
        (A.Crosscheck.summary_to_json summary);
      Format.printf "%a@." A.Crosscheck.pp_summary summary
  | None -> Format.printf "%a@." A.Crosscheck.pp_summary summary);
  if summary.A.Crosscheck.contradictions = [] then Cli_common.ok
  else Cli_common.model_violation

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Cross-validate every static always-* verdict against the \
          simulator")
    Term.(const check $ programs_arg $ unsound_arg $ max_paths_arg $ json_arg)

(* ------------------------------------------------------------------ main *)

let () =
  let info =
    Cmd.info "gcanalyze"
      ~doc:"Static must/may hit-miss analysis for GC-caching programs"
      ~exits:
        [
          Cmd.Exit.info 0 ~doc:"on success.";
          Cmd.Exit.info 1 ~doc:"on runtime failure (bad trace, state blowup).";
          Cmd.Exit.info 2 ~doc:"on usage errors.";
          Cmd.Exit.info 3
            ~doc:
              "when cross-validation finds a contradiction between a \
               static verdict and the simulator.";
        ]
  in
  exit (Cli_common.eval (Cmd.group info [ list_cmd; run_cmd; check_cmd ]))
