(* gcbounds: evaluate the paper's bound formulas and print table/figure
   series as TSV (pipe into a plotter of your choice).

   Examples:
     gcbounds table1 --h 10000 -B 64
     gcbounds figure3 --k 1280000 -B 64 --steps 60
     gcbounds figure6 --k 1280000 -B 64 --h0 10000
     gcbounds table2 --p 2 --size 100000 -B 64
     gcbounds point --k 1280000 --h 10000 -B 64

   Exit codes: 0 ok, 1 runtime failure, 2 usage error. *)

open Cmdliner

let k_arg =
  Arg.(value & opt float 1_280_000. & info [ "k" ] ~doc:"Online cache size.")

let h_arg =
  Arg.(value & opt float 10_000. & info [ "h" ] ~doc:"Offline cache size.")

let b_arg =
  Arg.(value & opt float 64. & info [ "block-size"; "B" ] ~doc:"Block size.")

let steps_arg =
  Arg.(value & opt int 48 & info [ "steps" ] ~doc:"Points per series.")

(* --------------------------------------------------------------- table 1 *)

let table1 h block_size =
  Format.printf
    "Table 1: salient bounds (h = %g, B = %g); 'paper' is the asymptotic \
     entry, 'exact' our numeric solution@.@."
    h block_size;
  let families =
    [ (Gc_bounds.Table1.St, "Sleator-Tarjan");
      (Gc_bounds.Table1.Gc_lower, "GC lower bound");
      (Gc_bounds.Table1.Gc_upper, "GC upper bound (IBLP)") ]
  in
  List.iter
    (fun row ->
      Format.printf "%s@." row.Gc_bounds.Table1.setting;
      List.iter
        (fun (family, name) ->
          let p = row.Gc_bounds.Table1.point family in
          Format.printf "  %-22s paper: %-34s exact: k = %.3f h -> %.3fx@."
            name
            (row.Gc_bounds.Table1.paper_form family)
            p.Gc_bounds.Table1.augmentation p.Gc_bounds.Table1.ratio)
        families)
    (Gc_bounds.Table1.rows ~h ~block_size);
  Cli_common.ok

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Table 1")
    Term.(const table1 $ h_arg $ b_arg)

(* --------------------------------------------------------------- table 2 *)

let table2 p size block_size =
  Format.printf
    "Table 2: fault-rate bounds at i = b = h = %g, B = %g, f(n) = n^(1/%g)@.@."
    size block_size p;
  Format.printf "%-22s %-14s %-14s %-14s@." "g(n)" "lower bound"
    "item layer UB" "block layer UB";
  List.iter
    (fun r ->
      Format.printf "%-22s %-14s %-14s %-14s@." r.Gc_bounds.Table2.g_desc
        r.Gc_bounds.Table2.lower_asym r.Gc_bounds.Table2.item_asym
        r.Gc_bounds.Table2.block_asym;
      Format.printf "%-22s %-14.3e %-14.3e %-14.3e@." "" r.Gc_bounds.Table2.lower
        r.Gc_bounds.Table2.item_ub r.Gc_bounds.Table2.block_ub)
    (Gc_bounds.Table2.rows ~p ~block_size ~size);
  Cli_common.ok

let p_arg = Arg.(value & opt float 2. & info [ "p" ] ~doc:"Locality exponent.")

let size_arg =
  Arg.(value & opt float 100_000. & info [ "size" ] ~doc:"Layer size i = b.")

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table 2")
    Term.(const table2 $ p_arg $ size_arg $ b_arg)

(* -------------------------------------------------------------- figure 3 *)

let figure3 k block_size steps =
  Format.printf "# Figure 3: k = %g, B = %g@." k block_size;
  Format.printf "h\tsleator_tarjan\tgc_lower\tiblp_upper\titem_cache\tblock_cache@.";
  let hs = Gc_bounds.Figures.default_hs ~k ~steps in
  List.iter
    (fun (pt : Gc_bounds.Figures.figure3_point) ->
      Format.printf "%.0f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f@."
        pt.Gc_bounds.Figures.h pt.Gc_bounds.Figures.sleator_tarjan
        pt.Gc_bounds.Figures.gc_lower pt.Gc_bounds.Figures.iblp_upper
        pt.Gc_bounds.Figures.item_cache_lower
        pt.Gc_bounds.Figures.block_cache_lower)
    (Gc_bounds.Figures.figure3 ~k ~block_size ~hs);
  Cli_common.ok

let figure3_cmd =
  Cmd.v
    (Cmd.info "figure3" ~doc:"Reproduce Figure 3 as TSV")
    Term.(const figure3 $ k_arg $ b_arg $ steps_arg)

(* -------------------------------------------------------------- figure 6 *)

let figure6 k block_size h0 steps =
  let i0 = Gc_bounds.Partitioning.optimal_i ~k ~h:h0 ~block_size in
  Format.printf "# Figure 6: k = %g, B = %g; fixed split optimized for h0 = %g (i = %.0f)@."
    k block_size h0 i0;
  Format.printf "h\toptimal_split\tfixed_split@.";
  let hs = Gc_bounds.Figures.default_hs ~k ~steps in
  List.iter
    (fun (pt : Gc_bounds.Figures.figure6_point) ->
      let fixed =
        match pt.Gc_bounds.Figures.fixed_splits with
        | (_, v) :: _ -> v
        | [] -> Float.nan
      in
      Format.printf "%.0f\t%.4f\t%.4f@." pt.Gc_bounds.Figures.h
        pt.Gc_bounds.Figures.optimal_split fixed)
    (Gc_bounds.Figures.figure6 ~k ~block_size ~fixed_is:[ i0 ] ~hs);
  Cli_common.ok

let h0_arg =
  Arg.(value & opt float 10_000. & info [ "h0" ] ~doc:"Design point for the fixed split.")

let figure6_cmd =
  Cmd.v
    (Cmd.info "figure6" ~doc:"Reproduce Figure 6 as TSV")
    Term.(const figure6 $ k_arg $ b_arg $ h0_arg $ steps_arg)

(* ----------------------------------------------------------------- point *)

let point k h block_size =
  let open Gc_bounds in
  Format.printf "k = %g, h = %g, B = %g@." k h block_size;
  Format.printf "sleator-tarjan lower: %.4f@."
    (Sleator_tarjan.competitive_ratio ~k ~h);
  Format.printf "thm2 item-cache lower: %.4f@."
    (Lower_bounds.item_cache ~k ~h ~block_size);
  Format.printf "thm3 block-cache lower: %.4f@."
    (Lower_bounds.block_cache ~k ~h ~block_size);
  Format.printf "thm4 general lower (a = %.0f): %.4f@."
    (Lower_bounds.best_a ~k ~h ~block_size)
    (Lower_bounds.best ~k ~h ~block_size);
  let i = Partitioning.optimal_i ~k ~h ~block_size in
  Format.printf "IBLP optimal split: i = %.1f, b = %.1f@." i (k -. i);
  Format.printf "thm7 IBLP upper: %.4f@."
    (Partitioning.optimal_ratio ~k ~h ~block_size);
  Cli_common.ok

let point_cmd =
  Cmd.v
    (Cmd.info "point" ~doc:"Evaluate all bounds at one (k, h, B)")
    Term.(const point $ k_arg $ h_arg $ b_arg)

let () =
  let info = Cmd.info "gcbounds" ~doc:"GC-caching bound calculator" in
  exit
    (Cli_common.eval
       (Cmd.group info [ table1_cmd; table2_cmd; figure3_cmd; figure6_cmd; point_cmd ]))
