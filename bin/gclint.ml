(* gclint: the project-convention static-analysis pass.

   Exit codes follow the shared contract with gclint's reading:
     0  clean (no findings)
     1  findings reported
     2  usage error (unknown flag, unknown rule id, bad config)
     3  internal error (the lint engine itself failed)

   `check` lints the tree (or explicit root-relative paths), `rules`
   lists the catalog, `explain <id>` prints one rule's full story. *)

open Cmdliner
module Config = Gc_lint.Config
module Engine = Gc_lint.Engine
module Finding = Gc_lint.Finding
module Rules = Gc_lint.Rules
module Json = Gc_obs.Json

let internal_error = 3

(* Engine failures are bugs in gclint, not in the linted tree: report and
   exit 3 so CI can tell "findings" from "the linter broke". *)
let guard f =
  try f () with
  | Cli_common.Fatal _ as e -> raise e
  | exn ->
      Printf.eprintf "gclint: internal error: %s\n%!" (Printexc.to_string exn);
      internal_error

let load_config ~root ~config_path =
  let load path =
    match Config.load ~known_rules:Rules.ids path with
    | Ok c -> c
    | Error msg -> Cli_common.fail_usage "%s" msg
  in
  match config_path with
  | Some path -> load path
  | None ->
      let path = Filename.concat root "lint.toml" in
      if Sys.file_exists path then load path else Config.empty

(* ----------------------------------------------------------------- check *)

let findings_json findings =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("count", Json.Int (List.length findings));
      ("findings", Json.Array (List.map Finding.to_json findings));
    ]

let check root config_path json paths =
  guard (fun () ->
      (* An absent root would "discover" zero files and report the tree
         clean — make the typo loud instead. *)
      if not (Sys.file_exists root && Sys.is_directory root) then
        Cli_common.fail_usage "no such directory: %s" root;
      let config = load_config ~root ~config_path in
      List.iter
        (fun p ->
          if not (Sys.file_exists (Filename.concat root p)) then
            Cli_common.fail_usage "no such file under %s: %s" root p)
        paths;
      let findings = Engine.check_tree ~config ~root paths in
      if json then print_endline (Json.to_string (findings_json findings))
      else List.iter (fun f -> print_endline (Finding.to_string f)) findings;
      match findings with
      | [] -> Cli_common.ok
      | fs ->
          let errors, warns =
            List.partition (fun f -> f.Finding.severity = Finding.Error) fs
          in
          Printf.eprintf "gclint: %d findings (%d errors, %d warnings)\n%!"
            (List.length fs) (List.length errors) (List.length warns);
          Cli_common.runtime_error)

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root: files are discovered under $(docv)/lib, bin, \
           bench, and test, and explicit paths are resolved against it.")

let config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Lint configuration (default: $(b,lint.toml) under $(b,--root) \
           when present).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

let paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Root-relative files to lint instead of discovering the tree \
           (excluded paths are linted when named explicitly).")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Lint the tree against the project conventions (exit 0 clean, 1 \
          findings).")
    Term.(const check $ root_arg $ config_arg $ json_arg $ paths_arg)

(* ----------------------------------------------------------------- rules *)

let rules json =
  guard (fun () ->
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("version", Json.Int 1);
                  ("rules", Json.Array (List.map Rules.to_json Rules.all));
                ]))
      else
        List.iter
          (fun (r : Rules.t) ->
            Printf.printf "%-24s %-5s %s\n" r.Rules.id
              (Finding.severity_to_string r.Rules.severity)
              r.Rules.synopsis)
          Rules.all;
      Cli_common.ok)

let rules_cmd =
  Cmd.v
    (Cmd.info "rules" ~doc:"List every rule: id, severity, synopsis.")
    Term.(const rules $ json_arg)

(* --------------------------------------------------------------- explain *)

let explain id =
  guard (fun () ->
      match Rules.find id with
      | None ->
          Cli_common.fail_usage "unknown rule %S, expected one of: %s" id
            (String.concat ", " Rules.ids)
      | Some r ->
          Printf.printf "%s (%s, %s)\n\n%s\n\nExample violation:\n\n  %s\n\n\
                         Fix: %s\n\n\
                         Suppress one site with a justification comment:\n\n  \
                         (expr [@lint.allow %S])\n\n\
                         or a whole file with [@@@lint.allow %S], or per-path \
                         in lint.toml.\n"
            r.Rules.id
            (Finding.severity_to_string r.Rules.severity)
            r.Rules.scope_doc r.Rules.rationale r.Rules.example r.Rules.fix id
            id;
          Cli_common.ok)

let id_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"RULE" ~doc:"Rule id, as listed by $(b,gclint rules).")

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Print one rule's rationale, example, fix, and suppression syntax.")
    Term.(const explain $ id_arg)

(* ------------------------------------------------------------------ main *)

let info =
  Cmd.info "gclint" ~version:"%%VERSION%%"
    ~doc:"Project-convention static analysis for the gc_caching tree"

let () = exit (Cli_common.eval (Cmd.group info [ check_cmd; rules_cmd; explain_cmd ]))
