(* gcexp: parameter-sweep experiment runner, CSV to stdout.

   Examples:
     gcexp miss-curve --policy lru --policy iblp --k-min 64 --k-max 4096 t.gct
     gcexp miss-curve --journal sweep.jsonl --deadline 30 big.gct
     gcexp miss-curve --resume sweep.jsonl big.gct
     gcexp split-sweep -k 1024 t.gct
     gcexp h-sweep --policy lru -k 512 -B 16 --construction thm2

   miss-curve runs on the supervised Gc_exec runtime: cells execute
   concurrently with optional per-cell deadlines, transient failures
   retry, SIGINT drains in-flight cells and exits 130 after writing
   partial artifacts, and a --journal checkpoint makes the sweep
   resumable with zero re-simulation of completed cells.

   Exit codes: 0 ok, 1 runtime failure (including any failed sweep cell),
   2 usage error, 130 interrupted. *)

open Cmdliner

let read_trace = Cli_common.read_trace

let path_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"TRACE" ~doc:"Trace file.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

(* ------------------------------------------------------------ miss-curve *)

let geometric_grid lo hi steps =
  List.init (steps + 1) (fun idx ->
      let f = float_of_int idx /. float_of_int steps in
      int_of_float
        (Float.round
           (float_of_int lo *. Float.pow (float_of_int hi /. float_of_int lo) f)))
  |> List.sort_uniq compare

(* A sweep cell's identity within the checkpoint journal and progress
   reporting: which policy at which cache size. *)
type cell_desc = { cell_policy : string; cell_k : int }

let row_json name k (m : Gc_cache.Metrics.t) =
  Gc_obs.Json.Obj
    [
      ("policy", Gc_obs.Json.String name);
      ("k", Gc_obs.Json.Int k);
      ("misses", Gc_obs.Json.Int m.Gc_cache.Metrics.misses);
      ("hit_rate", Gc_obs.Json.Float (Gc_cache.Metrics.hit_rate m));
      ("spatial_hits", Gc_obs.Json.Int m.Gc_cache.Metrics.spatial_hits);
      ("temporal_hits", Gc_obs.Json.Int m.Gc_cache.Metrics.temporal_hits);
    ]

let offline_row name k misses =
  Gc_obs.Json.Obj
    [
      ("policy", Gc_obs.Json.String name);
      ("k", Gc_obs.Json.Int k);
      ("misses", Gc_obs.Json.Int misses);
    ]

let field payload name =
  match payload with
  | Gc_obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

(* One CSV line (or, for a failed cell, one stderr diagnostic) from a
   journal-shaped row payload; counting failures for the exit code. *)
let emit_row desc payload failures =
  match field payload "error" with
  | Some (Gc_obs.Json.String msg) ->
      incr failures;
      Printf.eprintf "gcexp: %s at k=%d failed: %s\n%!" desc.cell_policy
        desc.cell_k msg
  | _ -> (
      let int_field name =
        match field payload name with
        | Some (Gc_obs.Json.Int n) -> n
        | _ -> 0
      in
      let misses = int_field "misses" in
      match field payload "hit_rate" with
      | Some (Gc_obs.Json.Float hr) ->
          Printf.printf "%s,%d,%d,%.6f,%d,%d\n" desc.cell_policy desc.cell_k
            misses hr
            (int_field "spatial_hits")
            (int_field "temporal_hits")
      | _ ->
          Printf.printf "%s,%d,%d,,,\n" desc.cell_policy desc.cell_k misses)

let miss_curve policies k_min k_max steps offline seed domains deadline retries
    journal resume json path =
  let journal, resuming = Cli_common.journal_mode ~journal ~resume in
  let trace = read_trace path in
  let blocks = trace.Gc_trace.Trace.blocks in
  let policies =
    if policies = [] then [ "lru"; "block-lru"; "iblp" ] else policies
  in
  let t0 = Unix.gettimeofday () in
  let grid = geometric_grid k_min k_max steps in
  (* Bad construction parameters are a usage problem for the whole
     invocation, not a per-cell runtime failure — reject them before any
     cell runs or the journal is touched. *)
  List.iter
    (fun k ->
      List.iter
        (fun name ->
          match Gc_cache.Registry.make name ~k ~blocks ~seed with
          | _ -> ()
          | exception Invalid_argument msg -> Cli_common.fail_usage "%s" msg)
        policies)
    grid;
  let progress _ = Gc_exec.Cancel.poll () in
  let descs, cells =
    List.split
      (List.concat_map
         (fun k ->
           List.map
             (fun name ->
               ( { cell_policy = name; cell_k = k },
                 ( Printf.sprintf "%s@k=%d" name k,
                   fun ~cancel:_ ->
                     let p = Gc_cache.Registry.make name ~k ~blocks ~seed in
                     row_json name k
                       (Gc_cache.Simulator.run ~check:false ~progress p trace)
                 ) ))
             policies
           @
           if offline then
             [
               ( { cell_policy = "belady"; cell_k = k },
                 ( Printf.sprintf "belady@k=%d" k,
                   fun ~cancel:_ ->
                     offline_row "belady" k (Gc_offline.Belady.cost ~k trace) )
               );
               ( { cell_policy = "clairvoyant"; cell_k = k },
                 ( Printf.sprintf "clairvoyant@k=%d" k,
                   fun ~cancel:_ ->
                     offline_row "clairvoyant" k
                       (Gc_offline.Clairvoyant.cost ~k trace) ) );
             ]
           else [])
         grid)
  in
  let by_key = Hashtbl.create 64 in
  List.iter2 (fun d (key, _) -> Hashtbl.replace by_key key d) descs cells;
  (* A failed / timed-out cell keeps its slot as a structured error row;
     the rest of the grid still runs (and the error is journaled, so a
     resume does not pointlessly retry a deterministic crash). *)
  let to_error ~key ~kind ~message =
    let d = Hashtbl.find by_key key in
    Gc_obs.Json.Obj
      [
        ("policy", Gc_obs.Json.String d.cell_policy);
        ("k", Gc_obs.Json.Int d.cell_k);
        ("error", Gc_obs.Json.String message);
        ("error_kind", Gc_obs.Json.String kind);
      ]
  in
  (* The journal header pins everything that determines the grid, so a
     journal cannot silently resume a different invocation. *)
  let meta =
    Gc_obs.Json.Obj
      [
        ("tool", Gc_obs.Json.String "gcexp");
        ("command", Gc_obs.Json.String "miss-curve");
        ("seed", Gc_obs.Json.Int seed);
        ("k_min", Gc_obs.Json.Int k_min);
        ("k_max", Gc_obs.Json.Int k_max);
        ("steps", Gc_obs.Json.Int steps);
        ("offline", Gc_obs.Json.Bool offline);
        ( "policies",
          Gc_obs.Json.Array
            (List.map (fun p -> Gc_obs.Json.String p) policies) );
        ("trace_digest", Gc_obs.Json.String (Gc_trace.Trace.digest trace));
      ]
  in
  let results, stats =
    Gc_exec.Supervisor.with_interrupt (fun interrupt ->
        Gc_exec.Checkpoint.run
          ~config:(Cli_common.pool_config ?domains ?deadline ?retries ())
          ~interrupt ?journal ~resume:resuming ~meta ~to_error cells)
  in
  if stats.Gc_exec.Checkpoint.resumed > 0 then
    Printf.eprintf "gcexp: resumed %d of %d cells from %s\n%!"
      stats.Gc_exec.Checkpoint.resumed stats.Gc_exec.Checkpoint.total
      (Option.value journal ~default:"journal");
  print_endline "policy,k,misses,hit_rate,spatial_hits,temporal_hits";
  let failures = ref 0 in
  List.iter2
    (fun desc (c : Gc_exec.Checkpoint.cell) ->
      match c.Gc_exec.Checkpoint.payload with
      | None -> () (* cancelled by the interrupt; re-run on resume *)
      | Some payload -> emit_row desc payload failures)
    descs results;
  let rows =
    List.filter_map (fun c -> c.Gc_exec.Checkpoint.payload) results
  in
  (match json with
  | None -> ()
  | Some out ->
      let extra =
        ("sweep", Gc_obs.Json.Array rows)
        ::
        (if stats.Gc_exec.Checkpoint.interrupted then
           [ ("status", Gc_obs.Json.String "interrupted") ]
         else [])
      in
      let manifest =
        Gc_cache.Obs_run.manifest ~tool:"gcexp" ~command:"miss-curve" ~seed
          ~trace:(Gc_cache.Obs_run.trace_info ~path trace)
          ~wall_time_s:(Unix.gettimeofday () -. t0)
          ~extra []
      in
      (* Atomic write-then-rename; the success message only prints once
         the manifest is durably in place. *)
      Gc_obs.Export.write_json_atomic out (Gc_obs.Manifest.to_json manifest);
      Printf.eprintf "manifest written to %s\n" out);
  if stats.Gc_exec.Checkpoint.interrupted then begin
    Printf.eprintf "gcexp: interrupted; %d of %d cells completed%s\n%!"
      (stats.Gc_exec.Checkpoint.total - stats.Gc_exec.Checkpoint.cancelled)
      stats.Gc_exec.Checkpoint.total
      (match journal with
      | Some j -> Printf.sprintf " (continue with --resume %s)" j
      | None -> "");
    Cli_common.interrupted
  end
  else if !failures > 0 then Cli_common.runtime_error
  else Cli_common.ok

let policies_arg =
  Arg.(
    value
    & opt_all Cli_common.policy_conv []
    & info [ "policy"; "p" ] ~doc:"Policies to sweep (repeatable).")

let k_min_arg = Arg.(value & opt int 64 & info [ "k-min" ] ~doc:"Smallest k.")
let k_max_arg = Arg.(value & opt int 4096 & info [ "k-max" ] ~doc:"Largest k.")
let steps_arg = Arg.(value & opt int 8 & info [ "steps" ] ~doc:"Grid points.")

let offline_arg =
  Arg.(value & flag & info [ "offline" ] ~doc:"Include offline baselines.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write a run manifest with the sweep rows (under \
           $(b,extra.sweep)) to $(docv).")

let miss_curve_cmd =
  Cmd.v
    (Cmd.info "miss-curve" ~doc:"Misses vs cache size, per policy (CSV)")
    Term.(
      const miss_curve $ policies_arg $ k_min_arg $ k_max_arg $ steps_arg
      $ offline_arg $ seed_arg $ Cli_common.domains_arg
      $ Cli_common.deadline_arg $ Cli_common.retries_arg
      $ Cli_common.journal_arg $ Cli_common.resume_arg $ json_arg $ path_arg)

(* ----------------------------------------------------------- split-sweep *)

let split_sweep k points seed path =
  let trace = read_trace path in
  let blocks = trace.Gc_trace.Trace.blocks in
  let bsize = Gc_trace.Block_map.block_size blocks in
  ignore seed;
  print_endline "i,b,misses,spatial_hits,temporal_hits";
  List.iter
    (fun idx ->
      let i = idx * k / points / bsize * bsize in
      let b = k - i in
      let p = Gc_cache.Iblp.create ~i ~b ~blocks () in
      let m = Gc_cache.Simulator.run ~check:false p trace in
      Printf.printf "%d,%d,%d,%d,%d\n" i b m.Gc_cache.Metrics.misses
        m.Gc_cache.Metrics.spatial_hits m.Gc_cache.Metrics.temporal_hits)
    (List.init (points + 1) (fun idx -> idx));
  Cli_common.ok

let k_arg = Arg.(value & opt int 1024 & info [ "k" ] ~doc:"Total cache size.")

let points_arg =
  Arg.(value & opt int 16 & info [ "points" ] ~doc:"Split grid points.")

let split_sweep_cmd =
  Cmd.v
    (Cmd.info "split-sweep" ~doc:"IBLP misses vs item/block split (CSV)")
    Term.(const split_sweep $ k_arg $ points_arg $ seed_arg $ path_arg)

(* --------------------------------------------------------------- h-sweep *)

let h_sweep policy k block_size construction cycles seed =
  let blocks = Gc_trace.Block_map.uniform ~block_size in
  print_endline "h,measured_ratio,bound";
  let hs = geometric_grid (max 2 (2 * block_size)) (k / 2) 8 in
  List.iter
    (fun h ->
      let p = Gc_cache.Registry.make policy ~k ~blocks ~seed in
      let c =
        match construction with
        | "st" -> Gc_cache.Attack.sleator_tarjan p ~k ~h ~cycles
        | "thm2" -> Gc_cache.Attack.item_cache p ~k ~h ~block_size ~cycles
        | "thm4" -> Gc_cache.Attack.general_a p ~k ~h ~block_size ~cycles
        | _ ->
            (assert false [@lint.allow "exit-contract"])
            (* the enum converter rejects anything else *)
      in
      Printf.printf "%d,%.4f,%.4f\n" h
        (Gc_trace.Adversary.measured_ratio c)
        c.Gc_trace.Adversary.bound)
    hs;
  Cli_common.ok

let policy_arg =
  Arg.(
    value
    & opt Cli_common.policy_conv "lru"
    & info [ "policy"; "p" ] ~doc:"Target policy.")

let block_size_arg =
  Arg.(value & opt int 16 & info [ "block-size"; "B" ] ~doc:"Items per block.")

let construction_arg =
  Arg.(
    value
    & opt (Cli_common.choice_conv [ "st"; "thm2"; "thm4" ]) "thm2"
    & info [ "construction"; "c" ] ~doc:"One of: st, thm2, thm4.")

let cycles_arg = Arg.(value & opt int 20 & info [ "cycles" ] ~doc:"Cycles.")

let h_sweep_cmd =
  Cmd.v
    (Cmd.info "h-sweep"
       ~doc:"Measured adversarial ratio vs offline size h (CSV)")
    Term.(
      const h_sweep $ policy_arg $ k_arg $ block_size_arg $ construction_arg
      $ cycles_arg $ seed_arg)

let () =
  let info = Cmd.info "gcexp" ~doc:"GC-caching experiment sweeps (CSV)" in
  exit
    (Cli_common.eval
       (Cmd.group info [ miss_curve_cmd; split_sweep_cmd; h_sweep_cmd ]))
