(* gcexp: parameter-sweep experiment runner, CSV to stdout.

   Examples:
     gcexp miss-curve --policy lru --policy iblp --k-min 64 --k-max 4096 t.gct
     gcexp split-sweep -k 1024 t.gct
     gcexp h-sweep --policy lru -k 512 -B 16 --construction thm2

   Exit codes: 0 ok, 1 runtime failure (including any failed sweep cell),
   2 usage error. *)

open Cmdliner

let read_trace = Cli_common.read_trace

let path_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"TRACE" ~doc:"Trace file.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

(* ------------------------------------------------------------ miss-curve *)

let geometric_grid lo hi steps =
  List.init (steps + 1) (fun idx ->
      let f = float_of_int idx /. float_of_int steps in
      int_of_float
        (Float.round
           (float_of_int lo *. Float.pow (float_of_int hi /. float_of_int lo) f)))
  |> List.sort_uniq compare

let miss_curve policies k_min k_max steps offline seed json path =
  let trace = read_trace path in
  let blocks = trace.Gc_trace.Trace.blocks in
  let policies =
    if policies = [] then [ "lru"; "block-lru"; "iblp" ] else policies
  in
  let t0 = Unix.gettimeofday () in
  let rows = ref [] in
  let failures = ref 0 in
  let record name k (m : Gc_cache.Metrics.t option) misses =
    rows :=
      Gc_obs.Json.Obj
        (("policy", Gc_obs.Json.String name)
        :: ("k", Gc_obs.Json.Int k)
        :: ("misses", Gc_obs.Json.Int misses)
        ::
        (match m with
        | None -> []
        | Some m ->
            [
              ("hit_rate", Gc_obs.Json.Float (Gc_cache.Metrics.hit_rate m));
              ("spatial_hits", Gc_obs.Json.Int m.Gc_cache.Metrics.spatial_hits);
              ( "temporal_hits",
                Gc_obs.Json.Int m.Gc_cache.Metrics.temporal_hits );
            ]))
      :: !rows
  in
  (* A sweep cell whose policy crashes becomes a structured error row; the
     rest of the grid still runs. *)
  let record_error name k msg =
    incr failures;
    rows :=
      Gc_obs.Json.Obj
        [
          ("policy", Gc_obs.Json.String name);
          ("k", Gc_obs.Json.Int k);
          ("error", Gc_obs.Json.String msg);
        ]
      :: !rows;
    Printf.eprintf "gcexp: %s at k=%d failed: %s\n%!" name k msg
  in
  print_endline "policy,k,misses,hit_rate,spatial_hits,temporal_hits";
  List.iter
    (fun k ->
      List.iter
        (fun name ->
          match
            let p = Gc_cache.Registry.make name ~k ~blocks ~seed in
            Gc_cache.Simulator.run ~check:false p trace
          with
          | m ->
              record name k (Some m) m.Gc_cache.Metrics.misses;
              Printf.printf "%s,%d,%d,%.6f,%d,%d\n" name k
                m.Gc_cache.Metrics.misses
                (Gc_cache.Metrics.hit_rate m)
                m.Gc_cache.Metrics.spatial_hits
                m.Gc_cache.Metrics.temporal_hits
          | exception Invalid_argument msg ->
              (* Bad parameters for this construction: a usage problem, not
                 a per-cell runtime failure. *)
              Cli_common.fail_usage "%s" msg
          | exception exn -> record_error name k (Printexc.to_string exn))
        policies;
      if offline then begin
        let belady = Gc_offline.Belady.cost ~k trace in
        let clair = Gc_offline.Clairvoyant.cost ~k trace in
        record "belady" k None belady;
        record "clairvoyant" k None clair;
        Printf.printf "belady,%d,%d,,,\n" k belady;
        Printf.printf "clairvoyant,%d,%d,,,\n" k clair
      end)
    (geometric_grid k_min k_max steps);
  (match json with
  | None -> ()
  | Some out ->
      let manifest =
        Gc_cache.Obs_run.manifest ~tool:"gcexp" ~command:"miss-curve" ~seed
          ~trace:(Gc_cache.Obs_run.trace_info ~path trace)
          ~wall_time_s:(Unix.gettimeofday () -. t0)
          ~extra:[ ("sweep", Gc_obs.Json.Array (List.rev !rows)) ]
          []
      in
      Gc_obs.Export.write_json out (Gc_obs.Manifest.to_json manifest);
      Printf.eprintf "manifest written to %s\n" out);
  if !failures > 0 then Cli_common.runtime_error else Cli_common.ok

let policies_arg =
  Arg.(
    value
    & opt_all Cli_common.policy_conv []
    & info [ "policy"; "p" ] ~doc:"Policies to sweep (repeatable).")

let k_min_arg = Arg.(value & opt int 64 & info [ "k-min" ] ~doc:"Smallest k.")
let k_max_arg = Arg.(value & opt int 4096 & info [ "k-max" ] ~doc:"Largest k.")
let steps_arg = Arg.(value & opt int 8 & info [ "steps" ] ~doc:"Grid points.")

let offline_arg =
  Arg.(value & flag & info [ "offline" ] ~doc:"Include offline baselines.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write a run manifest with the sweep rows (under \
           $(b,extra.sweep)) to $(docv).")

let miss_curve_cmd =
  Cmd.v
    (Cmd.info "miss-curve" ~doc:"Misses vs cache size, per policy (CSV)")
    Term.(
      const miss_curve $ policies_arg $ k_min_arg $ k_max_arg $ steps_arg
      $ offline_arg $ seed_arg $ json_arg $ path_arg)

(* ----------------------------------------------------------- split-sweep *)

let split_sweep k points seed path =
  let trace = read_trace path in
  let blocks = trace.Gc_trace.Trace.blocks in
  let bsize = Gc_trace.Block_map.block_size blocks in
  ignore seed;
  print_endline "i,b,misses,spatial_hits,temporal_hits";
  List.iter
    (fun idx ->
      let i = idx * k / points / bsize * bsize in
      let b = k - i in
      let p = Gc_cache.Iblp.create ~i ~b ~blocks () in
      let m = Gc_cache.Simulator.run ~check:false p trace in
      Printf.printf "%d,%d,%d,%d,%d\n" i b m.Gc_cache.Metrics.misses
        m.Gc_cache.Metrics.spatial_hits m.Gc_cache.Metrics.temporal_hits)
    (List.init (points + 1) (fun idx -> idx));
  Cli_common.ok

let k_arg = Arg.(value & opt int 1024 & info [ "k" ] ~doc:"Total cache size.")

let points_arg =
  Arg.(value & opt int 16 & info [ "points" ] ~doc:"Split grid points.")

let split_sweep_cmd =
  Cmd.v
    (Cmd.info "split-sweep" ~doc:"IBLP misses vs item/block split (CSV)")
    Term.(const split_sweep $ k_arg $ points_arg $ seed_arg $ path_arg)

(* --------------------------------------------------------------- h-sweep *)

let h_sweep policy k block_size construction cycles seed =
  let blocks = Gc_trace.Block_map.uniform ~block_size in
  print_endline "h,measured_ratio,bound";
  let hs = geometric_grid (max 2 (2 * block_size)) (k / 2) 8 in
  List.iter
    (fun h ->
      let p = Gc_cache.Registry.make policy ~k ~blocks ~seed in
      let c =
        match construction with
        | "st" -> Gc_cache.Attack.sleator_tarjan p ~k ~h ~cycles
        | "thm2" -> Gc_cache.Attack.item_cache p ~k ~h ~block_size ~cycles
        | "thm4" -> Gc_cache.Attack.general_a p ~k ~h ~block_size ~cycles
        | _ -> assert false (* the enum converter rejects anything else *)
      in
      Printf.printf "%d,%.4f,%.4f\n" h
        (Gc_trace.Adversary.measured_ratio c)
        c.Gc_trace.Adversary.bound)
    hs;
  Cli_common.ok

let policy_arg =
  Arg.(
    value
    & opt Cli_common.policy_conv "lru"
    & info [ "policy"; "p" ] ~doc:"Target policy.")

let block_size_arg =
  Arg.(value & opt int 16 & info [ "block-size"; "B" ] ~doc:"Items per block.")

let construction_arg =
  Arg.(
    value
    & opt (Cli_common.choice_conv [ "st"; "thm2"; "thm4" ]) "thm2"
    & info [ "construction"; "c" ] ~doc:"One of: st, thm2, thm4.")

let cycles_arg = Arg.(value & opt int 20 & info [ "cycles" ] ~doc:"Cycles.")

let h_sweep_cmd =
  Cmd.v
    (Cmd.info "h-sweep"
       ~doc:"Measured adversarial ratio vs offline size h (CSV)")
    Term.(
      const h_sweep $ policy_arg $ k_arg $ block_size_arg $ construction_arg
      $ cycles_arg $ seed_arg)

let () =
  let info = Cmd.info "gcexp" ~doc:"GC-caching experiment sweeps (CSV)" in
  exit
    (Cli_common.eval
       (Cmd.group info [ miss_curve_cmd; split_sweep_cmd; h_sweep_cmd ]))
