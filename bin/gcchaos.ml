(* gcchaos — deterministic chaos drills against the supervised server.

     gcchaos drill --seeds 1,2,3 --verify-repro
     gcchaos storm --seed 1 --verify-repro      # the metastability drill
     gcchaos partition --verify-repro           # the replica-set drill
     GC_CHAOS_SEEDS=1..32 dune build @chaos     # wider sweep, same harness

   One drill = one seed.  The seed derives the whole fault schedule —
   which requests are preceded by a child SIGKILL, where the SIGSTOP
   pause lands, which byte-level network faults the proxy injects, where
   the journal line is torn — and the report contains only facts that
   are functions of that schedule, so a drill is byte-reproducible:
   running the same seed twice must produce the same report
   (--verify-repro checks exactly that).

   What a drill asserts (exit 3 on any violation):
     - every request settles exactly once: an ok reply, a framed error
       reply, or a classified transport error — never a hang, never two;
     - direct requests through the resilient client all succeed even
       though the server is SIGKILLed mid-drill: the supervisor restart
       plus client reconnect-and-retry is invisible to callers;
     - the supervisor's restart count equals the injected kill count
       (a SIGSTOP pause must NOT count: probes stall but the pid lives);
     - after the drain no request is answered;
     - the shutdown manifest reconciles: status drained, queue and
       inflight both zero, and requests <= replies <= requests +
       protocol_faults + shed over the final incarnation's counters;
     - a torn journal append loses exactly the torn tail (load drops it,
       resume truncates and re-appends);
     - a crash between an atomic export's temp write and its rename
       leaves the previous artifact intact.

   gcchaos storm is the companion metastability drill: it saturates a
   one-worker server with hanging jobs and proves (a) that budget-less
   retrying clients collapse goodput to ~zero (the retry storm) and
   (b) that deadline propagation + sojourn shedding + retry budgets +
   server backoff hints restore full goodput once the poison stops —
   with the same byte-reproducibility contract as drill. *)

open Cmdliner
module Json = Gc_obs.Json
module Rng = Gc_trace.Rng
module Client = Gc_serve.Client
module Supervise = Gc_resil.Supervise
module Retry = Gc_resil.Retry

(* ------------------------------------------------------------- schedule *)

(* Everything the drill will do, derived from the seed up front.  Draw
   order is fixed: changing it changes every report, so treat it as part
   of the drill's file format. *)
type schedule = {
  kill_at : int list;  (** Request ordinals preceded by a child SIGKILL. *)
  stop_at : int;  (** Ordinal preceded by a SIGSTOP/SIGCONT pause. *)
  net_faults : Gc_fault.Net_proxy.fault array;
      (** One per proxied request, in connection order. *)
  journal_cut : int;  (** Bytes of the torn journal line that reach disk. *)
}

let derive_schedule rng =
  let k1 = 2 + Rng.int rng 3 in
  let k2 = k1 + 5 + Rng.int rng 3 in
  let stop_at = k2 + 3 in
  let corrupt_at = Rng.int_in rng 4 22 in
  let truncate_at = Rng.int_in rng 2 20 in
  let net_faults =
    Gc_fault.Net_proxy.
      [| Pass; Corrupt_byte corrupt_at; Truncate_after truncate_at;
         Delay 0.8; Drop |]
  in
  Rng.shuffle rng net_faults;
  let journal_cut = Rng.int_in rng 1 24 in
  { kill_at = [ k1; k2 ]; stop_at; net_faults; journal_cut }

(* Fault-injection clocks, all chosen together: the proxy's Delay must
   overrun the child's whole-frame budget, and the one-shot client's
   reply wait must outlast the resulting error reply (and bound Drop). *)
let child_frame_timeout = 0.5
let net_request_timeout = 1.2

(* --------------------------------------------------------- drill plumbing *)

(* Stderr-only progress trace (GC_CHAOS_DEBUG=1): pids and timings are
   nondeterministic, so none of this may leak into the report. *)
let debug = lazy (Sys.getenv_opt "GC_CHAOS_DEBUG" <> None)

let dbg fmt =
  Printf.ksprintf
    (fun m -> if Lazy.force debug then Printf.eprintf "gcchaos: %s\n%!" m)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rm_rf dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

(* Supervisor events, folded as they arrive: the drill needs "who is the
   child right now" (to aim signals) and "how many incarnations have
   come up healthy" (to know a restart finished before injecting the
   next fault). *)
type watch = {
  mu : Mutex.t;
  mutable pid : int option;
  mutable healthy : int;
  mutable events : Supervise.event list;
}

let watch_create () =
  { mu = Mutex.create (); pid = None; healthy = 0; events = [] }

let watch_event w ev =
  dbg "supervisor: %s" (Supervise.event_string ev);
  Mutex.lock w.mu;
  w.events <- ev :: w.events;
  (match ev with
  | Supervise.Spawned pid -> w.pid <- Some pid
  | Supervise.Became_healthy _ -> w.healthy <- w.healthy + 1
  | _ -> ());
  Mutex.unlock w.mu

let watch_pid w =
  Mutex.lock w.mu;
  let p = w.pid in
  Mutex.unlock w.mu;
  p

let watch_healthy w =
  Mutex.lock w.mu;
  let h = w.healthy in
  Mutex.unlock w.mu;
  h

(* Wait until the [n]th incarnation has answered a health probe, so a
   signal aimed via [watch_pid] hits a live, serving child — not the
   corpse of the previous one. *)
let await_healthy w n =
  let deadline = Gc_prof.Clock.now_s () +. 30. in
  let rec go () =
    if watch_healthy w >= n then ()
    else if Gc_prof.Clock.now_s () > deadline then
      Cli_common.fail_runtime
        "drill: incarnation %d not healthy within 30s (supervisor stuck?)" n
    else begin
      Gc_exec.Pool.nap 0.02;
      go ()
    end
  in
  go ()

let signal_child w signal =
  match watch_pid w with
  | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
  | None -> Cli_common.fail_runtime "drill: no child pid to signal"

(* ------------------------------------------------- manifest reconciliation *)

let sum_metric rows name =
  List.fold_left
    (fun acc row ->
      match (Json.member "name" row, Json.member "value" row) with
      | Some (Json.String n), Some (Json.Int v) when n = name -> acc + v
      | _ -> acc)
    0 rows

(* The drained child's manifest must account for every byte the drill
   threw at it; see the module comment for the inequality. *)
let manifest_reconciles path =
  match Json.parse (read_file path) with
  | Error e -> Error ("manifest: " ^ Json.string_of_parse_error e)
  | exception Sys_error m -> Error ("manifest: " ^ m)
  | Ok json -> (
      match Json.member "extra" json with
      | None -> Error "manifest: no extra section"
      | Some extra -> (
          match (Json.member "status" extra, Json.member "server" extra) with
          | Some (Json.String "drained"), Some (Json.Array rows) ->
              let requests = sum_metric rows "requests"
              and replies = sum_metric rows "replies"
              and faults = sum_metric rows "protocol_faults"
              and shed = sum_metric rows "shed"
              and queue = sum_metric rows "queue_depth"
              and inflight = sum_metric rows "inflight" in
              if queue <> 0 then
                Error (Printf.sprintf "queue_depth %d after drain" queue)
              else if inflight <> 0 then
                Error (Printf.sprintf "inflight %d after drain" inflight)
              else if not (requests <= replies) then
                Error
                  (Printf.sprintf "requests %d > replies %d" requests replies)
              else if not (replies <= requests + faults + shed) then
                Error
                  (Printf.sprintf
                     "replies %d > requests %d + faults %d + shed %d" replies
                     requests faults shed)
              else Ok ()
          | Some (Json.String s), _ ->
              Error (Printf.sprintf "manifest status %S, wanted drained" s)
          | _ -> Error "manifest: malformed extra section"))

(* ------------------------------------------------------------ disk drills *)

(* Torn append: arm the hook, watch the append fail, then prove load
   drops exactly the torn tail and resume repairs the file. *)
let journal_drill dir seed cut =
  let path = Filename.concat dir "journal.jsonl" in
  let w = Gc_exec.Journal.create path ~meta:(Json.Obj [ ("drill", Json.Int seed) ]) in
  Gc_exec.Journal.append w "cell-0" (Json.Int 0);
  Gc_exec.Journal.torn_write_after := Some cut;
  let tore =
    match Gc_exec.Journal.append w "cell-1" (Json.Int 1) with
    | () -> false
    | exception Gc_exec.Journal.Torn_write -> true
  in
  Gc_exec.Journal.close w;
  if not tore then Error "armed append did not tear"
  else
    match Gc_exec.Journal.load path with
    | Error e -> Error ("load: " ^ Gc_exec.Journal.string_of_error e)
    | Ok l when not l.torn -> Error "torn tail not detected"
    | Ok l when List.map fst l.entries <> [ "cell-0" ] ->
        Error "torn load lost or invented entries"
    | Ok _ -> (
        match Gc_exec.Journal.resume path with
        | Error e -> Error ("resume: " ^ Gc_exec.Journal.string_of_error e)
        | Ok (_, w2) -> (
            Gc_exec.Journal.append w2 "cell-1" (Json.Int 1);
            Gc_exec.Journal.close w2;
            match Gc_exec.Journal.load path with
            | Ok l2 when (not l2.torn) && List.length l2.entries = 2 -> Ok ()
            | Ok _ -> Error "resume did not repair the tail"
            | Error e -> Error ("reload: " ^ Gc_exec.Journal.string_of_error e)))

(* Crash-before-rename: the previous artifact must survive the crash
   byte-for-byte, and a later write must still land. *)
let export_drill dir =
  let path = Filename.concat dir "artifact.json" in
  Gc_obs.Export.write_json_atomic path (Json.String "before");
  Gc_obs.Export.crash_before_rename := true;
  let crashed =
    match Gc_obs.Export.write_json_atomic path (Json.String "after") with
    | () -> false
    | exception Gc_obs.Export.Crashed_before_rename -> true
  in
  if not crashed then Error "armed export did not crash"
  else
    match Json.parse (read_file path) with
    | Ok (Json.String "before") -> (
        Gc_obs.Export.write_json_atomic path (Json.String "after");
        match Json.parse (read_file path) with
        | Ok (Json.String "after") -> Ok ()
        | _ -> Error "post-crash write did not land")
    | _ -> Error "crash truncated or replaced the artifact"

(* ------------------------------------------------------------- the drill *)

(* Classify a one-shot outcome into the coarse classes that are
   deterministic per fault: a framed reply (ok or error — the server
   answered) vs a classified transport failure. *)
let outcome_class = function
  | Ok _ -> "reply"
  | Error (e : Client.error) -> "transport:" ^ Client.kind_name e.kind

let drill ~server_exe ~requests ~seed =
  let rng = Rng.create seed in
  let schedule = derive_schedule rng in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcchaos.%d.%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let sock = Filename.concat dir "serve.sock" in
  let proxy_sock = Filename.concat dir "proxy.sock" in
  let manifest_path = Filename.concat dir "manifest.json" in
  let config =
    {
      (Supervise.default_config
         ~argv:
           [|
             server_exe; "serve"; "--socket"; sock; "--manifest"; manifest_path;
             "--frame-timeout"; string_of_float child_frame_timeout;
             "--deadline"; "10"; "--workers"; "2"; "--queue-depth"; "32";
           |]
         ~health_addr:(Client.Unix_path sock))
      with
      Supervise.health_interval = 0.05;
      startup_grace = 20.;
      (* SIGSTOP stalls probes for ~0.35s; with 0.05s probes that is a
         handful of consecutive failures, so the wedge threshold must sit
         far above it or the pause would masquerade as a crash. *)
      wedge_threshold = 200;
      restart_window = 300.;
      max_restarts = 10;
      backoff = { Retry.default with base_delay = 0.05; max_delay = 0.2 };
      seed;
    }
  in
  let watch = watch_create () in
  let stop = Gc_exec.Cancel.create () in
  let outcome = ref (Error "supervisor thread never ran") in
  (* The supervisor is single-threaded and blocking by design; the drill
     embeds it in a process-lifetime thread, which is exactly the shape
     the pool rule exempts. *)
  let sup =
    Thread.create
      (fun () ->
        outcome :=
          match Supervise.run ~on_event:(watch_event watch) ~stop config with
          | o -> Ok o
          | exception e -> Error (Printexc.to_string e))
      () [@lint.allow "spawn-outside-pool"]
  in
  await_healthy watch 1;
  (* Phase 1: direct requests with kill/stop injection.  The resilient
     client must make every restart invisible. *)
  let rc =
    Gc_resil.Resilient_client.create ~timeout:8.
      ~retry:
        { Retry.default with max_attempts = 10; base_delay = 0.05; max_delay = 0.4 }
      ~seed (Client.Unix_path sock)
  in
  let kills = ref 0 in
  let direct_failures = ref 0 in
  let settled = ref 0 in
  for i = 0 to requests - 1 do
    if List.mem i schedule.kill_at then begin
      (* Aim only at an incarnation that has already proven healthy, so
         two kills cannot land on the same pid. *)
      await_healthy watch (!kills + 1);
      signal_child watch Sys.sigkill;
      incr kills
    end;
    if i = schedule.stop_at then begin
      await_healthy watch (!kills + 1);
      signal_child watch Sys.sigstop;
      Gc_exec.Pool.nap 0.35;
      signal_child watch Sys.sigcont
    end;
    let req =
      if i mod 3 = 0 then
        Json.Obj
          [
            ("op", Json.String "sim"); ("policy", Json.String "lru");
            ("k", Json.Int 64); ("seed", Json.Int i);
            ("workload", Json.String "zipf"); ("n", Json.Int 500);
            ("universe", Json.Int 256);
          ]
      else Json.Obj [ ("op", Json.String "health") ]
    in
    dbg "request %d" i;
    (match Gc_resil.Resilient_client.request rc req with
    | Ok _ -> ()
    | Error f ->
        incr direct_failures;
        Printf.eprintf "gcchaos: seed %d request %d failed: %s\n%!" seed i
          (Gc_resil.Resilient_client.string_of_failure f));
    incr settled
  done;
  Gc_resil.Resilient_client.close rc;
  (* Phase 2: byte-level network faults.  One fresh connection per
     request, so proxy connection ordinal == request ordinal and the
     fault plan is deterministic. *)
  let proxy =
    Gc_fault.Net_proxy.create ~listen:proxy_sock ~upstream:sock
      ~plan:(fun i ->
        if i < Array.length schedule.net_faults then schedule.net_faults.(i)
        else Gc_fault.Net_proxy.Pass)
      ()
  in
  dbg "net phase";
  let net_outcomes =
    Array.mapi
      (fun i _ ->
        dbg "net request %d" i;
        let r =
          Client.request_result ~timeout:net_request_timeout
            (Client.Unix_path proxy_sock)
            (Json.Obj [ ("id", Json.Int (1000 + i)); ("op", Json.String "health") ])
        in
        incr settled;
        outcome_class r)
      schedule.net_faults
  in
  let proxy_conns = Gc_fault.Net_proxy.connections proxy in
  Gc_fault.Net_proxy.stop proxy;
  (* Phase 3: drain through the supervisor, then prove the silence. *)
  dbg "draining";
  Gc_exec.Cancel.request stop ~reason:"drill complete";
  Thread.join sup;
  let sup_outcome =
    match !outcome with
    | Ok o -> o
    | Error m -> Cli_common.fail_runtime "drill: supervisor died: %s" m
  in
  let after_drain =
    Client.request_result ~timeout:1.
      (Client.Unix_path sock)
      (Json.Obj [ ("op", Json.String "health") ])
  in
  let manifest = manifest_reconciles manifest_path in
  (* Phase 4: disk faults, in-process. *)
  let journal = journal_drill dir seed schedule.journal_cut in
  let export = export_drill dir in
  let expected = requests + Array.length schedule.net_faults in
  let check name = function
    | Ok () -> (name, Json.Bool true)
    | Error m ->
        Printf.eprintf "gcchaos: seed %d invariant %s: %s\n%!" seed name m;
        (name, Json.Bool false)
  in
  let bool_check name ok detail =
    check name (if ok then Ok () else Error detail)
  in
  let invariants =
    [
      bool_check "every_request_settled" (!settled = expected)
        (Printf.sprintf "settled %d of %d" !settled expected);
      bool_check "direct_requests_all_answered" (!direct_failures = 0)
        (Printf.sprintf "%d direct failures" !direct_failures);
      bool_check "restarts_match_kills"
        (sup_outcome.Supervise.restarts = !kills
        && sup_outcome.Supervise.result = `Drained)
        (Printf.sprintf "restarts %d, kills %d, %s"
           sup_outcome.Supervise.restarts !kills
           (match sup_outcome.Supervise.result with
           | `Drained -> "drained"
           | `Gave_up -> "gave up"));
      bool_check "no_reply_after_drain" (Result.is_error after_drain)
        "post-drain request was answered";
      check "manifest_reconciles" manifest;
      bool_check "proxy_connection_per_request"
        (proxy_conns = Array.length schedule.net_faults)
        (Printf.sprintf "%d proxy connections for %d requests" proxy_conns
           (Array.length schedule.net_faults));
      check "journal_tear_recovered" journal;
      check "export_survives_crash" export;
    ]
  in
  let report =
    Json.Obj
      [
        ("seed", Json.Int seed);
        ("requests", Json.Int requests);
        ( "kills",
          Json.Array (List.map (fun i -> Json.Int i) schedule.kill_at) );
        ("stop_at", Json.Int schedule.stop_at);
        ( "net_faults",
          Json.Array
            (Array.to_list schedule.net_faults
            |> List.map (fun f ->
                   Json.String (Gc_fault.Net_proxy.fault_string f))) );
        ( "net_outcomes",
          Json.Array
            (Array.to_list net_outcomes |> List.map (fun s -> Json.String s))
        );
        ("journal_cut", Json.Int schedule.journal_cut);
        ("settled", Json.Int !settled);
        ("restarts", Json.Int sup_outcome.Supervise.restarts);
        ("invariants", Json.Obj invariants);
      ]
  in
  let ok = List.for_all (fun (_, v) -> v = Json.Bool true) invariants in
  (report, ok)

(* ---------------------------------------------------------------- storm *)

(* The metastability drill.  Two phases against the same poison load —
   a trickle of [broken:hang@0] sims that each pin the single worker for
   deadline+grace, keeping the admission queue full of doomed work:

     naive      overload control off (--codel-target 0) and victim
                clients retrying without budgets: goodput collapses to
                ~zero and STAYS there — every shed turns into another
                retry, which is the metastable failure mode;
     mitigated  sojourn shedding + deadline propagation on, victims
                carry budget_ms and success-coupled retry budgets, and a
                mid-phase SIGKILL proves recovery: once the poison stops
                the system returns to full goodput instead of staying
                collapsed.

   Like [drill], a storm's report contains only facts derived from the
   seed and coarse booleans with wide margins, so the same seed produces
   a byte-identical report (--verify-repro enforces it). *)

let storm_wave_clients = 3
let storm_wave_per_client = 4
let storm_poison_upfront = 24

let hang_req i =
  Json.Obj
    [
      ("id", Json.Int (9000 + i)); ("op", Json.String "sim");
      ("policy", Json.String "broken:hang@0"); ("k", Json.Int 64);
      ("seed", Json.Int i); ("workload", Json.String "zipf");
      ("n", Json.Int 64); ("universe", Json.Int 64);
    ]

let victim_req ?budget_ms i =
  Json.Obj
    ([
       ("op", Json.String "sim"); ("policy", Json.String "lru");
       ("k", Json.Int 64); ("seed", Json.Int i);
       ("workload", Json.String "zipf"); ("n", Json.Int 500);
       ("universe", Json.Int 256);
     ]
    @ match budget_ms with
      | Some b -> [ ("budget_ms", Json.Int b) ]
      | None -> [])

(* Poison producers: connections that enqueue hangs and never read the
   replies.  Production (4/s) outpaces the single worker's consumption
   (one hang per deadline+grace), so the queue stays saturated until the
   poison stops. *)
type poison = {
  pconns : Client.conn list;
  pstop : bool Atomic.t;
  pfeeder : Thread.t;
}

let start_poison ~sock =
  let send_hang c i =
    match Client.send_result c (hang_req i) with Ok () -> true | Error _ -> false
  in
  let conns =
    List.filter_map
      (fun _ ->
        Result.to_option (Client.connect_result ~timeout:2. (Client.Unix_path sock)))
      [ (); () ]
  in
  List.iteri
    (fun ci c ->
      for i = 0 to (storm_poison_upfront / 2) - 1 do
        ignore (send_hang c ((ci * storm_poison_upfront / 2) + i))
      done)
    conns;
  let stop = Atomic.make false in
  let feeder =
    Thread.create
      (fun () ->
        match Client.connect_result ~timeout:2. (Client.Unix_path sock) with
        | Error _ -> ()
        | Ok c ->
            (* Bounded: the cap only matters if a wave wedges, and then
               the drill's own deadline fails it first. *)
            let i = ref 0 in
            while (not (Atomic.get stop)) && !i < 80 do
              if not (send_hang c (100 + !i)) then Atomic.set stop true;
              incr i;
              Gc_exec.Pool.nap 0.25
            done;
            Client.close c)
      () [@lint.allow "spawn-outside-pool"]
  in
  { pconns = conns; pstop = stop; pfeeder = feeder }

(* Closing the poison connections cancels their queued hangs (the
   disconnect path), so the backlog evaporates instead of being served
   to nobody. *)
let stop_poison p =
  Atomic.set p.pstop true;
  Thread.join p.pfeeder;
  List.iter Client.close p.pconns

let is_ok_reply reply =
  match Gc_serve.Protocol.reply_of_json reply with
  | Ok (_, Gc_serve.Protocol.Ok_result _) -> true
  | _ -> false

(* One fleet of victim clients hammering fast sims through the poison.
   [budgeted] is the whole experiment: [false] retries on raw policy
   (the storm), [true] pays for every retry from a small token bucket
   and honours the server's retry_after_ms hints. *)
let run_wave ~sock ~seed ~budgeted ~budget_ms ~timeout =
  let oks = Array.make storm_wave_clients 0 in
  let threads =
    List.init storm_wave_clients (fun ci ->
        Thread.create
          (fun () ->
            let rc =
              Gc_resil.Resilient_client.create ~timeout
                ~retry:
                  {
                    Retry.default with
                    max_attempts = 3;
                    base_delay = 0.05;
                    max_delay = 0.2;
                  }
                ~retry_budget:
                  (if budgeted then
                     Some (Gc_admit.Token_bucket.create ~capacity:3. ())
                   else None)
                ~seed:((seed * 100) + ci)
                (Client.Unix_path sock)
            in
            for r = 0 to storm_wave_per_client - 1 do
              let req = victim_req ?budget_ms ((ci * storm_wave_per_client) + r) in
              match Gc_resil.Resilient_client.request rc req with
              | Ok reply when is_ok_reply reply -> oks.(ci) <- oks.(ci) + 1
              | Ok _ | Error _ -> ()
            done;
            Gc_resil.Resilient_client.close rc)
          () [@lint.allow "spawn-outside-pool"])
  in
  List.iter Thread.join threads;
  Array.fold_left ( + ) 0 oks

(* Read shed_sojourn off the live registry via the inline stats op (the
   reader answers it even while the worker drowns in hangs). *)
let stats_sojourn_sheds sock =
  match
    Client.request_result ~timeout:2. (Client.Unix_path sock)
      (Json.Obj [ ("op", Json.String "stats") ])
  with
  | Error _ -> 0
  | Ok reply -> (
      match Gc_serve.Protocol.reply_of_json reply with
      | Ok (_, Gc_serve.Protocol.Ok_result result) -> (
          match Json.member "metrics" result with
          | Some (Json.Array rows) -> sum_metric rows "shed_sojourn"
          | _ -> 0)
      | _ -> 0)

type phase_outcome = {
  wave1_ok : int;  (** Goodput during the poison. *)
  wave2_ok : int;  (** Goodput after poison + kill (mitigated only). *)
  sojourn_sheds : int;  (** shed_sojourn mid-poison (mitigated only). *)
  ph_restarts : int;
  ph_silent : bool;  (** No reply after the drain. *)
  ph_manifest : (unit, string) result;
}

let storm_phase ~server_exe ~seed ~mitigated dir =
  let tag = if mitigated then "mitigated" else "naive" in
  let sock = Filename.concat dir (tag ^ ".sock") in
  let manifest_path = Filename.concat dir (tag ^ ".manifest.json") in
  let config =
    {
      (Supervise.default_config
         ~argv:
           [|
             server_exe; "serve"; "--socket"; sock; "--manifest"; manifest_path;
             "--deadline"; "0.5"; "--workers"; "1"; "--queue-depth"; "16";
             "--codel-target"; (if mitigated then "0.05" else "0");
             "--codel-interval"; "0.25"; "--retry-after-ms"; "40";
             "--seed"; string_of_int seed;
           |]
         ~health_addr:(Client.Unix_path sock))
      with
      Supervise.health_interval = 0.05;
      startup_grace = 20.;
      wedge_threshold = 200;
      restart_window = 300.;
      max_restarts = 10;
      backoff = { Retry.default with base_delay = 0.05; max_delay = 0.2 };
      seed;
    }
  in
  let watch = watch_create () in
  let stop = Gc_exec.Cancel.create () in
  let outcome = ref (Error "supervisor thread never ran") in
  let sup =
    Thread.create
      (fun () ->
        outcome :=
          match Supervise.run ~on_event:(watch_event watch) ~stop config with
          | o -> Ok o
          | exception e -> Error (Printexc.to_string e))
      () [@lint.allow "spawn-outside-pool"]
  in
  await_healthy watch 1;
  dbg "storm %s: poisoning" tag;
  let poison = start_poison ~sock in
  dbg "storm %s: wave 1" tag;
  let wave1_ok =
    run_wave ~sock ~seed ~budgeted:mitigated
      ~budget_ms:(if mitigated then Some 1500 else None)
      ~timeout:1.0
  in
  let sojourn_sheds =
    if mitigated then begin
      (* Give the controller a last few poisoned dequeues to act on. *)
      Gc_exec.Pool.nap 0.75;
      stats_sojourn_sheds sock
    end
    else 0
  in
  stop_poison poison;
  let kills = ref 0 in
  if mitigated then begin
    await_healthy watch 1;
    signal_child watch Sys.sigkill;
    incr kills;
    await_healthy watch 2
  end;
  let wave2_ok =
    if mitigated then begin
      dbg "storm %s: wave 2" tag;
      run_wave ~sock ~seed:(seed + 1) ~budgeted:true ~budget_ms:(Some 5000)
        ~timeout:4.0
    end
    else 0
  in
  dbg "storm %s: draining" tag;
  Gc_exec.Cancel.request stop ~reason:"storm phase complete";
  Thread.join sup;
  let sup_outcome =
    match !outcome with
    | Ok o -> o
    | Error m -> Cli_common.fail_runtime "storm: supervisor died: %s" m
  in
  let after_drain =
    Client.request_result ~timeout:1.
      (Client.Unix_path sock)
      (Json.Obj [ ("op", Json.String "health") ])
  in
  {
    wave1_ok;
    wave2_ok;
    sojourn_sheds;
    ph_restarts = sup_outcome.Supervise.restarts;
    ph_silent = Result.is_error after_drain;
    ph_manifest = manifest_reconciles manifest_path;
  }

let storm ~server_exe ~seed =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcstorm.%d.%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let naive = storm_phase ~server_exe ~seed ~mitigated:false dir in
  let mitigated = storm_phase ~server_exe ~seed ~mitigated:true dir in
  let wave_total = storm_wave_clients * storm_wave_per_client in
  let check name = function
    | Ok () -> (name, Json.Bool true)
    | Error m ->
        Printf.eprintf "gcchaos: storm seed %d invariant %s: %s\n%!" seed name m;
        (name, Json.Bool false)
  in
  let bool_check name ok detail =
    check name (if ok then Ok () else Error detail)
  in
  let invariants =
    [
      (* ~0 goodput, with a one-success margin so a scheduling fluke
         cannot flap the byte-identical report. *)
      bool_check "naive_storm_collapses"
        (naive.wave1_ok * 10 <= wave_total)
        (Printf.sprintf "naive goodput %d of %d" naive.wave1_ok wave_total);
      bool_check "naive_restarts_zero" (naive.ph_restarts = 0)
        (Printf.sprintf "%d restarts without kills" naive.ph_restarts);
      check "naive_manifest_reconciles" naive.ph_manifest;
      bool_check "naive_silent_after_drain" naive.ph_silent
        "post-drain request was answered";
      bool_check "mitigated_sojourn_shedding" (mitigated.sojourn_sheds >= 1)
        "CoDel never shed by sojourn under sustained poison";
      bool_check "mitigated_recovers_goodput" (mitigated.wave2_ok = wave_total)
        (Printf.sprintf "recovered goodput %d of %d" mitigated.wave2_ok
           wave_total);
      bool_check "mitigated_restarts_match_kills" (mitigated.ph_restarts = 1)
        (Printf.sprintf "restarts %d, kills 1" mitigated.ph_restarts);
      check "mitigated_manifest_reconciles" mitigated.ph_manifest;
      bool_check "mitigated_silent_after_drain" mitigated.ph_silent
        "post-drain request was answered";
    ]
  in
  let report =
    Json.Obj
      [
        ("seed", Json.Int seed);
        ("wave_requests", Json.Int wave_total);
        ("poison_upfront", Json.Int storm_poison_upfront);
        ("invariants", Json.Obj invariants);
      ]
  in
  let ok = List.for_all (fun (_, v) -> v = Json.Bool true) invariants in
  (report, ok)

(* ------------------------------------------------------------ partition *)

(* The replica-set drill: three supervised replicas (a {!Gc_resil.Fleet})
   behind one multi-endpoint resilient client, and per seed every
   replica is hurt a different way — one SIGKILLed (the supervisor must
   restart it, the client must fail over), one SIGSTOP-paused (alive but
   silent: only a hedged request gets an answer before any timeout), and
   one network-degraded behind a byte-holding proxy (first byte through,
   then a stall past the replica's whole-frame budget — again the
   hedge's case).  The client must deliver every request's answer
   anyway, with zero failures, while the hedge/failover counters prove
   which mechanism did the work.

   Exact hedge and failover counts are wall-clock races, so — unlike the
   seed-derived victim assignments and fault ordinals — they may only
   enter the report as coarse booleans (fired at least once, wins
   bounded by hedges), or the byte-reproducibility contract would
   flap. *)

let partition_replicas = 3

(* Far below the 2s request timeout (the hedge answers long before
   anyone gives up) and far above a healthy reply (a fast primary never
   wastes a hedge). *)
let partition_hedge_delay = 0.15

(* The proxy stall must overrun the replica's whole-frame budget: the
   server cuts the degraded frame itself, while the hedge has already
   won elsewhere. *)
let partition_stall = 0.9

type partition_schedule = {
  p_kill : int;  (** Replica SIGKILLed once. *)
  p_stop : int;  (** Replica SIGSTOP-paused for a request window. *)
  p_degrade : int;  (** Replica reached through the stalling proxy. *)
  p_kill_at : int;  (** Ordinal preceded by the SIGKILL. *)
  p_stop_from : int;
  p_stop_len : int;
  p_degrade_from : int;
  p_degrade_len : int;
}

(* Fixed draw order, like [derive_schedule]: part of the file format.
   The windows are spaced so each fault begins against a fleet that has
   finished absorbing the previous one. *)
let derive_partition rng =
  let victims = [| 0; 1; 2 |] in
  Rng.shuffle rng victims;
  let p_kill_at = 3 + Rng.int rng 3 in
  let p_stop_from = p_kill_at + 4 + Rng.int rng 2 in
  let p_degrade_from = p_stop_from + 5 + Rng.int rng 2 in
  {
    p_kill = victims.(0);
    p_stop = victims.(1);
    p_degrade = victims.(2);
    p_kill_at;
    p_stop_from;
    p_stop_len = 3;
    p_degrade_from;
    p_degrade_len = 4;
  }

(* A fleet member's manifest must name its replica: the drill's proof
   that [--name] flows through to the shutdown artifact. *)
let manifest_names_replica path name =
  match Json.parse (read_file path) with
  | Error e -> Error ("manifest: " ^ Json.string_of_parse_error e)
  | exception Sys_error m -> Error ("manifest: " ^ m)
  | Ok json -> (
      match Json.member "extra" json with
      | None -> Error "manifest: no extra section"
      | Some extra -> (
          match Json.member "replica" extra with
          | Some (Json.String n) when n = name -> Ok ()
          | Some (Json.String n) ->
              Error (Printf.sprintf "manifest names replica %S, wanted %S" n name)
          | _ -> Error "manifest: no replica field"))

let partition ~server_exe ~requests ~seed =
  let module Multi = Gc_resil.Resilient_client.Multi in
  let module Pool = Gc_resil.Endpoint_pool in
  let rng = Rng.create seed in
  let s = derive_partition rng in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcpart.%d.%d" (Unix.getpid ()) seed)
  in
  rm_rf dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let base = Filename.concat dir "part.sock" in
  let sock i = Gc_resil.Fleet.replica_socket ~base i in
  let name i = Printf.sprintf "replica-%d" i in
  let manifest_path i =
    Filename.concat dir (Printf.sprintf "part.%d.manifest.json" i)
  in
  let proxy_sock = Filename.concat dir "proxy.sock" in
  let configs =
    Array.init partition_replicas (fun i ->
        {
          (Supervise.default_config
             ~argv:
               [|
                 server_exe; "serve"; "--socket"; sock i; "--name"; name i;
                 "--manifest"; manifest_path i;
                 "--frame-timeout"; string_of_float child_frame_timeout;
                 "--deadline"; "10"; "--workers"; "2"; "--queue-depth"; "32";
               |]
             ~health_addr:(Client.Unix_path (sock i)))
          with
          Supervise.health_interval = 0.05;
          startup_grace = 20.;
          (* As in [drill]: the SIGSTOP pause stalls probes for a
             handful of intervals and must not read as a wedge. *)
          wedge_threshold = 200;
          restart_window = 300.;
          max_restarts = 10;
          backoff = { Retry.default with base_delay = 0.05; max_delay = 0.2 };
          (* Distinct per-replica seeds: backoff jitter must never
             synchronize across the set. *)
          seed = (seed * partition_replicas) + i;
        })
  in
  let watches = Array.init partition_replicas (fun _ -> watch_create ()) in
  let stop = Gc_exec.Cancel.create () in
  let outcome = ref (Error "fleet thread never ran") in
  let fl =
    Thread.create
      (fun () ->
        outcome :=
          match
            Gc_resil.Fleet.run
              ~on_event:(fun ~replica ev -> watch_event watches.(replica) ev)
              ~stop configs
          with
          | o -> Ok o
          | exception e -> Error (Printexc.to_string e))
      () [@lint.allow "spawn-outside-pool"]
  in
  Array.iter (fun w -> await_healthy w 1) watches;
  (* The degraded replica is reached through the proxy; until armed it
     forwards verbatim, so the healthy phases never feel it.  Faults are
     per connection, so arming only bites fresh dials — the drill drops
     the client's cached connections at both window edges. *)
  let degraded = Atomic.make false in
  let proxy =
    Gc_fault.Net_proxy.create ~listen:proxy_sock ~upstream:(sock s.p_degrade)
      ~plan:(fun _ ->
        if Atomic.get degraded then Gc_fault.Net_proxy.Delay partition_stall
        else Gc_fault.Net_proxy.Pass)
      ()
  in
  let endpoints =
    List.init partition_replicas (fun i ->
        Client.Unix_path (if i = s.p_degrade then proxy_sock else sock i))
  in
  let mc =
    Multi.create ~timeout:2.0
      ~retry:
        { Retry.default with max_attempts = 8; base_delay = 0.05; max_delay = 0.4 }
      ~hedge:
        {
          Multi.default_hedge with
          min_delay = partition_hedge_delay;
          max_delay = partition_hedge_delay;
          initial_delay = partition_hedge_delay;
        }
      ~pool_config:
        {
          Pool.default_config with
          (* Rotation, not p2c: routing order must be a function of the
             request order alone for the report to reproduce. *)
          p2c = false;
          (* Tight re-probe backoff so the killed replica is due again
             within the drill's own timescale. *)
          reprobe_after = 0.05;
          reprobe_max = 0.2;
        }
      ~seed endpoints
  in
  let failures = ref 0 in
  let oks = ref 0 in
  let settled = ref 0 in
  let recovered = ref false in
  for i = 0 to requests - 1 do
    if i = s.p_kill_at then begin
      await_healthy watches.(s.p_kill) 1;
      signal_child watches.(s.p_kill) Sys.sigkill
    end;
    if i = s.p_stop_from then signal_child watches.(s.p_stop) Sys.sigstop;
    if i = s.p_stop_from + s.p_stop_len then
      signal_child watches.(s.p_stop) Sys.sigcont;
    if i = s.p_degrade_from then begin
      (* Heal the killed replica before the next fault begins: its
         restart must already be finished (restart count 1 at drain),
         and the client's out-of-band re-probe must return the Suspect
         endpoint to Up — the recovery half of the failover story. *)
      await_healthy watches.(s.p_kill) 2;
      Multi.probe mc;
      recovered := Pool.state (Multi.pool mc) s.p_kill = Pool.Up;
      Atomic.set degraded true;
      Multi.close mc
    end;
    if i = s.p_degrade_from + s.p_degrade_len then begin
      Atomic.set degraded false;
      Multi.close mc
    end;
    let req =
      if i mod 3 = 0 then
        Json.Obj
          [
            ("op", Json.String "sim"); ("policy", Json.String "lru");
            ("k", Json.Int 64); ("seed", Json.Int i);
            ("workload", Json.String "zipf"); ("n", Json.Int 500);
            ("universe", Json.Int 256);
          ]
      else Json.Obj [ ("op", Json.String "health") ]
    in
    dbg "partition request %d" i;
    (match Multi.request mc req with
    | Ok reply -> if is_ok_reply reply then incr oks
    | Error f ->
        incr failures;
        Printf.eprintf "gcchaos: partition seed %d request %d failed: %s\n%!"
          seed i
          (Gc_resil.Resilient_client.string_of_failure f));
    incr settled
  done;
  let failovers = Multi.failovers mc
  and hedges = Multi.hedges mc
  and hedge_wins = Multi.hedge_wins mc in
  Multi.close mc;
  Gc_fault.Net_proxy.stop proxy;
  dbg "partition draining";
  Gc_exec.Cancel.request stop ~reason:"partition drill complete";
  Thread.join fl;
  let fleet_outcome =
    match !outcome with
    | Ok o -> o
    | Error m -> Cli_common.fail_runtime "partition: fleet died: %s" m
  in
  let restarts =
    Array.map
      (fun (o : Supervise.outcome) -> o.Supervise.restarts)
      fleet_outcome.Gc_resil.Fleet.replicas
  in
  let silent =
    Array.init partition_replicas (fun i ->
        Result.is_error
          (Client.request_result ~timeout:1.
             (Client.Unix_path (sock i))
             (Json.Obj [ ("op", Json.String "health") ])))
  in
  let manifests =
    let rec go i =
      if i >= partition_replicas then Ok ()
      else
        match
          Result.bind
            (manifest_reconciles (manifest_path i))
            (fun () -> manifest_names_replica (manifest_path i) (name i))
        with
        | Ok () -> go (i + 1)
        | Error m -> Error (Printf.sprintf "replica %d: %s" i m)
    in
    go 0
  in
  let check name = function
    | Ok () -> (name, Json.Bool true)
    | Error m ->
        Printf.eprintf "gcchaos: partition seed %d invariant %s: %s\n%!" seed
          name m;
        (name, Json.Bool false)
  in
  let bool_check name ok detail =
    check name (if ok then Ok () else Error detail)
  in
  let invariants =
    [
      bool_check "every_request_settled" (!settled = requests)
        (Printf.sprintf "settled %d of %d" !settled requests);
      bool_check "zero_failed_requests"
        (!failures = 0 && !oks = requests)
        (Printf.sprintf "%d failures, %d ok replies of %d" !failures !oks
           requests);
      bool_check "restarts_isolated_to_kill"
        (restarts.(s.p_kill) = 1
        && restarts.(s.p_stop) = 0
        && restarts.(s.p_degrade) = 0
        && fleet_outcome.Gc_resil.Fleet.result = `Drained)
        (Printf.sprintf "restarts kill=%d stop=%d degrade=%d, %s"
           restarts.(s.p_kill) restarts.(s.p_stop)
           restarts.(s.p_degrade)
           (match fleet_outcome.Gc_resil.Fleet.result with
           | `Drained -> "drained"
           | `All_gave_up -> "all gave up"));
      bool_check "killed_replica_reprobed_up" !recovered
        "killed replica not Up after its re-probe";
      bool_check "failover_covered_the_kill" (failovers >= 1)
        "no failover despite a SIGKILLed replica";
      bool_check "hedges_fired" (hedges >= 1)
        "no hedge despite a stalled replica";
      bool_check "hedge_wins_bounded"
        (hedge_wins >= 1 && hedge_wins <= hedges)
        (Printf.sprintf "%d hedge wins of %d hedges" hedge_wins hedges);
      check "replica_manifests_reconcile" manifests;
      bool_check "silent_after_drain"
        (Array.for_all Fun.id silent)
        "a replica answered after the fleet drained";
    ]
  in
  let report =
    Json.Obj
      [
        ("seed", Json.Int seed);
        ("requests", Json.Int requests);
        ("kill_replica", Json.Int s.p_kill);
        ("stop_replica", Json.Int s.p_stop);
        ("degrade_replica", Json.Int s.p_degrade);
        ("kill_at", Json.Int s.p_kill_at);
        ( "stop_window",
          Json.Array [ Json.Int s.p_stop_from; Json.Int s.p_stop_len ] );
        ( "degrade_window",
          Json.Array [ Json.Int s.p_degrade_from; Json.Int s.p_degrade_len ] );
        ("settled", Json.Int !settled);
        ( "restarts",
          Json.Array (Array.to_list restarts |> List.map (fun r -> Json.Int r))
        );
        ("invariants", Json.Obj invariants);
      ]
  in
  let ok = List.for_all (fun (_, v) -> v = Json.Bool true) invariants in
  (report, ok)

(* ----------------------------------------------------------------- CLI *)

let parse_seeds s =
  match
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string
  with
  | [] -> Cli_common.fail_usage "no seeds in %S" s
  | seeds -> seeds
  | exception Failure _ ->
      Cli_common.fail_usage "seeds must be comma-separated integers, got %S" s

let default_server () =
  let dir = Filename.dirname Sys.executable_name in
  let candidates =
    [ Filename.concat dir "gcserved.exe"; Filename.concat dir "gcserved" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "gcserved"

let run_drill seeds server requests report_path verify_repro =
  if requests < 16 then
    Cli_common.fail_usage "--requests must be >= 16 (the schedule needs room)";
  let seeds =
    match seeds with
    | Some s -> parse_seeds s
    | None -> (
        match Sys.getenv_opt "GC_CHAOS_SEEDS" with
        | Some s -> parse_seeds s
        | None -> [ 1; 2; 3 ])
  in
  let server_exe =
    match server with Some p -> p | None -> default_server ()
  in
  if not (Sys.file_exists server_exe) then
    Cli_common.fail_usage "server executable %s not found (--server)" server_exe;
  let failures = ref 0 in
  let reports =
    List.map
      (fun seed ->
        Printf.eprintf "gcchaos: drilling seed %d\n%!" seed;
        let report, ok = drill ~server_exe ~requests ~seed in
        if not ok then incr failures;
        if verify_repro then begin
          let again, _ = drill ~server_exe ~requests ~seed in
          if Json.to_string again <> Json.to_string report then begin
            Printf.eprintf
              "gcchaos: seed %d is NOT reproducible\n  first:  %s\n  second: %s\n%!"
              seed (Json.to_string report) (Json.to_string again);
            incr failures
          end
        end;
        report)
      seeds
  in
  let combined =
    Json.Obj
      [
        ("tool", Json.String "gcchaos");
        ("requests", Json.Int requests);
        ("verify_repro", Json.Bool verify_repro);
        ("drills", Json.Array reports);
      ]
  in
  print_endline (Json.to_string combined);
  (match report_path with
  | Some path -> Gc_obs.Export.write_json_atomic path combined
  | None -> ());
  if !failures > 0 then
    Cli_common.fail_model "%d drill(s) violated invariants" !failures;
  Cli_common.ok

let drill_cmd =
  Cmd.v
    (Cmd.info "drill"
       ~doc:
         "Run deterministic chaos drills: crash, pause, corrupt, tear — \
          then assert every recovery invariant")
    Term.(
      const run_drill
      $ Arg.(
          value
          & opt (some string) None
          & info [ "seeds" ] ~docv:"N,N,..."
              ~doc:
                "Drill seeds (default: $(b,GC_CHAOS_SEEDS) from the \
                 environment, else 1,2,3).  Each seed derives an \
                 independent fault schedule.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "server" ] ~docv:"EXE"
              ~doc:
                "The gcserved executable to supervise (default: the \
                 gcserved next to this binary).")
      $ Arg.(
          value
          & opt int 18
          & info [ "requests" ] ~docv:"N"
              ~doc:"Direct requests per drill (minimum 16).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "report" ] ~docv:"FILE"
              ~doc:"Also write the combined JSON report to $(docv).")
      $ Arg.(
          value & flag
          & info [ "verify-repro" ]
              ~doc:
                "Run every seed twice and require byte-identical \
                 reports — the determinism contract, enforced."))

let run_storm seeds server report_path verify_repro =
  let seeds =
    match seeds with
    | Some s -> parse_seeds s
    | None -> (
        match Sys.getenv_opt "GC_CHAOS_SEEDS" with
        | Some s -> parse_seeds s
        | None -> [ 1 ])
  in
  let server_exe =
    match server with Some p -> p | None -> default_server ()
  in
  if not (Sys.file_exists server_exe) then
    Cli_common.fail_usage "server executable %s not found (--server)" server_exe;
  let failures = ref 0 in
  let reports =
    List.map
      (fun seed ->
        Printf.eprintf "gcchaos: storming seed %d\n%!" seed;
        let report, ok = storm ~server_exe ~seed in
        if not ok then incr failures;
        if verify_repro then begin
          let again, _ = storm ~server_exe ~seed in
          if Json.to_string again <> Json.to_string report then begin
            Printf.eprintf
              "gcchaos: storm seed %d is NOT reproducible\n\
              \  first:  %s\n\
              \  second: %s\n\
               %!"
              seed (Json.to_string report) (Json.to_string again);
            incr failures
          end
        end;
        report)
      seeds
  in
  let combined =
    Json.Obj
      [
        ("tool", Json.String "gcchaos storm");
        ("verify_repro", Json.Bool verify_repro);
        ("storms", Json.Array reports);
      ]
  in
  print_endline (Json.to_string combined);
  (match report_path with
  | Some path -> Gc_obs.Export.write_json_atomic path combined
  | None -> ());
  if !failures > 0 then
    Cli_common.fail_model "%d storm(s) violated invariants" !failures;
  Cli_common.ok

let storm_cmd =
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Run the metastability drill: prove retry storms collapse a \
          naive server and that budgets + sojourn shedding recover it")
    Term.(
      const run_storm
      $ Arg.(
          value
          & opt (some string) None
          & info [ "seeds"; "seed" ] ~docv:"N,N,..."
              ~doc:
                "Storm seeds (default: $(b,GC_CHAOS_SEEDS) from the \
                 environment, else 1).  Each seed derives the server's \
                 hint jitter and every client's backoff schedule.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "server" ] ~docv:"EXE"
              ~doc:
                "The gcserved executable to supervise (default: the \
                 gcserved next to this binary).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "report" ] ~docv:"FILE"
              ~doc:"Also write the combined JSON report to $(docv).")
      $ Arg.(
          value & flag
          & info [ "verify-repro" ]
              ~doc:
                "Run every seed twice and require byte-identical \
                 reports — the determinism contract, enforced."))

let run_partition seeds server requests report_path verify_repro =
  if requests < 24 then
    Cli_common.fail_usage "--requests must be >= 24 (the schedule needs room)";
  let seeds =
    match seeds with
    | Some s -> parse_seeds s
    | None -> (
        match Sys.getenv_opt "GC_CHAOS_SEEDS" with
        | Some s -> parse_seeds s
        | None -> [ 1; 2; 3 ])
  in
  let server_exe =
    match server with Some p -> p | None -> default_server ()
  in
  if not (Sys.file_exists server_exe) then
    Cli_common.fail_usage "server executable %s not found (--server)" server_exe;
  let failures = ref 0 in
  let reports =
    List.map
      (fun seed ->
        Printf.eprintf "gcchaos: partitioning seed %d\n%!" seed;
        let report, ok = partition ~server_exe ~requests ~seed in
        if not ok then incr failures;
        if verify_repro then begin
          let again, _ = partition ~server_exe ~requests ~seed in
          if Json.to_string again <> Json.to_string report then begin
            Printf.eprintf
              "gcchaos: partition seed %d is NOT reproducible\n\
              \  first:  %s\n\
              \  second: %s\n\
               %!"
              seed (Json.to_string report) (Json.to_string again);
            incr failures
          end
        end;
        report)
      seeds
  in
  let combined =
    Json.Obj
      [
        ("tool", Json.String "gcchaos partition");
        ("requests", Json.Int requests);
        ("verify_repro", Json.Bool verify_repro);
        ("partitions", Json.Array reports);
      ]
  in
  print_endline (Json.to_string combined);
  (match report_path with
  | Some path -> Gc_obs.Export.write_json_atomic path combined
  | None -> ());
  if !failures > 0 then
    Cli_common.fail_model "%d partition drill(s) violated invariants" !failures;
  Cli_common.ok

let partition_cmd =
  Cmd.v
    (Cmd.info "partition"
       ~doc:
         "Run the replica-set drill: kill, pause, and degrade one \
          replica each of a supervised fleet of three, and prove the \
          multi-endpoint client's failover and hedging hide all of it")
    Term.(
      const run_partition
      $ Arg.(
          value
          & opt (some string) None
          & info [ "seeds" ] ~docv:"N,N,..."
              ~doc:
                "Drill seeds (default: $(b,GC_CHAOS_SEEDS) from the \
                 environment, else 1,2,3).  Each seed derives the victim \
                 assignments and fault windows.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "server" ] ~docv:"EXE"
              ~doc:
                "The gcserved executable to supervise (default: the \
                 gcserved next to this binary).")
      $ Arg.(
          value
          & opt int 26
          & info [ "requests" ] ~docv:"N"
              ~doc:"Requests per drill (minimum 24).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "report" ] ~docv:"FILE"
              ~doc:"Also write the combined JSON report to $(docv).")
      $ Arg.(
          value & flag
          & info [ "verify-repro" ]
              ~doc:
                "Run every seed twice and require byte-identical \
                 reports — the determinism contract, enforced."))

let () =
  exit
    (Cli_common.eval
       (Cmd.group
          (Cmd.info "gcchaos" ~version:"%%VERSION%%"
             ~doc:"Deterministic chaos drills for the gcserved stack")
          [ drill_cmd; storm_cmd; partition_cmd ]))
