module Clock = Gc_prof.Clock

type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  budget : float option;
}

let default =
  {
    max_attempts = 4;
    base_delay = 0.05;
    max_delay = 2.;
    jitter = 0.25;
    budget = None;
  }

let delay_for policy ~rng ~attempt =
  let attempt = max 1 attempt in
  (* 2^(attempt-1) without overflow drama: the cap lands long before the
     exponent matters. *)
  let exp =
    if attempt > 32 then policy.max_delay
    else policy.base_delay *. Float.of_int (1 lsl (attempt - 1))
  in
  let d = Float.min policy.max_delay (Float.max 0. exp) in
  let jitter = Float.min 1. (Float.max 0. policy.jitter) in
  (* One rng draw per delay, even when jitter is 0, so the consumed
     stream — and therefore everything downstream of a split — does not
     depend on the jitter setting. *)
  let u = Gc_trace.Rng.float rng 1. in
  d *. (1. -. (jitter *. u))

type 'e give_up = {
  attempts : int;
  last_error : 'e;
  budget_spent : bool;
}

let run ?(policy = default) ?(sleep = Gc_exec.Pool.nap) ~rng ~retryable f =
  if policy.max_attempts < 1 then
    invalid_arg "Retry.run: max_attempts must be >= 1";
  let deadline = Option.map (fun b -> Clock.now_s () +. b) policy.budget in
  let out_of_budget () =
    match deadline with None -> false | Some d -> Clock.now_s () >= d
  in
  let rec go attempt =
    match f ~attempt with
    | Ok v -> Ok v
    | Error e ->
        if not (retryable e) then
          Error { attempts = attempt; last_error = e; budget_spent = false }
        else if attempt >= policy.max_attempts then
          Error { attempts = attempt; last_error = e; budget_spent = false }
        else if out_of_budget () then
          Error { attempts = attempt; last_error = e; budget_spent = true }
        else begin
          let d = delay_for policy ~rng ~attempt in
          (* Never sleep past the budget: trim the delay to what is left,
             and if nothing is, report the budget as the stopper. *)
          let d =
            match deadline with
            | None -> d
            | Some dl -> Float.min d (dl -. Clock.now_s ())
          in
          if d > 0. then sleep d;
          if out_of_budget () then
            Error { attempts = attempt; last_error = e; budget_spent = true }
          else go (attempt + 1)
        end
  in
  go 1
