(** Circuit breaker: fail fast when a dependency is known-bad.

    Classic three-state machine over a sliding window of outcomes:

    - {b Closed} — normal operation.  Every outcome lands in a ring of
      the last [window] calls; when at least [min_samples] are present
      and the failure fraction reaches [failure_threshold], the breaker
      opens.
    - {b Open} — calls are refused ({!allow} is [false]) without touching
      the dependency, for [cooldown] seconds on the monotonic
      {!Gc_prof.Clock}.
    - {b Half_open} — after the cooldown, exactly one probe call is let
      through.  Its success closes the breaker (window reset); its
      failure re-opens it for another cooldown.

    Thread-safe (one mutex; hammer threads share a breaker per
    dependency).  When given a registry, the breaker keeps a state gauge
    ([0] closed, [1] half-open, [2] open) registered under
    [breaker_state] so chaos drills and the stats op can watch it flip. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed" | "open" | "half-open"]. *)

type config = {
  window : int;  (** Outcomes remembered ([>= 1]). *)
  min_samples : int;  (** Outcomes required before the rate can trip. *)
  failure_threshold : float;  (** Failure fraction in [[0, 1]] that opens. *)
  cooldown : float;  (** Seconds open before the half-open probe. *)
}

val default_config : config
(** Window 20, min 5 samples, threshold 0.5, cooldown 1s. *)

type t

val create :
  ?config:config ->
  ?registry:Gc_obs.Registry.t ->
  ?name:string ->
  unit ->
  t
(** [name] (default ["default"]) labels the [breaker_state] gauge when a
    [registry] is given. *)

val allow : t -> bool
(** May a call proceed right now?  Moves [Open -> Half_open] when the
    cooldown has passed (claiming the single probe slot). *)

val record : t -> ok:bool -> unit
(** Report the outcome of an allowed call. *)

val state : t -> state
val config : t -> config

val failure_rate : t -> float
(** Current failure fraction over the window ([0.] when empty). *)
