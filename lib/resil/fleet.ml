let replica_socket ~base i = Printf.sprintf "%s.%d" base i

type outcome = {
  replicas : Supervise.outcome array;
  result : [ `Drained | `All_gave_up ];
}

let run ?on_event ~stop configs =
  let n = Array.length configs in
  if n = 0 then invalid_arg "Fleet.run: no replicas";
  let outcomes =
    Array.make n { Supervise.result = `Gave_up; restarts = 0 }
  in
  let failures = Array.make n None in
  let one i =
    let on_event =
      Option.map (fun f event -> f ~replica:i event) on_event
    in
    (* The catch-all is capture, not disposal: the exception crosses the
       thread boundary here and [run] re-raises it after the join. *)
    (match Supervise.run ?on_event ~stop configs.(i) with
    | outcome -> outcomes.(i) <- outcome
    | exception exn -> failures.(i) <- Some exn)
    [@lint.allow "swallowed-cancellation"]
  in
  (* One blocking supervisor per replica: process babysitting is
     wall-clock work that cannot run on the deterministic Gc_exec
     pool. *)
  let threads =
    Array.init n (fun i ->
        Thread.create one i [@lint.allow "spawn-outside-pool"])
  in
  Array.iter Thread.join threads;
  (match Array.find_opt Option.is_some failures with
  | Some (Some exn) -> raise exn
  | _ -> ());
  let all_gave_up =
    Array.for_all (fun o -> o.Supervise.result = `Gave_up) outcomes
  in
  {
    replicas = outcomes;
    result = (if all_gave_up then `All_gave_up else `Drained);
  }
