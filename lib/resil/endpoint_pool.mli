(** Health-aware endpoint selection for a replica set.

    A pool tracks one slot per server address with a three-state health
    machine driven by observed request outcomes:

    - {b Up} — serving normally; eligible for routing.
    - {b Suspect} — at least [suspect_after] consecutive failures; only
      routed to when no Up endpoint is eligible.
    - {b Down} — at least [down_after] consecutive failures; parked
      behind a jittered re-probe deadline.  Once the deadline passes the
      endpoint becomes pickable again exactly once (a live-traffic
      probe); another failure pushes the deadline out with exponential
      backoff, a success returns it to Up.

    Routing is power-of-two-choices on an EWMA of observed latency: pick
    two distinct candidates from the healthiest non-empty tier, keep the
    faster.  Until two candidates have latency samples — or when [p2c]
    is off — the pool falls back to a rotating cursor, which is fully
    deterministic under a fixed request order (the chaos drills rely on
    this).

    Each slot owns a {!Breaker} so one bad replica trips in isolation —
    the pool holds it so the registry labels line up, but never records
    outcomes on it: breaker accounting stays with the caller, which
    knows whether a failure was a real dependency fault or its own
    cancellation.  The pool itself never dials anything: callers report
    outcomes via {!note_ok} / {!note_failure} (or {!note_probe} for
    out-of-band health probes) and the pool only decides {e where to
    send next}.

    Thread-safe (one mutex); randomness comes from a seeded
    {!Gc_trace.Rng}, time from the monotonic {!Gc_prof.Clock}.  With a
    registry, each endpoint keeps an [endpoint_state] gauge ([0] up,
    [1] suspect, [2] down) labeled by address, plus the per-endpoint
    [breaker_state] gauges. *)

type state = Up | Suspect | Down

val state_name : state -> string
(** ["up" | "suspect" | "down"]. *)

type config = {
  suspect_after : int;  (** Consecutive failures before Suspect ([>= 1]). *)
  down_after : int;  (** Consecutive failures before Down ([>= suspect_after]). *)
  reprobe_after : float;  (** Base re-probe delay once Down, seconds. *)
  reprobe_max : float;  (** Re-probe backoff ceiling, seconds. *)
  reprobe_jitter : float;  (** Fractional jitter on re-probe delays, [[0, 1]]. *)
  ewma_alpha : float;  (** Weight of the newest latency sample, [(0, 1]]. *)
  latency_window : int;  (** Ring of recent latencies kept for quantiles. *)
  p2c : bool;  (** Power-of-two-choices on EWMA latency; rotation when off. *)
}

val default_config : config
(** Suspect after 1, down after 3, re-probe 0.5s doubling to 10s with
    25% jitter, EWMA alpha 0.3, 64-sample latency window, p2c on. *)

type t

val create :
  ?config:config ->
  ?breaker_config:Breaker.config ->
  ?registry:Gc_obs.Registry.t ->
  seed:int ->
  Gc_serve.Client.addr list ->
  t
(** Raises [Invalid_argument] on an empty address list or a config that
    violates the field constraints above. *)

val length : t -> int
val addr : t -> int -> Gc_serve.Client.addr
val breaker : t -> int -> Breaker.t
val state : t -> int -> state

val states : t -> (string * state) list
(** [(address, state)] per endpoint, in creation order. *)

val pick : ?avoid:int list -> t -> int
(** Choose an endpoint for the next request: healthiest non-empty tier
    (Up, then Suspect plus re-probe-due Down, then Down), p2c or
    rotation within the tier, skipping [avoid] — unless [avoid] covers
    every endpoint, in which case it is ignored (the pool always
    answers; the caller's failover loop bounds its own attempts). *)

val note_ok : t -> int -> latency_s:float -> unit
(** A request to endpoint [i] succeeded in [latency_s] seconds: reset it
    to Up and fold the sample into its EWMA and the pool's latency
    ring.  (Record the matching breaker outcome yourself.) *)

val note_failure : t -> int -> unit
(** A request to endpoint [i] failed at transport level: bump its
    consecutive-failure count (Suspect / Down per the thresholds) and
    schedule the jittered re-probe.  (Record the matching breaker
    outcome yourself.) *)

val note_probe : t -> int -> ok:bool -> unit
(** Outcome of an out-of-band health probe: success restores Up (no
    latency sample — probes answer from a hot path and would skew the
    hedge quantile), failure re-parks the endpoint. *)

val due_probes : t -> int list
(** Non-Up endpoints whose re-probe deadline has passed, in index order
    — the set an external prober should health-check now. *)

val latency_quantile : t -> float -> float option
(** [latency_quantile t q] is the nearest-rank [q]-quantile of the
    pool-wide ring of recent success latencies, or [None] before the
    first sample.  Feeds the hedge-delay computation. *)
