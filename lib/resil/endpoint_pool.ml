module Client = Gc_serve.Client
module Clock = Gc_prof.Clock
module Rng = Gc_trace.Rng
module Registry = Gc_obs.Registry

type state = Up | Suspect | Down

let state_name = function Up -> "up" | Suspect -> "suspect" | Down -> "down"
let state_level = function Up -> 0 | Suspect -> 1 | Down -> 2

type config = {
  suspect_after : int;
  down_after : int;
  reprobe_after : float;
  reprobe_max : float;
  reprobe_jitter : float;
  ewma_alpha : float;
  latency_window : int;
  p2c : bool;
}

let default_config =
  {
    suspect_after = 1;
    down_after = 3;
    reprobe_after = 0.5;
    reprobe_max = 10.;
    reprobe_jitter = 0.25;
    ewma_alpha = 0.3;
    latency_window = 64;
    p2c = true;
  }

let validate c =
  if c.suspect_after < 1 then
    invalid_arg "Endpoint_pool.create: suspect_after < 1";
  if c.down_after < c.suspect_after then
    invalid_arg "Endpoint_pool.create: down_after < suspect_after";
  if c.reprobe_after <= 0. || c.reprobe_max < c.reprobe_after then
    invalid_arg "Endpoint_pool.create: bad re-probe delays";
  if c.reprobe_jitter < 0. || c.reprobe_jitter > 1. then
    invalid_arg "Endpoint_pool.create: reprobe_jitter outside [0, 1]";
  if c.ewma_alpha <= 0. || c.ewma_alpha > 1. then
    invalid_arg "Endpoint_pool.create: ewma_alpha outside (0, 1]";
  if c.latency_window < 1 then
    invalid_arg "Endpoint_pool.create: latency_window < 1"

type endpoint = {
  e_addr : Client.addr;
  e_breaker : Breaker.t;
  mutable e_state : state;
  mutable e_fails : int;  (* consecutive failures *)
  mutable e_ewma : float;  (* EWMA latency, seconds; < 0 = no samples *)
  mutable e_next_probe : float;  (* monotonic re-probe deadline *)
  e_gauge : Registry.gauge option;
}

type t = {
  cfg : config;
  mu : Mutex.t;
  rng : Rng.t;
  eps : endpoint array;
  lat : float array;  (* ring of recent success latencies, seconds *)
  mutable lat_n : int;  (* total samples recorded *)
  mutable cursor : int;  (* rotation cursor for the non-p2c path *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let publish ep =
  match ep.e_gauge with
  | None -> ()
  | Some g -> Registry.set g (state_level ep.e_state)

let create ?(config = default_config) ?breaker_config ?registry ~seed addrs =
  validate config;
  if addrs = [] then invalid_arg "Endpoint_pool.create: no endpoints";
  let ep addr =
    let name = Client.addr_string addr in
    let e_gauge =
      Option.map
        (fun reg ->
          let g = Registry.gauge reg ~labels:[ ("endpoint", name) ] "endpoint_state" in
          Registry.set g 0;
          g)
        registry
    in
    {
      e_addr = addr;
      e_breaker = Breaker.create ?config:breaker_config ?registry ~name ();
      e_state = Up;
      e_fails = 0;
      e_ewma = -1.;
      e_next_probe = 0.;
      e_gauge;
    }
  in
  {
    cfg = config;
    mu = Mutex.create ();
    rng = Rng.create seed;
    eps = Array.of_list (List.map ep addrs);
    lat = Array.make config.latency_window (-1.);
    lat_n = 0;
    cursor = -1;
  }

let length t = Array.length t.eps
let addr t i = t.eps.(i).e_addr
let breaker t i = t.eps.(i).e_breaker
let state t i = locked t (fun () -> t.eps.(i).e_state)

let states t =
  locked t (fun () ->
      Array.to_list
        (Array.map (fun ep -> (Client.addr_string ep.e_addr, ep.e_state)) t.eps))

(* ------------------------------------------------------------ routing *)

let indices_where t pred =
  let out = ref [] in
  for i = Array.length t.eps - 1 downto 0 do
    if pred i t.eps.(i) then out := i :: !out
  done;
  !out

(* Healthiest non-empty tier: Up first; then Suspect together with Down
   endpoints whose re-probe deadline has passed (live-traffic probes);
   last resort, anything Down.  [avoid] applies per tier and is dropped
   entirely when it would leave no endpoint at all. *)
let tier_of t ~now ~avoid =
  let eligible i = not (List.mem i avoid) in
  let try_tiers eligible =
    let up = indices_where t (fun i ep -> eligible i && ep.e_state = Up) in
    if up <> [] then up
    else
      let mid =
        indices_where t (fun i ep ->
            eligible i
            && (ep.e_state = Suspect
               || (ep.e_state = Down && now >= ep.e_next_probe)))
      in
      if mid <> [] then mid
      else indices_where t (fun i _ -> eligible i)
  in
  match try_tiers eligible with
  | [] -> try_tiers (fun _ -> true)
  | tier -> tier

let pick_rotation t tier =
  t.cursor <- t.cursor + 1;
  let arr = Array.of_list tier in
  arr.(t.cursor mod Array.length arr)

let pick ?(avoid = []) t =
  locked t (fun () ->
      let now = Clock.now_s () in
      match tier_of t ~now ~avoid with
      | [] -> assert false (* pool is never empty *)
      | [ i ] -> i
      | tier ->
          let sampled =
            List.filter (fun i -> t.eps.(i).e_ewma >= 0.) tier
          in
          if (not t.cfg.p2c) || List.length sampled < 2 then
            pick_rotation t tier
          else begin
            (* Power of two choices: two distinct sampled candidates,
               keep the one with the faster EWMA (ties to the first). *)
            let arr = Array.of_list sampled in
            let n = Array.length arr in
            let a = Rng.int t.rng n in
            let b = (a + 1 + Rng.int t.rng (n - 1)) mod n in
            let ia = arr.(a) and ib = arr.(b) in
            if t.eps.(ib).e_ewma < t.eps.(ia).e_ewma then ib else ia
          end)

(* ----------------------------------------------------- health updates *)

let schedule_reprobe t ep =
  (* Exponential backoff past the Down threshold, jittered so a replica
     set never synchronizes its probes. *)
  let over = max 0 (ep.e_fails - t.cfg.down_after) in
  let base =
    Float.min t.cfg.reprobe_max
      (t.cfg.reprobe_after *. Float.pow 2. (Float.of_int over))
  in
  let j = t.cfg.reprobe_jitter in
  let factor = 1. -. j +. (2. *. j *. Rng.float t.rng 1.) in
  ep.e_next_probe <- Clock.now_s () +. (base *. factor)

let mark_up ep =
  ep.e_fails <- 0;
  ep.e_state <- Up;
  publish ep

let mark_failed t ep =
  ep.e_fails <- ep.e_fails + 1;
  if ep.e_fails >= t.cfg.down_after then begin
    ep.e_state <- Down;
    schedule_reprobe t ep
  end
  else if ep.e_fails >= t.cfg.suspect_after then begin
    ep.e_state <- Suspect;
    schedule_reprobe t ep
  end;
  publish ep

let note_ok t i ~latency_s =
  locked t (fun () ->
      let ep = t.eps.(i) in
      mark_up ep;
      ep.e_ewma <-
        (if ep.e_ewma < 0. then latency_s
         else
           (t.cfg.ewma_alpha *. latency_s)
           +. ((1. -. t.cfg.ewma_alpha) *. ep.e_ewma));
      t.lat.(t.lat_n mod t.cfg.latency_window) <- latency_s;
      t.lat_n <- t.lat_n + 1)

let note_failure t i = locked t (fun () -> mark_failed t t.eps.(i))

let note_probe t i ~ok =
  locked t (fun () ->
      let ep = t.eps.(i) in
      if ok then mark_up ep else mark_failed t ep)

let due_probes t =
  locked t (fun () ->
      let now = Clock.now_s () in
      indices_where t (fun _ ep -> ep.e_state <> Up && now >= ep.e_next_probe))

let latency_quantile t q =
  locked t (fun () ->
      let n = min t.lat_n t.cfg.latency_window in
      if n = 0 then None
      else begin
        let samples = Array.sub t.lat 0 n in
        Array.sort Float.compare samples;
        let q = Float.max 0. (Float.min 1. q) in
        let rank =
          min (n - 1) (Float.to_int (Float.round (q *. Float.of_int (n - 1))))
        in
        Some samples.(rank)
      end)
