module Clock = Gc_prof.Clock

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let gauge_value = function Closed -> 0 | Half_open -> 1 | Open -> 2

type config = {
  window : int;
  min_samples : int;
  failure_threshold : float;
  cooldown : float;
}

let default_config =
  { window = 20; min_samples = 5; failure_threshold = 0.5; cooldown = 1. }

type t = {
  cfg : config;
  mu : Mutex.t;
  ring : bool array;  (** [true] = failure. *)
  mutable filled : int;  (** Valid entries, [<= window]. *)
  mutable next : int;  (** Ring write cursor. *)
  mutable st : state;
  mutable opened_at : float;  (** Monotonic; meaningful while [Open]. *)
  mutable probe_inflight : bool;  (** The single half-open probe slot. *)
  gauge : Gc_obs.Registry.gauge option;
}

let create ?(config = default_config) ?registry ?(name = "default") () =
  if config.window < 1 then invalid_arg "Breaker.create: window must be >= 1";
  if config.failure_threshold < 0. || config.failure_threshold > 1. then
    invalid_arg "Breaker.create: failure_threshold must be in [0, 1]";
  {
    cfg = config;
    mu = Mutex.create ();
    ring = Array.make config.window false;
    filled = 0;
    next = 0;
    st = Closed;
    opened_at = 0.;
    probe_inflight = false;
    gauge =
      Option.map
        (fun reg ->
          Gc_obs.Registry.gauge reg ~labels:[ ("name", name) ] "breaker_state")
        registry;
  }

let publish t =
  match t.gauge with
  | Some g -> Gc_obs.Registry.set g (gauge_value t.st)
  | None -> ()

let locked t f =
  Mutex.lock t.mu;
  let v = f () in
  publish t;
  Mutex.unlock t.mu;
  v

let rate_locked t =
  if t.filled = 0 then 0.
  else begin
    let failures = ref 0 in
    for i = 0 to t.filled - 1 do
      if t.ring.(i) then incr failures
    done;
    Float.of_int !failures /. Float.of_int t.filled
  end

let reset_window_locked t =
  t.filled <- 0;
  t.next <- 0

let allow t =
  locked t (fun () ->
      match t.st with
      | Closed -> true
      | Half_open ->
          (* One probe at a time; concurrent callers fail fast until it
             reports. *)
          if t.probe_inflight then false
          else begin
            t.probe_inflight <- true;
            true
          end
      | Open ->
          if Clock.now_s () -. t.opened_at >= t.cfg.cooldown then begin
            t.st <- Half_open;
            t.probe_inflight <- true;
            true
          end
          else false)

let trip_locked t =
  t.st <- Open;
  t.opened_at <- Clock.now_s ();
  t.probe_inflight <- false;
  reset_window_locked t

let record t ~ok =
  locked t (fun () ->
      match t.st with
      | Half_open ->
          t.probe_inflight <- false;
          if ok then begin
            t.st <- Closed;
            reset_window_locked t
          end
          else trip_locked t
      | Open ->
          (* A straggler from before the trip; the window was reset, so
             just drop it. *)
          ()
      | Closed ->
          t.ring.(t.next) <- not ok;
          t.next <- (t.next + 1) mod t.cfg.window;
          if t.filled < t.cfg.window then t.filled <- t.filled + 1;
          if
            t.filled >= t.cfg.min_samples
            && rate_locked t >= t.cfg.failure_threshold
          then trip_locked t)

let state t = locked t (fun () -> t.st)
let config t = t.cfg
let failure_rate t = locked t (fun () -> rate_locked t)
