module Clock = Gc_prof.Clock
module Cancel = Gc_exec.Cancel
module Pool = Gc_exec.Pool
module Client = Gc_serve.Client
module Json = Gc_obs.Json

type config = {
  argv : string array;
  socket_path : string option;
  health_addr : Client.addr;
  health_interval : float;
  health_timeout : float;
  startup_grace : float;
  wedge_threshold : int;
  restart_window : float;
  max_restarts : int;
  backoff : Retry.policy;
  term_grace : float;
  drain_grace : float;
  seed : int;
}

let default_config ~argv ~health_addr =
  {
    argv;
    socket_path =
      (match health_addr with
      | Client.Unix_path p -> Some p
      | Client.Tcp _ -> None);
    health_addr;
    health_interval = 0.25;
    health_timeout = 2.;
    startup_grace = 10.;
    wedge_threshold = 8;
    restart_window = 60.;
    max_restarts = 5;
    backoff = { Retry.default with Retry.base_delay = 0.1; max_delay = 5. };
    term_grace = 5.;
    drain_grace = 30.;
    seed = 0;
  }

type event =
  | Spawned of int
  | Became_healthy of int
  | Exited of int * Unix.process_status
  | Wedged of int * int
  | Backing_off of int * float
  | Gave_up of int

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let event_string = function
  | Spawned pid -> Printf.sprintf "spawned pid %d" pid
  | Became_healthy pid -> Printf.sprintf "pid %d healthy" pid
  | Exited (pid, st) -> Printf.sprintf "pid %d %s" pid (status_string st)
  | Wedged (pid, n) ->
      Printf.sprintf "pid %d wedged (%d consecutive failed probes)" pid n
  | Backing_off (n, d) -> Printf.sprintf "restart %d in %.3fs" n d
  | Gave_up n -> Printf.sprintf "gave up after %d restarts" n

type outcome = {
  result : [ `Drained | `Gave_up ];
  restarts : int;
}

(* The same probe-and-replace the server's own bind runs: a socket file
   nothing answers on is debris from the dead child; one something
   answers on is left for the child's bind to refuse (which the restart
   budget then turns into a give-up instead of a flap). *)
let clear_stale_socket = function
  | None -> ()
  | Some path -> (
      match (Unix.stat path).Unix.st_kind with
      | exception Unix.Unix_error _ -> ()
      | Unix.S_SOCK -> (
          let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> Unix.close probe
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
              (try Unix.close probe with Unix.Unix_error _ -> ());
              (try Sys.remove path with Sys_error _ -> ())
          | exception Unix.Unix_error _ -> (
              try Unix.close probe with Unix.Unix_error _ -> ()))
      | _ -> ())

let kill_if_alive pid signal =
  try Unix.kill pid signal
  with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

(* Has the child exited?  Non-blocking. *)
let reap_nohang pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> None
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
      Some (Unix.WEXITED 0)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> None

(* SIGTERM, then wait up to [grace] for a clean exit, then SIGKILL.  The
   drain path uses a long grace; the wedge path a short one. *)
let put_down pid ~grace =
  kill_if_alive pid Sys.sigterm;
  let deadline = Clock.now_s () +. grace in
  let rec await () =
    match reap_nohang pid with
    | Some status -> status
    | None ->
        if Clock.now_s () >= deadline then begin
          kill_if_alive pid Sys.sigkill;
          match Unix.waitpid [] pid with
          | _, status -> status
          | exception Unix.Unix_error ((Unix.ECHILD | Unix.EINTR), _, _) ->
              Unix.WSIGNALED Sys.sigkill
        end
        else begin
          Pool.nap 0.02;
          await ()
        end
  in
  await ()

let health_req = Json.Obj [ ("op", Json.String "health") ]

let probe config =
  match
    Client.request_result ~timeout:config.health_timeout config.health_addr
      health_req
  with
  | Ok _ -> true
  | Error _ -> false

let run ?(on_event = fun (_ : event) -> ()) ~stop config =
  if Array.length config.argv = 0 then
    invalid_arg "Supervise.run: empty argv";
  if config.max_restarts < 0 then
    invalid_arg "Supervise.run: max_restarts must be >= 0";
  let rng = Gc_trace.Rng.create config.seed in
  let restarts = ref 0 in
  let restart_times = ref [] in
  let stopped () = Cancel.requested stop in
  let spawn () =
    clear_stale_socket config.socket_path;
    let pid =
      Unix.create_process config.argv.(0) config.argv Unix.stdin Unix.stderr
        Unix.stderr
    in
    on_event (Spawned pid);
    pid
  in
  (* Phase result for one child incarnation. *)
  let monitor pid =
    let startup_deadline = Clock.now_s () +. config.startup_grace in
    let rec starting () =
      if stopped () then `Stop
      else
        match reap_nohang pid with
        | Some status -> `Exited status
        | None ->
            if probe config then `Healthy
            else if Clock.now_s () >= startup_deadline then `Wedge 0
            else begin
              Pool.nap (Float.min 0.05 config.health_interval);
              starting ()
            end
    in
    match starting () with
    | (`Stop | `Exited _ | `Wedge _) as r -> r
    | `Healthy ->
        on_event (Became_healthy pid);
        let rec watching failures =
          if stopped () then `Stop
          else
            match reap_nohang pid with
            | Some status -> `Exited status
            | None ->
                Pool.nap config.health_interval;
                if stopped () then `Stop
                else if probe config then watching 0
                else begin
                  let failures = failures + 1 in
                  if failures >= config.wedge_threshold then `Wedge failures
                  else watching failures
                end
        in
        watching 0
  in
  (* One restart consumes budget from the sliding window; answers the
     backoff delay, or None when the budget is spent. *)
  let budget_restart () =
    let now = Clock.now_s () in
    restart_times :=
      List.filter (fun t -> now -. t < config.restart_window) !restart_times;
    if List.length !restart_times >= config.max_restarts then None
    else begin
      restart_times := now :: !restart_times;
      incr restarts;
      let attempt = List.length !restart_times in
      Some (Retry.delay_for config.backoff ~rng ~attempt)
    end
  in
  let drain pid =
    let status = put_down pid ~grace:config.drain_grace in
    on_event (Exited (pid, status));
    { result = `Drained; restarts = !restarts }
  in
  let rec incarnation () =
    if stopped () then { result = `Drained; restarts = !restarts }
    else begin
      let pid = spawn () in
      match monitor pid with
      | `Stop -> drain pid
      | `Exited status ->
          on_event (Exited (pid, status));
          after_death ()
      | `Wedge failures ->
          on_event (Wedged (pid, failures));
          let status = put_down pid ~grace:config.term_grace in
          on_event (Exited (pid, status));
          after_death ()
    end
  and after_death () =
    if stopped () then { result = `Drained; restarts = !restarts }
    else
      match budget_restart () with
      | None ->
          on_event (Gave_up !restarts);
          { result = `Gave_up; restarts = !restarts }
      | Some delay ->
          on_event (Backing_off (!restarts, delay));
          if delay > 0. then Pool.nap delay;
          incarnation ()
  in
  incarnation ()
