(** A replica set of supervised serving daemons.

    [gcserved fleet --replicas N]'s engine: one {!Supervise} loop per
    replica, each in its own thread, each with its own socket and its
    own restart budget.  The budgets are the bulkheads — a replica that
    crash-loops spends {e its} budget and goes dark ([`Gave_up]) while
    the others keep serving; the fleet as a whole only fails when every
    replica has given up.

    {!run} blocks until the shared [stop] token is requested (every
    still-running replica drains) or every replica has given up.
    Supervision events are delivered tagged with the replica index, from
    that replica's own thread. *)

val replica_socket : base:string -> int -> string
(** The fleet's socket naming convention: ["BASE.I"] — e.g.
    [replica_socket ~base:"gcserved.sock" 2 = "gcserved.sock.2"].
    Replica [i]'s server binds this; clients list the same paths. *)

type outcome = {
  replicas : Supervise.outcome array;  (** Indexed by replica. *)
  result : [ `Drained | `All_gave_up ];
      (** [`Drained] when at least one replica was still up to drain at
          stop time; [`All_gave_up] when every restart budget was spent
          — the whole-fleet outage. *)
}

val run :
  ?on_event:(replica:int -> Supervise.event -> unit) ->
  stop:Gc_exec.Cancel.t ->
  Supervise.config array ->
  outcome
(** Blocks as described above.  Raises [Invalid_argument] on an empty
    config array.  Each config should carry its own [socket_path] /
    [health_addr] (see {!replica_socket}) and ideally its own [seed] so
    backoff jitter never synchronizes across the set. *)
