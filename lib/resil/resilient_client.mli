(** A {!Gc_serve.Client} that survives restarts.

    One value per dependency (or per hammer thread): it owns a connection
    it transparently re-establishes, a {!Retry} policy, and optionally a
    shared {!Breaker}.  What a caller gets beyond the raw client:

    - {b automatic reconnect} — a [Refused]/[Reset]/[Timeout] transport
      failure drops the cached connection and the retry policy dials
      again, so a server restart (e.g. under [gcserved supervise]) costs
      one backoff delay, not an error surfaced to the caller;
    - {b idempotent-request retry keyed on the id echo} — every request
      is stamped with a fresh [id] (unless the caller set one); a reply
      whose echoed id differs is a stale leftover on a reused stream,
      {e proving} the reply is not ours — the connection is dropped and
      the request retried.  Only idempotent requests retry (the default:
      every protocol op is a pure computation), and [Protocol]-kind
      faults never do;
    - {b clean overloaded/expired/draining classification} — a framed
      ["overloaded"] or ["expired"] reply is retried with backoff (the
      shed was the server asking for exactly that) and surfaces as
      {!Rejected} when the attempts are out; a ["draining"] reply is
      never retried — the server is going away, and hammering it would
      fight the drain;
    - {b a success-coupled retry budget} — every retry costs a
      {!Gc_admit.Token_bucket} token, and tokens refill only on
      successful requests.  Against a collapsing server the budget
      drains and retries stop, which is what lets the server come back
      (naive unbudgeted retries hold an overload in its metastable
      state).  Pass [~retry_budget:None] to opt out — the chaos drills
      do, to demonstrate the collapse;
    - {b server backoff hints honoured} — a shed reply's
      [retry_after_ms] stretches the next retry delay to at least the
      hinted, server-jittered value, desynchronizing the retrying fleet.

    Other error replies (usage, timeout, exception, model-violation) are
    answers, not failures: they come back as [Ok reply] for the caller to
    interpret, exactly as with the raw client. *)

type t

type failure =
  | Transport of Gc_serve.Client.error * int
      (** Classified transport failure and the attempts made. *)
  | Rejected of string * string
      (** The server answered [overloaded]/[expired] (retries exhausted
          or the budget refused them) or [draining]: (kind, message). *)
  | Open_circuit  (** The breaker refused the call without dialing. *)

val string_of_failure : failure -> string

val create :
  ?timeout:float ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.t ->
  ?retry_budget:Gc_admit.Token_bucket.t option ->
  ?seed:int ->
  Gc_serve.Client.addr ->
  t
(** [timeout] (default 60s) bounds each attempt's reply wait; [seed]
    (default 0) seeds the jitter stream, so a drill replaying a seed
    replays the backoff schedule.  [retry_budget] defaults to a fresh
    {!Gc_admit.Token_bucket} with its defaults (10 tokens, 0.2 per
    success); [None] disables budgeting, [Some b] shares [b].  Requests
    on one [t] are serialized — share a breaker, not a [t], across
    threads. *)

val request :
  ?idempotent:bool -> t -> Gc_obs.Json.t -> (Gc_obs.Json.t, failure) result
(** Send one request, retrying per policy.  [idempotent] (default [true])
    gates every retry; with [~idempotent:false] the first classified
    failure is final. *)

val close : t -> unit
(** Drop the cached connection (idempotent; [t] remains usable). *)

val reconnects : t -> int
(** Connections established after the first — the restarts this client
    has ridden through. *)

val retries : t -> int
(** Attempts beyond the first, summed over all requests. *)

val budget_tokens : t -> float option
(** Tokens left in the retry budget; [None] when budgeting is off. *)

val budget_denials : t -> int
(** Retries the budget refused — each one a request the server did not
    have to shed again.  Always 0 when budgeting is off. *)
