(** A {!Gc_serve.Client} that survives restarts.

    One value per dependency (or per hammer thread): it owns a connection
    it transparently re-establishes, a {!Retry} policy, and optionally a
    shared {!Breaker}.  What a caller gets beyond the raw client:

    - {b automatic reconnect} — a [Refused]/[Reset]/[Timeout] transport
      failure drops the cached connection and the retry policy dials
      again, so a server restart (e.g. under [gcserved supervise]) costs
      one backoff delay, not an error surfaced to the caller;
    - {b idempotent-request retry keyed on the id echo} — every request
      is stamped with a fresh [id] (unless the caller set one); a reply
      whose echoed id differs is a stale leftover on a reused stream,
      {e proving} the reply is not ours — the connection is dropped and
      the request retried.  Only idempotent requests retry (the default:
      every protocol op is a pure computation), and [Protocol]-kind
      faults never do;
    - {b clean overloaded/expired/draining classification} — a framed
      ["overloaded"] or ["expired"] reply is retried with backoff (the
      shed was the server asking for exactly that) and surfaces as
      {!Rejected} when the attempts are out; a ["draining"] reply is
      never retried — the server is going away, and hammering it would
      fight the drain;
    - {b a success-coupled retry budget} — every retry costs a
      {!Gc_admit.Token_bucket} token, and tokens refill only on
      successful requests.  Against a collapsing server the budget
      drains and retries stop, which is what lets the server come back
      (naive unbudgeted retries hold an overload in its metastable
      state).  Pass [~retry_budget:None] to opt out — the chaos drills
      do, to demonstrate the collapse;
    - {b server backoff hints honoured} — a shed reply's
      [retry_after_ms] stretches the next retry delay to at least the
      hinted, server-jittered value, desynchronizing the retrying fleet.

    Other error replies (usage, timeout, exception, model-violation) are
    answers, not failures: they come back as [Ok reply] for the caller to
    interpret, exactly as with the raw client. *)

type t

type failure =
  | Transport of Gc_serve.Client.error * int
      (** Classified transport failure and the attempts made. *)
  | Rejected of string * string
      (** The server answered [overloaded]/[expired] (retries exhausted
          or the budget refused them) or [draining]: (kind, message). *)
  | Open_circuit  (** The breaker refused the call without dialing. *)

val string_of_failure : failure -> string

val create :
  ?timeout:float ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.t ->
  ?retry_budget:Gc_admit.Token_bucket.t option ->
  ?seed:int ->
  Gc_serve.Client.addr ->
  t
(** [timeout] (default 60s) bounds each attempt's reply wait; [seed]
    (default 0) seeds the jitter stream, so a drill replaying a seed
    replays the backoff schedule.  [retry_budget] defaults to a fresh
    {!Gc_admit.Token_bucket} with its defaults (10 tokens, 0.2 per
    success); [None] disables budgeting, [Some b] shares [b].  Requests
    on one [t] are serialized — share a breaker, not a [t], across
    threads. *)

val request :
  ?idempotent:bool -> t -> Gc_obs.Json.t -> (Gc_obs.Json.t, failure) result
(** Send one request, retrying per policy.  [idempotent] (default [true])
    gates every retry; with [~idempotent:false] the first classified
    failure is final. *)

val close : t -> unit
(** Drop the cached connection (idempotent; [t] remains usable). *)

val reconnects : t -> int
(** Connections established after the first — the restarts this client
    has ridden through. *)

val retries : t -> int
(** Attempts beyond the first, summed over all requests. *)

val budget_tokens : t -> float option
(** Tokens left in the retry budget; [None] when budgeting is off. *)

val budget_denials : t -> int
(** Retries the budget refused — each one a request the server did not
    have to shed again.  Always 0 when budgeting is off. *)

(** The multi-endpoint mode: one client over a replica set.

    Everything the single client does — reconnect, id-echo dedupe,
    rejection classification, retry budget, backoff hints — plus:

    - {b health-aware routing} via an {!Endpoint_pool}: up / suspect /
      down states driven by observed outcomes, jittered re-probe of down
      replicas, power-of-two-choices on observed latency (deterministic
      rotation until two latency samples exist, or with [p2c] off);
    - {b transparent failover} — a [Refused]/[Timeout]/[Reset] failure
      of an idempotent request moves to another replica {e within} the
      same attempt, with no backoff delay; an endpoint whose breaker is
      open is skipped before anything is sent (safe even for
      non-idempotent requests).  Backoff only happens between whole
      rounds, when every eligible replica has failed;
    - {b per-endpoint breakers} — one {!Breaker} per replica, so a
      single melting endpoint trips in isolation while the rest of the
      set keeps serving;
    - {b hedged requests} (opt-in) — when an idempotent request has not
      settled within a hedge delay derived from a latency quantile
      (clamped to [[min_delay, max_delay]]; [initial_delay] before the
      first sample), a second attempt fires at another Up replica.
      First reply wins; the loser's blocked read is woken by a socket
      shutdown and its result discarded, which the id-echo dedupe makes
      safe.  Hedges only target replicas with a Closed breaker, so a
      cancelled loser can never strand the half-open probe slot.

    The [hedges] / [hedge_wins] / [failovers] counters and the
    per-endpoint [endpoint_state] / [breaker_state] gauges flow into a
    registry when one is given, and out through the accessors below for
    drill reconciliation. *)
module Multi : sig
  type hedge_config = {
    quantile : float;  (** Latency quantile that sets the hedge delay. *)
    min_delay : float;  (** Clamp floor, seconds. *)
    max_delay : float;  (** Clamp ceiling, seconds. *)
    initial_delay : float;  (** Delay before any latency sample exists. *)
  }

  val default_hedge : hedge_config
  (** p90, clamped to [[10ms, 500ms]], 50ms before the first sample. *)

  type t

  val create :
    ?timeout:float ->
    ?retry:Retry.policy ->
    ?retry_budget:Gc_admit.Token_bucket.t option ->
    ?hedge:hedge_config ->
    ?pool_config:Endpoint_pool.config ->
    ?breaker_config:Breaker.config ->
    ?registry:Gc_obs.Registry.t ->
    ?probe_interval:float ->
    ?seed:int ->
    Gc_serve.Client.addr list ->
    t
  (** Defaults match the single client; [hedge] [None] disables hedging.
      [probe_interval] starts a background prober thread that
      health-checks re-probe-due endpoints every interval (stopped by
      {!close}); without it, call {!probe} yourself — down endpoints
      still recover through live-traffic re-probes either way.  Raises
      [Invalid_argument] on an empty endpoint list. *)

  val request :
    ?idempotent:bool -> t -> Gc_obs.Json.t -> (Gc_obs.Json.t, failure) result
  (** As the single client's {!request}; failover and hedging engage
      only when [idempotent] (the default). *)

  val probe : t -> unit
  (** Health-check every endpoint whose re-probe deadline has passed,
      updating pool states.  Out-of-band: safe to call from another
      thread while requests are in flight. *)

  val close : t -> unit
  (** Stop the prober (when running) and drop every cached connection;
      [t] remains usable. *)

  val pool : t -> Endpoint_pool.t
  val states : t -> (string * Endpoint_pool.state) list

  val retries : t -> int
  val failovers : t -> int
  (** Same-attempt switches to another replica after a transport
      failure or an open breaker. *)

  val hedges : t -> int
  (** Second attempts fired. *)

  val hedge_wins : t -> int
  (** Hedged attempts where the {e second} replica's reply won. *)

  val reconnects : t -> int
  (** Summed over all endpoint channels. *)

  val budget_tokens : t -> float option
  val budget_denials : t -> int
end
