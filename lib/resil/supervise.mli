(** Crash supervision for the serving daemon.

    The engine behind [gcserved supervise]: spawn the serve process as a
    child, watch it, put it back up when it falls over.  The state
    machine (documented with thresholds in doc/ROBUSTNESS.md):

    {v
      spawn -> starting --healthy--> monitoring --exit/wedge--> backoff
                  |                      |                        |
                  | startup_grace        | stop requested         | budget
                  v                      v                        v
                wedge path            drain (SIGTERM,          give up
                                      wait for exit 0)
    v}

    - {b liveness} is probed with the protocol's own [health] op over the
      socket — the probe proves the full stack (socket, framing,
      reader) answers, not merely that the pid exists;
    - {b crash} (the child exits) and {b wedge} ([wedge_threshold]
      consecutive probe failures while the pid lives; a wedged child is
      SIGTERMed, given [term_grace], then SIGKILLed) both lead to a
      restart with a {!Retry}-shaped backoff delay, jitter seeded from
      [seed];
    - the {b restart budget} is a sliding window: when a restart would be
      the [max_restarts + 1]th within [restart_window] seconds, the
      supervisor gives up instead of flapping forever ([`Gave_up] — exit
      3 at the CLI);
    - the {b stale-socket probe} re-runs before every spawn: a socket
      file left by the dead child is removed (after a probe connect
      confirms nothing is serving it), so the restart cannot lose the
      bind race the server's own probe would also win — and a path
      actively served by a foreign process is left alone (the child's
      bind will fail and the budget will stop the flapping);
    - {b stop} (the [stop] token, wired to SIGTERM/SIGINT by the CLI)
      forwards SIGTERM to the child and waits out its own two-stage
      drain; only if the child overstays [drain_grace] is it SIGKILLed.

    The supervisor itself is single-threaded and blocking — embed it in a
    thread (as [gcchaos] does) if you need it concurrent. *)

type config = {
  argv : string array;  (** Child command; [argv.(0)] is the executable. *)
  socket_path : string option;  (** For the pre-spawn stale-socket probe. *)
  health_addr : Gc_serve.Client.addr;
  health_interval : float;  (** Seconds between probes (default 0.25). *)
  health_timeout : float;  (** Per-probe reply budget (default 2). *)
  startup_grace : float;
      (** Budget for the first healthy probe after a spawn (default 10). *)
  wedge_threshold : int;
      (** Consecutive failed probes that declare a live pid wedged
          (default 8). *)
  restart_window : float;  (** Sliding budget window, seconds (default 60). *)
  max_restarts : int;  (** Restarts allowed per window (default 5). *)
  backoff : Retry.policy;  (** Shapes the delay before each respawn. *)
  term_grace : float;
      (** SIGTERM-to-SIGKILL grace when putting down a wedged child
          (default 5). *)
  drain_grace : float;
      (** How long a stop-requested drain may take before SIGKILL
          (default 30). *)
  seed : int;  (** Backoff jitter stream. *)
}

val default_config :
  argv:string array -> health_addr:Gc_serve.Client.addr -> config

type event =
  | Spawned of int  (** pid *)
  | Became_healthy of int
  | Exited of int * Unix.process_status
  | Wedged of int * int  (** pid, consecutive failed probes *)
  | Backing_off of int * float  (** restart ordinal (1-based), delay *)
  | Gave_up of int  (** restarts performed before giving up *)

val event_string : event -> string

type outcome = {
  result : [ `Drained | `Gave_up ];
  restarts : int;  (** Respawns after the initial spawn. *)
}

val run :
  ?on_event:(event -> unit) -> stop:Gc_exec.Cancel.t -> config -> outcome
(** Blocks until [stop] is requested (-> [`Drained], child reaped) or the
    restart budget is spent (-> [`Gave_up], no child running).
    [on_event] fires from the calling thread. *)
