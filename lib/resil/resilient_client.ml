module Json = Gc_obs.Json
module Client = Gc_serve.Client
module Protocol = Gc_serve.Protocol
module Token_bucket = Gc_admit.Token_bucket
module Registry = Gc_obs.Registry
module Clock = Gc_prof.Clock

type failure =
  | Transport of Client.error * int
  | Rejected of string * string
  | Open_circuit

let string_of_failure = function
  | Transport (e, attempts) ->
      Printf.sprintf "%s (after %d attempt%s)"
        (Client.string_of_client_error e)
        attempts
        (if attempts = 1 then "" else "s")
  | Rejected (kind, message) -> Printf.sprintf "%s: %s" kind message
  | Open_circuit -> "circuit open: failing fast without dialing"

(* ---------------------------------------------------------- channels *)

(* One server address plus its cached connection.  The single-endpoint
   client owns one; the multi-endpoint client owns one per replica.  The
   channel mutex only guards the [conn] slot (never held across a
   blocking send/recv), which is what lets a hedging race {!chan_cancel}
   a channel while another thread is blocked reading from it. *)
type chan = {
  c_addr : Client.addr;
  c_mu : Mutex.t;
  mutable c_conn : Client.conn option;
  mutable c_connected_once : bool;
  mutable c_reconnects : int;
}

let chan_make addr =
  {
    c_addr = addr;
    c_mu = Mutex.create ();
    c_conn = None;
    c_connected_once = false;
    c_reconnects = 0;
  }

let chan_locked ch f =
  Mutex.lock ch.c_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock ch.c_mu) f

let chan_drop ch =
  chan_locked ch (fun () ->
      match ch.c_conn with
      | None -> ()
      | Some c ->
          ch.c_conn <- None;
          Client.close c)

(* Wake a reader blocked on this channel: [shutdown], not [close] — the
   attempt thread still owns the descriptor and closes it itself when
   its read returns EOF, so the descriptor is never yanked out from
   under a live [read]. *)
let chan_cancel ch =
  chan_locked ch (fun () ->
      match ch.c_conn with
      | None -> ()
      | Some c -> (
          try Unix.shutdown (Client.fd c) Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ()))

let chan_reconnects ch = chan_locked ch (fun () -> ch.c_reconnects)

(* One attempt's failure, classified for the retry predicate. *)
type attempt_error =
  | A_transport of Client.error
  | A_stale of string  (** Id echo mismatch: a leftover reply, not ours. *)
  | A_rejected of string * string  (** overloaded | expired | draining *)
  | A_open

let chan_conn ~timeout ch =
  chan_locked ch (fun () ->
      match ch.c_conn with
      | Some c -> Ok c
      | None -> (
          match
            Client.connect_result ~timeout:(Float.min timeout 5.) ch.c_addr
          with
          | Ok c ->
              if ch.c_connected_once then
                ch.c_reconnects <- ch.c_reconnects + 1;
              ch.c_connected_once <- true;
              ch.c_conn <- Some c;
              Ok c
          | Error e -> Error (A_transport e)))

(* One send/recv round-trip on a channel, classified.  [note_hint] sees
   the server's [retry_after_ms] (seconds) from a shed reply. *)
let chan_attempt ~timeout ~note_hint ch json sent_id =
  let ( let* ) = Result.bind in
  let* c = chan_conn ~timeout ch in
  let transport r =
    Result.map_error
      (fun e ->
        chan_drop ch;
        A_transport e)
      r
  in
  let* () = transport (Client.send_result c json) in
  let* reply = transport (Client.recv_result ~timeout c) in
  match Protocol.reply_of_json reply with
  | Error message ->
      chan_drop ch;
      Error (A_transport { Client.kind = Client.Protocol; message })
  | Ok (echoed, body) -> (
      if echoed <> sent_id then begin
        (* A reply for some earlier request on this stream (e.g. one we
           timed out on): the id echo proves it is not ours.  Resync by
           redialing. *)
        chan_drop ch;
        Error
          (A_stale
             (Printf.sprintf "stale reply: sent id %s, reply echoes %s"
                (match sent_id with Some j -> Json.to_string j | None -> "none")
                (match echoed with Some j -> Json.to_string j | None -> "none")))
      end
      else
        match body with
        | Protocol.Err (kind, message)
          when kind = Protocol.kind_overloaded
               || kind = Protocol.kind_expired
               || kind = Protocol.kind_draining ->
            (* Surface the server's backoff hint for the next delay. *)
            (match Protocol.retry_after_ms reply with
            | Some ms -> note_hint (Float.of_int ms /. 1000.)
            | None -> ());
            Error (A_rejected (kind, message))
        | Protocol.Ok_result _ | Protocol.Err _ -> Ok reply)

let with_id_gen ~next json =
  match json with
  | Json.Obj fields when not (List.mem_assoc "id" fields) ->
      let id = Json.Int (next ()) in
      (Json.Obj (("id", id) :: fields), Some id)
  | Json.Obj fields -> (json, List.assoc_opt "id" fields)
  | _ -> (json, None)

let retryable ~idempotent = function
  | A_open -> false
  | A_rejected (kind, _) ->
      idempotent
      && (kind = Protocol.kind_overloaded || kind = Protocol.kind_expired)
  | A_stale _ -> idempotent
  | A_transport { Client.kind; _ } -> (
      idempotent
      && match kind with
         | Client.Refused | Client.Timeout | Client.Reset -> true
         | Client.Protocol -> false)

let failure_of_give_up = function
  | { Retry.last_error = A_open; _ } -> Open_circuit
  | { Retry.last_error = A_rejected (kind, message); _ } ->
      Rejected (kind, message)
  | { Retry.last_error = A_transport e; attempts; _ } -> Transport (e, attempts)
  | { Retry.last_error = A_stale message; attempts; _ } ->
      Transport ({ Client.kind = Client.Protocol; message }, attempts)

(* ---------------------------------------------- single-endpoint client *)

type t = {
  chan : chan;
  timeout : float;
  retry : Retry.policy;
  breaker : Breaker.t option;
  retry_budget : Token_bucket.t option;
  rng : Gc_trace.Rng.t;
  mu : Mutex.t;  (** Serialises requests: one frame in flight per conn. *)
  mutable next_id : int;
  mutable n_retries : int;
  mutable last_hint : float;
      (** The server's [retry_after_ms], seconds; 0. when none seen. *)
}

let create ?(timeout = 60.) ?(retry = Retry.default) ?breaker
    ?(retry_budget = Some (Token_bucket.create ())) ?(seed = 0) addr =
  {
    chan = chan_make addr;
    timeout;
    retry;
    breaker;
    retry_budget;
    rng = Gc_trace.Rng.create seed;
    mu = Mutex.create ();
    next_id = 0;
    n_retries = 0;
    last_hint = 0.;
  }

let close t =
  Mutex.lock t.mu;
  chan_drop t.chan;
  Mutex.unlock t.mu

let reconnects t = chan_reconnects t.chan

let retries t =
  Mutex.lock t.mu;
  let n = t.n_retries in
  Mutex.unlock t.mu;
  n

let budget_tokens t =
  Mutex.lock t.mu;
  let v = Option.map Token_bucket.tokens t.retry_budget in
  Mutex.unlock t.mu;
  v

let budget_denials t =
  Mutex.lock t.mu;
  let n =
    match t.retry_budget with None -> 0 | Some b -> Token_bucket.denied b
  in
  Mutex.unlock t.mu;
  n

let attempt_once t json sent_id =
  t.last_hint <- 0.;
  let gate =
    match t.breaker with
    | Some b when not (Breaker.allow b) -> Error A_open
    | _ -> Ok ()
  in
  let outcome =
    Result.bind gate (fun () ->
        chan_attempt ~timeout:t.timeout
          ~note_hint:(fun h -> t.last_hint <- h)
          t.chan json sent_id)
  in
  (match t.breaker with
  | None -> ()
  | Some b -> (
      match outcome with
      | Ok _ -> Breaker.record b ~ok:true
      | Error A_open -> () (* never dialed; nothing to record *)
      | Error (A_rejected (kind, _)) when kind = Protocol.kind_draining ->
          (* An orderly goodbye, not a dependency failure. *)
          Breaker.record b ~ok:true
      | Error (A_transport _ | A_stale _ | A_rejected _) ->
          Breaker.record b ~ok:false));
  outcome

let request ?(idempotent = true) t json =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let json, sent_id =
        with_id_gen
          ~next:(fun () ->
            t.next_id <- t.next_id + 1;
            t.next_id)
          json
      in
      (* Every retry is paid for out of the token bucket: when successes
         (which refill it) dry up, so do the retries — the property that
         keeps a fleet of these clients from holding an overload in its
         metastable state. *)
      let gated e =
        retryable ~idempotent e
        && match t.retry_budget with
           | None -> true
           | Some b -> Token_bucket.try_take b
      in
      match
        Retry.run ~policy:t.retry ~rng:t.rng
          ~sleep:(fun d -> Gc_exec.Pool.nap (Float.max d t.last_hint))
          ~retryable:gated
          (fun ~attempt ->
            if attempt > 1 then t.n_retries <- t.n_retries + 1;
            attempt_once t json sent_id)
      with
      | Ok reply ->
          Option.iter Token_bucket.on_success t.retry_budget;
          Ok reply
      | Error give_up -> Error (failure_of_give_up give_up))

(* ----------------------------------------------- multi-endpoint client *)

module Multi = struct
  type hedge_config = {
    quantile : float;
    min_delay : float;
    max_delay : float;
    initial_delay : float;
  }

  let default_hedge =
    { quantile = 0.9; min_delay = 0.01; max_delay = 0.5; initial_delay = 0.05 }

  type nonrec t = {
    pool : Endpoint_pool.t;
    chans : chan array;
    timeout : float;
    retry : Retry.policy;
    retry_budget : Token_bucket.t option;
    hedge : hedge_config option;
    probe_timeout : float;
    rng : Gc_trace.Rng.t;
    mu : Mutex.t;  (** Serialises requests, exactly as the single client. *)
    stop_prober : bool Atomic.t;
    mutable prober : Thread.t option;
    mutable next_id : int;
    mutable n_retries : int;
    mutable n_failovers : int;
    mutable n_hedges : int;
    mutable n_hedge_wins : int;
    m_failovers : Registry.counter option;
    m_hedges : Registry.counter option;
    m_hedge_wins : Registry.counter option;
  }

  let pool t = t.pool

  let health_body = Json.Obj [ ("op", Json.String "health") ]

  let probe t =
    List.iter
      (fun i ->
        let ok =
          match
            Client.request_result ~timeout:t.probe_timeout
              (Endpoint_pool.addr t.pool i)
              health_body
          with
          | Ok _ -> true
          | Error _ -> false
        in
        Endpoint_pool.note_probe t.pool i ~ok)
      (Endpoint_pool.due_probes t.pool)

  let create ?(timeout = 60.) ?(retry = Retry.default)
      ?(retry_budget = Some (Token_bucket.create ())) ?hedge ?pool_config
      ?breaker_config ?registry ?probe_interval ?(seed = 0) addrs =
    let pool =
      Endpoint_pool.create ?config:pool_config ?breaker_config ?registry
        ~seed:(seed + 1) addrs
    in
    let c name = Option.map (fun r -> Registry.counter r name) registry in
    let t =
      {
        pool;
        chans = Array.of_list (List.map chan_make addrs);
        timeout;
        retry;
        retry_budget;
        hedge;
        probe_timeout = Float.min timeout 2.;
        rng = Gc_trace.Rng.create seed;
        mu = Mutex.create ();
        stop_prober = Atomic.make false;
        prober = None;
        next_id = 0;
        n_retries = 0;
        n_failovers = 0;
        n_hedges = 0;
        n_hedge_wins = 0;
        m_failovers = c "failovers";
        m_hedges = c "hedges";
        m_hedge_wins = c "hedge_wins";
      }
    in
    (match probe_interval with
    | None -> ()
    | Some interval ->
        let interval = Float.max 0.01 interval in
        let loop t =
          (* Nap in slices so [close] never waits a full interval. *)
          let rec go elapsed =
            if not (Atomic.get t.stop_prober) then
              if elapsed >= interval then begin
                probe t;
                go 0.
              end
              else begin
                let slice = Float.min 0.05 (interval -. elapsed) in
                Gc_exec.Pool.nap slice;
                go (elapsed +. slice)
              end
          in
          go 0.
        in
        (* The prober is I/O-bound housekeeping, not simulation work: it
           cannot run on the deterministic Gc_exec pool. *)
        t.prober <-
          Some (Thread.create loop t [@lint.allow "spawn-outside-pool"]));
    t

  let bump counter f =
    f ();
    Option.iter Registry.incr counter

  let note_failover t =
    bump t.m_failovers (fun () -> t.n_failovers <- t.n_failovers + 1)

  let note_hedge t =
    bump t.m_hedges (fun () -> t.n_hedges <- t.n_hedges + 1)

  let note_hedge_win t =
    bump t.m_hedge_wins (fun () -> t.n_hedge_wins <- t.n_hedge_wins + 1)

  (* Outcome accounting for a completed (non-cancelled) attempt on
     endpoint [i]: endpoint health for the pool, plus the breaker. *)
  let account t i outcome ~latency =
    let b = Endpoint_pool.breaker t.pool i in
    match outcome with
    | Ok _ ->
        Breaker.record b ~ok:true;
        Endpoint_pool.note_ok t.pool i ~latency_s:latency
    | Error (A_rejected (kind, _)) ->
        (* A framed rejection proves the endpoint is alive — health-wise
           it is Up even while shedding; the breaker still counts the
           shed as a failure (draining excepted) so a melting replica
           trips in isolation. *)
        Breaker.record b ~ok:(kind = Protocol.kind_draining);
        Endpoint_pool.note_ok t.pool i ~latency_s:latency
    | Error (A_transport _ | A_stale _) ->
        Breaker.record b ~ok:false;
        Endpoint_pool.note_failure t.pool i
    | Error A_open -> ()

  let raw_attempt t i json sent_id hint =
    let t0 = Clock.now_s () in
    let r =
      chan_attempt ~timeout:t.timeout
        ~note_hint:(fun h -> hint := Float.max !hint h)
        t.chans.(i) json sent_id
    in
    (r, Clock.now_s () -. t0)

  (* Plain attempt: breaker-gated, fully accounted. *)
  let attempt_ep t i json sent_id hint =
    if not (Breaker.allow (Endpoint_pool.breaker t.pool i)) then Error A_open
    else begin
      let r, latency = raw_attempt t i json sent_id hint in
      account t i r ~latency;
      r
    end

  let hedge_delay t h =
    match Endpoint_pool.latency_quantile t.pool h.quantile with
    | None -> h.initial_delay
    | Some l -> Float.max h.min_delay (Float.min h.max_delay l)

  (* Hedge targets must have a Closed breaker: [Breaker.allow] on a
     Closed breaker has no side effect, so a cancelled loser can never
     strand the half-open probe slot. *)
  let hedge_target t ~primary =
    if Endpoint_pool.length t.pool < 2 then None
    else begin
      let i = Endpoint_pool.pick ~avoid:[ primary ] t.pool in
      if
        i <> primary
        && Endpoint_pool.state t.pool i = Endpoint_pool.Up
        && Breaker.state (Endpoint_pool.breaker t.pool i) = Breaker.Closed
      then Some i
      else None
    end

  (* A hedged attempt: fire the primary, and if it has not settled
     within the hedge delay, fire one more attempt at another Up replica
     — first reply wins, the loser's read is woken by [chan_cancel] and
     its result discarded.  Id-echo dedupe already guards the streams:
     each attempt runs on its own per-endpoint channel, and a late reply
     left on a cancelled channel can never be taken for a later
     request's answer. *)
  let hedged_attempt t h primary json sent_id hint =
    let rmu = Mutex.create () in
    let rcond = Condition.create () in
    let finished = ref [] in (* (endpoint, result, latency), completion order *)
    let started = ref 1 in
    let hedge_undecided = ref true in
    let hedge_fired = ref false in
    let secondary = ref None in
    let post ep res lat =
      Mutex.lock rmu;
      finished := !finished @ [ (ep, res, lat) ];
      Condition.broadcast rcond;
      Mutex.unlock rmu
    in
    let run ep =
      let r, lat = raw_attempt t ep json sent_id hint in
      post ep r lat
    in
    (* Request latencies are wall-clock I/O races by nature; these two
       short-lived threads cannot run on the deterministic Gc_exec
       pool. *)
    let th_primary =
      Thread.create run primary [@lint.allow "spawn-outside-pool"]
    in
    let delay = hedge_delay t h in
    let hedger () =
      (* Nap in slices: a race the primary already settled releases this
         thread early instead of after the full delay. *)
      let slice = Float.max 0.002 (delay /. 8.) in
      let t0 = Clock.now_s () in
      let rec pause () =
        let settled =
          Mutex.lock rmu;
          let s = !finished <> [] in
          Mutex.unlock rmu;
          s
        in
        if (not settled) && Clock.now_s () -. t0 < delay then begin
          Gc_exec.Pool.nap slice;
          pause ()
        end
      in
      pause ();
      Mutex.lock rmu;
      let target =
        if !finished = [] then hedge_target t ~primary else None
      in
      match target with
      | Some ep ->
          secondary := Some ep;
          hedge_fired := true;
          hedge_undecided := false;
          started := 2;
          Condition.broadcast rcond;
          Mutex.unlock rmu;
          run ep
      | None ->
          hedge_undecided := false;
          Condition.broadcast rcond;
          Mutex.unlock rmu
    in
    let th_hedge =
      Thread.create hedger () [@lint.allow "spawn-outside-pool"]
    in
    Mutex.lock rmu;
    let rec await () =
      match List.find_opt (fun (_, r, _) -> Result.is_ok r) !finished with
      | Some w -> Some w
      | None ->
          if List.length !finished >= !started && not !hedge_undecided then
            None
          else begin
            Condition.wait rcond rmu;
            await ()
          end
    in
    let winner = await () in
    let fired = !hedge_fired in
    let second = !secondary in
    Mutex.unlock rmu;
    (* Cancel the loser so the joins below are prompt. *)
    (match winner with
    | None -> ()
    | Some (wep, _, _) ->
        if wep <> primary then chan_cancel t.chans.(primary);
        (match second with
        | Some s when s <> wep -> chan_cancel t.chans.(s)
        | _ -> ()));
    Thread.join th_primary;
    Thread.join th_hedge;
    let all = !finished in
    if fired then note_hedge t;
    match winner with
    | Some (wep, wres, wlat) ->
        account t wep wres ~latency:wlat;
        (* Losers were cancelled: an error over there is our own
           shutdown talking and says nothing about the endpoint, so only
           a completed Ok (both replicas answered) is accounted. *)
        List.iter
          (fun (ep, r, lat) ->
            if ep <> wep && Result.is_ok r then account t ep r ~latency:lat)
          all;
        if fired && wep <> primary then note_hedge_win t;
        wres
    | None ->
        (* No winner: every attempt genuinely failed — account them all
           and surface the primary's error for retry classification. *)
        List.iter (fun (ep, r, lat) -> account t ep r ~latency:lat) all;
        let primary_err =
          List.find_opt (fun (ep, _, _) -> ep = primary) all
        in
        (match (primary_err, all) with
        | Some (_, r, _), _ -> r
        | None, (_, r, _) :: _ -> r
        | None, [] ->
            Error
              (A_transport
                 {
                   Client.kind = Client.Reset;
                   message = "hedged attempt produced no result";
                 }))

  let attempt_on t ~idempotent i json sent_id hint =
    match t.hedge with
    | Some h
      when idempotent
           && Endpoint_pool.length t.pool > 1
           && Breaker.state (Endpoint_pool.breaker t.pool i) = Breaker.Closed
      ->
        hedged_attempt t h i json sent_id hint
    | _ -> attempt_ep t i json sent_id hint

  (* Transport-level failures of idempotent requests fail over to
     another replica inside the same attempt, with no backoff: the
     failure already cost its timeout, and another replica may answer
     immediately.  [A_open] fails over unconditionally — the breaker
     refused before anything was sent, so even a non-idempotent request
     is safe elsewhere. *)
  let failover_worthy ~idempotent = function
    | A_open -> true
    | A_transport { Client.kind = Client.Refused | Client.Timeout | Client.Reset; _ }
      ->
        idempotent
    | A_transport _ | A_stale _ | A_rejected _ -> false

  let round t ~idempotent json sent_id hint =
    let n = Endpoint_pool.length t.pool in
    let rec go tried i =
      match attempt_on t ~idempotent i json sent_id hint with
      | Ok r -> Ok r
      | Error e ->
          let tried = i :: tried in
          if failover_worthy ~idempotent e && List.length tried < n then begin
            note_failover t;
            go tried (Endpoint_pool.pick ~avoid:tried t.pool)
          end
          else Error e
    in
    go [] (Endpoint_pool.pick t.pool)

  let request ?(idempotent = true) t json =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        let json, sent_id =
          with_id_gen
            ~next:(fun () ->
              t.next_id <- t.next_id + 1;
              t.next_id)
            json
        in
        let hint = ref 0. in
        let gated e =
          retryable ~idempotent e
          && match t.retry_budget with
             | None -> true
             | Some b -> Token_bucket.try_take b
        in
        match
          Retry.run ~policy:t.retry ~rng:t.rng
            ~sleep:(fun d -> Gc_exec.Pool.nap (Float.max d !hint))
            ~retryable:gated
            (fun ~attempt ->
              if attempt > 1 then t.n_retries <- t.n_retries + 1;
              hint := 0.;
              round t ~idempotent json sent_id hint)
        with
        | Ok reply ->
            Option.iter Token_bucket.on_success t.retry_budget;
            Ok reply
        | Error give_up -> Error (failure_of_give_up give_up))

  let close t =
    Atomic.set t.stop_prober true;
    (match t.prober with
    | None -> ()
    | Some th ->
        Thread.join th;
        t.prober <- None);
    Mutex.lock t.mu;
    Array.iter chan_drop t.chans;
    Mutex.unlock t.mu

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let retries t = locked t (fun () -> t.n_retries)
  let failovers t = locked t (fun () -> t.n_failovers)
  let hedges t = locked t (fun () -> t.n_hedges)
  let hedge_wins t = locked t (fun () -> t.n_hedge_wins)

  let reconnects t =
    Array.fold_left (fun acc ch -> acc + chan_reconnects ch) 0 t.chans

  let budget_tokens t =
    locked t (fun () -> Option.map Token_bucket.tokens t.retry_budget)

  let budget_denials t =
    locked t (fun () ->
        match t.retry_budget with None -> 0 | Some b -> Token_bucket.denied b)

  let states t = Endpoint_pool.states t.pool
end
