module Json = Gc_obs.Json
module Client = Gc_serve.Client
module Protocol = Gc_serve.Protocol
module Token_bucket = Gc_admit.Token_bucket

type failure =
  | Transport of Client.error * int
  | Rejected of string * string
  | Open_circuit

let string_of_failure = function
  | Transport (e, attempts) ->
      Printf.sprintf "%s (after %d attempt%s)"
        (Client.string_of_client_error e)
        attempts
        (if attempts = 1 then "" else "s")
  | Rejected (kind, message) -> Printf.sprintf "%s: %s" kind message
  | Open_circuit -> "circuit open: failing fast without dialing"

type t = {
  addr : Client.addr;
  timeout : float;
  retry : Retry.policy;
  breaker : Breaker.t option;
  retry_budget : Token_bucket.t option;
  rng : Gc_trace.Rng.t;
  mu : Mutex.t;  (** Serialises requests: one frame in flight per conn. *)
  mutable conn : Client.conn option;
  mutable connected_once : bool;
  mutable next_id : int;
  mutable n_reconnects : int;
  mutable n_retries : int;
  mutable last_hint : float;
      (** The server's [retry_after_ms], seconds; 0. when none seen. *)
}

let create ?(timeout = 60.) ?(retry = Retry.default) ?breaker
    ?(retry_budget = Some (Token_bucket.create ())) ?(seed = 0) addr =
  {
    addr;
    timeout;
    retry;
    breaker;
    retry_budget;
    rng = Gc_trace.Rng.create seed;
    mu = Mutex.create ();
    conn = None;
    connected_once = false;
    next_id = 0;
    n_reconnects = 0;
    n_retries = 0;
    last_hint = 0.;
  }

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
      t.conn <- None;
      Client.close c

let close t =
  Mutex.lock t.mu;
  drop_conn t;
  Mutex.unlock t.mu

let reconnects t =
  Mutex.lock t.mu;
  let n = t.n_reconnects in
  Mutex.unlock t.mu;
  n

let retries t =
  Mutex.lock t.mu;
  let n = t.n_retries in
  Mutex.unlock t.mu;
  n

let budget_tokens t =
  Mutex.lock t.mu;
  let v = Option.map Token_bucket.tokens t.retry_budget in
  Mutex.unlock t.mu;
  v

let budget_denials t =
  Mutex.lock t.mu;
  let n =
    match t.retry_budget with None -> 0 | Some b -> Token_bucket.denied b
  in
  Mutex.unlock t.mu;
  n

(* Ensure the outgoing request carries an id we can key the echo on.
   Caller-set ids are respected (they may be pipelining on their own
   terms); otherwise stamp a fresh integer. *)
let with_id t json =
  match json with
  | Json.Obj fields when not (List.mem_assoc "id" fields) ->
      t.next_id <- t.next_id + 1;
      let id = Json.Int t.next_id in
      (Json.Obj (("id", id) :: fields), Some id)
  | Json.Obj fields -> (json, List.assoc_opt "id" fields)
  | _ -> (json, None)

(* One attempt's failure, classified for the retry predicate. *)
type attempt_error =
  | A_transport of Client.error
  | A_stale of string  (** Id echo mismatch: a leftover reply, not ours. *)
  | A_rejected of string * string  (** overloaded | expired | draining *)
  | A_open

let conn_of t =
  match t.conn with
  | Some c -> Ok c
  | None -> (
      match Client.connect_result ~timeout:(Float.min t.timeout 5.) t.addr with
      | Ok c ->
          if t.connected_once then t.n_reconnects <- t.n_reconnects + 1;
          t.connected_once <- true;
          t.conn <- Some c;
          Ok c
      | Error e -> Error (A_transport e))

let attempt_once t json sent_id =
  t.last_hint <- 0.;
  let ( let* ) = Result.bind in
  let* () =
    match t.breaker with
    | Some b when not (Breaker.allow b) -> Error A_open
    | _ -> Ok ()
  in
  let outcome =
    let* c = conn_of t in
    let transport r =
      Result.map_error
        (fun e ->
          drop_conn t;
          A_transport e)
        r
    in
    let* () = transport (Client.send_result c json) in
    let* reply = transport (Client.recv_result ~timeout:t.timeout c) in
    match Protocol.reply_of_json reply with
    | Error message ->
        drop_conn t;
        Error
          (A_transport { Client.kind = Client.Protocol; message })
    | Ok (echoed, body) ->
        if echoed <> sent_id then begin
          (* A reply for some earlier request on this stream (e.g. one we
             timed out on): the id echo proves it is not ours.  Resync by
             redialing. *)
          drop_conn t;
          Error
            (A_stale
               (Printf.sprintf "stale reply: sent id %s, reply echoes %s"
                  (match sent_id with Some j -> Json.to_string j | None -> "none")
                  (match echoed with Some j -> Json.to_string j | None -> "none")))
        end
        else
          match body with
          | Protocol.Err (kind, message)
            when kind = Protocol.kind_overloaded
                 || kind = Protocol.kind_expired
                 || kind = Protocol.kind_draining ->
              (* Remember the server's backoff hint for the next delay. *)
              (match Protocol.retry_after_ms reply with
              | Some ms -> t.last_hint <- Float.of_int ms /. 1000.
              | None -> ());
              Error (A_rejected (kind, message))
          | Protocol.Ok_result _ | Protocol.Err _ -> Ok reply
  in
  (match t.breaker with
  | None -> ()
  | Some b -> (
      match outcome with
      | Ok _ -> Breaker.record b ~ok:true
      | Error A_open -> ()  (* never dialed; nothing to record *)
      | Error (A_rejected (kind, _)) when kind = Protocol.kind_draining ->
          (* An orderly goodbye, not a dependency failure. *)
          Breaker.record b ~ok:true
      | Error (A_transport _ | A_stale _ | A_rejected _) ->
          Breaker.record b ~ok:false));
  outcome

let retryable ~idempotent = function
  | A_open -> false
  | A_rejected (kind, _) ->
      idempotent
      && (kind = Protocol.kind_overloaded || kind = Protocol.kind_expired)
  | A_stale _ -> idempotent
  | A_transport { Client.kind; _ } -> (
      idempotent
      && match kind with
         | Client.Refused | Client.Timeout | Client.Reset -> true
         | Client.Protocol -> false)

let request ?(idempotent = true) t json =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      let json, sent_id = with_id t json in
      (* Every retry is paid for out of the token bucket: when successes
         (which refill it) dry up, so do the retries — the property that
         keeps a fleet of these clients from holding an overload in its
         metastable state. *)
      let gated e =
        retryable ~idempotent e
        && match t.retry_budget with
           | None -> true
           | Some b -> Token_bucket.try_take b
      in
      match
        Retry.run ~policy:t.retry ~rng:t.rng
          ~sleep:(fun d -> Gc_exec.Pool.nap (Float.max d t.last_hint))
          ~retryable:gated
          (fun ~attempt ->
            if attempt > 1 then t.n_retries <- t.n_retries + 1;
            attempt_once t json sent_id)
      with
      | Ok reply ->
          Option.iter Token_bucket.on_success t.retry_budget;
          Ok reply
      | Error { Retry.last_error = A_open; _ } -> Error Open_circuit
      | Error { Retry.last_error = A_rejected (kind, message); _ } ->
          Error (Rejected (kind, message))
      | Error { Retry.last_error = A_transport e; attempts; _ } ->
          Error (Transport (e, attempts))
      | Error { Retry.last_error = A_stale message; attempts; _ } ->
          Error
            (Transport ({ Client.kind = Client.Protocol; message }, attempts)))
