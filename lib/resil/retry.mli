(** Retry policy: capped exponential backoff with deterministic jitter.

    The one sanctioned shape for "try it again" in this tree (the
    [unbounded-retry] lint rule flags bare retry loops elsewhere).  Three
    properties every retry here gets for free:

    - {b capped exponential backoff} — the delay doubles per attempt from
      [base_delay] up to [max_delay], so a down dependency sees an
      ever-sparser probe stream instead of a busy loop;
    - {b deterministic jitter} — each delay is spread over
      [[1 - jitter, 1] * delay] by a caller-seeded {!Gc_trace.Rng}, so
      concurrent retriers decorrelate {e and} a drill replaying the same
      seed sleeps the same schedule (no [Stdlib.Random], per the
      [nondeterministic-rng] rule);
    - {b budget awareness} — an optional total wall-clock [budget]
      (monotonic {!Gc_prof.Clock}) bounds the whole retry session: no
      attempt starts after it is spent, whatever [max_attempts] says.

    The driver is [Result]-based on purpose: callers classify their own
    failures first (e.g. {!Gc_serve.Client.error_kind}) and say which are
    retryable.  Exceptions pass through untouched, so cooperative
    cancellation ({!Gc_exec.Cancel.Cancelled}) can never be swallowed by
    a retry loop. *)

type policy = {
  max_attempts : int;  (** Total tries, first one included ([>= 1]). *)
  base_delay : float;  (** Delay before attempt 2, seconds. *)
  max_delay : float;  (** Backoff ceiling, seconds. *)
  jitter : float;
      (** Fraction of each delay that is randomized, in [[0, 1]]:
          [0.] = fixed schedule, [0.25] = each delay drawn uniformly
          from [[0.75, 1] * delay]. *)
  budget : float option;  (** Total wall-clock bound for the session. *)
}

val default : policy
(** 4 attempts, 50ms base, 2s cap, 0.25 jitter, no budget. *)

val delay_for : policy -> rng:Gc_trace.Rng.t -> attempt:int -> float
(** The jittered delay after failed [attempt] (1-based): draws one value
    from [rng].  Same seed, same sequence. *)

type 'e give_up = {
  attempts : int;  (** Attempts actually made. *)
  last_error : 'e;
  budget_spent : bool;  (** The budget, not [max_attempts], stopped us. *)
}

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  rng:Gc_trace.Rng.t ->
  retryable:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e give_up) result
(** [run ~rng ~retryable f] calls [f ~attempt:1], [f ~attempt:2], ...
    until one succeeds, an error is not [retryable], [max_attempts] is
    reached, or the budget is spent.  [sleep] (default
    {!Gc_exec.Pool.nap}, the EINTR-safe sleep) is injectable so unit
    tests can record the schedule instead of waiting it out. *)
