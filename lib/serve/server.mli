(** The supervised simulation daemon behind [gcserved].

    A long-running service accepting {!Protocol} requests over a
    Unix-domain (and optionally TCP) socket with {!Frame} framing.
    Overload and shutdown are first-class protocol states, never hangs:

    - every request is validated against hard caps, then admitted into a
      {e bounded} queue; when the queue is full the client gets an
      immediate framed ["overloaded"] reply (load shedding) instead of
      unbounded buffering;
    - a {!Gc_admit.Codel} controller watches the {e sojourn} of every
      dequeued request and sheds (with LIFO service while overloaded)
      when the queue stays persistently slow, long before it is full;
    - a request's own [budget_ms] is charged for its queue wait: a job
      whose client budget lapsed in the queue is answered ["expired"] and
      {e never executed} (see {!Gc_admit.Deadline});
    - shed and expired replies carry a seeded-jitter [retry_after_ms]
      hint, and dispatch concurrency adapts via an {!Gc_admit.Aimd}
      limit (exported as the [concurrency_limit] gauge);
    - each admitted request runs on a {!Gc_exec.Pool} with a per-attempt
      wall-clock deadline, transient-failure retry, and a grace-period
      abandonment of wedged tasks, so one hostile request cannot pin a
      worker;
    - a client that disconnects mid-request has its in-flight work
      cooperatively cancelled (through {!Gc_exec.Pool.run}'s [on_start]
      token hook) — the worker is reclaimed, not leaked;
    - slow-loris partial frames, oversized frames, and malformed JSON all
      get a framed error reply (see {!Frame.read_outcome}) and the
      connection is dropped only when the stream position is
      unrecoverable;
    - {!drain} (wired to SIGTERM/SIGINT by {!run}) stops accepting,
      refuses new requests with a ["draining"] reply, answers everything
      already admitted, and only then returns.

    Every decision increments a {!Gc_obs.Registry} metric (queue depth,
    in-flight, shed count, per-op latency histograms); the [stats] op and
    the shutdown manifest expose the same registry. *)

type config = {
  socket_path : string option;  (** Unix-domain listener. *)
  tcp : (string * int) option;  (** Optional TCP listener (host, port). *)
  queue_depth : int;  (** Admission-queue bound; beyond it, shed. *)
  workers : int;  (** Worker threads; also the AIMD limit's ceiling. *)
  min_workers : int;  (** The AIMD concurrency limit's floor. *)
  deadline : float;  (** Per-attempt wall-clock budget, seconds. *)
  grace : float;  (** Seconds past deadline before abandoning a wedged task. *)
  retries : int;  (** Extra attempts for {!Gc_exec.Pool.Transient} failures. *)
  backoff : float;  (** Base retry sleep, doubling per attempt. *)
  max_frame : int;  (** Frame payload cap, bytes. *)
  frame_timeout : float;  (** Whole-frame delivery budget (slow-loris guard). *)
  write_timeout : float;  (** Per-write budget to a non-reading client. *)
  max_connections : int;
  codel_target : float;
      (** Acceptable queue sojourn, seconds; [<= 0.] disables sojourn
          shedding (and the LIFO-under-overload switch). *)
  codel_interval : float;
      (** How long sojourn must stay above target before shedding starts;
          also the AIMD decrease cooldown. *)
  retry_after_ms : int;
      (** Base backoff hint on shed/expired replies; the wire value is
          jittered uniformly in [[base/2, 3*base/2]] from [seed]. *)
  seed : int;  (** Seeds the retry-after jitter stream (reproducibility). *)
  trace : string option;
      (** When set, {!Gc_prof} span tracing is enabled for the server's
          lifetime and the drain writes a Chrome trace-event JSON
          (Perfetto-loadable) of the recorded request-path spans —
          decode, queue-wait, execute, encode, reply — to this path. *)
  name : string option;
      (** Replica identity within a fleet (e.g. ["replica-2"]): echoed
          as a ["replica"] field in every [health] and [stats] reply,
          and stamped into the shutdown manifest.  [None] (the default)
          omits the field — a standalone server's replies are unchanged. *)
}

val default_config : config
(** No listeners configured (callers must set at least one); queue 64,
    workers = cores - 1 (min 1), min_workers 1, deadline 30s, grace
    0.25s, 1 retry, 1 MiB frames, 10s frame timeout, 5s write timeout,
    256 connections, CoDel target 100ms / interval 500ms, retry-after
    base 100ms, seed 0. *)

type t

val create : config -> t
(** Bind the listeners (a stale Unix socket file left by a dead process is
    detected by a probe connect and replaced; a live one raises), start
    the acceptor and worker threads, and return the running server.
    Raises [Invalid_argument] if no listener is configured, [Failure] or
    [Unix.Unix_error] on bind errors. *)

val drain : t -> unit
(** Two-stage graceful shutdown, idempotent and thread-safe: stop
    accepting, answer every admitted request (new ones are refused with a
    ["draining"] reply), release all connections, stop all threads, and
    remove the socket file.  Returns when the server is fully stopped. *)

val draining : t -> bool
val registry : t -> Gc_obs.Registry.t

val manifest : t -> Gc_obs.Manifest.t
(** A [gcserved]/[serve] run manifest whose [extra] carries the final
    ["server"] registry snapshot (shed count, latency histograms, ...) —
    written as the shutdown artifact by {!run}. *)

val run : ?manifest_path:string -> config -> unit
(** The daemon main loop: {!create}, then block until SIGTERM/SIGINT
    (supervised by {!Gc_exec.Supervisor.with_interrupt} — a second signal
    hard-exits with code 130), then {!drain}, then write the shutdown
    manifest to [manifest_path] (atomic, durable) if given. *)
