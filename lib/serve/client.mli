(** Client side of the simulation service: connect, frame, await.

    Used by [gcserved client], the test harnesses, and anything scripted.
    Every call takes a wall-clock [timeout] so a dead or wedged server can
    never hang the caller — the mirror image of the server's own
    slow-loris guard.

    Two API levels.  The [_result] functions classify failures into
    {!error_kind}s, which is what retry policy hangs off
    ({!Gc_resil.Resilient_client} retries [Refused]/[Timeout]/[Reset] for
    idempotent requests, never [Protocol]).  The historical string-error
    functions remain as thin wrappers for callers that only print. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

val addr_string : addr -> string
(** Render an address for diagnostics and metric labels: the socket
    path, or ["host:port"]. *)

type conn

type error_kind =
  | Refused  (** No server: connect refused, socket path absent, unreachable. *)
  | Timeout  (** Connect or whole-reply deadline expired. *)
  | Reset  (** The connection existed and then went away (EOF/EPIPE/RST). *)
  | Protocol  (** The bytes arrived but are not a valid frame; not retryable. *)

type error = { kind : error_kind; message : string }

val kind_name : error_kind -> string
(** ["refused" | "timeout" | "reset" | "protocol"]. *)

val string_of_client_error : error -> string
(** ["kind: message"]. *)

val connect_result : ?timeout:float -> addr -> (conn, error) result
(** Classified connect.  [timeout] (default 5s) bounds the TCP connect. *)

val connect : ?timeout:float -> addr -> conn
(** {!connect_result}, raising [Unix.Unix_error] on failure (historical
    interface; the classification is flattened into the message). *)

val close : conn -> unit

val send : conn -> Gc_obs.Json.t -> unit
(** Frame and send one document.  Raises [Unix.Unix_error] (e.g. [EPIPE])
    if the peer is gone. *)

val send_result : conn -> Gc_obs.Json.t -> (unit, error) result
(** Classified {!send}: a gone peer is [Reset], not an exception. *)

val recv : ?max_frame:int -> ?timeout:float -> conn -> (Gc_obs.Json.t, string) result
(** Await one framed document (default timeout 60s).  [Error] describes a
    protocol fault, EOF, or timeout. *)

val recv_result :
  ?max_frame:int -> ?timeout:float -> conn -> (Gc_obs.Json.t, error) result
(** Classified {!recv}: EOF is [Reset], framing faults are [Protocol],
    expiry is [Timeout]. *)

val request :
  ?timeout:float ->
  addr ->
  Gc_obs.Json.t ->
  (Gc_obs.Json.t, string) result
(** One-shot: connect, send, await the reply, close. *)

val request_result :
  ?timeout:float ->
  addr ->
  Gc_obs.Json.t ->
  (Gc_obs.Json.t, error) result
(** One-shot with classified errors; {!request} is this with the kind
    flattened into the message. *)

val fd : conn -> Unix.file_descr
(** The raw socket, for adversarial tests that need to write garbage. *)
