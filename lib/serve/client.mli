(** Client side of the simulation service: connect, frame, await.

    Used by [gcserved client], the test harnesses, and anything scripted.
    Every call takes a wall-clock [timeout] so a dead or wedged server can
    never hang the caller — the mirror image of the server's own
    slow-loris guard. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

type conn

val connect : ?timeout:float -> addr -> conn
(** Raises [Unix.Unix_error] (e.g. [ECONNREFUSED]) on failure.  [timeout]
    (default 5s) bounds the TCP connect. *)

val close : conn -> unit

val send : conn -> Gc_obs.Json.t -> unit
(** Frame and send one document. *)

val recv : ?max_frame:int -> ?timeout:float -> conn -> (Gc_obs.Json.t, string) result
(** Await one framed document (default timeout 60s).  [Error] describes a
    protocol fault, EOF, or timeout. *)

val request :
  ?timeout:float ->
  addr ->
  Gc_obs.Json.t ->
  (Gc_obs.Json.t, string) result
(** One-shot: connect, send, await the reply, close. *)

val fd : conn -> Unix.file_descr
(** The raw socket, for adversarial tests that need to write garbage. *)
