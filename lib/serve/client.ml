type addr =
  | Unix_path of string
  | Tcp of string * int

type conn = Unix.file_descr

type error_kind = Refused | Timeout | Reset | Protocol

type error = { kind : error_kind; message : string }

let kind_name = function
  | Refused -> "refused"
  | Timeout -> "timeout"
  | Reset -> "reset"
  | Protocol -> "protocol"

let string_of_client_error e = Printf.sprintf "%s: %s" (kind_name e.kind) e.message

let addr_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* Connection-establishment failures by errno.  ENOENT is what a
   Unix-domain connect to a never-bound (or already-removed) socket path
   raises, so it classifies with ECONNREFUSED: the server is not there. *)
let kind_of_connect_errno = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ENOTDIR | Unix.EACCES
  | Unix.EADDRNOTAVAIL | Unix.ENETUNREACH | Unix.EHOSTUNREACH ->
      Refused
  | Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINPROGRESS ->
      Timeout
  | Unix.ECONNRESET | Unix.EPIPE -> Reset
  | _ -> Refused

let sockaddr = function
  | Unix_path p -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | a -> Ok (Unix.PF_INET, Unix.ADDR_INET (a, port))
      | exception Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ ->
              Ok (Unix.PF_INET, Unix.ADDR_INET (a, port))
          | _ ->
              Error
                {
                  kind = Refused;
                  message = Printf.sprintf "cannot resolve host %S" host;
                }))

(* A server dying mid-exchange must surface as an EPIPE for the
   classifier ([Reset]), not kill the client process with SIGPIPE;
   set once, on first connect — the server side does the same in
   [Server.create]. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let connect_result ?(timeout = 5.) addr =
  Lazy.force ignore_sigpipe;
  match sockaddr addr with
  | Error e -> Error e
  | Ok (domain, sa) -> (
      let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
        Unix.connect fd sa
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            {
              kind = kind_of_connect_errno e;
              message =
                Printf.sprintf "cannot connect to %s: %s" (addr_string addr)
                  (Unix.error_message e);
            }
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)

let connect ?timeout addr =
  match connect_result ?timeout addr with
  | Ok fd -> fd
  | Error { message; _ } -> raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", message))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
let send fd json = Frame.write_fd fd json
let fd c = c

let send_result fd json =
  match Frame.write_fd fd json with
  | () -> Ok ()
  | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
      Error { kind = Reset; message = Unix.error_message e }
  | exception Unix.Unix_error (e, _, _) ->
      Error
        {
          kind = kind_of_connect_errno e;
          message = Printf.sprintf "send failed: %s" (Unix.error_message e);
        }

let recv_result ?max_frame ?(timeout = 60.) fd =
  match
    Frame.read_fd ?max_frame ~idle_timeout:timeout ~frame_timeout:timeout fd
  with
  | Frame.Frame json -> Ok json
  | Frame.Eof -> Error { kind = Reset; message = "connection closed by server" }
  | Frame.Bad_payload e | Frame.Fault e ->
      Error
        { kind = Protocol; message = "protocol fault: " ^ Frame.string_of_error e }
  | Frame.Timed_out ->
      Error
        {
          kind = Timeout;
          message = Printf.sprintf "no reply within %gs" timeout;
        }
  | exception Unix.Unix_error (e, _, _) ->
      Error
        {
          kind = Reset;
          message = Printf.sprintf "recv failed: %s" (Unix.error_message e);
        }

let recv ?max_frame ?timeout fd =
  Result.map_error
    (fun e -> e.message)
    (recv_result ?max_frame ?timeout fd)

let request_result ?timeout addr json =
  let ( let* ) = Result.bind in
  let* fd =
    connect_result ?timeout:(Option.map (fun t -> Float.min t 5.) timeout) addr
  in
  Fun.protect
    ~finally:(fun () -> close fd)
    (fun () ->
      let* () = send_result fd json in
      recv_result ?timeout fd)

let request ?timeout addr json =
  Result.map_error (fun e -> e.message) (request_result ?timeout addr json)
