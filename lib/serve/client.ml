type addr =
  | Unix_path of string
  | Tcp of string * int

type conn = Unix.file_descr

let sockaddr = function
  | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) ->
      let a =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (a, port))

let connect ?(timeout = 5.) addr =
  let domain, sa = sockaddr addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout;
     Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()
let send fd json = Frame.write_fd fd json
let fd c = c

let recv ?max_frame ?(timeout = 60.) fd =
  match
    Frame.read_fd ?max_frame ~idle_timeout:timeout ~frame_timeout:timeout fd
  with
  | Frame.Frame json -> Ok json
  | Frame.Eof -> Error "connection closed by server"
  | Frame.Bad_payload e | Frame.Fault e ->
      Error ("protocol fault: " ^ Frame.string_of_error e)
  | Frame.Timed_out ->
      Error (Printf.sprintf "no reply within %gs" timeout)

let request ?timeout addr json =
  match connect ?timeout:(Option.map (fun t -> Float.min t 5.) timeout) addr with
  | fd ->
      Fun.protect
        ~finally:(fun () -> close fd)
        (fun () ->
          send fd json;
          recv ?timeout fd)
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (match addr with
           | Unix_path p -> p
           | Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
           (Unix.error_message e))
