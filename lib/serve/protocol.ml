module Json = Gc_obs.Json

type workload = {
  workload : string;
  n : int;
  universe : int;
  block_size : int;
}

type sim = {
  policy : string;
  k : int;
  seed : int;
  load : workload;
  check : bool;
}

type curve = {
  curve_policy : string;
  ks : int list;
  curve_seed : int;
  curve_load : workload;
}

type op =
  | Sim of sim
  | Miss_curve of curve
  | Health
  | Stats

type request = { id : Json.t option; op : op; budget_ms : int option }

let max_trace_n = 5_000_000
let max_universe = 1 lsl 24
let max_k = 1 lsl 28
let max_curve_points = 64
let max_budget_ms = 3_600_000

(* ----------------------------------------------------------- validation *)

let ( let* ) = Result.bind

let field_int ~default ~min ~max name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Int v) ->
      if v < min || v > max then
        Error (Printf.sprintf "%s must be in [%d, %d], got %d" name min max v)
      else Ok v
  | Some other ->
      Error
        (Printf.sprintf "%s must be an integer, got %s" name
           (Json.to_string other))

let field_bool ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some other ->
      Error
        (Printf.sprintf "%s must be a boolean, got %s" name
           (Json.to_string other))

let field_string ~default name json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.String s) -> Ok s
  | Some other ->
      Error
        (Printf.sprintf "%s must be a string, got %s" name
           (Json.to_string other))

let valid_policy spec =
  let base =
    match String.index_opt spec ':' with
    | Some i -> String.sub spec 0 i
    | None -> spec
  in
  if base = "broken" || List.mem base Gc_cache.Registry.names then Ok spec
  else
    Error
      (Printf.sprintf "unknown policy %S, expected one of: %s, broken" spec
         (String.concat ", " Gc_cache.Registry.names))

let parse_workload json =
  let* name = field_string ~default:"zipf" "workload" json in
  let* () =
    if List.mem name Gc_trace.Workload_suite.standard_names then Ok ()
    else
      Error
        (Printf.sprintf "unknown workload %S, expected one of: %s" name
           (String.concat ", " Gc_trace.Workload_suite.standard_names))
  in
  let* n = field_int ~default:20_000 ~min:1 ~max:max_trace_n "n" json in
  let* universe =
    field_int ~default:16_384 ~min:1 ~max:max_universe "universe" json
  in
  let* block_size =
    field_int ~default:16 ~min:1 ~max:4096 "block_size" json
  in
  Ok { workload = name; n; universe; block_size }

let parse_id json =
  match Json.member "id" json with
  | None -> Ok None
  | Some (Json.Int _ as id) | Some (Json.String _ as id) -> Ok (Some id)
  | Some other ->
      Error
        (Printf.sprintf "id must be an integer or string, got %s"
           (Json.to_string other))

let parse_ks json =
  match Json.member "ks" json with
  | None -> Error "ks is required for miss-curve (an array of capacities)"
  | Some (Json.Array ks) ->
      if ks = [] then Error "ks must not be empty"
      else if List.length ks > max_curve_points then
        Error
          (Printf.sprintf "ks must have at most %d points" max_curve_points)
      else
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match v with
            | Json.Int k when k >= 1 && k <= max_k -> Ok (k :: acc)
            | Json.Int k ->
                Error (Printf.sprintf "ks entries must be in [1, %d], got %d" max_k k)
            | other ->
                Error
                  (Printf.sprintf "ks entries must be integers, got %s"
                     (Json.to_string other)))
          (Ok []) ks
        |> Result.map List.rev
  | Some other ->
      Error
        (Printf.sprintf "ks must be an array, got %s" (Json.to_string other))

(* The client's end-to-end patience for this request, spent partly in
   the admission queue: absent means "the server's deadline alone". *)
let parse_budget json =
  match Json.member "budget_ms" json with
  | None -> Ok None
  | Some (Json.Int v) ->
      if v < 1 || v > max_budget_ms then
        Error
          (Printf.sprintf "budget_ms must be in [1, %d], got %d" max_budget_ms v)
      else Ok (Some v)
  | Some other ->
      Error
        (Printf.sprintf "budget_ms must be an integer, got %s"
           (Json.to_string other))

let parse_request json =
  match json with
  | Json.Obj _ -> (
      let* id = parse_id json in
      let* budget_ms = parse_budget json in
      let* op = field_string ~default:"" "op" json in
      match op with
      | "" -> Error "op is required (sim | miss-curve | health | stats)"
      | "health" -> Ok { id; op = Health; budget_ms }
      | "stats" -> Ok { id; op = Stats; budget_ms }
      | "sim" ->
          let* policy = field_string ~default:"lru" "policy" json in
          let* policy = valid_policy policy in
          let* k = field_int ~default:1024 ~min:1 ~max:max_k "k" json in
          let* seed = field_int ~default:42 ~min:min_int ~max:max_int "seed" json in
          let* load = parse_workload json in
          let* check = field_bool ~default:false "check" json in
          Ok { id; op = Sim { policy; k; seed; load; check }; budget_ms }
      | "miss-curve" ->
          let* policy = field_string ~default:"lru" "policy" json in
          let* curve_policy = valid_policy policy in
          let* ks = parse_ks json in
          let* curve_seed =
            field_int ~default:42 ~min:min_int ~max:max_int "seed" json
          in
          let* curve_load = parse_workload json in
          Ok
            {
              id;
              op = Miss_curve { curve_policy; ks; curve_seed; curve_load };
              budget_ms;
            }
      | other ->
          Error
            (Printf.sprintf
               "unknown op %S, expected one of: sim, miss-curve, health, stats"
               other))
  | other ->
      Error
        (Printf.sprintf "request must be a JSON object, got %s"
           (Json.to_string other))

(* ------------------------------------------------------------- encoding *)

let workload_fields w =
  [
    ("workload", Json.String w.workload);
    ("n", Json.Int w.n);
    ("universe", Json.Int w.universe);
    ("block_size", Json.Int w.block_size);
  ]

let request_to_json r =
  let id = match r.id with Some id -> [ ("id", id) ] | None -> [] in
  let budget =
    match r.budget_ms with
    | Some b -> [ ("budget_ms", Json.Int b) ]
    | None -> []
  in
  let rest =
    match r.op with
    | Health -> [ ("op", Json.String "health") ]
    | Stats -> [ ("op", Json.String "stats") ]
    | Sim s ->
        [
          ("op", Json.String "sim");
          ("policy", Json.String s.policy);
          ("k", Json.Int s.k);
          ("seed", Json.Int s.seed);
        ]
        @ workload_fields s.load
        @ [ ("check", Json.Bool s.check) ]
    | Miss_curve c ->
        [
          ("op", Json.String "miss-curve");
          ("policy", Json.String c.curve_policy);
          ("ks", Json.Array (List.map (fun k -> Json.Int k) c.ks));
          ("seed", Json.Int c.curve_seed);
        ]
        @ workload_fields c.curve_load
  in
  Json.Obj (id @ budget @ rest)

let kind_usage = "usage"
let kind_protocol = "protocol"
let kind_overloaded = "overloaded"
let kind_draining = "draining"
let kind_expired = "expired"
let kind_timeout = "timeout"
let kind_cancelled = "cancelled"
let kind_exception = "exception"

let with_id id fields =
  match id with Some id -> ("id", id) :: fields | None -> fields

let ok ?id result =
  Json.Obj
    (with_id id [ ("status", Json.String "ok"); ("result", result) ])

let error ?id ?retry_after_ms ~kind message =
  let hint =
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
    | None -> []
  in
  Json.Obj
    (with_id id
       ([
          ("status", Json.String "error");
          ("kind", Json.String kind);
          ("message", Json.String message);
        ]
       @ hint))

let retry_after_ms json =
  match Json.member "retry_after_ms" json with
  | Some (Json.Int ms) when ms > 0 -> Some ms
  | _ -> None

type reply =
  | Ok_result of Json.t
  | Err of string * string

let reply_of_json json =
  let id = Json.member "id" json in
  match Json.member "status" json with
  | Some (Json.String "ok") -> (
      match Json.member "result" json with
      | Some r -> Ok (id, Ok_result r)
      | None -> Error "ok response without result")
  | Some (Json.String "error") -> (
      match (Json.member "kind" json, Json.member "message" json) with
      | Some (Json.String kind), Some (Json.String message) ->
          Ok (id, Err (kind, message))
      | _ -> Error "error response without kind/message")
  | _ -> Error ("response without status: " ^ Json.to_string json)

let op_name = function
  | Sim _ -> "sim"
  | Miss_curve _ -> "miss-curve"
  | Health -> "health"
  | Stats -> "stats"
