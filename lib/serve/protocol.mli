(** The simulation service's request/response vocabulary.

    One JSON document per frame.  Requests carry an optional [id] (JSON
    int or string, echoed verbatim in the reply so clients can pipeline),
    an [op], and op-specific fields.  Responses are
    [{"id":..,"status":"ok","result":..}] or
    [{"id":..,"status":"error","kind":..,"message":..}].

    The error-kind taxonomy extends the run-manifest one (["exception"],
    ["model-violation"], ["timeout"], ["cancelled"]) with the server-side
    kinds ["usage"] (malformed or invalid request body), ["protocol"]
    (broken framing or JSON), ["overloaded"] (admission queue full or the
    sojourn controller shed the job — load was refused), ["expired"] (the
    request's own [budget_ms] lapsed while it waited in the queue, so the
    server refused to burn work its client had already given up on), and
    ["draining"] (the server is shutting down and refuses new work).

    ["overloaded"] and ["expired"] replies may carry a [retry_after_ms]
    hint: a server-jittered backoff suggestion.  Clients that honour it
    (see {!Gc_resil.Resilient_client}) desynchronize instead of forming
    the retry storm that keeps an overload metastable. *)

type workload = {
  workload : string;  (** A {!Gc_trace.Workload_suite.standard} name. *)
  n : int;
  universe : int;
  block_size : int;
}

type sim = {
  policy : string;
  k : int;
  seed : int;
  load : workload;
  check : bool;  (** Run the shadow-model audit. *)
}

type curve = {
  curve_policy : string;
  ks : int list;
  curve_seed : int;
  curve_load : workload;
}

type op =
  | Sim of sim
  | Miss_curve of curve
  | Health
  | Stats

type request = {
  id : Gc_obs.Json.t option;
  op : op;
  budget_ms : int option;
      (** The client's end-to-end patience in milliseconds; queue sojourn
          is charged against it before execution starts.  [None] leaves
          the server's own deadline in sole charge. *)
}

(** {1 Validation limits}

    Every request is validated against hard caps before any work is
    admitted, so a single request cannot ask for an unbounded amount of
    memory or compute. *)

val max_trace_n : int
(** 5_000_000 requests per generated trace. *)

val max_universe : int
val max_k : int
val max_curve_points : int

val max_budget_ms : int
(** 3_600_000 — an hour; a larger budget is a client bug. *)

val parse_request : Gc_obs.Json.t -> (request, string) result
(** Validate a decoded frame into a request.  [Error] messages name the
    offending field and the valid choices or range (they travel back to
    the client in a ["usage"]-kind reply). *)

val request_to_json : request -> Gc_obs.Json.t
(** Encode a request (the client side of the wire). *)

(** {1 Error kinds} *)

val kind_usage : string
val kind_protocol : string
val kind_overloaded : string
val kind_draining : string
val kind_expired : string
val kind_timeout : string
val kind_cancelled : string
val kind_exception : string

(** {1 Response encoders} *)

val ok : ?id:Gc_obs.Json.t -> Gc_obs.Json.t -> Gc_obs.Json.t

val error :
  ?id:Gc_obs.Json.t -> ?retry_after_ms:int -> kind:string -> string ->
  Gc_obs.Json.t
(** [retry_after_ms] attaches a backoff hint to the envelope (meaningful
    on ["overloaded"]/["expired"] replies). *)

val retry_after_ms : Gc_obs.Json.t -> int option
(** Read the backoff hint off a raw reply document, if present and a
    positive integer. *)

type reply =
  | Ok_result of Gc_obs.Json.t
  | Err of string * string  (** (kind, message). *)

val reply_of_json : Gc_obs.Json.t -> (Gc_obs.Json.t option * reply, string) result
(** Decode a response frame into (echoed id, reply); [Error] for a
    document that is not a well-formed response envelope. *)

val op_name : op -> string
(** ["sim"], ["miss-curve"], ["health"], ["stats"] — metric label values. *)
