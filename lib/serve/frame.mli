(** Length-prefixed JSON framing for the simulation service.

    The wire format is deliberately minimal: a 4-byte big-endian unsigned
    payload length, then exactly that many bytes of RFC 8259 JSON (one
    document per frame, parsed by the hardened {!Gc_obs.Json} decoder with
    its strict number grammar and depth limit).  Every defence is explicit:

    - the length is checked against the frame cap {e before} any payload
      buffer is allocated, so a length bomb ([0xFFFFFFFF] followed by
      nothing) costs four bytes of reading and one error record;
    - a zero-length frame is a protocol error (a frame must carry a
      document);
    - decode errors carry the byte offset of the fault — frame-relative on
      string decodes, including the JSON parser's own offsets shifted past
      the header — so adversarial-input tests can assert a positioned
      diagnostic for every malformed input;
    - socket reads take a wall-clock budget for the {e whole} frame, so a
      slow-loris peer dribbling one byte a second is cut off with a
      diagnostic instead of pinning a reader forever. *)

val header_bytes : int
(** 4. *)

val default_max_frame : int
(** 1 MiB: the default cap on a frame's payload length. *)

type error = { offset : int; reason : string }
(** A positioned decode diagnostic; [offset] is relative to the start of
    the frame (offset 0 = first header byte, {!header_bytes} = first
    payload byte). *)

val string_of_error : error -> string
(** ["offset N: reason"]. *)

val encode : Gc_obs.Json.t -> string
(** Header plus compact JSON payload.  Raises [Invalid_argument] if the
    payload exceeds the wire format's 2^32 - 1 byte ceiling. *)

val decode :
  ?max_frame:int -> ?pos:int -> string -> (Gc_obs.Json.t * int, error) result
(** Decode one frame starting at byte [pos] (default 0), returning the
    document and the position just past the frame.  Errors are positioned
    relative to [pos].  Never allocates more than the payload length of a
    frame that passes the cap check. *)

(** {1 Socket I/O} *)

type read_outcome =
  | Frame of Gc_obs.Json.t
  | Eof  (** Clean end of stream at a frame boundary. *)
  | Bad_payload of error
      (** A complete frame arrived but its payload is not valid JSON.  The
          framing itself is intact, so the server can answer with a framed
          error and keep the connection. *)
  | Fault of error
      (** Protocol fault: bad length, over-cap frame, or EOF mid-frame.
          The stream position is unrecoverable; answer and close. *)
  | Timed_out
      (** The frame did not arrive complete within the budget
          (slow-loris), or no frame began within [idle_timeout]. *)

val read_fd :
  ?max_frame:int ->
  ?idle_timeout:float ->
  frame_timeout:float ->
  Unix.file_descr ->
  read_outcome
(** Read one frame.  [idle_timeout] bounds the wait for the first byte
    (default: wait forever); once a frame has begun, the whole frame must
    arrive within [frame_timeout] seconds. *)

val write_raw : Unix.file_descr -> string -> unit
(** Write an already-{!encode}d frame, retrying partial writes and
    [EINTR].  Raises [Unix.Unix_error] (e.g. [EPIPE]) if the peer is
    gone.  Lets callers account encode time and write time separately
    (the server's "encode"/"reply" tracing spans). *)

val write_fd : Unix.file_descr -> Gc_obs.Json.t -> unit
(** {!encode} then {!write_raw}. *)
