module Json = Gc_obs.Json
module Clock = Gc_prof.Clock

let header_bytes = 4
let default_max_frame = 1 lsl 20

type error = { offset : int; reason : string }

let string_of_error e = Printf.sprintf "offset %d: %s" e.offset e.reason

let fail offset fmt = Printf.ksprintf (fun reason -> { offset; reason }) fmt

(* ------------------------------------------------------------- encoding *)

let wire_max = (1 lsl 32) - 1

let encode json =
  let payload = Json.to_string json in
  let n = String.length payload in
  if n > wire_max then
    invalid_arg
      (Printf.sprintf "Frame.encode: %d-byte payload exceeds the wire limit" n);
  let b = Bytes.create (header_bytes + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------- decoding *)

let length_of_header s pos =
  let b i = Char.code s.[pos + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

(* The cap is enforced on the declared length, before the payload is
   sliced out — a length bomb never causes an allocation bigger than the
   error record. *)
let check_length ~max_frame len =
  if len = 0 then Error (fail 0 "empty frame (zero-length payload)")
  else if len > max_frame then
    Error
      (fail 0 "frame length %d exceeds the %d-byte frame cap" len max_frame)
  else Ok len

let decode ?(max_frame = default_max_frame) ?(pos = 0) s =
  let total = String.length s in
  if pos < 0 || pos > total then
    Error (fail 0 "start position %d outside the %d-byte input" pos total)
  else if total - pos < header_bytes then
    Error
      (fail (total - pos) "truncated header: %d of %d length bytes"
         (total - pos) header_bytes)
  else
    match check_length ~max_frame (length_of_header s pos) with
    | Error e -> Error e
    | Ok len ->
        if total - pos - header_bytes < len then
          Error
            (fail (total - pos)
               "truncated frame: %d of %d payload bytes"
               (total - pos - header_bytes)
               len)
        else begin
          let payload = String.sub s (pos + header_bytes) len in
          match Json.parse payload with
          | Ok json -> Ok (json, pos + header_bytes + len)
          | Error e ->
              Error
                (fail
                   (header_bytes + e.Json.offset)
                   "bad frame payload: %s" e.Json.reason)
        end

(* ----------------------------------------------------------- socket I/O *)

type read_outcome =
  | Frame of Json.t
  | Eof
  | Bad_payload of error
  | Fault of error
  | Timed_out

(* Wait until [fd] is readable or [deadline] (absolute; None = forever)
   passes.  EINTR retries with the remaining budget. *)
let rec wait_readable fd deadline =
  let timeout =
    match deadline with
    | None -> -1.
    | Some d ->
        let remaining = d -. Clock.now_s () in
        if remaining <= 0. then 0. else remaining
  in
  if timeout = 0. && deadline <> None then `Timeout
  else
    match Unix.select [ fd ] [] [] timeout with
    | [], _, _ -> if deadline = None then wait_readable fd deadline else `Timeout
    | _ -> `Readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd deadline

(* Read exactly [len] bytes into [buf] at [off], honouring the deadline.
   [`Eof consumed] reports how many bytes had arrived before the stream
   ended. *)
let read_exact fd buf off len deadline =
  let rec go off remaining consumed =
    if remaining = 0 then `Ok
    else
      match wait_readable fd deadline with
      | `Timeout -> `Timeout consumed
      | `Readable -> (
          match Unix.read fd buf off remaining with
          | 0 -> `Eof consumed
          | n -> go (off + n) (remaining - n) (consumed + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              go off remaining consumed
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
              `Eof consumed)
  in
  go off len 0

let read_fd ?(max_frame = default_max_frame) ?idle_timeout ~frame_timeout fd =
  let now = Clock.now_s () in
  let header = Bytes.create header_bytes in
  (* First byte: idle budget.  Rest of the frame: the frame budget, so a
     peer cannot hold a reader by trickling the header one byte at a
     time. *)
  let first =
    read_exact fd header 0 1 (Option.map (fun t -> now +. t) idle_timeout)
  in
  match first with
  | `Timeout _ -> Timed_out
  | `Eof 0 -> Eof
  | `Eof _ -> assert false (* read 1 byte: consumed is 0 on EOF *)
  | `Ok -> (
      let deadline = Some (Clock.now_s () +. frame_timeout) in
      match read_exact fd header 1 (header_bytes - 1) deadline with
      | `Timeout consumed ->
          ignore consumed;
          Timed_out
      | `Eof consumed ->
          Fault
            (fail (1 + consumed) "truncated header: %d of %d length bytes"
               (1 + consumed) header_bytes)
      | `Ok -> (
          match
            check_length ~max_frame
              (length_of_header (Bytes.unsafe_to_string header) 0)
          with
          | Error e -> Fault e
          | Ok len -> (
              let payload = Bytes.create len in
              match read_exact fd payload 0 len deadline with
              | `Timeout _ -> Timed_out
              | `Eof consumed ->
                  Fault
                    (fail
                       (header_bytes + consumed)
                       "truncated frame: %d of %d payload bytes" consumed len)
              | `Ok -> (
                  match Json.parse (Bytes.unsafe_to_string payload) with
                  | Ok json -> Frame json
                  | Error e ->
                      Bad_payload
                        (fail
                           (header_bytes + e.Json.offset)
                           "bad frame payload: %s" e.Json.reason)))))

(* Write an already-encoded frame.  Split from [write_fd] so callers
   that want to account encode time and write time separately (the
   server's "encode"/"reply" spans) can. *)
let write_raw fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off remaining =
    if remaining > 0 then
      match Unix.write fd b off remaining with
      | n -> go (off + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off remaining
  in
  go 0 (Bytes.length b)

let write_fd fd json = write_raw fd (encode json)
