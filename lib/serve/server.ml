module Json = Gc_obs.Json
module Registry = Gc_obs.Registry
module Cancel = Gc_exec.Cancel
module Pool = Gc_exec.Pool
module Clock = Gc_prof.Clock
module Tracer = Gc_prof.Tracer
module Aimd = Gc_admit.Aimd
module Codel = Gc_admit.Codel
module Deque = Gc_admit.Deque
module Deadline = Gc_admit.Deadline

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  queue_depth : int;
  workers : int;
  min_workers : int;
  deadline : float;
  grace : float;
  retries : int;
  backoff : float;
  max_frame : int;
  frame_timeout : float;
  write_timeout : float;
  max_connections : int;
  codel_target : float;
  codel_interval : float;
  retry_after_ms : int;
  seed : int;
  trace : string option;
  name : string option;
}

let default_config =
  {
    socket_path = None;
    tcp = None;
    queue_depth = 64;
    workers = max 1 (Domain.recommended_domain_count () - 1);
    min_workers = 1;
    deadline = 30.;
    grace = 0.25;
    retries = 1;
    backoff = 0.05;
    max_frame = Frame.default_max_frame;
    frame_timeout = 10.;
    write_timeout = 5.;
    max_connections = 256;
    codel_target = 0.1;
    codel_interval = 0.5;
    retry_after_ms = 100;
    seed = 0;
    trace = None;
    name = None;
  }

(* Request-path spans.  Worker and reader sys-threads share domain 0, so
   the thread id is the Perfetto track; the request id rides in the span
   args and is how the trace reconciles against the latency_us histogram
   observation for the same request. *)
let span_tid () = Thread.id (Thread.self ())

let span_id_args id =
  if not (Tracer.enabled ()) then []
  else
    match id with
    | Some j -> [ ("id", Json.to_string j) ]
    | None -> []

(* A task raises this to pick the error kind of its reply (policy crash,
   model violation, bad parameters discovered at construction time). *)
exception Reply_error of string * string

let disconnect_reason = "client disconnected"

type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;  (** Serialises response frames from worker threads. *)
  mutable alive : bool;
  mutable refs : int;  (** Reader thread + unsettled jobs; close at 0. *)
  mutable jobs : job list;  (** Admitted, unsettled. *)
}

and job = {
  req_id : Json.t option;
  jop : Protocol.op;
  jbudget_ms : int option;  (** The client's propagated [budget_ms]. *)
  jconn : conn;
  admitted_ns : int;  (** Monotonic {!Clock} reading at admission. *)
  jcancel : Cancel.t;  (** Requested when the client disconnects. *)
  mutable pool_cancel : Cancel.t option;
      (** The in-flight pool task's own token, via [Pool.run ~on_start]. *)
}

type t = {
  config : config;
  reg : Registry.t;
  mu : Mutex.t;
  nonempty : Condition.t;
      (** Queue gained a job, a worker slot freed up, or drain began. *)
  idle : Condition.t;  (** Queue empty and nothing in flight. *)
  queue : job Deque.t;  (** FIFO while healthy, LIFO while overloaded. *)
  aimd : Aimd.t;  (** Adaptive concurrency limit, guarded by [mu]. *)
  codel : Codel.t;  (** Sojourn-shedding controller, guarded by [mu]. *)
  hint_rng : Gc_trace.Rng.t;  (** Retry-after jitter, guarded by [mu]. *)
  mutable inflight : int;
  mutable is_draining : bool;
  mutable stopped : bool;
  mutable conns : conn list;
  started_at : float;
  listeners : Unix.file_descr list;
  mutable acceptors : Thread.t list;
  mutable workers : Thread.t list;
  (* Metric handles, all registered up front so no thread ever mutates the
     registry's table concurrently. *)
  c_requests : (string * Registry.counter) list;  (* by op, + "invalid" *)
  c_replies : (string * Registry.counter) list;  (* by status kind *)
  c_shed : Registry.counter;  (* total, all shed reasons *)
  c_shed_depth : Registry.counter;  (* queue/connection bound reached *)
  c_shed_sojourn : Registry.counter;  (* CoDel dropping state *)
  c_shed_expired : Registry.counter;  (* client budget lapsed in queue *)
  c_faults : Registry.counter;  (* framing-level protocol faults *)
  c_io_errors : Registry.counter;  (* reply writes that found the peer gone *)
  c_disconnects : Registry.counter;
  c_accepted : Registry.counter;
  g_queue : Registry.gauge;
  g_inflight : Registry.gauge;
  g_limit : Registry.gauge;  (* current AIMD concurrency limit *)
  g_conns : Registry.gauge;
  h_latency : (string * Gc_obs.Histogram.t) list;  (* by op, microseconds *)
  h_queue_wait : (string * Gc_obs.Histogram.t) list;  (* by dequeue outcome *)
}

let ops = [ "sim"; "miss-curve"; "health"; "stats"; "invalid" ]

let reply_kinds =
  [
    "ok";
    Protocol.kind_usage;
    Protocol.kind_protocol;
    Protocol.kind_overloaded;
    Protocol.kind_draining;
    Protocol.kind_expired;
    Protocol.kind_timeout;
    Protocol.kind_cancelled;
    Protocol.kind_exception;
    "model-violation";
    "other";
  ]

(* Every dequeued job's queue wait lands in exactly one of these, so the
   sojourn distribution stays observable for the work the server refused
   — which under overload is most of it. *)
let wait_outcomes = [ "executed"; "shed"; "expired"; "cancelled" ]

let counter_for table key =
  match List.assoc_opt key table with
  | Some c -> c
  | None -> List.assoc "other" table

(* ------------------------------------------------------------ responses *)

(* Serialised, bounded (SO_SNDTIMEO), and total: any write failure just
   marks the connection dead — the peer is gone, which is its problem,
   but the [io_errors] counter keeps the event visible to the stats op
   and to chaos drills (a silent swallow here would make a fault-proxy
   run unaccountable).  Encoding happens outside the write lock (it
   touches only the json), under an "encode" span; the write itself is
   the "reply" span. *)
let try_write t ?(req_id = None) conn json =
  let args = span_id_args req_id in
  let s =
    Gc_prof.Span.with_ ~args ~tid:(span_tid ()) "encode" (fun () ->
        Frame.encode json)
  in
  Mutex.lock conn.wmu;
  (match
     if conn.alive then
       Gc_prof.Span.with_ ~args ~tid:(span_tid ()) "reply" (fun () ->
           Frame.write_raw conn.fd s)
   with
  | () -> ()
  | exception (Unix.Unix_error _ | Sys_error _) ->
      Registry.incr t.c_io_errors;
      conn.alive <- false);
  Mutex.unlock conn.wmu

let count_reply t kind = Registry.incr (counter_for t.c_replies kind)

let reply_error t conn ?id ?retry_after_ms kind message =
  count_reply t kind;
  try_write t ~req_id:id conn (Protocol.error ?id ?retry_after_ms ~kind message)

let reply_ok t conn ?id result =
  count_reply t "ok";
  try_write t ~req_id:id conn (Protocol.ok ?id result)

(* -------------------------------------------------------------- lifecycle *)

let release_locked t conn =
  conn.refs <- conn.refs - 1;
  if conn.refs = 0 then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    Registry.set t.g_conns (List.length t.conns)
  end

(* The reader saw EOF or gave up on the stream: cancel everything this
   client still has in flight (queued jobs are skipped by the worker;
   running ones are cooperatively cancelled through their pool token). *)
let disconnect t conn =
  Mutex.lock t.mu;
  conn.alive <- false;
  if conn.jobs <> [] then Registry.incr t.c_disconnects;
  List.iter
    (fun j ->
      Cancel.request j.jcancel ~reason:disconnect_reason;
      match j.pool_cancel with
      | Some c -> Cancel.request c ~reason:disconnect_reason
      | None -> ())
    conn.jobs;
  release_locked t conn;
  Mutex.unlock t.mu

let settle t job =
  Mutex.lock t.mu;
  job.jconn.jobs <- List.filter (fun j -> j != job) job.jconn.jobs;
  release_locked t job.jconn;
  Mutex.unlock t.mu

(* ------------------------------------------------------------- execution *)

let build_trace (w : Protocol.workload) ~seed =
  match
    Gc_trace.Workload_suite.build ~seed ~n:w.n ~universe:w.universe
      ~block_size:w.block_size w.workload
  with
  | Ok trace -> trace
  | Error msg -> raise (Reply_error (Protocol.kind_usage, msg))

let run_or_reply_error ?(check = false) ~k ~seed policy trace =
  match Gc_cache.Obs_run.run_policy_result ~check ~k ~seed policy trace with
  | Ok r -> r
  | Error f -> raise (Reply_error (f.kind, f.message))

(* Runs inside the pool's task domain, under its cancel token. *)
let execute op ~cancel:_ =
  match op with
  | Protocol.Sim s ->
      let trace = build_trace s.load ~seed:s.seed in
      let r = run_or_reply_error ~check:s.check ~k:s.k ~seed:s.seed s.policy trace in
      Json.Obj
        [
          ("policy", Json.String s.policy);
          ("workload", Json.String s.load.workload);
          ("k", Json.Int s.k);
          ("metrics", Gc_cache.Metrics.to_json r.Gc_cache.Obs_run.metrics);
        ]
  | Protocol.Miss_curve c ->
      let trace = build_trace c.curve_load ~seed:c.curve_seed in
      let rows =
        List.map
          (fun k ->
            Cancel.poll ();
            let r =
              run_or_reply_error ~k ~seed:c.curve_seed c.curve_policy trace
            in
            let m = r.Gc_cache.Obs_run.metrics in
            Json.Obj
              [
                ("k", Json.Int k);
                ("misses", Json.Int m.Gc_cache.Metrics.misses);
                ("miss_rate", Json.Float (Gc_cache.Metrics.miss_rate m));
              ])
          c.ks
      in
      Json.Obj
        [
          ("policy", Json.String c.curve_policy);
          ("workload", Json.String c.curve_load.workload);
          ("curve", Json.Array rows);
        ]
  | Protocol.Health | Protocol.Stats ->
      (* Answered inline by the reader; never admitted. *)
      assert false

let pool_config t ~deadline =
  {
    (Pool.default_config ()) with
    Pool.domains = 1;
    deadline = Some deadline;
    grace = t.config.grace;
    retries = t.config.retries;
    backoff = t.config.backoff;
  }

(* Must hold [t.mu]: draws from the shared jitter stream. *)
let hint_locked t =
  Deadline.retry_after_ms t.hint_rng ~base_ms:t.config.retry_after_ms

(* The worker's disposition for a dequeued job, decided under [t.mu]
   before any execution is committed. *)
type verdict =
  | V_serve of float  (* effective deadline, seconds *)
  | V_shed of int  (* CoDel said drop; retry-after hint, ms *)
  | V_expired of int  (* client budget lapsed in queue; hint, ms *)
  | V_cancelled

let observe_wait t outcome wait_ns =
  match List.assoc_opt outcome t.h_queue_wait with
  | Some h -> Gc_obs.Histogram.observe h (wait_ns / 1000)
  | None -> ()

(* AIMD feedback from the job's outcome, applied by the worker once it
   holds [t.mu] again. *)
type aimd_signal = Sig_success | Sig_congestion | Sig_none

let process t job ~wait_ns verdict =
  let op = Protocol.op_name job.jop in
  if Tracer.enabled () then
    Tracer.emit
      ~args:(span_id_args job.req_id)
      ~tid:(span_tid ()) ~ts_ns:job.admitted_ns ~dur_ns:wait_ns "queue-wait";
  let conn = job.jconn in
  let id = job.req_id in
  let sojourn_ms = Float.of_int wait_ns /. 1e6 in
  match verdict with
  | V_cancelled ->
      observe_wait t "cancelled" wait_ns;
      count_reply t Protocol.kind_cancelled;
      Sig_none
  | V_expired hint ->
      (* The client's budget died in the queue: executing now would burn
         a worker on an answer nobody is waiting for — the fuel of a
         metastable collapse. *)
      observe_wait t "expired" wait_ns;
      Registry.incr t.c_shed;
      Registry.incr t.c_shed_expired;
      reply_error t conn ?id ~retry_after_ms:hint Protocol.kind_expired
        (Printf.sprintf
           "budget of %dms lapsed after %.0fms in the admission queue"
           (Option.value job.jbudget_ms ~default:0)
           sojourn_ms);
      Sig_congestion
  | V_shed hint ->
      observe_wait t "shed" wait_ns;
      Registry.incr t.c_shed;
      Registry.incr t.c_shed_sojourn;
      reply_error t conn ?id ~retry_after_ms:hint Protocol.kind_overloaded
        (Printf.sprintf
           "queue sojourn %.0fms exceeded the %.0fms target"
           sojourn_ms
           (t.config.codel_target *. 1000.));
      Sig_congestion
  | V_serve deadline ->
      observe_wait t "executed" wait_ns;
      let outcome =
        match
          Gc_prof.Span.with_
            ~args:(span_id_args job.req_id)
            ~tid:(span_tid ()) "execute"
            (fun () ->
              Pool.run ~config:(pool_config t ~deadline)
                ~on_start:(fun _ c ->
                  (* Publish the live token; if the disconnect already
                     happened, cancel immediately — the hook runs before the
                     task's domain is spawned, so this cannot lose the
                     race. *)
                  Mutex.lock t.mu;
                  job.pool_cancel <- Some c;
                  if Cancel.requested job.jcancel then
                    Cancel.request c ~reason:disconnect_reason;
                  Mutex.unlock t.mu)
                [ execute job.jop ])
        with
        | [ o ] -> o
        | _ -> assert false
      in
      let signal =
        match outcome with
        | Pool.Done result ->
            reply_ok t conn ?id result;
            Sig_success
        | Pool.Failed (Reply_error (kind, message)) ->
            reply_error t conn ?id kind message;
            Sig_none
        | Pool.Failed (Invalid_argument message) ->
            (* Parameterized policy construction rejected its arguments. *)
            reply_error t conn ?id Protocol.kind_usage message;
            Sig_none
        | Pool.Failed exn ->
            reply_error t conn ?id Protocol.kind_exception
              (Printexc.to_string exn);
            Sig_none
        | Pool.Timed_out d ->
            reply_error t conn ?id Protocol.kind_timeout
              (Printf.sprintf "request exceeded its %gs deadline" d);
            Sig_congestion
        | Pool.Cancelled ->
            (* Only the disconnect path cancels a job token; the client is
               gone, so there is nobody to answer — just account for it. *)
            count_reply t Protocol.kind_cancelled;
            Sig_none
      in
      (match List.assoc_opt op t.h_latency with
      | Some h ->
          Gc_obs.Histogram.observe h
            ((Clock.now_ns () - job.admitted_ns) / 1000)
      | None -> ());
      signal

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    (* Wait until there is a job AND a slot under the adaptive limit —
       or until a drain empties the queue out from under us.  During a
       drain the limit still gates execution; progress is guaranteed
       because every completion broadcasts [nonempty]. *)
    while
      (Deque.is_empty t.queue || t.inflight >= Aimd.limit t.aimd)
      && not (t.is_draining && Deque.is_empty t.queue)
    do
      Condition.wait t.nonempty t.mu
    done;
    if Deque.is_empty t.queue then Mutex.unlock t.mu (* draining: exit *)
    else begin
      let job =
        (* LIFO under overload: the newest request is the only one whose
           client is still likely to be waiting. *)
        match
          if Codel.overloaded t.codel then Deque.pop_back_opt t.queue
          else Deque.pop_front_opt t.queue
        with
        | Some j -> j
        | None -> assert false
      in
      Registry.set t.g_queue (Deque.length t.queue);
      let now_ns = Clock.now_ns () in
      let wait_ns = now_ns - job.admitted_ns in
      let now = Float.of_int now_ns /. 1e9 in
      let sojourn = Float.of_int wait_ns /. 1e9 in
      (* CoDel sees every dequeue (it tracks continuity of the
         above-target condition); the deadline check takes precedence for
         the reply itself. *)
      let codel_verdict = Codel.on_dequeue t.codel ~now ~sojourn in
      let verdict =
        if Cancel.requested job.jcancel then V_cancelled
        else
          match
            Deadline.effective ~server_deadline:t.config.deadline
              ~budget_ms:job.jbudget_ms ~sojourn
          with
          | Deadline.Expired -> V_expired (hint_locked t)
          | Deadline.Within d -> (
              match codel_verdict with
              | Codel.Shed -> V_shed (hint_locked t)
              | Codel.Serve -> V_serve d)
      in
      t.inflight <- t.inflight + 1;
      Registry.set t.g_inflight t.inflight;
      Mutex.unlock t.mu;
      (* A reply failure must not kill the worker — but a supervision
         signal (cooperative cancellation, a retryable fault that escaped
         its pool) must stay loud, not be absorbed as if the job merely
         misbehaved.  Settle the accounting first so a concurrent drain
         cannot hang on the inflight count. *)
      let signal, escaped =
        match process t job ~wait_ns verdict with
        | s -> (s, None)
        | exception ((Cancel.Cancelled _ | Pool.Transient _) as e) ->
            (Sig_none, Some e)
        | exception _ -> (Sig_none, None)
      in
      settle t job;
      Mutex.lock t.mu;
      (match signal with
      | Sig_success -> Aimd.on_success t.aimd
      | Sig_congestion ->
          Aimd.on_congestion t.aimd ~now:(Float.of_int (Clock.now_ns ()) /. 1e9)
      | Sig_none -> ());
      Registry.set t.g_limit (Aimd.limit t.aimd);
      t.inflight <- t.inflight - 1;
      Registry.set t.g_inflight t.inflight;
      (* A freed slot (or a raised limit) may unblock a gated peer. *)
      Condition.broadcast t.nonempty;
      if t.inflight = 0 && Deque.is_empty t.queue then
        Condition.broadcast t.idle;
      Mutex.unlock t.mu;
      match escaped with Some e -> raise e | None -> loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------- admission *)

(* A fleet member announces which replica it is in every health/stats
   reply, so a drill (or an operator) can tell the replicas apart by
   asking them rather than by remembering socket paths. *)
let replica_field t =
  match t.config.name with
  | None -> []
  | Some n -> [ ("replica", Json.String n) ]

let stats_json t =
  Mutex.lock t.mu;
  let queue = Deque.length t.queue
  and inflight = t.inflight
  and limit = Aimd.limit t.aimd
  and overloaded = Codel.overloaded t.codel
  and conns = List.length t.conns
  and draining = t.is_draining in
  Mutex.unlock t.mu;
  Json.Obj
    (replica_field t
    @ [
      ("state", Json.String (if draining then "draining" else "serving"));
      ("uptime_s", Json.Float (Clock.now_s () -. t.started_at));
      ("queue_depth", Json.Int queue);
      ("inflight", Json.Int inflight);
      ("concurrency_limit", Json.Int limit);
      ("overloaded", Json.Bool overloaded);
      ("connections", Json.Int conns);
      ("metrics", Registry.to_json t.reg);
    ])

let health_json t =
  Mutex.lock t.mu;
  let draining = t.is_draining in
  Mutex.unlock t.mu;
  Json.Obj
    (replica_field t
    @ [
        ("state", Json.String (if draining then "draining" else "serving"));
        ("uptime_s", Json.Float (Clock.now_s () -. t.started_at));
      ])

let admit t conn id ~budget_ms op =
  Mutex.lock t.mu;
  if t.is_draining then begin
    Mutex.unlock t.mu;
    reply_error t conn ?id Protocol.kind_draining
      "server is draining and refuses new requests"
  end
  else if Deque.length t.queue >= t.config.queue_depth then begin
    (* Load shedding: overload is an immediate, explicit answer — the one
       thing the server never does with excess work is buffer it
       silently. *)
    Registry.incr t.c_shed;
    Registry.incr t.c_shed_depth;
    let hint = hint_locked t in
    let inflight = t.inflight in
    Mutex.unlock t.mu;
    reply_error t conn ?id ~retry_after_ms:hint Protocol.kind_overloaded
      (Printf.sprintf "admission queue full (%d queued, %d in flight)"
         t.config.queue_depth inflight)
  end
  else begin
    let job =
      {
        req_id = id;
        jop = op;
        jbudget_ms = budget_ms;
        jconn = conn;
        admitted_ns = Clock.now_ns ();
        jcancel = Cancel.create ();
        pool_cancel = None;
      }
    in
    conn.refs <- conn.refs + 1;
    conn.jobs <- job :: conn.jobs;
    Deque.push_back t.queue job;
    Registry.set t.g_queue (Deque.length t.queue);
    Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end

(* Best-effort id recovery for requests that fail validation: echo the id
   if it is at least shaped like one. *)
let salvage_id json =
  match Json.member "id" json with
  | Some (Json.Int _ as id) | Some (Json.String _ as id) -> Some id
  | _ -> None

let handle t conn json =
  (* The "decode" span covers request validation, on the reader thread —
     it precedes admission, so it sits just before the queue-wait span on
     the request's timeline. *)
  let t0 = if Tracer.enabled () then Clock.now_ns () else 0 in
  let decoded = Protocol.parse_request json in
  if Tracer.enabled () then begin
    let id =
      match decoded with
      | Ok { Protocol.id; _ } -> id
      | Error _ -> salvage_id json
    in
    Tracer.emit ~args:(span_id_args id) ~tid:(span_tid ()) ~ts_ns:t0
      ~dur_ns:(Clock.now_ns () - t0)
      "decode"
  end;
  match decoded with
  | Error message ->
      Registry.incr (counter_for t.c_requests "invalid");
      reply_error t conn ?id:(salvage_id json) Protocol.kind_usage message
  | Ok { id; op; budget_ms } -> (
      Registry.incr (counter_for t.c_requests (Protocol.op_name op));
      match op with
      | Protocol.Health -> reply_ok t conn ?id (health_json t)
      | Protocol.Stats -> reply_ok t conn ?id (stats_json t)
      | Protocol.Sim _ | Protocol.Miss_curve _ ->
          admit t conn id ~budget_ms op)

let reader t conn =
  let rec loop () =
    match
      Frame.read_fd ~max_frame:t.config.max_frame
        ~frame_timeout:t.config.frame_timeout conn.fd
    with
    | Frame.Eof -> ()
    | Frame.Frame json ->
        handle t conn json;
        if conn.alive then loop ()
    | Frame.Bad_payload e ->
        (* The frame boundary is intact: answer and keep serving. *)
        Registry.incr t.c_faults;
        reply_error t conn Protocol.kind_protocol (Frame.string_of_error e);
        if conn.alive then loop ()
    | Frame.Fault e ->
        Registry.incr t.c_faults;
        reply_error t conn Protocol.kind_protocol (Frame.string_of_error e)
    | Frame.Timed_out ->
        Registry.incr t.c_faults;
        reply_error t conn Protocol.kind_protocol
          (Printf.sprintf
             "frame not delivered within %gs (slow-loris guard)"
             t.config.frame_timeout)
  in
  (* Any stream fault tears the connection down; only supervision signals
     are allowed back out (after the teardown, so the refcount stays
     right). *)
  let escaped =
    match loop () with
    | () -> None
    | exception ((Cancel.Cancelled _ | Pool.Transient _) as e) -> Some e
    | exception _ -> None
  in
  disconnect t conn;
  match escaped with Some e -> raise e | None -> ()

(* ------------------------------------------------------------- accepting *)

let register_conn t cfd =
  (try Unix.setsockopt_float cfd Unix.SO_SNDTIMEO t.config.write_timeout
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  Registry.incr t.c_accepted;
  Mutex.lock t.mu;
  if List.length t.conns >= t.config.max_connections then begin
    Registry.incr t.c_shed;
    Registry.incr t.c_shed_depth;
    let hint = hint_locked t in
    Mutex.unlock t.mu;
    let tmp =
      { fd = cfd; wmu = Mutex.create (); alive = true; refs = 1; jobs = [] }
    in
    reply_error t tmp ~retry_after_ms:hint Protocol.kind_overloaded
      (Printf.sprintf "connection limit reached (%d)" t.config.max_connections);
    try Unix.close cfd with Unix.Unix_error _ -> ()
  end
  else begin
    let conn =
      { fd = cfd; wmu = Mutex.create (); alive = true; refs = 1; jobs = [] }
    in
    t.conns <- conn :: t.conns;
    Registry.set t.g_conns (List.length t.conns);
    Mutex.unlock t.mu;
    (* Readers are blocking-I/O multiplexers that live as long as their
       connection, which the per-task pool cannot express; simulation work
       itself runs on Gc_exec.Pool (see [process]). *)
    ignore (Thread.create (reader t) conn [@lint.allow "spawn-outside-pool"])
  end

let acceptor t fd =
  let rec loop () =
    if not t.is_draining then begin
      (match Unix.select [ fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | cfd, _ -> register_conn t cfd
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  let escaped =
    match loop () with
    | () -> None
    | exception ((Cancel.Cancelled _ | Pool.Transient _) as e) -> Some e
    | exception _ -> None
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match escaped with Some e -> raise e | None -> ()

(* -------------------------------------------------------------- creation *)

let bind_unix path =
  (* A socket file left by a dead server must not block restarts, but a
     live server's must: probe it. *)
  if Sys.file_exists path then begin
    match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK -> (
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () ->
            Unix.close probe;
            failwith
              (Printf.sprintf "socket %s is already being served" path)
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
            Unix.close probe;
            Sys.remove path
        | exception e ->
            (try Unix.close probe with Unix.Unix_error _ -> ());
            raise e)
    | _ ->
        failwith (Printf.sprintf "%s exists and is not a socket" path)
  end;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

let bind_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let create config =
  if config.socket_path = None && config.tcp = None then
    invalid_arg "Server.create: no listener configured (socket_path or tcp)";
  if config.queue_depth < 1 then invalid_arg "Server.create: queue_depth < 1";
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  if config.min_workers < 1 then invalid_arg "Server.create: min_workers < 1";
  if config.min_workers > config.workers then
    invalid_arg "Server.create: min_workers > workers";
  if config.codel_target > 0. && config.codel_interval <= 0. then
    invalid_arg "Server.create: codel_interval <= 0 with codel enabled";
  if config.retry_after_ms < 1 then
    invalid_arg "Server.create: retry_after_ms < 1";
  (* A client closing mid-write must be an EPIPE, not a process kill. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  if config.trace <> None then Tracer.start ();
  let reg = Registry.create () in
  let listeners =
    List.filter_map Fun.id
      [
        Option.map bind_unix config.socket_path;
        Option.map (fun (h, p) -> bind_tcp h p) config.tcp;
      ]
  in
  let t =
    {
      config;
      reg;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      queue = Deque.create ();
      aimd =
        Aimd.create
          ~cooldown:
            (if config.codel_interval > 0. then config.codel_interval else 0.5)
          ~min_limit:config.min_workers ~max_limit:config.workers ();
      codel =
        Codel.create ~target:config.codel_target
          ~interval:config.codel_interval;
      hint_rng = Gc_trace.Rng.create config.seed;
      inflight = 0;
      is_draining = false;
      stopped = false;
      conns = [];
      started_at = Clock.now_s ();
      listeners;
      acceptors = [];
      workers = [];
      c_requests =
        List.map
          (fun op -> (op, Registry.counter reg ~labels:[ ("op", op) ] "requests"))
          ops;
      c_replies =
        List.map
          (fun k -> (k, Registry.counter reg ~labels:[ ("status", k) ] "replies"))
          reply_kinds;
      c_shed = Registry.counter reg "shed";
      c_shed_depth = Registry.counter reg "shed_depth";
      c_shed_sojourn = Registry.counter reg "shed_sojourn";
      c_shed_expired = Registry.counter reg "shed_expired";
      c_faults = Registry.counter reg "protocol_faults";
      c_io_errors = Registry.counter reg "io_errors";
      c_disconnects = Registry.counter reg "mid_request_disconnects";
      c_accepted = Registry.counter reg "connections_accepted";
      g_queue = Registry.gauge reg "queue_depth";
      g_inflight = Registry.gauge reg "inflight";
      g_limit = Registry.gauge reg "concurrency_limit";
      g_conns = Registry.gauge reg "connections";
      h_latency =
        List.filter_map
          (fun op ->
            if op = "health" || op = "stats" || op = "invalid" then None
            else
              Some
                (op, Registry.histogram reg ~labels:[ ("op", op) ] "latency_us"))
          ops;
      h_queue_wait =
        List.map
          (fun o ->
            (o, Registry.histogram reg ~labels:[ ("outcome", o) ] "queue_wait_us"))
          wait_outcomes;
    }
  in
  Registry.set t.g_limit (Aimd.limit t.aimd);
  (* Workers and acceptors are process-lifetime service threads blocking
     in accept/condition-wait — not tasks with a start and an end, so the
     supervised pool is the wrong shape for them.  The jobs they carry do
     run on Gc_exec.Pool. *)
  t.workers <-
    List.init config.workers (fun _ ->
        Thread.create worker_loop t [@lint.allow "spawn-outside-pool"]);
  t.acceptors <-
    List.map
      (fun fd -> Thread.create (acceptor t) fd [@lint.allow "spawn-outside-pool"])
      listeners;
  t

(* ---------------------------------------------------------------- drain *)

let draining t =
  Mutex.lock t.mu;
  let d = t.is_draining in
  Mutex.unlock t.mu;
  d

let registry t = t.reg

let drain t =
  Mutex.lock t.mu;
  let first = not t.is_draining in
  t.is_draining <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  if not first then
    (* A concurrent drain is already running; wait for it to finish. *)
    while not t.stopped do Thread.delay 0.02 done
  else begin
    (* Stage 1: stop accepting.  The acceptors see the flag within one
       select tick and close the listener fds. *)
    List.iter Thread.join t.acceptors;
    (match t.config.socket_path with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ());
    (* Stage 2: answer everything already admitted.  Readers still answer
       health/stats and refuse new work with a "draining" reply. *)
    Mutex.lock t.mu;
    while not (Deque.is_empty t.queue && t.inflight = 0) do
      Condition.wait t.idle t.mu
    done;
    Mutex.unlock t.mu;
    List.iter Thread.join t.workers;
    (* Stage 3: release the connections.  Shutting down the receive side
       pops every reader out of its blocking read with a clean EOF; the
       last reference closes each fd. *)
    let rec sweep () =
      Mutex.lock t.mu;
      let remaining = t.conns in
      Mutex.unlock t.mu;
      if remaining <> [] then begin
        List.iter
          (fun c ->
            try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          remaining;
        Thread.delay 0.02;
        sweep ()
      end
    in
    sweep ();
    (* The trace artifact is written by the drain that did the work, once
       every span-producing thread has stopped. *)
    (match t.config.trace with
    | Some path ->
        Gc_obs.Export.write_json_atomic path
          (Gc_prof.Chrome.to_json (Tracer.dump ()))
    | None -> ());
    t.stopped <- true
  end

let manifest t =
  Gc_obs.Manifest.make ~tool:"gcserved" ~command:"serve"
    ~wall_time_s:(Clock.now_s () -. t.started_at)
    ~extra:
      ((match t.config.name with
       | None -> []
       | Some n -> [ ("replica", Json.String n) ])
      @ [
          ("status", Json.String (if t.stopped then "drained" else "serving"));
          ("server", Registry.to_json t.reg);
        ])
    []

let run ?manifest_path config =
  let t = create config in
  Gc_exec.Supervisor.with_interrupt
    ~message:"gcserved: draining (signal again to hard-exit)" (fun token ->
      let rec wait () =
        if not (Cancel.requested token) then begin
          (try Thread.delay 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          wait ()
        end
      in
      wait ();
      drain t;
      match manifest_path with
      | Some path ->
          Gc_obs.Export.write_json_atomic path
            (Gc_obs.Manifest.to_json (manifest t))
      | None -> ())
