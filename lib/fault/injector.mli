(** Wrap any policy in a single-shot fault injector.

    The wrapped policy behaves identically to the inner one until the
    spec's arm index, then corrupts exactly one reported outcome (or, for
    [Over_occupancy], its occupancy report) in the way the fault class
    prescribes.  Corruption is constructed against a mirror of what the
    {e checker} believes is cached — built from the reported outcomes — so
    each fault provokes precisely its own audit check and not an earlier
    one by accident. *)

val wrap :
  Spec.t ->
  blocks:Gc_trace.Block_map.t ->
  Gc_cache.Policy.t ->
  Gc_cache.Policy.t * (unit -> int option)
(** [wrap spec ~blocks p] is the injected policy plus a [fired] probe:
    [None] until the fault has been injected, then [Some index] of the
    access it fired on.  A fault stays armed across accesses where it is
    not eligible (e.g. [Phantom_miss] waits for a hit), so [fired ()] can
    remain [None] for a whole run if the trace never makes it eligible. *)
