(** Byte-level fault proxy for the serving wire.

    PR 2's {!Injector} enumerates faults at the policy layer; this is the
    same discipline one layer down — a Unix-domain proxy that sits
    between a client and [gcserved] and damages the {e byte stream}
    according to a per-connection plan.  The interesting assertions live
    on either side of it: {!Gc_serve.Frame}'s cap/timeout/truncation
    guards must turn every damaged stream into a positioned protocol
    error or a timeout (never a hang, never a crash), and
    {!Gc_resil.Resilient_client} must classify and ride over the rest.

    Faults damage the client-to-server direction (the request bytes), so
    the server's framing guards are the assertion surface and its
    [protocol_faults]/[io_errors] counters account the damage; the
    server-to-client direction is forwarded verbatim so error replies
    still reach the client.

    Deterministic by construction: the plan is a pure function of the
    accepted-connection ordinal, so a drill that derives it from a seed
    injects the same faults at the same positions on every run. *)

type fault =
  | Pass  (** Forward verbatim. *)
  | Delay of float
      (** Forward the first request byte, hold the rest for this many
          seconds: trips the server's whole-frame (slow-loris) budget
          when longer than [frame_timeout]. *)
  | Truncate_after of int
      (** Forward only the first [n] request bytes, then half-close the
          server side: the server sees EOF mid-frame (a [Fault]) and its
          error reply still reaches the client. *)
  | Corrupt_byte of int
      (** XOR request-stream byte [n] (0-based) with [0x20]: a payload
          byte yields [Bad_payload]/a usage error, a header length byte
          a cap fault or truncation timeout. *)
  | Drop
      (** Accept the client and forward nothing — no server contact, no
          reply; the client's own deadline must classify it. *)

val fault_string : fault -> string
(** Stable rendering for drill reports/schedules. *)

type t

val create :
  listen:string -> upstream:string -> plan:(int -> fault) -> unit -> t
(** Listen on Unix-domain socket [listen], dialing [upstream] per
    connection; connection [i] (0-based accept order) suffers [plan i].
    Raises [Unix.Unix_error] if the listen socket cannot be bound. *)

val connections : t -> int
(** Connections accepted so far. *)

val stop : t -> unit
(** Close the listener and every live connection, join the pump threads,
    remove the socket file.  Idempotent. *)
