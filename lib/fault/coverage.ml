module Trace = Gc_trace.Trace
module Block_map = Gc_trace.Block_map

type outcome = {
  fault : Spec.fault_class;
  fired : int option;
  detected : bool;
  message : string option;
}

(* Blocks of 4: {0..3} {4..7}.  The sequence provides, in order, a cold
   miss (0), a same-block neighbour miss with 0 still cached (1), a hit
   (0), capacity fill (2, 3), an eviction (5), more evictions (6, 7), and
   re-accesses of the early items (0, 1) so a hidden eviction of either is
   eventually caught as a miss-on-believed-cached. *)
let drill_trace () =
  Trace.make
    (Block_map.uniform ~block_size:4)
    [| 0; 1; 0; 2; 3; 5; 6; 7; 0; 1 |]

let check ?(k = 4) ?(at = 0) fault trace =
  let blocks = trace.Trace.blocks in
  let inner = Gc_cache.Lru.create ~k in
  let policy, fired = Injector.wrap { Spec.fault; at } ~blocks inner in
  match Gc_cache.Simulator.run ~check:true policy trace with
  | _ -> { fault; fired = fired (); detected = false; message = None }
  | exception Gc_cache.Simulator.Model_violation msg ->
      { fault; fired = fired (); detected = true; message = Some msg }

let matrix ?k ?trace () =
  let trace = match trace with Some t -> t | None -> drill_trace () in
  List.map (fun fault -> check ?k fault trace) Spec.all

let undetected outcomes =
  List.filter_map
    (fun o ->
      if o.detected && o.fired <> None then None else Some o.fault)
    outcomes
