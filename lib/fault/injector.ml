module Policy = Gc_cache.Policy
module Block_map = Gc_trace.Block_map

type state = {
  inner : Policy.t;
  blocks : Block_map.t;
  spec : Spec.t;
  (* What the checker believes is cached, maintained from the outcomes as
     reported (not as true): fault construction picks items from here so a
     corruption trips exactly the intended audit check. *)
  mirror : (int, unit) Hashtbl.t;
  mutable max_seen : int;
  mutable index : int;
  mutable fired : int option;
}

(* An id the checker has never seen: neither cached nor ever requested. *)
let fresh s = s.max_seen + 1

(* An id from a different block than [item]'s.  Search upward from a fresh
   id: uniform maps place consecutive ids in blocks of bounded size, and
   explicit maps give unlisted ids singleton blocks, so this terminates
   within one block size. *)
let foreign s item =
  let blk = Block_map.block_of s.blocks item in
  let rec go c = if Block_map.block_of s.blocks c <> blk then c else go (c + 1) in
  go (fresh s)

(* A checker-believed-cached item passing [keep], or [None]. *)
let cached_candidate s keep =
  Hashtbl.fold
    (fun c () acc -> match acc with Some _ -> acc | None -> if keep c then Some c else None)
    s.mirror None

(* [Some corrupted] when the fault class is eligible against this truthful
   outcome, [None] to stay armed. *)
let mutate s item truth =
  match (s.spec.Spec.fault, truth) with
  | Spec.Phantom_hit, Policy.Miss _ -> Some (Policy.Hit { evicted = [] })
  | Spec.Phantom_miss, Policy.Hit _ ->
      Some (Policy.Miss { loaded = [ item ]; evicted = [] })
  | Spec.Drop_requested, Policy.Miss { loaded; evicted } ->
      Some (Policy.Miss { loaded = List.filter (fun x -> x <> item) loaded; evicted })
  | Spec.Wrong_block_load, Policy.Miss { loaded; evicted } ->
      Some (Policy.Miss { loaded = loaded @ [ foreign s item ]; evicted })
  | Spec.Double_load, Policy.Miss { loaded; evicted } ->
      Some (Policy.Miss { loaded = loaded @ [ item ]; evicted })
  | Spec.Reload_cached, Policy.Miss { loaded; evicted } ->
      (* Must come from the requested item's own block, or the audit's
         wrong-block check would fire instead of its already-cached one. *)
      let blk = Block_map.block_of s.blocks item in
      cached_candidate s (fun c ->
          Block_map.block_of s.blocks c = blk
          && (not (List.mem c loaded))
          && not (List.mem c evicted))
      |> Option.map (fun c -> Policy.Miss { loaded = loaded @ [ c ]; evicted })
  | Spec.Spurious_evict, Policy.Hit { evicted } ->
      Some (Policy.Hit { evicted = evicted @ [ fresh s ] })
  | Spec.Spurious_evict, Policy.Miss { loaded; evicted } ->
      Some (Policy.Miss { loaded; evicted = evicted @ [ fresh s ] })
  | Spec.Ghost_evict, Policy.Hit { evicted } ->
      cached_candidate s (fun c ->
          c <> item && Policy.mem s.inner c && not (List.mem c evicted))
      |> Option.map (fun c -> Policy.Hit { evicted = evicted @ [ c ] })
  | Spec.Ghost_evict, Policy.Miss { loaded; evicted } ->
      cached_candidate s (fun c ->
          c <> item
          && Policy.mem s.inner c
          && (not (List.mem c evicted))
          && not (List.mem c loaded))
      |> Option.map (fun c -> Policy.Miss { loaded; evicted = evicted @ [ c ] })
  | Spec.Hidden_evict, Policy.Hit { evicted = _ :: rest } ->
      Some (Policy.Hit { evicted = rest })
  | Spec.Hidden_evict, Policy.Miss { loaded; evicted = _ :: rest } ->
      Some (Policy.Miss { loaded; evicted = rest })
  | Spec.Over_occupancy, truth -> Some truth
  | _ -> None

(* Replicate the checker's shadow-cache update for a reported outcome. *)
let apply_reported s item = function
  | Policy.Hit { evicted } ->
      List.iter (Hashtbl.remove s.mirror) evicted;
      Hashtbl.replace s.mirror item ()
  | Policy.Miss { loaded; evicted } ->
      List.iter (Hashtbl.remove s.mirror) evicted;
      List.iter (fun x -> Hashtbl.replace s.mirror x ()) loaded;
      Hashtbl.replace s.mirror item ()

module M = struct
  type t = state

  let name = "inject"
  let k s = Policy.k s.inner
  let mem s x = Policy.mem s.inner x

  let occupancy s =
    match (s.spec.Spec.fault, s.fired) with
    | Spec.Over_occupancy, Some _ -> Policy.k s.inner + 1
    | _ -> Policy.occupancy s.inner

  let access s item =
    let i = s.index in
    s.index <- i + 1;
    if item > s.max_seen then s.max_seen <- item;
    let truth = Policy.access s.inner item in
    let reported =
      if s.fired = None && i >= s.spec.Spec.at then
        match mutate s item truth with
        | Some corrupted ->
            s.fired <- Some i;
            corrupted
        | None -> truth
      else truth
    in
    apply_reported s item reported;
    reported
end

let wrap spec ~blocks inner =
  let s =
    {
      inner;
      blocks;
      spec;
      mirror = Hashtbl.create 256;
      max_seen = -1;
      index = 0;
      fired = None;
    }
  in
  (Policy.Instance ((module M), s), fun () -> s.fired)
