(** Fault classes and the injection spec grammar.

    Each class names one way a policy implementation could lie to (or
    drift from) the simulator's shadow audit.  The taxonomy mirrors the
    audit in {!Gc_cache.Simulator} one check per class, so the coverage
    matrix ({!Coverage}) can prove every check actually fires. *)

type fault_class =
  | Phantom_hit  (** Report a hit on an item that is not cached. *)
  | Phantom_miss  (** Report a miss on an item that is cached. *)
  | Drop_requested  (** Miss whose load list omits the requested item. *)
  | Wrong_block_load  (** Load an item from a different block. *)
  | Double_load  (** List the same item twice in one load. *)
  | Reload_cached  (** Load an item that is already cached. *)
  | Spurious_evict  (** Evict an item that was never cached. *)
  | Ghost_evict  (** Claim an eviction while secretly keeping the item. *)
  | Hidden_evict
      (** Evict an item but hide it from the report.  The audit cannot see
          this at the faulting access; it is caught later, when the
          secretly-evicted item is re-requested and the policy reports a
          miss on an item the audit still believes cached. *)
  | Over_occupancy  (** Report occupancy above the capacity [k]. *)

type t = {
  fault : fault_class;
  at : int;
      (** Arm index: the fault fires once, at the first {e eligible} access
          whose index is [>= at] (e.g. [Phantom_miss] needs a hit to
          corrupt, so it waits for one). *)
}

val all : fault_class list
(** Every class, in declaration order. *)

val to_string : fault_class -> string
(** Kebab-case name, e.g. ["phantom-hit"]. *)

val of_string : string -> fault_class option

val describe : fault_class -> string
(** One-line description for CLI listings. *)

val parse : string -> (t, string) result
(** Spec grammar: [CLASS] or [CLASS@INDEX] (["spurious-evict@250"]).
    [Error] carries a message listing the valid classes. *)

val spec_string : t -> string
(** Inverse of {!parse}. *)
