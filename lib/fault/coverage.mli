(** The checker-coverage matrix: mutation testing for the shadow audit.

    For each {!Spec.fault_class}, run a fault-injected LRU through the
    checked simulator on a drill trace designed to make every class
    eligible, and record whether the audit raised
    [Gc_cache.Simulator.Model_violation].  A fault that fires without a
    violation is an audit gap. *)

type outcome = {
  fault : Spec.fault_class;
  fired : int option;  (** Access index the fault was injected at. *)
  detected : bool;  (** Did the checked simulator raise? *)
  message : string option;  (** The violation message when detected. *)
}

val drill_trace : unit -> Gc_trace.Trace.t
(** A short trace (uniform blocks of 4) exercising hits, same-block
    neighbour misses, capacity evictions, and re-access of an evicted
    item — the eligibility conditions of all ten fault classes, including
    the delayed detection of [Hidden_evict]. *)

val check :
  ?k:int -> ?at:int -> Spec.fault_class -> Gc_trace.Trace.t -> outcome
(** Run one fault class (default [k = 4], armed at access [at = 0],
    LRU inner policy) under the checked simulator. *)

val matrix : ?k:int -> ?trace:Gc_trace.Trace.t -> unit -> outcome list
(** {!check} every class in {!Spec.all} against [trace] (default
    {!drill_trace}). *)

val undetected : outcome list -> Spec.fault_class list
(** Classes that fired but were not flagged — audit gaps.  Classes that
    never fired also count: an ineligible fault proves nothing. *)
