type fault =
  | Pass
  | Delay of float
  | Truncate_after of int
  | Corrupt_byte of int
  | Drop

let fault_string = function
  | Pass -> "pass"
  | Delay d -> Printf.sprintf "delay@%g" d
  | Truncate_after n -> Printf.sprintf "truncate@%d" n
  | Corrupt_byte n -> Printf.sprintf "corrupt@%d" n
  | Drop -> "drop"

type t = {
  listen_path : string;
  listener : Unix.file_descr;
  plan : int -> fault;
  upstream : string;
  mu : Mutex.t;
  mutable live : Unix.file_descr list;  (** Every fd a stop must close. *)
  mutable pumps : Thread.t list;
  mutable accepted : int;
  mutable stopping : bool;
  mutable acceptor : Thread.t option;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_quiet fd how =
  try Unix.shutdown fd how with Unix.Unix_error _ | Invalid_argument _ -> ()

let track t fd =
  Mutex.lock t.mu;
  t.live <- fd :: t.live;
  Mutex.unlock t.mu

let untrack t fd =
  Mutex.lock t.mu;
  t.live <- List.filter (fun f -> f != fd) t.live;
  Mutex.unlock t.mu;
  close_quiet fd

let write_all fd buf len =
  let rec go off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Copy [src] to [dst] verbatim until EOF or a torn socket.  Stream
   errors (a peer or a [stop] closing an fd mid-read) end the pump; they
   are its normal termination, not an event to propagate. *)
let pump_verbatim src dst =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        write_all dst buf n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ | exception Sys_error _ -> ()
  in
  (* The write side tears the same way the read side does (the peer
     vanished mid-copy); both are the pump's normal end of stream. *)
  (try go () with Unix.Unix_error _ | Sys_error _ -> ());
  shutdown_quiet dst Unix.SHUTDOWN_SEND

(* The faulted client->server direction.  [seen] counts stream bytes so
   positional faults land on absolute offsets regardless of read
   chunking. *)
let pump_faulted fault src dst =
  let buf = Bytes.create 4096 in
  let seen = ref 0 in
  let forward n =
    (match fault with
    | Corrupt_byte at when at >= !seen && at < !seen + n ->
        let i = at - !seen in
        Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x20))
    | _ -> ());
    (match fault with
    | Delay d when !seen = 0 && n > 0 ->
        (* First byte through, then hold: the frame has begun, so the
           server's whole-frame budget is the clock that must fire. *)
        write_all dst buf 1;
        Gc_exec.Pool.nap d;
        if n > 1 then write_all dst (Bytes.sub buf 1 (n - 1)) (n - 1)
    | _ -> write_all dst buf n);
    seen := !seen + n
  in
  let budget =
    match fault with Truncate_after n -> Some (max 0 n) | _ -> None
  in
  let rec go () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n -> (
        match budget with
        | Some b when !seen + n >= b ->
            (* Forward the allowance, then half-close: the server sees a
               clean EOF mid-frame. *)
            if b - !seen > 0 then forward (b - !seen)
        | _ ->
            forward n;
            go ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ | exception Sys_error _ -> ()
  in
  (try go () with Unix.Unix_error _ | Sys_error _ -> ());
  shutdown_quiet dst Unix.SHUTDOWN_SEND

(* A dropped connection: swallow the request bytes so the client blocks
   on its reply deadline rather than on a send buffer. *)
let pump_drop src =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ | exception Sys_error _ -> ()
  in
  go ()

let handle t client fault =
  match fault with
  | Drop ->
      pump_drop client;
      untrack t client
  | _ -> (
      let server = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect server (Unix.ADDR_UNIX t.upstream) with
      | exception Unix.Unix_error _ ->
          close_quiet server;
          untrack t client
      | () ->
          track t server;
          (* Per-direction pumps are plain blocking copies that live as
             long as their stream — the same process-lifetime I/O shape
             as the server's own reader threads. *)
          let up =
            Thread.create
              (fun () ->
                pump_faulted fault client server)
              () [@lint.allow "spawn-outside-pool"]
          in
          pump_verbatim server client;
          Thread.join up;
          untrack t server;
          untrack t client)

let acceptor t =
  let rec loop () =
    if not t.stopping then begin
      (match Unix.select [ t.listener ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listener with
          | client, _ ->
              Mutex.lock t.mu;
              let i = t.accepted in
              t.accepted <- i + 1;
              t.live <- client :: t.live;
              let pump =
                Thread.create
                  (fun () -> handle t client (t.plan i))
                  () [@lint.allow "spawn-outside-pool"]
              in
              t.pumps <- pump :: t.pumps;
              Mutex.unlock t.mu
          | exception
              Unix.Unix_error
                ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                  | Unix.ECONNABORTED | Unix.EBADF ),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ();
  close_quiet t.listener

let create ~listen ~upstream ~plan () =
  (try Sys.remove listen with Sys_error _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listener (Unix.ADDR_UNIX listen);
     Unix.listen listener 64
   with e ->
     close_quiet listener;
     raise e);
  let t =
    {
      listen_path = listen;
      listener;
      plan;
      upstream;
      mu = Mutex.create ();
      live = [];
      pumps = [];
      accepted = 0;
      stopping = false;
      acceptor = None;
    }
  in
  (* Same annotated shape as the server's acceptor: a process-lifetime
     I/O multiplexer, not a pool task. *)
  t.acceptor <-
    Some (Thread.create acceptor t [@lint.allow "spawn-outside-pool"]);
  t

let connections t =
  Mutex.lock t.mu;
  let n = t.accepted in
  Mutex.unlock t.mu;
  n

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    t.acceptor <- None;
    Mutex.lock t.mu;
    let live = t.live and pumps = t.pumps in
    t.live <- [];
    t.pumps <- [];
    Mutex.unlock t.mu;
    (* Shutdown pops blocking reads with EOF; close reclaims the fds. *)
    List.iter (fun fd -> shutdown_quiet fd Unix.SHUTDOWN_ALL) live;
    List.iter Thread.join pumps;
    List.iter close_quiet live;
    try Sys.remove t.listen_path with Sys_error _ -> ()
  end
