type fault_class =
  | Phantom_hit
  | Phantom_miss
  | Drop_requested
  | Wrong_block_load
  | Double_load
  | Reload_cached
  | Spurious_evict
  | Ghost_evict
  | Hidden_evict
  | Over_occupancy

type t = { fault : fault_class; at : int }

let all =
  [
    Phantom_hit;
    Phantom_miss;
    Drop_requested;
    Wrong_block_load;
    Double_load;
    Reload_cached;
    Spurious_evict;
    Ghost_evict;
    Hidden_evict;
    Over_occupancy;
  ]

let to_string = function
  | Phantom_hit -> "phantom-hit"
  | Phantom_miss -> "phantom-miss"
  | Drop_requested -> "drop-requested"
  | Wrong_block_load -> "wrong-block-load"
  | Double_load -> "double-load"
  | Reload_cached -> "reload-cached"
  | Spurious_evict -> "spurious-evict"
  | Ghost_evict -> "ghost-evict"
  | Hidden_evict -> "hidden-evict"
  | Over_occupancy -> "over-occupancy"

let of_string s = List.find_opt (fun f -> to_string f = s) all

let describe = function
  | Phantom_hit -> "report a hit on an item that is not cached"
  | Phantom_miss -> "report a miss on an item that is cached"
  | Drop_requested -> "omit the requested item from a miss's load list"
  | Wrong_block_load -> "load an item from a different block"
  | Double_load -> "list the same item twice in one load"
  | Reload_cached -> "load an item that is already cached"
  | Spurious_evict -> "evict an item that was never cached"
  | Ghost_evict -> "claim an eviction while secretly keeping the item"
  | Hidden_evict -> "evict an item but hide it from the report"
  | Over_occupancy -> "report occupancy above the capacity k"

let class_names () = String.concat ", " (List.map to_string all)

let parse s =
  let cls, at =
    match String.index_opt s '@' with
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  match of_string cls with
  | None ->
      Error
        (Printf.sprintf "unknown fault class %S (valid: %s)" cls
           (class_names ()))
  | Some fault -> (
      match at with
      | None -> Ok { fault; at = 0 }
      | Some v -> (
          match int_of_string_opt v with
          | Some at when at >= 0 -> Ok { fault; at }
          | _ -> Error (Printf.sprintf "bad arm index %S in fault spec" v)))

let spec_string { fault; at } =
  if at = 0 then to_string fault
  else Printf.sprintf "%s@%d" (to_string fault) at
