(** Adaptive IBLP: layer sizes steered online by ghost-list feedback.

    Section 5.3 shows the best item/block split depends on the (unknown)
    offline comparison size, and Figure 6 shows how a fixed split degrades
    off its design point.  This extension sidesteps the choice the way ARC
    sidesteps the recency/frequency balance: both layers keep ghost lists
    of recently evicted entries, and a miss that would have hit a ghost
    shifts budget toward the layer that regretted the eviction —
    an item-layer ghost hit grows the item layer by one block-worth of
    space, a block-layer ghost hit grows the block layer.

    This goes beyond the paper (which leaves the unknown-h case open); the
    [adaptive] bench section compares it against the best and worst fixed
    splits across workload phases. *)

val create :
  ?on_repartition:(item_budget:int -> block_budget:int -> unit) ->
  k:int ->
  blocks:Gc_trace.Block_map.t ->
  unit ->
  Policy.t
(** Requires [k >= 2 * block size] (each layer must be able to hold
    something).  The split starts balanced and moves in steps of [B].
    [on_repartition] fires whenever ghost feedback actually changes the
    split — observability drivers turn it into {!Gc_obs.Event.Repartition}
    events. *)
