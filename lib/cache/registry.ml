type spec = {
  name : string;
  doc : string;
  make : k:int -> blocks:Gc_trace.Block_map.t -> seed:int -> Policy.t;
}

let rng_of seed = Gc_trace.Rng.create seed

let all =
  [
    {
      name = "lru";
      doc = "item-granularity least-recently-used (Item Cache baseline)";
      make = (fun ~k ~blocks:_ ~seed:_ -> Lru.create ~k);
    };
    {
      name = "fifo";
      doc = "item-granularity first-in-first-out";
      make = (fun ~k ~blocks:_ ~seed:_ -> Fifo.create ~k);
    };
    {
      name = "lfu";
      doc = "item-granularity least-frequently-used";
      make = (fun ~k ~blocks:_ ~seed:_ -> Lfu.create ~k);
    };
    {
      name = "clock";
      doc = "item-granularity CLOCK / second chance";
      make = (fun ~k ~blocks:_ ~seed:_ -> Clock.create ~k);
    };
    {
      name = "plru";
      doc = "tree-PLRU (pseudo-LRU), the hardware bit-tree approximation";
      make = (fun ~k ~blocks:_ ~seed:_ -> Plru.create ~k);
    };
    {
      name = "random";
      doc = "item-granularity random replacement";
      make = (fun ~k ~blocks:_ ~seed -> Random_evict.create ~k ~rng:(rng_of seed));
    };
    {
      name = "fwf";
      doc = "flush-when-full (Albers et al. baseline)";
      make = (fun ~k ~blocks:_ ~seed:_ -> Fwf.create ~k);
    };
    {
      name = "arc";
      doc = "adaptive replacement cache (Megiddo-Modha), item granularity";
      make = (fun ~k ~blocks:_ ~seed:_ -> Arc.create ~k);
    };
    {
      name = "2q";
      doc = "2Q (Johnson-Shasha), item granularity";
      make = (fun ~k ~blocks:_ ~seed:_ -> Two_q.create ~k ());
    };
    {
      name = "lru-k";
      doc = "LRU-K with K = 2 (O'Neil et al.), scan resistant";
      make = (fun ~k ~blocks:_ ~seed:_ -> Lru_k.create ~k ~depth:2 ());
    };
    {
      name = "s3-fifo";
      doc = "S3-FIFO (three queues with lazy promotion)";
      make = (fun ~k ~blocks:_ ~seed:_ -> S3_fifo.create ~k ());
    };
    {
      name = "marking";
      doc = "randomized marking, item granularity";
      make = (fun ~k ~blocks:_ ~seed -> Marking.create ~k ~rng:(rng_of seed));
    };
    {
      name = "stride-prefetch";
      doc = "LRU + next-4-line prefetch within the block";
      make =
        (fun ~k ~blocks ~seed:_ -> Stride_prefetch.create ~k ~degree:4 ~blocks);
    };
    {
      name = "block-lru";
      doc = "whole-block loads and evictions, LRU over blocks (Block Cache)";
      make = (fun ~k ~blocks ~seed:_ -> Block_lru.create ~k ~blocks);
    };
    {
      name = "gcm";
      doc = "Granularity-Change Marking (Section 6)";
      make = (fun ~k ~blocks ~seed -> Gcm.create ~k ~blocks ~rng:(rng_of seed) ());
    };
    {
      name = "block-marking";
      doc = "marking that loads AND marks whole blocks (Section 6 strawman)";
      make =
        (fun ~k ~blocks ~seed ->
          Block_marking.create ~k ~blocks ~rng:(rng_of seed));
    };
    {
      name = "setassoc-lru";
      doc = "set-associative LRU (8 ways by default)";
      make =
        (fun ~k ~blocks:_ ~seed:_ ->
          let ways = min 8 k in
          Set_assoc.create_lru ~sets:(max 1 (k / ways)) ~ways);
    };
    {
      name = "iblp-adaptive";
      doc = "IBLP with ghost-feedback layer sizing (extension)";
      make = (fun ~k ~blocks ~seed:_ -> Iblp_adaptive.create ~k ~blocks ());
    };
    {
      name = "iblp";
      doc = "Item-Block Layered Partitioning, equal split (Section 5)";
      make =
        (fun ~k ~blocks ~seed:_ ->
          let i = k / 2 in
          Iblp.create ~i ~b:(k - i) ~blocks ());
    };
    {
      name = "param-a";
      doc = "Theorem-4 family: whole-block load after a distinct accesses";
      make = (fun ~k ~blocks ~seed:_ -> Param_a.create ~k ~a:2 ~blocks);
    };
  ]

let names = List.map (fun s -> s.name) all

let find_spec base =
  match List.find_opt (fun s -> s.name = base) all with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.make: unknown policy %S (known: %s)" base
           (String.concat ", " names))

let parse_kv part =
  match String.index_opt part '=' with
  | Some i ->
      ( String.sub part 0 i,
        String.sub part (i + 1) (String.length part - i - 1) )
  | None -> (part, "")

let int_of name v =
  match int_of_string_opt v with
  | Some n -> n
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.make: bad integer %S for %s" v name)

let make ?repartition name ~k ~blocks ~seed =
  match String.index_opt name ':' with
  | None -> (
      match (name, repartition) with
      | "iblp-adaptive", Some on_repartition ->
          Iblp_adaptive.create ~on_repartition ~k ~blocks ()
      | _ -> (find_spec name).make ~k ~blocks ~seed)
  | Some i -> (
      let base = String.sub name 0 i in
      let args = String.sub name (i + 1) (String.length name - i - 1) in
      let parts = String.split_on_char ',' args in
      match base with
      | "param-a" -> (
          match parts with
          | [ a ] -> Param_a.create ~k ~a:(int_of "a" a) ~blocks
          | _ -> invalid_arg "Registry.make: param-a takes one parameter")
      | "stride-prefetch" -> (
          match parts with
          | [ d ] ->
              Stride_prefetch.create ~k ~degree:(int_of "degree" d) ~blocks
          | _ ->
              invalid_arg "Registry.make: stride-prefetch takes one parameter")
      | "gcm" -> (
          match parts with
          | [ m ] ->
              Gcm.create ~load_limit:(int_of "load_limit" m) ~k ~blocks
                ~rng:(rng_of seed) ()
          | _ -> invalid_arg "Registry.make: gcm takes one parameter")
      | "setassoc-lru" -> (
          match parts with
          | [ ways ] ->
              let ways = int_of "ways" ways in
              if ways < 1 || k mod ways <> 0 then
                invalid_arg "Registry.make: setassoc-lru needs ways | k";
              Set_assoc.create_lru ~sets:(k / ways) ~ways
          | _ -> invalid_arg "Registry.make: setassoc-lru takes one parameter")
      | "broken" -> (
          (* Not listed in [all]: only built when explicitly requested, for
             graceful-degradation drills. *)
          match parts with
          | [ p ] ->
              let mode_str, at =
                match String.index_opt p '@' with
                | Some j ->
                    ( String.sub p 0 j,
                      int_of "at"
                        (String.sub p (j + 1) (String.length p - j - 1)) )
                | None -> (p, 0)
              in
              let mode =
                match mode_str with
                | "crash" -> Broken.Crash
                | "violate" -> Broken.Violate
                | "hang" -> Broken.Hang
                | "flaky" -> Broken.Flaky
                | s ->
                    invalid_arg
                      (Printf.sprintf
                         "Registry.make: broken mode %S (want \
                          crash|violate|hang|flaky)"
                         s)
              in
              Broken.create ~k ~mode ~at
          | _ ->
              invalid_arg
                "Registry.make: broken takes one parameter (crash@N | \
                 violate@N | hang@N | flaky@N)")
      | "iblp" ->
          let i_size = ref (-1) and b_size = ref (-1) in
          List.iter
            (fun part ->
              match parse_kv part with
              | "i", v -> i_size := int_of "i" v
              | "b", v -> b_size := int_of "b" v
              | key, _ ->
                  invalid_arg
                    (Printf.sprintf "Registry.make: iblp: unknown key %S" key))
            parts;
          let i_size = if !i_size >= 0 then !i_size else k - !b_size in
          let b_size = if !b_size >= 0 then !b_size else k - i_size in
          Iblp.create ~i:i_size ~b:b_size ~blocks ()
      | _ ->
          invalid_arg
            (Printf.sprintf "Registry.make: policy %S takes no parameters"
               base))
