(** Simulation counters.

    Beyond the usual hit/miss accounting, we split hits into {e temporal}
    and {e spatial} per the paper's Section 2: a hit on item [I] is spatial
    when [I] was brought into the cache by a miss on a {e different} item of
    its block and has not been referenced since it was loaded; every other
    hit is temporal. *)

type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable spatial_hits : int;
  mutable temporal_hits : int;
  mutable cold_misses : int;  (** Misses on never-before-seen items. *)
  mutable items_loaded : int;  (** Total items brought in across all loads. *)
  mutable evictions : int;
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val hit_rate : t -> float
val miss_rate : t -> float

val fault_rate : t -> float
(** Synonym of [miss_rate]; the paper's locality-model metric. *)

val spatial_fraction : t -> float
(** Fraction of hits that are spatial; 0 if there are no hits. *)

val copy : t -> t
(** An independent snapshot. *)

val fields : t -> (string * int) list
(** Every counter as [(key, value)], in declaration order.  The keys are
    stable identifiers shared by {!to_row}, {!to_json}, and the run
    manifests. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> string
(** One-line [key=value] summary used by the CLI tools: the {!fields} in
    order, plus [hit_rate] after [misses].  No padding — grep/awk friendly. *)

val to_json : t -> Gc_obs.Json.t
(** The {!fields} plus derived [hit_rate]/[miss_rate], as a JSON object. *)
