type mode = Crash | Violate | Hang | Flaky

type state = {
  inner : Policy.t;
  mode : mode;
  at : int;
  mutable accesses : int;
}

module M = struct
  type t = state

  let name = "broken"
  let k s = Policy.k s.inner
  let mem s x = Policy.mem s.inner x
  let occupancy s = Policy.occupancy s.inner

  let access s item =
    let i = s.accesses in
    s.accesses <- i + 1;
    if i < s.at then Policy.access s.inner item
    else
      match s.mode with
      | Crash ->
          failwith (Printf.sprintf "broken policy: deliberate crash at access %d" i)
      | Violate ->
          (* Whichever branch the simulator takes, the outcome contradicts
             the shadow cache: a hit on an item we do not hold, or a miss
             that fails to load the requested item. *)
          if Policy.mem s.inner item then Policy.Miss { loaded = []; evicted = [] }
          else Policy.Hit { evicted = [] }
      | Hang ->
          (* Spin forever, but keep polling the supervised runtime's cancel
             token so a deadline can actually stop us.  (The simulator's
             own progress hook never fires again — we never return — so
             this loop is the only cancellation point.) *)
          while true do
            Gc_exec.Cancel.poll ();
            Domain.cpu_relax ()
          done;
          assert false
      | Flaky ->
          (* Transient on the first pool attempt, healthy on retries:
             demonstrates bounded retry without cross-cell shared state. *)
          if Gc_exec.Pool.attempt () = 1 then
            raise
              (Gc_exec.Pool.Transient
                 (Printf.sprintf
                    "broken policy: transient fault at access %d (attempt 1)" i))
          else Policy.access s.inner item
end

let create ~k ~mode ~at =
  Policy.Instance ((module M), { inner = Fifo.create ~k; mode; at; accesses = 0 })
