(** Windowed time series of a simulation — miss rate over time.

    Useful for phase-change analysis (e.g. watching the adaptive IBLP
    re-partition) and for plotting.

    The series is computed by a {e probe consumer}: a {!recorder} folds the
    {!Gc_obs.Event} stream into per-window counters, so it composes with
    any other sink (tee the probe) and needs nothing from the policy.
    {!run} is the packaged simulate-and-record loop. *)

type point = {
  start : int;  (** First access index of the window. *)
  accesses : int;
  misses : int;
  spatial_hits : int;
}

type recorder
(** Stateful window accumulator. *)

val recorder : window:int -> recorder
(** [window >= 1]. *)

val probe : recorder -> Gc_obs.Event.t -> unit
(** Feed one event; suitable as a {!Simulator.create} probe directly or
    inside a {!Gc_obs.Sink.tee}.  Windows close when the first access of
    the next window arrives. *)

val finish : recorder -> point list
(** Close the final (possibly short) window and return the series so far,
    oldest window first. *)

val run :
  ?check:bool ->
  window:int ->
  Policy.t ->
  Gc_trace.Trace.t ->
  point list * Metrics.t
(** Simulate the trace, recording one point per [window] accesses (the last
    window may be shorter).  Returns the series and the overall metrics. *)

val miss_rates : point list -> (int * float) list
(** [(start, miss rate)] per window. *)
