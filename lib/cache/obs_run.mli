(** Observable simulation runs: the engine behind [gcsim run]'s machine
    readable artifacts.

    Wires together a {!Registry}-built policy, the {!Simulator} probe, the
    {!Gc_obs.Probe} histogram consumer, an optional caller sink (typically
    a JSONL writer), and per-kind event counting — then snapshots
    everything into a {!Gc_obs.Manifest}.  Living in the library rather
    than the binary keeps the whole artifact path testable in-process. *)

type result = {
  policy : string;  (** The registry spec that was run. *)
  metrics : Metrics.t;
  registry : Gc_obs.Registry.t option;
      (** Histogram registry; [Some] iff [histograms] was requested. *)
  events : (string * int) list;
      (** Per-kind event counts; [[]] when the run was unobserved. *)
}

type failure = {
  policy : string;
  kind : string;  (** ["model-violation"] or ["exception"]. *)
  message : string;
}

val span_hooks : ?base:(int -> unit) -> unit -> (int -> unit) * (unit -> unit)
(** [(progress, finish)]: a simulator [?progress] hook that opens one
    "sim.chunk" tracing span per progress stride (composing with [base],
    which runs first), and the closer for the final open chunk.  This is
    how {!run_policy} wires the access loop into {!Gc_prof} without
    touching the simulator: when tracing is disabled the hook adds a
    single atomic load per stride and the loop allocates nothing extra
    (asserted by test_prof's zero-allocation test). *)

val run_policy :
  ?check:bool ->
  ?histograms:bool ->
  ?sink:Gc_obs.Sink.t ->
  ?wrap:(Policy.t -> Policy.t) ->
  k:int ->
  seed:int ->
  string ->
  Gc_trace.Trace.t ->
  result
(** Simulate one registry policy over the trace.  When neither
    [histograms] (default [false]) nor [sink] is given, no probe is
    attached at all — the run is exactly as fast as an unobserved
    {!Simulator.run}.  Otherwise every event is counted, fed to the
    {!Gc_obs.Probe} (if [histograms]), and forwarded to [sink]; adaptive
    repartitions are injected into the same stream.  [wrap] transforms the
    constructed policy before simulation (fault injectors hook in here). *)

val run_policy_result :
  ?check:bool ->
  ?histograms:bool ->
  ?sink:Gc_obs.Sink.t ->
  ?wrap:(Policy.t -> Policy.t) ->
  k:int ->
  seed:int ->
  string ->
  Gc_trace.Trace.t ->
  (result, failure) Stdlib.result
(** Like {!run_policy}, but a policy that raises — a
    {!Simulator.Model_violation} from the shadow audit, or any other
    exception from the policy itself — is captured as a structured
    {!failure} instead of propagating.  This is the graceful-degradation
    entry point for multi-policy sweeps.

    Two exceptions stay exceptional because they belong to the supervised
    runtime, not the policy: {!Gc_exec.Cancel.Cancelled} (deadline or
    interrupt — the pool turns it into a [Timed_out]/[Cancelled] outcome)
    and {!Gc_exec.Pool.Transient} (retryable; capturing it would defeat
    bounded retry). *)

val manifest_run : result -> Gc_obs.Manifest.run
(** One successful run's manifest slot (metrics fields, histogram
    snapshot, event counts, no error). *)

val failed_run : failure -> Gc_obs.Manifest.run
(** One failed run's manifest slot: empty metrics, [error] set to the
    failure's kind and message. *)

val trace_info : path:string -> Gc_trace.Trace.t -> Gc_obs.Manifest.trace_info
(** Length, block size, and content digest for the manifest. *)

val manifest :
  tool:string ->
  command:string ->
  ?seed:int ->
  ?k:int ->
  ?trace:Gc_obs.Manifest.trace_info ->
  ?wall_time_s:float ->
  ?extra:(string * Gc_obs.Json.t) list ->
  result list ->
  Gc_obs.Manifest.t
(** Package results: each run carries its {!Metrics.fields} (plus derived
    rates), its histogram registry snapshot, and its event counts. *)

val manifest_of_outcomes :
  tool:string ->
  command:string ->
  ?seed:int ->
  ?k:int ->
  ?trace:Gc_obs.Manifest.trace_info ->
  ?wall_time_s:float ->
  ?extra:(string * Gc_obs.Json.t) list ->
  (result, failure) Stdlib.result list ->
  Gc_obs.Manifest.t
(** Like {!manifest}, but accepts {!run_policy_result} outcomes: a failed
    policy keeps its slot in the manifest's [runs], with empty metrics and
    the [error] field set, so a sweep's survivors are never discarded. *)
