(** Trace-driven simulation of a policy, with invariant checking.

    The simulator feeds requests to a policy, accumulates {!Metrics.t}, and —
    unless created with [check:false] — audits every reported outcome against
    a shadow cache it maintains from those outcomes:
    - hits must be on shadow-cached items, misses on absent ones;
    - on a miss, every loaded item belongs to the requested item's block, the
      requested item is among them, loads are distinct and were absent
      (Definition 1 of the paper);
    - evicted items were cached and are gone afterwards;
    - the requested item is cached after the access;
    - occupancy never exceeds [k].

    Violations raise {!Model_violation}.

    {2 Observability}

    Any policy becomes observable without modification by attaching a
    [probe] — a {!Gc_obs.Sink.t} receiving the structured event stream
    documented in {!Gc_obs.Event}.  Without a probe the simulator
    constructs no events (emission points are guarded on the option), so
    the unobserved hot path is unchanged.

    {2 Supervision}

    A [progress] callback, when supplied, fires with the access index every
    4096 accesses (and on access 0).  It exists as a cooperative
    cancellation point for supervised sweeps: passing
    [fun _ -> Gc_exec.Cancel.poll ()] lets a deadline or interrupt stop a
    long simulation mid-trace by raising {!Gc_exec.Cancel.Cancelled}.
    Without it the hot path pays one branch per access. *)

exception Model_violation of string

type t
(** A stateful simulation driver (policy + shadow cache + counters). *)

val create :
  ?check:bool ->
  ?probe:(Gc_obs.Event.t -> unit) ->
  ?progress:(int -> unit) ->
  Policy.t ->
  Gc_trace.Block_map.t ->
  t
(** [create policy blocks] prepares a driver.  [check] defaults to [true];
    [probe] and [progress] default to absent (no events, no callbacks). *)

val access : t -> int -> Policy.outcome
(** Feed one request; updates metrics and (in check mode) audits the
    outcome. *)

val metrics : t -> Metrics.t
(** Counters accumulated so far (live reference, not a copy). *)

val policy : t -> Policy.t

val run :
  ?check:bool ->
  ?probe:(Gc_obs.Event.t -> unit) ->
  ?progress:(int -> unit) ->
  Policy.t ->
  Gc_trace.Trace.t ->
  Metrics.t
(** Simulate a whole trace from a fresh driver. *)

val run_with :
  ?check:bool ->
  ?probe:(Gc_obs.Event.t -> unit) ->
  ?progress:(int -> unit) ->
  f:(int -> int -> Policy.outcome -> unit) ->
  Policy.t ->
  Gc_trace.Trace.t ->
  Metrics.t
(** Like {!run}, but also calls [f pos item outcome] after every access. *)
