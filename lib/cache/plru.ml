(* Tree-PLRU over [ways] slots, padded to [padded] = next power of two.

   Heap-layout complete binary tree: internal nodes 0 .. padded-2 (children
   of [n] are [2n+1]/[2n+2]), leaves [padded-1 .. 2*padded-2], leaf
   [padded-1+s] owning slot [s].  [bits.(n) = 0] sends the victim walk
   left, [1] right; touching a slot sets every bit on its root path to
   point at the other child.  Slots [>= ways] are phantom padding and are
   never filled; the victim walk refuses to descend into a subtree made
   only of phantoms (only ever possible rightwards, since slot ranges grow
   left to right). *)

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

module Strategy = struct
  type t = {
    ways : int;
    padded : int;
    slots : int array; (* length [padded]; -1 = empty *)
    bits : int array; (* length [padded - 1] *)
    pos : (int, int) Hashtbl.t; (* item -> slot *)
    mutable count : int;
  }

  type config = int (* ways *)

  let name = "plru"

  let create ways =
    let padded = next_pow2 ways 1 in
    {
      ways;
      padded;
      slots = Array.make padded (-1);
      bits = Array.make (max 0 (padded - 1)) 0;
      pos = Hashtbl.create 16;
      count = 0;
    }

  let mem t item = Hashtbl.mem t.pos item
  let size t = t.count

  (* Point every bit on [slot]'s root path away from it. *)
  let touch t slot =
    let node = ref (t.padded - 1 + slot) in
    while !node > 0 do
      let parent = (!node - 1) / 2 in
      t.bits.(parent) <- (if !node = (2 * parent) + 1 then 1 else 0);
      node := parent
    done

  let on_hit t item = touch t (Hashtbl.find t.pos item)

  (* Hardware fills invalid ways before consulting the tree; lowest-index
     first keeps it deterministic.  Only called with a free slot available
     (the functor evicts first). *)
  let insert t item =
    let slot = ref 0 in
    while t.slots.(!slot) >= 0 do
      incr slot
    done;
    t.slots.(!slot) <- item;
    Hashtbl.replace t.pos item !slot;
    t.count <- t.count + 1;
    touch t !slot

  (* Follow the bits from the root; going right is only legal when the
     right subtree contains a real way.  Only called when full, so every
     real way is occupied. *)
  let victim_slot t =
    let rec go node low high =
      if node >= t.padded - 1 then node - (t.padded - 1)
      else begin
        let mid = (low + high) / 2 in
        if t.bits.(node) = 1 && mid + 1 < t.ways then
          go ((2 * node) + 2) (mid + 1) high
        else go ((2 * node) + 1) low mid
      end
    in
    go 0 0 (t.padded - 1)

  let pop_victim t =
    let slot = victim_slot t in
    let item = t.slots.(slot) in
    t.slots.(slot) <- -1;
    Hashtbl.remove t.pos item;
    t.count <- t.count - 1;
    item
end

module M = Item_policy.Make (Strategy)

let create ~k = M.create ~k k
