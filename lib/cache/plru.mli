(** Tree-PLRU (pseudo-LRU) replacement, the hardware approximation of LRU.

    A binary tree of direction bits sits over the ways; every touch flips
    the bits on the accessed way's root path to point {e away} from it, and
    the victim is found by following the bits from the root.  One bit per
    internal node instead of a full recency order — which is why real
    set-associative SRAM caches ship it, and why the static-analysis
    literature (Monniaux–Touzeau, arXiv:1811.01740) treats it as a separate,
    harder-to-predict policy.  {!Gc_analysis} analyses exactly this
    implementation; {!Gc_analysis.Crosscheck} replays it per set via
    {!Set_assoc}.

    Non-power-of-two capacities are supported by padding the tree to the
    next power of two and locking the phantom ways: the victim walk detours
    around subtrees that contain no real way.  Empty ways are filled
    lowest-index first, as hardware fills invalid ways before consulting
    the tree. *)

val create : k:int -> Policy.t
(** Item-granularity tree-PLRU over [k >= 1] ways. *)
