type result = {
  policy : string;
  metrics : Metrics.t;
  registry : Gc_obs.Registry.t option;
  events : (string * int) list;
}

type failure = { policy : string; kind : string; message : string }

(* Every run polls the supervised runtime's cancel token from the
   simulator's progress hook.  Outside a supervised pool the poll is a
   domain-local [None] read — effectively free — so there is no separate
   "cancellable" entry point to keep in sync. *)
let progress _index = Gc_exec.Cancel.poll ()

(* Span instrumentation of the access loop, riding the existing
   [?progress] hook rather than touching the simulator's hot path: each
   progress stride (4096 accesses) becomes a "sim.chunk" span, so a
   Perfetto track shows where inside a long trace the time goes.  With
   tracing disabled the addition to each progress tick is one atomic
   load — the access loop itself allocates not a word more (asserted by
   test_prof).  [finish] closes the open chunk at end of run. *)
let span_hooks ?(base = fun _ -> ()) () =
  let tok = ref (-1) in
  let progress index =
    base index;
    if Gc_prof.Tracer.enabled () then begin
      if !tok >= 0 then Gc_prof.Tracer.leave !tok;
      tok :=
        Gc_prof.Tracer.enter
          ~args:[ ("index", string_of_int index) ]
          "sim.chunk"
    end
  in
  let finish () =
    if !tok >= 0 then begin
      Gc_prof.Tracer.leave !tok;
      tok := -1
    end
  in
  (progress, finish)

let run_args name k =
  if Gc_prof.Tracer.enabled () then
    [ ("policy", name); ("k", string_of_int k) ]
  else []

let run_policy ?(check = true) ?(histograms = false) ?sink ?wrap ~k ~seed name
    trace =
  let blocks = trace.Gc_trace.Trace.blocks in
  let build p = match wrap with Some w -> w p | None -> p in
  if not (histograms || Option.is_some sink) then begin
    (* Fully unobserved: no probe, no event allocation. *)
    let p = build (Registry.make name ~k ~blocks ~seed) in
    let progress, finish = span_hooks ~base:progress () in
    let metrics =
      Gc_prof.Span.with_ ~args:(run_args name k) "run_policy" (fun () ->
          Fun.protect ~finally:finish (fun () ->
              Simulator.run ~check ~progress p trace))
    in
    { policy = name; metrics; registry = None; events = [] }
  end
  else begin
    let reg = if histograms then Some (Gc_obs.Registry.create ()) else None in
    let probe_consumer = Option.map (fun r -> Gc_obs.Probe.create r) reg in
    let counts = Gc_obs.Sink.Count.create () in
    let sinks =
      List.filter_map Fun.id
        [
          Some (Gc_obs.Sink.Count.sink counts);
          Option.map Gc_obs.Probe.sink probe_consumer;
          sink;
        ]
    in
    let emit = Gc_obs.Sink.tee sinks in
    (* The adaptive policies report repartitions from inside their access
       function; stamp those callbacks with the index of the in-flight
       access, tracked from the event stream itself. *)
    let current_index = ref (-1) in
    let probe ev =
      (match ev with
      | Gc_obs.Event.Access { index; _ } -> current_index := index
      | _ -> ());
      emit ev
    in
    let repartition ~item_budget ~block_budget =
      probe
        (Gc_obs.Event.Repartition
           { index = !current_index; item_budget; block_budget })
    in
    let p = build (Registry.make ~repartition name ~k ~blocks ~seed) in
    let progress, finish = span_hooks ~base:progress () in
    let metrics =
      Gc_prof.Span.with_ ~args:(run_args name k) "run_policy" (fun () ->
          Fun.protect ~finally:finish (fun () ->
              Simulator.run ~check ~probe ~progress p trace))
    in
    {
      policy = name;
      metrics;
      registry = reg;
      events = Gc_obs.Sink.Count.by_kind counts;
    }
  end

let run_policy_result ?check ?histograms ?sink ?wrap ~k ~seed name trace =
  match run_policy ?check ?histograms ?sink ?wrap ~k ~seed name trace with
  | r -> Ok r
  | exception Simulator.Model_violation message ->
      Error { policy = name; kind = "model-violation"; message }
  | exception (Gc_exec.Cancel.Cancelled _ as cancelled) ->
      (* Cancellation is the supervised runtime's signal, not a policy
         failure: let the pool classify it (timeout vs. interrupt). *)
      raise cancelled
  | exception (Gc_exec.Pool.Transient _ as transient) ->
      (* Likewise retryable faults: swallowing one here would defeat the
         pool's bounded-retry machinery. *)
      raise transient
  | exception exn ->
      Error { policy = name; kind = "exception"; message = Printexc.to_string exn }

let trace_info ~path trace =
  {
    Gc_obs.Manifest.path;
    length = Gc_trace.Trace.length trace;
    block_size = Gc_trace.Block_map.block_size trace.Gc_trace.Trace.blocks;
    digest = Gc_trace.Trace.digest trace;
  }

let manifest_run (r : result) =
  {
    Gc_obs.Manifest.policy = r.policy;
    metrics =
      (match Metrics.to_json r.metrics with
      | Gc_obs.Json.Obj fields -> fields
      | other -> [ ("metrics", other) ]);
    histograms = Option.map Gc_obs.Registry.to_json r.registry;
    events = r.events;
    error = None;
  }

let failed_run (f : failure) =
  {
    Gc_obs.Manifest.policy = f.policy;
    metrics = [];
    histograms = None;
    events = [];
    error = Some (f.kind, f.message);
  }

let manifest ~tool ~command ?seed ?k ?trace ?wall_time_s ?extra results =
  Gc_obs.Manifest.make ~tool ~command ?seed ?k ?trace ?wall_time_s ?extra
    (List.map manifest_run results)

let manifest_of_outcomes ~tool ~command ?seed ?k ?trace ?wall_time_s ?extra
    outcomes =
  Gc_obs.Manifest.make ~tool ~command ?seed ?k ?trace ?wall_time_s ?extra
    (List.map
       (function Ok r -> manifest_run r | Error f -> failed_run f)
       outcomes)
