module P = struct
  type t = {
    k : int;
    depth : int;
    history_cap : int;
    cached : (int, unit) Hashtbl.t;
    (* Reference timestamps per item, most recent first, length <= depth. *)
    refs : (int, int list) Hashtbl.t;
    ghost : Lru_core.t;  (* uncached items whose history is retained *)
    mutable clock : int;
  }

  let name = "lru-k"
  let k t = t.k
  let mem t x = Hashtbl.mem t.cached x
  let occupancy t = Hashtbl.length t.cached

  let record_reference t x =
    t.clock <- t.clock + 1;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.refs x) in
    let trimmed =
      if List.length prev >= t.depth then
        List.filteri (fun idx _ -> idx < t.depth - 1) prev
      else prev
    in
    Hashtbl.replace t.refs x (t.clock :: trimmed)

  (* Backward-K distance: the K-th most recent reference time, or
     min_int when the item has fewer than K references. *)
  let kth_reference t x =
    match Hashtbl.find_opt t.refs x with
    | Some times -> (
        match List.nth_opt times (t.depth - 1) with
        | Some time -> time
        | None -> min_int)
    | None -> min_int

  let victim t =
    (* Linear scan over the cached set: oldest K-th reference loses, ties
       broken by oldest most-recent reference.  O(k) per miss - acceptable
       for a reference implementation of a history policy. *)
    let best = ref None in
    Hashtbl.iter
      (fun x () ->
        let key =
          ( kth_reference t x,
            match Hashtbl.find_opt t.refs x with
            | Some (most_recent :: _) -> most_recent
            | _ -> min_int )
        in
        match !best with
        | None -> best := Some (key, x)
        | Some (best_key, _) -> if key < best_key then best := Some (key, x))
      t.cached;
    match !best with Some (_, x) -> x | None -> assert false

  let forget_ghosts t =
    while Lru_core.size t.ghost > t.history_cap do
      match Lru_core.pop_lru t.ghost with
      | Some v -> Hashtbl.remove t.refs v
      | None -> assert false
    done

  let access t x =
    record_reference t x;
    if Hashtbl.mem t.cached x then Policy.Hit { evicted = [] }
    else begin
      Lru_core.remove t.ghost x;
      let evicted = ref [] in
      if Hashtbl.length t.cached >= t.k then begin
        let v = victim t in
        Hashtbl.remove t.cached v;
        Lru_core.touch t.ghost v;
        evicted := [ v ]
      end;
      Hashtbl.add t.cached x ();
      forget_ghosts t;
      Policy.Miss { loaded = [ x ]; evicted = !evicted }
    end
end

let create ?history ~k ~depth () =
  if k < 1 then invalid_arg "Lru_k.create: k must be >= 1";
  if depth < 1 then invalid_arg "Lru_k.create: depth must be >= 1";
  let history_cap = Option.value ~default:k history in
  Policy.Instance
    ( (module P),
      {
        P.k;
        depth;
        history_cap;
        cached = Hashtbl.create 256;
        refs = Hashtbl.create 512;
        ghost = Lru_core.create ();
        clock = 0;
      } )
