type point = {
  start : int;
  accesses : int;
  misses : int;
  spatial_hits : int;
}

type recorder = {
  window : int;
  mutable points_rev : point list;
  mutable win_start : int;
  mutable win_accesses : int;
  mutable win_misses : int;
  mutable win_spatial : int;
  mutable next_index : int;
}

let recorder ~window =
  if window < 1 then invalid_arg "Timeline.recorder: window must be >= 1";
  {
    window;
    points_rev = [];
    win_start = 0;
    win_accesses = 0;
    win_misses = 0;
    win_spatial = 0;
    next_index = 0;
  }

let flush r pos =
  if pos > r.win_start then
    r.points_rev <-
      {
        start = r.win_start;
        accesses = r.win_accesses;
        misses = r.win_misses;
        spatial_hits = r.win_spatial;
      }
      :: r.points_rev;
  r.win_start <- pos;
  r.win_accesses <- 0;
  r.win_misses <- 0;
  r.win_spatial <- 0

let probe r (ev : Gc_obs.Event.t) =
  match ev with
  | Gc_obs.Event.Access { index; _ } ->
      if index >= r.win_start + r.window then flush r (r.win_start + r.window);
      r.win_accesses <- r.win_accesses + 1;
      r.next_index <- index + 1
  | Gc_obs.Event.Miss _ -> r.win_misses <- r.win_misses + 1
  | Gc_obs.Event.Hit { kind = Gc_obs.Event.Spatial; _ } ->
      r.win_spatial <- r.win_spatial + 1
  | _ -> ()

let finish r =
  flush r r.next_index;
  List.rev r.points_rev

let run ?check ~window policy trace =
  let r = recorder ~window in
  let d =
    Simulator.create ?check ~probe:(probe r) policy
      trace.Gc_trace.Trace.blocks
  in
  Gc_trace.Trace.iter (fun item -> ignore (Simulator.access d item)) trace;
  (finish r, Simulator.metrics d)

let miss_rates points =
  List.map
    (fun p ->
      ( p.start,
        if p.accesses = 0 then 0.
        else float_of_int p.misses /. float_of_int p.accesses ))
    points
