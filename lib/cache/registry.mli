(** Name-based policy construction for CLIs and sweeps.

    Plain names pick a default configuration; a [:] suffix passes
    parameters, e.g.:
    - ["lru"], ["fifo"], ["lfu"], ["clock"], ["random"], ["marking"]
    - ["block-lru"], ["gcm"]
    - ["iblp"] (equal split), ["iblp:i=1024,b=1024"]
    - ["param-a:4"] (the Theorem-4 family with [a = 4])
    - ["broken:crash@100"] / ["broken:violate@100"] ({!Broken}; never part
      of {!all} — built only on explicit request, for robustness drills) *)

type spec = {
  name : string;
  doc : string;
  make : k:int -> blocks:Gc_trace.Block_map.t -> seed:int -> Policy.t;
}

val all : spec list
(** Default-configured policies, one per family. *)

val names : string list

val make :
  ?repartition:(item_budget:int -> block_budget:int -> unit) ->
  string ->
  k:int ->
  blocks:Gc_trace.Block_map.t ->
  seed:int ->
  Policy.t
(** Build by (possibly parameterized) name.  Raises [Invalid_argument] for
    unknown names or malformed parameters.  [repartition] is forwarded to
    policies that re-split themselves online (currently
    ["iblp-adaptive"]) and ignored by the rest. *)
