module P = struct
  type t = {
    k : int;
    bsize : int;
    blocks : Gc_trace.Block_map.t;
    item_layer : Lru_core.t;
    block_layer : Lru_core.t;  (* keys are block ids *)
    resident : (int, int array) Hashtbl.t;
    mutable block_occ : int;
    ghost_items : Lru_core.t;  (* keys of recent item-layer victims *)
    ghost_blocks : Lru_core.t;  (* ids of recent block-layer victims *)
    mutable i_target : int;  (* item budget; block budget = k - i_target *)
    on_repartition : (item_budget:int -> block_budget:int -> unit) option;
  }

  let name = "iblp-adaptive"
  let k t = t.k

  let in_block_layer t item =
    Hashtbl.mem t.resident (Gc_trace.Block_map.block_of t.blocks item)

  let mem t item = Lru_core.mem t.item_layer item || in_block_layer t item
  let occupancy t = Lru_core.size t.item_layer + t.block_occ
  let block_cap t = (t.k - t.i_target) / t.bsize

  let evict_lru_block t =
    match Lru_core.pop_lru t.block_layer with
    | None -> assert false
    | Some blk ->
        let items = Hashtbl.find t.resident blk in
        Hashtbl.remove t.resident blk;
        t.block_occ <- t.block_occ - Array.length items;
        Lru_core.touch t.ghost_blocks blk;
        if Lru_core.size t.ghost_blocks > t.k / t.bsize then
          ignore (Lru_core.pop_lru t.ghost_blocks);
        Array.fold_left
          (fun acc x -> if Lru_core.mem t.item_layer x then acc else x :: acc)
          [] items

  let promote t item =
    let gone = ref [] in
    (* Trim to the current budget (the budget may have just shrunk, even to
       zero), leaving one slot for the insertion when there is a budget. *)
    let limit = max 0 (t.i_target - 1) in
    while Lru_core.size t.item_layer > limit do
      match Lru_core.pop_lru t.item_layer with
      | None -> assert false
      | Some v ->
          Lru_core.touch t.ghost_items v;
          if Lru_core.size t.ghost_items > t.k then
            ignore (Lru_core.pop_lru t.ghost_items);
          if not (in_block_layer t v) then gone := v :: !gone
    done;
    if t.i_target > 0 then Lru_core.touch t.item_layer item;
    !gone

  let adapt t item blk =
    (* A miss that a larger item layer would have caught grows the item
       budget; one a larger block layer would have caught grows the block
       budget.  Steps of B keep the block layer's granularity whole. *)
    let before = t.i_target in
    if Lru_core.mem t.ghost_items item then begin
      Lru_core.remove t.ghost_items item;
      t.i_target <- min (t.k - t.bsize) (t.i_target + t.bsize)
    end
    else if Lru_core.mem t.ghost_blocks blk then begin
      Lru_core.remove t.ghost_blocks blk;
      t.i_target <- max 0 (t.i_target - t.bsize)
    end;
    if t.i_target <> before then
      match t.on_repartition with
      | Some f -> f ~item_budget:t.i_target ~block_budget:(t.k - t.i_target)
      | None -> ()

  let access t item =
    if Lru_core.mem t.item_layer item then begin
      Lru_core.touch t.item_layer item;
      Policy.Hit { evicted = [] }
    end
    else begin
      let blk = Gc_trace.Block_map.block_of t.blocks item in
      if Hashtbl.mem t.resident blk then begin
        Lru_core.touch t.block_layer blk;
        let gone = promote t item in
        Policy.Hit { evicted = gone }
      end
      else begin
        adapt t item blk;
        (* Load the block first: item-layer trimming below must see it as
           resident so same-block victims are not reported evicted. *)
        let evicted = ref [] in
        let loaded = ref [] in
        while Lru_core.size t.block_layer >= block_cap t do
          evicted := evict_lru_block t @ !evicted
        done;
        let incoming = Gc_trace.Block_map.items_of t.blocks blk in
        Lru_core.touch t.block_layer blk;
        Hashtbl.add t.resident blk incoming;
        t.block_occ <- t.block_occ + Array.length incoming;
        Array.iter
          (fun x ->
            if not (Lru_core.mem t.item_layer x) then loaded := x :: !loaded)
          incoming;
        (* Item layer: [promote] also shrinks it when adaptation just moved
           budget to the block layer. *)
        let gone = promote t item in
        evicted := gone @ !evicted;
        Policy.Miss { loaded = !loaded; evicted = !evicted }
      end
    end
end

let create ?on_repartition ~k ~blocks () =
  let bsize = Gc_trace.Block_map.block_size blocks in
  if k < 2 * bsize then
    invalid_arg "Iblp_adaptive.create: k must be >= 2 * block size";
  Policy.Instance
    ( (module P),
      {
        P.k;
        bsize;
        blocks;
        item_layer = Lru_core.create ();
        block_layer = Lru_core.create ();
        resident = Hashtbl.create 256;
        block_occ = 0;
        ghost_items = Lru_core.create ();
        ghost_blocks = Lru_core.create ();
        i_target = (k / 2 / bsize * bsize : int);
        on_repartition;
      } )
