(** Multicore fan-out for independent simulations (OCaml 5 domains).

    Cache experiments are embarrassingly parallel across (policy, size,
    seed) points.  Everything here — the bare [map]/[try_map] fan-outs
    included — runs on the supervised {!Gc_exec.Pool} runtime, the one
    place in the tree that spawns domains; sweeps additionally get
    per-cell deadlines, retry, and cooperative cancellation (polled from
    the {!Simulator} progress hook).  Each task must build its own state
    (policies, RNGs, traces are not shared across domains). *)

exception Unsupervised_interrupt
(** Raised if the pool reports a timeout or cancellation for a fan-out
    that supplied no deadline and no interrupt token (impossible unless
    the runtime is misused). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] preserves order.  [domains] defaults to
    [Domain.recommended_domain_count () - 1] (min 1).  If tasks raise,
    every task still runs, every domain is joined, and the lowest-index
    exception is re-raised in the caller. *)

val try_map : ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map}, but a task that raises yields [Error exn] in its slot
    instead of aborting the whole fan-out — the other tasks' results
    survive.  Order is preserved. *)

val run_sweep :
  ?domains:int ->
  make:('a -> Policy.t) ->
  trace:Gc_trace.Trace.t ->
  'a list ->
  ('a * Metrics.t) list
(** Simulate the same trace under many independently constructed policies
    on the supervised pool (unchecked runs; the checked single-run path is
    for tests).  A failing point re-raises in the caller; use
    {!run_sweep_outcomes} to keep the survivors. *)

val run_sweep_outcomes :
  ?domains:int ->
  ?deadline:float ->
  ?retries:int ->
  ?interrupt:Gc_exec.Cancel.t ->
  make:('a -> Policy.t) ->
  trace:Gc_trace.Trace.t ->
  'a list ->
  ('a * Metrics.t) Gc_exec.Pool.outcome list
(** The supervised form: per-point wall-clock [deadline] (cooperatively
    cancelled via the simulator's progress hook, abandoned after a grace
    period if wedged), [retries] for {!Gc_exec.Pool.Transient} failures,
    and graceful draining when [interrupt] is requested. *)
