(** Multicore fan-out for independent simulations (OCaml 5 domains).

    Cache experiments are embarrassingly parallel across (policy, size,
    seed) points; this helper maps a pure-ish function over a work list
    with one domain per chunk.  Each task must build its own state
    (policies, RNGs, traces are not shared across domains). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] preserves order.  [domains] defaults to
    [Domain.recommended_domain_count () - 1] (min 1).  Exceptions in a task
    are re-raised in the caller. *)

val try_map : ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map}, but a task that raises yields [Error exn] in its slot
    instead of aborting the whole fan-out — the other tasks' results
    survive.  Order is preserved. *)

val run_sweep :
  ?domains:int ->
  make:('a -> Policy.t) ->
  trace:Gc_trace.Trace.t ->
  'a list ->
  ('a * Metrics.t) list
(** Simulate the same trace under many independently constructed policies
    in parallel (unchecked runs; the checked single-run path is for
    tests). *)
