(** A deliberately faulty policy, for robustness drills.

    Behaves as FIFO until a chosen access index, then either raises or
    starts reporting model-inconsistent outcomes.  Used to prove that
    multi-policy sweeps degrade gracefully (the failure is captured
    per-policy instead of killing the run) and that the checked simulator
    actually flags bad outcomes.  Registry spec: ["broken:crash@N"] /
    ["broken:violate@N"]. *)

type mode =
  | Crash  (** Raise [Failure] from [access]. *)
  | Violate
      (** Report a hit on an uncached item (or a loadless miss on a cached
          one) — guaranteed to trip the shadow audit when checking is on. *)

val create : k:int -> mode:mode -> at:int -> Policy.t
(** [create ~k ~mode ~at] misbehaves on access number [at] (0-based) and
    every access after it. *)
