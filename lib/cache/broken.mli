(** A deliberately faulty policy, for robustness drills.

    Behaves as FIFO until a chosen access index, then either raises,
    starts reporting model-inconsistent outcomes, wedges, or fails
    transiently.  Used to prove that multi-policy sweeps degrade
    gracefully (the failure is captured per-policy instead of killing the
    run), that the checked simulator actually flags bad outcomes, and that
    the supervised runtime's deadline/retry machinery fires.  Registry
    spec: ["broken:crash@N"] / ["broken:violate@N"] / ["broken:hang@N"] /
    ["broken:flaky@N"]. *)

type mode =
  | Crash  (** Raise [Failure] from [access]. *)
  | Violate
      (** Report a hit on an uncached item (or a loadless miss on a cached
          one) — guaranteed to trip the shadow audit when checking is on. *)
  | Hang
      (** Spin forever inside [access], polling {!Gc_exec.Cancel.poll} so
          a supervised deadline (or interrupt) can cancel the cell; used
          to drill timeout enforcement. *)
  | Flaky
      (** Raise {!Gc_exec.Pool.Transient} when the supervised runtime's
          attempt counter reads 1, behave as FIFO on retries; used to
          drill bounded retry. *)

val create : k:int -> mode:mode -> at:int -> Policy.t
(** [create ~k ~mode ~at] misbehaves on access number [at] (0-based) and
    every access after it. *)
