type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

let summarize values =
  let n = List.length values in
  if n = 0 then invalid_arg "Replicates.summarize: no values";
  let nf = float_of_int n in
  let mean = List.fold_left ( +. ) 0. values /. nf in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values /. nf
  in
  {
    runs = n;
    mean;
    stddev = sqrt var;
    min = List.fold_left Float.min infinity values;
    max = List.fold_left Float.max neg_infinity values;
  }

let misses ~make ~trace ~seeds =
  if seeds = [] then invalid_arg "Replicates.misses: no seeds";
  summarize
    (List.map
       (fun seed ->
         let m = Simulator.run ~check:false (make ~seed) trace in
         float_of_int m.Metrics.misses)
       seeds)

type partial = { summary : summary option; failed : (int * string) list }

let misses_result ~make ~trace ~seeds =
  if seeds = [] then invalid_arg "Replicates.misses_result: no seeds";
  let ok, failed =
    List.fold_left
      (fun (ok, failed) seed ->
        match Simulator.run ~check:false (make ~seed) trace with
        | m -> (float_of_int m.Metrics.misses :: ok, failed)
        | exception ((Gc_exec.Cancel.Cancelled _ | Gc_exec.Pool.Transient _) as e)
          ->
            (* Degrading per-seed must not swallow supervision: a
               cancelled replicate set is cancelled, not "partial". *)
            raise e
        | exception exn -> (ok, (seed, Printexc.to_string exn) :: failed))
      ([], []) seeds
  in
  {
    summary = (match ok with [] -> None | vs -> Some (summarize (List.rev vs)));
    failed = List.rev failed;
  }

let pp fmt s =
  Format.fprintf fmt "mean %.1f (sd %.1f, min %.0f, max %.0f, n=%d)" s.mean
    s.stddev s.min s.max s.runs
