let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let map ?domains f xs =
  let n_domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    (* Static chunking: task i goes to domain (i mod d); each domain walks
       its stripe.  Simulations dominate, so load balance is adequate. *)
    let worker d () =
      let rec go i =
        if i < n then begin
          results.(i) <- Some (f items.(i));
          go (i + n_domains)
        end
      in
      go d
    in
    let handles =
      List.init (min n_domains n) (fun d -> Domain.spawn (worker d))
    in
    List.iter Domain.join handles;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> failwith "Parallel.map: missing result")
         results)
  end

let try_map ?domains f xs =
  (* The try sits inside the worker, so one faulty task surfaces as its own
     [Error] and the rest of the stripe still runs. *)
  map ?domains (fun x -> try Ok (f x) with exn -> Error exn) xs

let run_sweep ?domains ~make ~trace points =
  map ?domains
    (fun point ->
      let m = Simulator.run ~check:false (make point) trace in
      (point, m))
    points
