(* All fan-out runs on the supervised {!Gc_exec.Pool} runtime: the pool is
   the only place in the tree allowed to spawn, so every task — even a
   bare [map] — gets a cancel token, ordered settlement, and a domain
   that is always joined.  [map]/[try_map] configure the pool with no
   deadline and no retries, which preserves their historical semantics:
   every task runs, every outcome lands in its slot, and the lowest-index
   exception is re-raised in the caller. *)

exception Unsupervised_interrupt

let bare_config ?domains () =
  let c = Gc_exec.Pool.default_config () in
  {
    c with
    Gc_exec.Pool.domains =
      (match domains with
      | Some d -> max 1 d
      | None -> c.Gc_exec.Pool.domains);
    retries = 0;
  }

let outcomes ?domains f xs =
  List.map
    (function
      | Gc_exec.Pool.Done v -> Ok v
      | Gc_exec.Pool.Failed exn -> Error exn
      | Gc_exec.Pool.Timed_out _ | Gc_exec.Pool.Cancelled ->
          (* No deadline and no interrupt token were supplied, so the pool
             cannot produce these; if it ever does, fail loudly with a
             named error instead of a bare failwith. *)
          Error Unsupervised_interrupt)
    (Gc_exec.Pool.run
       ~config:(bare_config ?domains ())
       (List.map (fun x ~cancel:_ -> f x) xs))

let try_map ?domains f xs = outcomes ?domains f xs

let map ?domains f xs =
  (* Every task runs and every domain is joined before the first failure
     (in index order) is re-raised. *)
  List.map (function Ok v -> v | Error exn -> raise exn)
    (try_map ?domains f xs)

let sweep_task ~make ~trace point ~cancel:_ =
  let m =
    Simulator.run ~check:false
      ~progress:(fun _ -> Gc_exec.Cancel.poll ())
      (make point) trace
  in
  (point, m)

let run_sweep_outcomes ?domains ?deadline ?retries ?interrupt ~make ~trace
    points =
  let config =
    let c = Gc_exec.Pool.default_config () in
    {
      c with
      Gc_exec.Pool.domains =
        (match domains with Some d -> max 1 d | None -> c.Gc_exec.Pool.domains);
      deadline;
      retries = Option.value retries ~default:c.Gc_exec.Pool.retries;
    }
  in
  Gc_exec.Pool.run ~config ?interrupt
    (List.map (fun point -> sweep_task ~make ~trace point) points)

let run_sweep ?domains ~make ~trace points =
  List.map
    (function
      | Gc_exec.Pool.Done r -> r
      | Gc_exec.Pool.Failed exn -> raise exn
      | Gc_exec.Pool.Timed_out _ | Gc_exec.Pool.Cancelled ->
          (* No deadline and no interrupt token were supplied. *)
          raise Unsupervised_interrupt)
    (run_sweep_outcomes ?domains ~make ~trace points)
