let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* Work-stealing off a shared counter: each worker repeatedly claims the
   next unclaimed index, so a few slow cells no longer stall a whole
   static stripe.  Every task's outcome is captured in its slot — a raise
   cannot discard sibling results or leave domains unjoined. *)
let outcomes ?domains f xs =
  let n_domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f items.(i)) with exn -> Error exn);
          go ()
        end
      in
      go ()
    in
    let handles = List.init (min n_domains n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join handles;
    Array.map
      (function Some r -> r | None -> failwith "Parallel: missing result")
      results
  end

let try_map ?domains f xs = Array.to_list (outcomes ?domains f xs)

let map ?domains f xs =
  (* Every task runs and every domain is joined before the first failure
     (in index order) is re-raised. *)
  List.map (function Ok v -> v | Error exn -> raise exn)
    (try_map ?domains f xs)

let sweep_task ~make ~trace point ~cancel:_ =
  let m =
    Simulator.run ~check:false
      ~progress:(fun _ -> Gc_exec.Cancel.poll ())
      (make point) trace
  in
  (point, m)

let run_sweep_outcomes ?domains ?deadline ?retries ?interrupt ~make ~trace
    points =
  let config =
    let c = Gc_exec.Pool.default_config () in
    {
      c with
      Gc_exec.Pool.domains =
        (match domains with Some d -> max 1 d | None -> c.Gc_exec.Pool.domains);
      deadline;
      retries = Option.value retries ~default:c.Gc_exec.Pool.retries;
    }
  in
  Gc_exec.Pool.run ~config ?interrupt
    (List.map (fun point -> sweep_task ~make ~trace point) points)

let run_sweep ?domains ~make ~trace points =
  List.map
    (function
      | Gc_exec.Pool.Done r -> r
      | Gc_exec.Pool.Failed exn -> raise exn
      | Gc_exec.Pool.Timed_out _ | Gc_exec.Pool.Cancelled ->
          (* No deadline and no interrupt token were supplied. *)
          assert false)
    (run_sweep_outcomes ?domains ~make ~trace points)
