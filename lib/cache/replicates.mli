(** Replicate statistics for randomized policies.

    Marking, GCM and friends are randomized; single-run miss counts are
    noisy.  This module reruns a policy constructor across seeds and
    summarizes. *)

type summary = {
  runs : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
}

val misses :
  make:(seed:int -> Policy.t) ->
  trace:Gc_trace.Trace.t ->
  seeds:int list ->
  summary
(** Simulate (unchecked) once per seed and summarize the miss counts. *)

type partial = {
  summary : summary option;  (** [None] when every seed failed. *)
  failed : (int * string) list;  (** [(seed, error)] per failed replicate. *)
}

val misses_result :
  make:(seed:int -> Policy.t) ->
  trace:Gc_trace.Trace.t ->
  seeds:int list ->
  partial
(** Degradation-tolerant {!misses}: a replicate whose constructor or
    simulation raises is recorded in [failed] and excluded from the
    summary instead of aborting the whole set. *)

val summarize : float list -> summary

val pp : Format.formatter -> summary -> unit
