type t = {
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable spatial_hits : int;
  mutable temporal_hits : int;
  mutable cold_misses : int;
  mutable items_loaded : int;
  mutable evictions : int;
}

let create () =
  {
    accesses = 0;
    hits = 0;
    misses = 0;
    spatial_hits = 0;
    temporal_hits = 0;
    cold_misses = 0;
    items_loaded = 0;
    evictions = 0;
  }

let reset t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.spatial_hits <- 0;
  t.temporal_hits <- 0;
  t.cold_misses <- 0;
  t.items_loaded <- 0;
  t.evictions <- 0

let add acc x =
  acc.accesses <- acc.accesses + x.accesses;
  acc.hits <- acc.hits + x.hits;
  acc.misses <- acc.misses + x.misses;
  acc.spatial_hits <- acc.spatial_hits + x.spatial_hits;
  acc.temporal_hits <- acc.temporal_hits + x.temporal_hits;
  acc.cold_misses <- acc.cold_misses + x.cold_misses;
  acc.items_loaded <- acc.items_loaded + x.items_loaded;
  acc.evictions <- acc.evictions + x.evictions

let ratio num den =
  if den = 0 then 0. else float_of_int num /. float_of_int den

let hit_rate t = ratio t.hits t.accesses
let miss_rate t = ratio t.misses t.accesses
let fault_rate = miss_rate
let spatial_fraction t = ratio t.spatial_hits t.hits

let copy t = { t with accesses = t.accesses }

let fields t =
  [
    ("accesses", t.accesses);
    ("hits", t.hits);
    ("misses", t.misses);
    ("spatial_hits", t.spatial_hits);
    ("temporal_hits", t.temporal_hits);
    ("cold_misses", t.cold_misses);
    ("items_loaded", t.items_loaded);
    ("evictions", t.evictions);
  ]

let pp fmt t =
  Format.fprintf fmt
    "@[<v>accesses      %d@,hits          %d (%.4f)@,\
     - temporal    %d@,- spatial     %d@,misses        %d (%.4f)@,\
     - cold        %d@,items loaded  %d@,evictions     %d@]"
    t.accesses t.hits (hit_rate t) t.temporal_hits t.spatial_hits t.misses
    (miss_rate t) t.cold_misses t.items_loaded t.evictions

(* Derived from [fields] so the CLI row, the JSON snapshot, and any future
   export can never disagree on keys or order. *)
let to_row t =
  String.concat " "
    (List.concat_map
       (fun (key, v) ->
         let cell = Printf.sprintf "%s=%d" key v in
         (* hit_rate rides along right after the counts it is derived from. *)
         if key = "misses" then
           [ cell; Printf.sprintf "hit_rate=%.4f" (hit_rate t) ]
         else [ cell ])
       (fields t))

let to_json t =
  Gc_obs.Json.Obj
    (List.map (fun (key, v) -> (key, Gc_obs.Json.Int v)) (fields t)
    @ [
        ("hit_rate", Gc_obs.Json.Float (hit_rate t));
        ("miss_rate", Gc_obs.Json.Float (miss_rate t));
      ])
