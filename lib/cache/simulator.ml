exception Model_violation of string

let violation fmt = Format.kasprintf (fun s -> raise (Model_violation s)) fmt

type referenced_state = Loaded_unreferenced | Referenced

(* Progress callbacks fire every [progress_stride] accesses (and on access
   0): frequent enough that cooperative cancellation reacts in well under a
   millisecond of simulation, rare enough to cost one masked branch per
   access. *)
let progress_stride = 4096

type t = {
  policy_ : Policy.t;
  check : bool;
  probe : (Gc_obs.Event.t -> unit) option;
  progress : (int -> unit) option;
  metrics_ : Metrics.t;
  blocks : Gc_trace.Block_map.t;
  (* Shadow cache: item -> whether it has been referenced since loaded.
     Doubles as the spatial/temporal hit classifier and, in check mode, as
     the ground truth the policy's reported outcomes are audited against. *)
  ref_state : (int, referenced_state) Hashtbl.t;
  seen_ever : (int, unit) Hashtbl.t;
}

let create ?(check = true) ?probe ?progress policy blocks =
  {
    policy_ = policy;
    check;
    probe;
    progress;
    metrics_ = Metrics.create ();
    blocks;
    ref_state = Hashtbl.create 1024;
    seen_ever = Hashtbl.create 1024;
  }

let metrics d = d.metrics_
let policy d = d.policy_

let check_miss d item ~loaded ~evicted =
  let blk = Gc_trace.Block_map.block_of d.blocks item in
  if Hashtbl.mem d.ref_state item then
    violation "policy reported a miss on cached item %d" item;
  if not (List.mem item loaded) then
    violation "miss on %d: requested item not among loaded" item;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Gc_trace.Block_map.block_of d.blocks x <> blk then
        violation "miss on %d: loaded %d from a different block" item x;
      if Hashtbl.mem seen x then violation "miss on %d: loaded %d twice" item x;
      Hashtbl.add seen x ();
      if Hashtbl.mem d.ref_state x then
        violation "miss on %d: loaded already-cached item %d" item x)
    loaded;
  List.iter
    (fun x ->
      if not (Hashtbl.mem d.ref_state x) then
        violation "miss on %d: evicted item %d was not cached" item x;
      if Hashtbl.mem seen x then
        violation "miss on %d: item %d both loaded and evicted" item x;
      if Policy.mem d.policy_ x then
        violation "miss on %d: evicted item %d still reported cached" item x)
    evicted

let access d item =
  let m = d.metrics_ in
  let index = m.Metrics.accesses in
  m.Metrics.accesses <- index + 1;
  (match d.progress with
  | Some f when index land (progress_stride - 1) = 0 -> f index
  | _ -> ());
  (* Event construction stays inside the [Some] branches: a probe-less run
     allocates nothing and pays one branch per emission point. *)
  (match d.probe with
  | Some emit -> emit (Gc_obs.Event.Access { index; item })
  | None -> ());
  let was_seen = Hashtbl.mem d.seen_ever item in
  Hashtbl.replace d.seen_ever item ();
  let outcome = Policy.access d.policy_ item in
  (match outcome with
  | Policy.Hit { evicted } ->
      m.Metrics.hits <- m.Metrics.hits + 1;
      let kind =
        match Hashtbl.find_opt d.ref_state item with
        | Some Loaded_unreferenced ->
            m.Metrics.spatial_hits <- m.Metrics.spatial_hits + 1;
            Gc_obs.Event.Spatial
        | Some Referenced ->
            m.Metrics.temporal_hits <- m.Metrics.temporal_hits + 1;
            Gc_obs.Event.Temporal
        | None ->
            if d.check then
              violation "policy reported a hit on uncached item %d" item
            else m.Metrics.temporal_hits <- m.Metrics.temporal_hits + 1;
            Gc_obs.Event.Temporal
      in
      if d.check then
        List.iter
          (fun x ->
            if not (Hashtbl.mem d.ref_state x) then
              violation "hit on %d: evicted item %d was not cached" item x;
            if x = item then
              violation "hit on %d: evicted the requested item" item;
            if Policy.mem d.policy_ x then
              violation "hit on %d: evicted item %d still reported cached" item
                x)
          evicted;
      m.Metrics.evictions <- m.Metrics.evictions + List.length evicted;
      List.iter (fun x -> Hashtbl.remove d.ref_state x) evicted;
      Hashtbl.replace d.ref_state item Referenced;
      (match d.probe with
      | Some emit ->
          emit (Gc_obs.Event.Hit { index; item; kind; evicted });
          List.iter
            (fun x -> emit (Gc_obs.Event.Evict { index; item = x }))
            evicted
      | None -> ())
  | Policy.Miss { loaded; evicted } ->
      if d.check then check_miss d item ~loaded ~evicted;
      m.Metrics.misses <- m.Metrics.misses + 1;
      if not was_seen then m.Metrics.cold_misses <- m.Metrics.cold_misses + 1;
      m.Metrics.items_loaded <- m.Metrics.items_loaded + List.length loaded;
      m.Metrics.evictions <- m.Metrics.evictions + List.length evicted;
      List.iter (fun x -> Hashtbl.remove d.ref_state x) evicted;
      List.iter
        (fun x -> Hashtbl.replace d.ref_state x Loaded_unreferenced)
        loaded;
      Hashtbl.replace d.ref_state item Referenced;
      (match d.probe with
      | Some emit ->
          emit
            (Gc_obs.Event.Miss
               { index; item; cold = not was_seen; loaded; evicted });
          emit
            (Gc_obs.Event.Load
               {
                 index;
                 block = Gc_trace.Block_map.block_of d.blocks item;
                 width = List.length loaded;
               });
          List.iter
            (fun x -> emit (Gc_obs.Event.Evict { index; item = x }))
            evicted
      | None -> ()));
  if d.check then begin
    if not (Policy.mem d.policy_ item) then
      violation "after access, requested item %d is not cached" item;
    let occ = Policy.occupancy d.policy_ in
    let k = Policy.k d.policy_ in
    if occ > k then violation "occupancy %d exceeds k=%d" occ k
  end;
  outcome

let run_with ?check ?probe ?progress ~f policy trace =
  let d = create ?check ?probe ?progress policy trace.Gc_trace.Trace.blocks in
  Gc_trace.Trace.iteri
    (fun pos item ->
      let outcome = access d item in
      f pos item outcome)
    trace;
  d.metrics_

let run ?check ?probe ?progress policy trace =
  run_with ?check ?probe ?progress ~f:(fun _ _ _ -> ()) policy trace
