(** Monotonic clock readings for durations.

    All of [gc_caching]'s duration measurements (spans, pool deadlines,
    frame timeouts, latency histograms) go through this module rather
    than [Unix.gettimeofday]: the monotonic clock cannot jump backwards
    or step under NTP, so differences of readings are real elapsed time.
    The epoch is arbitrary (boot time on Linux) — readings are only
    meaningful relative to each other. *)

val now_ns : unit -> int
(** Current monotonic time in nanoseconds since an arbitrary epoch. *)

val now_s : unit -> float
(** [now_ns] scaled to seconds, for call sites that do float deadline
    arithmetic. *)

val ns_of_s : float -> int
val s_of_ns : int -> float
