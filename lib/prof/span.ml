(* Scoped convenience over Tracer.enter/leave.  A match handler rather
   than Fun.protect: no extra closure on the path that runs with tracing
   disabled. *)
let with_ ?args ?tid name f =
  let ticket = Tracer.enter ?args ?tid name in
  match f () with
  | v ->
      Tracer.leave ticket;
      v
  | exception e ->
      Tracer.leave ticket;
      raise e
