(** Chrome trace-event JSON export.

    The emitted document loads directly in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or chrome://tracing:
    one complete ("ph":"X") event per span, microsecond timestamps,
    domain/thread ids as tracks, and the per-span GC word deltas under
    ["args"]. *)

val event : Tracer.span -> Gc_obs.Json.t
val to_json : Tracer.span list -> Gc_obs.Json.t
