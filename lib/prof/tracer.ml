module Json = Gc_obs.Json

(* A completed span, as returned by [dump].  [ts_ns] is a monotonic
   Clock reading; [dur_ns] the measured extent; the three word counts
   are Gc.quick_stat deltas across the span. *)
type span = {
  name : string;
  tid : int;
  ts_ns : int;
  dur_ns : int;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  args : (string * string) list;
}

(* Ring slots are preallocated and mutated in place: recording a span
   writes fields of an existing slot, it never allocates.  [seq] is the
   claim ticket (the ring's running counter value at claim time); a
   [leave] whose ticket no longer matches the slot lost the slot to a
   wraparound and drops its measurement.  [s_dur] is -1 while the span
   is open; [dump] skips open slots. *)
type slot = {
  mutable seq : int;
  mutable s_name : string;
  mutable s_tid : int;
  mutable s_ts : int;
  mutable s_dur : int;
  mutable s_minor : float;
  mutable s_major : float;
  mutable s_promoted : float;
  mutable s_args : (string * string) list;
}

type ring = { epoch : int; slots : slot array; next : int Atomic.t }

let default_capacity = 4096

(* [enabled] is the whole cost of the null tracer: one Atomic.get on
   the hot path, no allocation, no clock read.  Everything else is only
   touched when tracing is on. *)
let enabled_flag = Atomic.make false
let capacity = Atomic.make default_capacity

(* Bumped by [start]: rings created under an older epoch are stale and
   get replaced lazily by the owning domain. *)
let epoch_now = Atomic.make 0
let rings : ring list ref = ref []
let rings_mu = Mutex.create ()

let fresh_slot () =
  {
    seq = -1;
    s_name = "";
    s_tid = 0;
    s_ts = 0;
    s_dur = -1;
    s_minor = 0.;
    s_major = 0.;
    s_promoted = 0.;
    s_args = [];
  }

let make_ring () =
  let cap = Atomic.get capacity in
  let r =
    {
      epoch = Atomic.get epoch_now;
      slots = Array.init cap (fun _ -> fresh_slot ());
      next = Atomic.make 0;
    }
  in
  Mutex.lock rings_mu;
  rings := r :: !rings;
  Mutex.unlock rings_mu;
  r

let ring_key : ring Domain.DLS.key = Domain.DLS.new_key make_ring

(* The calling domain's ring, replacing a stale one from a previous
   [start].  Only reached when tracing is enabled. *)
let my_ring () =
  let r = Domain.DLS.get ring_key in
  if r.epoch = Atomic.get epoch_now then r
  else begin
    let r = make_ring () in
    Domain.DLS.set ring_key r;
    r
  end

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let enabled () = Atomic.get enabled_flag

let stop () = Atomic.set enabled_flag false

let reset_rings cap =
  Mutex.lock rings_mu;
  Atomic.set capacity cap;
  Atomic.incr epoch_now;
  rings := [];
  Mutex.unlock rings_mu

let start ?capacity:(cap = default_capacity) () =
  if cap < 1 then invalid_arg "Tracer.start: capacity must be positive";
  reset_rings (round_up_pow2 cap);
  Atomic.set enabled_flag true

let enter ?(args = []) ?(tid = -1) name =
  if not (Atomic.get enabled_flag) then -1
  else begin
    let r = my_ring () in
    let ticket = Atomic.fetch_and_add r.next 1 in
    let slot = r.slots.(ticket land (Array.length r.slots - 1)) in
    let st = Gc.quick_stat () in
    slot.seq <- ticket;
    slot.s_name <- name;
    slot.s_tid <- (if tid >= 0 then tid else (Domain.self () :> int));
    slot.s_dur <- -1;
    slot.s_args <- args;
    slot.s_minor <- st.Gc.minor_words;
    slot.s_major <- st.Gc.major_words;
    slot.s_promoted <- st.Gc.promoted_words;
    slot.s_ts <- Clock.now_ns ();
    ticket
  end

let leave ticket =
  if ticket >= 0 then begin
    let stop_ns = Clock.now_ns () in
    let r = my_ring () in
    let slot = r.slots.(ticket land (Array.length r.slots - 1)) in
    if slot.seq = ticket then begin
      let st = Gc.quick_stat () in
      slot.s_dur <- stop_ns - slot.s_ts;
      slot.s_minor <- st.Gc.minor_words -. slot.s_minor;
      slot.s_major <- st.Gc.major_words -. slot.s_major;
      slot.s_promoted <- st.Gc.promoted_words -. slot.s_promoted
    end
  end

let emit ?(args = []) ?(tid = -1) ~ts_ns ~dur_ns name =
  if Atomic.get enabled_flag then begin
    let r = my_ring () in
    let ticket = Atomic.fetch_and_add r.next 1 in
    let slot = r.slots.(ticket land (Array.length r.slots - 1)) in
    slot.seq <- ticket;
    slot.s_name <- name;
    slot.s_tid <- (if tid >= 0 then tid else (Domain.self () :> int));
    slot.s_ts <- ts_ns;
    slot.s_dur <- dur_ns;
    slot.s_args <- args;
    slot.s_minor <- 0.;
    slot.s_major <- 0.;
    slot.s_promoted <- 0.
  end

let dump () =
  let rs =
    Mutex.lock rings_mu;
    let rs = !rings in
    Mutex.unlock rings_mu;
    rs
  in
  let spans = ref [] in
  List.iter
    (fun r ->
      Array.iter
        (fun slot ->
          if slot.seq >= 0 && slot.s_dur >= 0 then
            spans :=
              {
                name = slot.s_name;
                tid = slot.s_tid;
                ts_ns = slot.s_ts;
                dur_ns = slot.s_dur;
                minor_words = slot.s_minor;
                major_words = slot.s_major;
                promoted_words = slot.s_promoted;
                args = slot.s_args;
              }
              :: !spans)
        r.slots)
    rs;
  List.sort (fun a b -> compare (a.ts_ns, a.tid) (b.ts_ns, b.tid)) !spans

(* ------------------------------------------------- raw span dump JSON *)

let span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("tid", Json.Int s.tid);
      ("ts_ns", Json.Int s.ts_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("minor_words", Json.Float s.minor_words);
      ("major_words", Json.Float s.major_words);
      ("promoted_words", Json.Float s.promoted_words);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.args) );
    ]

let dump_to_json spans =
  Json.Obj [ ("spans", Json.Array (List.map span_to_json spans)) ]

let span_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match Json.member name j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "span field %S: expected an int" name)
  in
  let num name =
    match Json.member name j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int n) -> Ok (float_of_int n)
    | _ -> Error (Printf.sprintf "span field %S: expected a number" name)
  in
  let* name =
    match Json.member "name" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "span field \"name\": expected a string"
  in
  let* tid = int "tid" in
  let* ts_ns = int "ts_ns" in
  let* dur_ns = int "dur_ns" in
  let* minor_words = num "minor_words" in
  let* major_words = num "major_words" in
  let* promoted_words = num "promoted_words" in
  let* args =
    match Json.member "args" j with
    | None | Some (Json.Obj []) -> Ok []
    | Some (Json.Obj kvs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.String v) :: rest -> go ((k, v) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "span arg %S: expected a string" k)
        in
        go [] kvs
    | Some _ -> Error "span field \"args\": expected an object"
  in
  Ok { name; tid; ts_ns; dur_ns; minor_words; major_words; promoted_words; args }

let dump_of_json j =
  match Json.member "spans" j with
  | Some (Json.Array items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match span_of_json item with
            | Ok s -> go (s :: acc) rest
            | Error _ as e -> e)
      in
      go [] items
  | _ -> Error "span dump: expected a top-level {\"spans\": [...]} object"
