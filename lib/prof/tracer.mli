(** Lock-free span recording.

    Spans buffer into per-domain rings of preallocated slots: recording
    mutates slot fields in place (no allocation beyond what the caller
    passes as [args]), slots are claimed with an atomic ticket so
    sys-threads sharing a domain cannot race on a slot, and an old span
    is silently overwritten once the ring wraps — a tracer never blocks
    or grows without bound.

    When tracing is disabled (the default, and after [stop]) the whole
    layer is a null tracer: [enter] is one [Atomic.get] and returns a
    negative ticket, [leave] on a negative ticket is a no-op, and no
    clock read, GC poll, or allocation happens.  Hot paths can therefore
    stay instrumented permanently. *)

type span = {
  name : string;
  tid : int;  (** domain id, or the caller-supplied thread id *)
  ts_ns : int;  (** monotonic {!Clock} reading at entry *)
  dur_ns : int;
  minor_words : float;  (** Gc.quick_stat delta across the span *)
  major_words : float;
  promoted_words : float;
  args : (string * string) list;
}

val start : ?capacity:int -> unit -> unit
(** Enable tracing with fresh rings of [capacity] slots per domain
    (rounded up to a power of two, default 4096).  Spans recorded before
    a [start] are discarded. *)

val stop : unit -> unit
(** Disable recording.  Already-recorded spans stay available to
    {!dump}. *)

val enabled : unit -> bool

val enter : ?args:(string * string) list -> ?tid:int -> string -> int
(** Open a span named [name]; returns the ticket to pass to {!leave}.
    [tid] overrides the track id (defaults to the domain id) — servers
    whose workers are sys-threads in one domain pass [Thread.id] so each
    worker gets its own track.  Returns a negative ticket when tracing
    is disabled. *)

val leave : int -> unit
(** Close the span opened by [enter].  Dropped silently if the ring
    wrapped over the slot in between, or when the ticket is negative. *)

val emit :
  ?args:(string * string) list ->
  ?tid:int ->
  ts_ns:int ->
  dur_ns:int ->
  string ->
  unit
(** Record an already-measured span (for phases whose start predates the
    recording call, e.g. queue wait measured at dequeue).  GC deltas are
    zero for emitted spans. *)

val dump : unit -> span list
(** Every completed span across all domains, sorted by start time.
    Open spans (entered, not yet left) and spans lost to ring wraparound
    are omitted.  Meant to be called once work has quiesced. *)

val span_to_json : span -> Gc_obs.Json.t
val span_of_json : Gc_obs.Json.t -> (span, string) result

val dump_to_json : span list -> Gc_obs.Json.t
(** Raw span-dump document: [{"spans": [...]}].  [gcprof trace] converts
    this form to Chrome trace-event JSON. *)

val dump_of_json : Gc_obs.Json.t -> (span list, string) result
