(* The span clock.  CLOCK_MONOTONIC via bechamel's stub: immune to NTP
   steps and daylight-saving jumps, so a difference of two readings is a
   real duration.  Wall-clock time (Unix.gettimeofday) is for calendar
   timestamps only — the wall-clock-timing lint rule points here. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())
let now_s () = float_of_int (now_ns ()) *. 1e-9
let ns_of_s s = int_of_float (s *. 1e9)
let s_of_ns ns = float_of_int ns *. 1e-9
