module Json = Gc_obs.Json

(* Chrome trace-event format ("X" complete events), the JSON dialect
   Perfetto and chrome://tracing load directly.  Timestamps and
   durations are microseconds; the monotonic epoch is arbitrary, which
   the viewers accept (they normalise to the earliest event). *)

let event (s : Tracer.span) =
  let args =
    ("minor_words", Json.Float s.Tracer.minor_words)
    :: ("major_words", Json.Float s.Tracer.major_words)
    :: ("promoted_words", Json.Float s.Tracer.promoted_words)
    :: List.map (fun (k, v) -> (k, Json.String v)) s.Tracer.args
  in
  Json.Obj
    [
      ("name", Json.String s.Tracer.name);
      ("cat", Json.String "gc_caching");
      ("ph", Json.String "X");
      ("pid", Json.Int 1);
      ("tid", Json.Int s.Tracer.tid);
      ("ts", Json.Float (float_of_int s.Tracer.ts_ns /. 1000.));
      ("dur", Json.Float (float_of_int s.Tracer.dur_ns /. 1000.));
      ("args", Json.Obj args);
    ]

let to_json spans =
  Json.Obj
    [
      ("traceEvents", Json.Array (List.map event spans));
      ("displayTimeUnit", Json.String "ns");
    ]
