(** Scoped spans. *)

val with_ :
  ?args:(string * string) list -> ?tid:int -> string -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f ()] inside a span: monotonic duration plus
    GC allocation deltas are recorded when tracing is enabled, and the
    span is closed whether [f] returns or raises.  With tracing disabled
    the cost is one atomic load.  [tid] as in {!Tracer.enter}. *)
