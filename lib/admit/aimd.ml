type t = {
  min_limit : int;
  max_limit : int;
  beta : float;
  cooldown : float;
  mutable current : float;  (* fractional; [limit] floors it *)
  mutable next_decrease : float;  (* monotonic instant; -inf = armed *)
}

let create ?(beta = 0.7) ?(cooldown = 0.5) ~min_limit ~max_limit () =
  if min_limit < 1 then invalid_arg "Aimd.create: min_limit < 1";
  if max_limit < min_limit then
    invalid_arg "Aimd.create: max_limit < min_limit";
  if beta <= 0. || beta >= 1. then
    invalid_arg "Aimd.create: beta must be in (0, 1)";
  {
    min_limit;
    max_limit;
    beta;
    cooldown = Float.max 0. cooldown;
    current = Float.of_int max_limit;
    next_decrease = Float.neg_infinity;
  }

let limit t =
  let l = int_of_float t.current in
  if l < t.min_limit then t.min_limit
  else if l > t.max_limit then t.max_limit
  else l

let on_success t =
  if t.current < Float.of_int t.max_limit then
    t.current <-
      Float.min (Float.of_int t.max_limit) (t.current +. (1. /. Float.max 1. t.current))

let on_congestion t ~now =
  if now >= t.next_decrease then begin
    t.current <- Float.max (Float.of_int t.min_limit) (t.current *. t.beta);
    t.next_decrease <- now +. t.cooldown
  end
