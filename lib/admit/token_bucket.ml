type t = {
  cap : float;
  refill : float;
  mutable level : float;
  mutable n_denied : int;
}

let finite name v =
  if not (Float.is_finite v) then
    invalid_arg ("Token_bucket.create: " ^ name ^ " is not finite")

let create ?(capacity = 10.) ?initial ?(refill_per_success = 0.2) () =
  finite "capacity" capacity;
  finite "refill_per_success" refill_per_success;
  if capacity <= 0. then invalid_arg "Token_bucket.create: capacity <= 0";
  if refill_per_success < 0. then
    invalid_arg "Token_bucket.create: refill_per_success < 0";
  let initial = Option.value initial ~default:capacity in
  finite "initial" initial;
  if initial < 0. || initial > capacity then
    invalid_arg "Token_bucket.create: initial outside [0, capacity]";
  { cap = capacity; refill = refill_per_success; level = initial; n_denied = 0 }

(* Every mutation funnels through this clamp, so accumulated float error
   (e.g. thousands of fractional refills against a fractional capacity)
   can never carry [level] outside [0, cap] — not even by one ulp. *)
let clamp t =
  if t.level > t.cap then t.level <- t.cap;
  if t.level < 0. then t.level <- 0.

let try_take t =
  if t.level >= 1. then begin
    t.level <- t.level -. 1.;
    clamp t;
    true
  end
  else begin
    t.n_denied <- t.n_denied + 1;
    false
  end

let on_success t =
  t.level <- t.level +. t.refill;
  clamp t

let tokens t = t.level
let capacity t = t.cap
let denied t = t.n_denied
