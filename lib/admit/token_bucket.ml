type t = {
  cap : float;
  refill : float;
  mutable level : float;
  mutable n_denied : int;
}

let create ?(capacity = 10.) ?initial ?(refill_per_success = 0.2) () =
  if capacity <= 0. then invalid_arg "Token_bucket.create: capacity <= 0";
  if refill_per_success < 0. then
    invalid_arg "Token_bucket.create: refill_per_success < 0";
  let initial = Option.value initial ~default:capacity in
  if initial < 0. || initial > capacity then
    invalid_arg "Token_bucket.create: initial outside [0, capacity]";
  { cap = capacity; refill = refill_per_success; level = initial; n_denied = 0 }

let try_take t =
  if t.level >= 1. then begin
    t.level <- t.level -. 1.;
    true
  end
  else begin
    t.n_denied <- t.n_denied + 1;
    false
  end

let on_success t = t.level <- Float.min t.cap (t.level +. t.refill)
let tokens t = t.level
let capacity t = t.cap
let denied t = t.n_denied
