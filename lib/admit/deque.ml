(* Classic two-list deque: [front] is in pop order, [back] is reversed.
   An empty side borrows the whole other side (one O(n) reversal paid at
   most once per element), so both ends stay O(1) amortized. *)

type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list;
  mutable len : int;
}

let create () = { front = []; back = []; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push_back t x =
  t.back <- x :: t.back;
  t.len <- t.len + 1

let pop_front_opt t =
  (match t.front with
  | [] ->
      t.front <- List.rev t.back;
      t.back <- []
  | _ -> ());
  match t.front with
  | [] -> None
  | x :: rest ->
      t.front <- rest;
      t.len <- t.len - 1;
      Some x

let pop_back_opt t =
  (match t.back with
  | [] ->
      t.back <- List.rev t.front;
      t.front <- []
  | _ -> ());
  match t.back with
  | [] -> None
  | x :: rest ->
      t.back <- rest;
      t.len <- t.len - 1;
      Some x

let iter f t =
  List.iter f t.front;
  List.iter f (List.rev t.back)
