(** An AIMD (additive-increase / multiplicative-decrease) concurrency
    limiter.

    TCP's congestion-control shape applied to a request pool: every
    success nudges the limit up by [1/limit] (one extra slot per
    limit-many successes), every congestion signal — a request timeout or
    a shed — cuts it multiplicatively, clamped to [[min_limit,
    max_limit]].  Decreases are rate-limited to one per [cooldown]
    interval so a single burst of timeouts (which all report the {e same}
    congestion event) does not collapse the limit to the floor in one
    step.

    Time is passed in by the caller (a monotonic reading), never read
    here, so the limiter is a pure state machine: deterministic under
    test, trivially drivable by a property. *)

type t

val create : ?beta:float -> ?cooldown:float -> min_limit:int -> max_limit:int -> unit -> t
(** [beta] (default 0.7) is the multiplicative-decrease factor, in
    (0, 1).  [cooldown] (default 0.5s) spaces decreases.  The limit
    starts at [max_limit] — the server gives itself the benefit of the
    doubt and backs off on evidence.  Raises [Invalid_argument] when
    [min_limit < 1], [max_limit < min_limit], or [beta] is outside
    (0, 1). *)

val limit : t -> int
(** The current concurrency limit, in [[min_limit, max_limit]]. *)

val on_success : t -> unit
(** Additive increase: [limit += 1/limit], capped at [max_limit]. *)

val on_congestion : t -> now:float -> unit
(** Multiplicative decrease ([limit *= beta], floored at [min_limit]) —
    at most once per [cooldown] interval; signals inside the window are
    absorbed as part of the same congestion event. *)
