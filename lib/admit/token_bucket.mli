(** A success-coupled token bucket: the client-side retry budget.

    A fleet of retrying clients amplifies an overload — every shed reply
    turns into another request — unless retries are {e paid for}.  This
    bucket holds fractional tokens; a retry costs one token, and tokens
    refill in proportion to {e successes}, not to time.  Against a
    healthy server the bucket stays full and retries are free; against a
    collapsing one successes dry up, the bucket drains, and the fleet's
    retry traffic throttles itself to a fixed multiple of its success
    rate — which is exactly the property that lets a metastable system
    recover.

    No clock, no randomness: the state is a pure fold over the
    take/success event sequence, so behaviour is deterministic under any
    seeded drill. *)

type t

val create :
  ?capacity:float -> ?initial:float -> ?refill_per_success:float -> unit -> t
(** Defaults: [capacity] 10., [initial] = capacity, [refill_per_success]
    0.2 (one free retry per five successes, steady-state).  Raises
    [Invalid_argument] when [capacity <= 0.], [initial] is outside
    [[0, capacity]], [refill_per_success < 0.], or any parameter is NaN
    or infinite. *)

val try_take : t -> bool
(** Spend one token for a retry.  [false] (and a recorded denial) when
    fewer than one token remains — the caller must not retry. *)

val on_success : t -> unit
(** Credit [refill_per_success] tokens, capped at [capacity]. *)

val tokens : t -> float
(** Current level, in [[0, capacity]]. *)

val capacity : t -> float

val denied : t -> int
(** Retries refused so far — the load the budget kept off the wire. *)
