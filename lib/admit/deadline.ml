type verdict = Expired | Within of float

let effective ~server_deadline ~budget_ms ~sojourn =
  match budget_ms with
  | None -> Within server_deadline
  | Some b ->
      let remaining = (Float.of_int b /. 1000.) -. Float.max 0. sojourn in
      if remaining <= 0. then Expired
      else Within (Float.min server_deadline remaining)

let retry_after_ms rng ~base_ms =
  let base_ms = max 1 base_ms in
  let lo = max 1 (base_ms / 2) in
  lo + Gc_trace.Rng.int rng (base_ms + 1)
