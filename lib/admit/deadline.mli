(** Deadline propagation arithmetic and retry-after hints.

    The client's [budget_ms] travels with the request; by the time a
    worker dequeues the job, part of that budget is already spent in the
    queue.  {!effective} answers the only question that matters at that
    point: is there any budget left, and if so how much wall-clock may
    the execution take — the smaller of the server's own per-request
    deadline and what remains of the client's budget.  Executing a
    request whose budget has lapsed is pure waste that feeds a collapse
    (the delayed-hits lesson: in-flight work whose requester has moved
    on is neither a hit nor a miss, just heat). *)

type verdict =
  | Expired  (** The client's budget lapsed in the queue: do not run. *)
  | Within of float
      (** Run with this wall-clock deadline (seconds, positive). *)

val effective :
  server_deadline:float -> budget_ms:int option -> sojourn:float -> verdict
(** [sojourn] is the queue wait already spent (seconds).  With no client
    budget the verdict is [Within server_deadline]. *)

val retry_after_ms : Gc_trace.Rng.t -> base_ms:int -> int
(** A deterministic-jittered backoff hint for [overloaded]/[expired]
    replies: uniform in [[base/2, 3*base/2]] (at least 1ms), drawn from
    the server's seeded stream.  Jitter decorrelates the fleet — a bare
    constant would synchronize every shed client into the next
    thundering herd — and seeding keeps drills byte-reproducible. *)
