(** A mutable double-ended queue.

    The admission queue needs both service orders: FIFO while healthy
    (fairness) and LIFO while overloaded (the newest request is the one
    whose client is still waiting — serving the oldest first under
    sustained overload makes {e every} request miss its deadline).  Two
    reversed lists give O(1) amortized operations at either end with no
    ring-buffer sizing policy to get wrong. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Enqueue in arrival order. *)

val pop_front_opt : 'a t -> 'a option
(** Oldest element (FIFO service). *)

val pop_back_opt : 'a t -> 'a option
(** Newest element (LIFO-under-overload service). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)
