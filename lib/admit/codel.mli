(** CoDel-style sojourn shedding for the admission queue.

    Depth-based shedding only fires once the queue is {e full}; by then
    every queued request is already doomed to miss its deadline.  CoDel
    (controlled delay, Nichols & Jacobson) watches the right signal
    instead: the {e sojourn time} of the request being dequeued.  When
    sojourn stays above [target] for a whole [interval], the controller
    enters a dropping state and sheds dequeued requests at the classic
    control-law rate ([interval / sqrt count], faster the longer the
    overload persists) until a dequeue comes in under [target].

    The dropping state doubles as the server's overload flag: while
    dropping, the queue switches to LIFO service (see {!Deque}), because
    under sustained overload the newest request is the only one whose
    client is still likely to be waiting.

    Time is passed in by the caller (monotonic seconds); the controller
    is a pure state machine and deterministic under test. *)

type t

type verdict =
  | Serve  (** Execute the request. *)
  | Shed  (** Drop it with an [overloaded] reply; do not execute. *)

val create : target:float -> interval:float -> t
(** [target] is the acceptable queue sojourn (seconds); [target <= 0.]
    disables the controller ({!on_dequeue} always serves, {!overloaded}
    is always false).  [interval] (seconds, must be positive when
    enabled) is how long sojourn must stay above target before dropping
    starts. *)

val enabled : t -> bool

val on_dequeue : t -> now:float -> sojourn:float -> verdict
(** Feed one dequeue observation and get the disposition.  Must be
    called for {e every} dequeue, including ones the caller will discard
    for other reasons — the controller tracks continuity of the
    above-target condition. *)

val overloaded : t -> bool
(** In the dropping state: sojourn has been above [target] for at least
    [interval] and recovery has not been observed yet. *)
