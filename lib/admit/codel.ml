type verdict = Serve | Shed

type t = {
  target : float;
  interval : float;
  mutable first_above : float option;
      (* when sojourn first went above target; the dropping state arms
         once [now] passes this + interval *)
  mutable dropping : bool;
  mutable drop_next : float;  (* next shed instant while dropping *)
  mutable count : int;  (* sheds in the current dropping episode *)
}

let create ~target ~interval =
  if target > 0. && interval <= 0. then
    invalid_arg "Codel.create: interval must be positive";
  {
    target;
    interval;
    first_above = None;
    dropping = false;
    drop_next = 0.;
    count = 0;
  }

let enabled t = t.target > 0.
let overloaded t = t.dropping

let control_next t now =
  (* The classic control law: shed intervals shrink as sqrt(count) so a
     persistent overload is shed harder the longer it lasts. *)
  now +. (t.interval /. sqrt (Float.of_int (max 1 t.count)))

let on_dequeue t ~now ~sojourn =
  if not (enabled t) then Serve
  else if sojourn < t.target then begin
    (* Back under target: the episode is over. *)
    t.first_above <- None;
    t.dropping <- false;
    t.count <- 0;
    Serve
  end
  else if t.dropping then
    if now >= t.drop_next then begin
      t.count <- t.count + 1;
      t.drop_next <- control_next t now;
      Shed
    end
    else Serve
  else
    match t.first_above with
    | None ->
        t.first_above <- Some (now +. t.interval);
        Serve
    | Some armed when now < armed -> Serve
    | Some _ ->
        (* Above target for a whole interval: start dropping, and shed
           this dequeue as the first casualty. *)
        t.dropping <- true;
        t.count <- 1;
        t.drop_next <- control_next t now;
        Shed
