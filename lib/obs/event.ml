type hit_kind = Temporal | Spatial

type t =
  | Access of { index : int; item : int }
  | Hit of { index : int; item : int; kind : hit_kind; evicted : int list }
  | Miss of {
      index : int;
      item : int;
      cold : bool;
      loaded : int list;
      evicted : int list;
    }
  | Load of { index : int; block : int; width : int }
  | Evict of { index : int; item : int }
  | Repartition of { index : int; item_budget : int; block_budget : int }

let index = function
  | Access { index; _ }
  | Hit { index; _ }
  | Miss { index; _ }
  | Load { index; _ }
  | Evict { index; _ }
  | Repartition { index; _ } ->
      index

let kind_name = function
  | Access _ -> "access"
  | Hit _ -> "hit"
  | Miss _ -> "miss"
  | Load _ -> "load"
  | Evict _ -> "evict"
  | Repartition _ -> "repartition"

let kind_names = [ "access"; "repartition"; "hit"; "miss"; "load"; "evict" ]

let hit_kind_name = function Temporal -> "temporal" | Spatial -> "spatial"

let ints xs = Json.Array (List.map (fun x -> Json.Int x) xs)

let to_json t =
  let fields =
    match t with
    | Access { index; item } -> [ ("index", Json.Int index); ("item", Json.Int item) ]
    | Hit { index; item; kind; evicted } ->
        [
          ("index", Json.Int index);
          ("item", Json.Int item);
          ("kind", Json.String (hit_kind_name kind));
          ("evicted", ints evicted);
        ]
    | Miss { index; item; cold; loaded; evicted } ->
        [
          ("index", Json.Int index);
          ("item", Json.Int item);
          ("cold", Json.Bool cold);
          ("loaded", ints loaded);
          ("evicted", ints evicted);
        ]
    | Load { index; block; width } ->
        [
          ("index", Json.Int index);
          ("block", Json.Int block);
          ("width", Json.Int width);
        ]
    | Evict { index; item } -> [ ("index", Json.Int index); ("item", Json.Int item) ]
    | Repartition { index; item_budget; block_budget } ->
        [
          ("index", Json.Int index);
          ("item_budget", Json.Int item_budget);
          ("block_budget", Json.Int block_budget);
        ]
  in
  Json.Obj (("ev", Json.String (kind_name t)) :: fields)

let pp fmt t = Format.pp_print_string fmt (Json.to_string (to_json t))
