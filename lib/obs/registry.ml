type counter = int ref
type gauge = int ref

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type key = string * (string * string) list

type t = {
  tbl : (key, metric) Hashtbl.t;
  mutable order : key list;  (* reversed registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ~labels name fresh =
  let key = (name, labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some existing -> existing
  | None ->
      let m = fresh () in
      Hashtbl.add t.tbl key m;
      t.order <- key :: t.order;
      m

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Registry: metric %S is a %s, not a %s" name
       (type_name existing) wanted)

let counter t ?(labels = []) name =
  match register t ~labels name (fun () -> Counter (ref 0)) with
  | Counter c -> c
  | other -> mismatch name other "counter"

let gauge t ?(labels = []) name =
  match register t ~labels name (fun () -> Gauge (ref 0)) with
  | Gauge g -> g
  | other -> mismatch name other "gauge"

let histogram t ?(labels = []) name =
  match register t ~labels name (fun () -> Histogram (Histogram.create ())) with
  | Histogram h -> h
  | other -> mismatch name other "histogram"

let incr c = Stdlib.incr c
let add c n = c := !c + n
let counter_value c = !c
let set g v = g := v
let change g d = g := !g + d
let gauge_value g = !g

let rows t =
  List.rev_map
    (fun ((name, labels) as key) -> (name, labels, Hashtbl.find t.tbl key))
    t.order

let metric_json = function
  | Counter c -> [ ("value", Json.Int !c) ]
  | Gauge g -> [ ("value", Json.Int !g) ]
  | Histogram h -> (
      match Histogram.to_json h with
      | Json.Obj fields -> fields
      | other -> [ ("value", other) ])

let to_json t =
  Json.Array
    (List.map
       (fun (name, labels, m) ->
         Json.Obj
           ([
              ("name", Json.String name);
              ( "labels",
                Json.Obj (List.map (fun (key, v) -> (key, Json.String v)) labels)
              );
              ("type", Json.String (type_name m));
            ]
           @ metric_json m))
       (rows t))

let pp_labels fmt labels =
  if labels <> [] then
    Format.fprintf fmt "{%s}"
      (String.concat ","
         (List.map (fun (key, v) -> Printf.sprintf "%s=%s" key v) labels))

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun idx (name, labels, m) ->
      if idx > 0 then Format.fprintf fmt "@,";
      match m with
      | Counter c -> Format.fprintf fmt "%s%a = %d" name pp_labels labels !c
      | Gauge g -> Format.fprintf fmt "%s%a = %d" name pp_labels labels !g
      | Histogram h ->
          Format.fprintf fmt "%s%a:@,  @[<v>%a@]" name pp_labels labels
            Histogram.pp h)
    (rows t);
  Format.fprintf fmt "@]"
