(** A metric registry: named counters, gauges, and histograms.

    Metrics are identified by [(name, labels)]; registering the same pair
    twice returns the same metric, so labeled {e families} fall out of the
    lookup — e.g. [counter reg ~labels:[("policy", p)] "misses"] gives one
    counter per policy under a single name.  Registration order is
    preserved by all exports (stable artifacts diff cleanly).

    Registering a name under two different metric types raises
    [Invalid_argument]. *)

type t

type counter
type gauge

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

val create : unit -> t

(** {1 Registration (get-or-create)} *)

val counter : t -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?labels:(string * string) list -> string -> Histogram.t

(** {1 Updates and reads} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> int -> unit
val change : gauge -> int -> unit
(** Add a (possibly negative) delta. *)

val gauge_value : gauge -> int

(** {1 Enumeration and export} *)

val rows : t -> (string * (string * string) list * metric) list
(** [(name, labels, metric)] in registration order. *)

val to_json : t -> Json.t
(** Array of [{"name":..,"labels":{..},"type":..,...}] records; counters and
    gauges carry ["value"], histograms inline {!Histogram.to_json}. *)

val pp : Format.formatter -> t -> unit
