(** A minimal JSON tree and hand-rolled encoder.

    Deliberately dependency-free: the observability layer must not pull a
    JSON package into the core libraries.  Encoding follows RFC 8259; the
    only lossy corner is non-finite floats, which JSON cannot represent and
    which encode as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string escaping, without the surrounding quotes. *)

val to_string : t -> string
(** Compact (single-line) encoding. *)

val to_channel : out_channel -> t -> unit
(** [to_string] streamed to a channel without building the string. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line encoding, for files meant to be read by humans. *)

(** {1 Decoding} *)

type parse_error = { offset : int; reason : string }

val string_of_parse_error : parse_error -> string
(** ["offset N: reason"]. *)

val parse : string -> (t, parse_error) result
(** Strict RFC-8259 decoding of a complete document (trailing garbage is an
    error).  Nesting is depth-limited so corrupted input cannot overflow
    the stack; [\u] surrogate escapes are unsupported (the encoder never
    emits them).  Numbers that fit an OCaml [int] decode as [Int], others
    as [Float]. *)

(** {1 Accessors}

    Partial; meant for consumers that know the schema. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val get_int : t -> int
(** Raises [Invalid_argument] unless the node is [Int] or [Bool]. *)

val get_float : t -> float
(** Accepts [Int] and [Float]. *)

val get_string : t -> string
val get_list : t -> t list
