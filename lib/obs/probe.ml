type t = {
  registry : Registry.t;
  eviction_age : Histogram.t;
  reuse_distance : Histogram.t;
  load_width : Histogram.t;
  occupancy_h : Histogram.t;
  occupancy : Registry.gauge;
  hit_spatial : Registry.counter;
  hit_temporal : Registry.counter;
  miss_cold : Registry.counter;
  repartitions : Registry.counter;
  loaded_at : (int, int) Hashtbl.t;  (* item -> index of the load that brought it in *)
  last_access : (int, int) Hashtbl.t;  (* item -> index of its previous request *)
}

let create ?(labels = []) registry =
  (* Sequenced lets, not inline record fields: record fields evaluate in an
     unspecified order, and registration order is the export order. *)
  let eviction_age = Registry.histogram registry ~labels "eviction_age" in
  let reuse_distance = Registry.histogram registry ~labels "reuse_distance" in
  let load_width = Registry.histogram registry ~labels "load_width" in
  let occupancy_h = Registry.histogram registry ~labels "occupancy" in
  let occupancy = Registry.gauge registry ~labels "occupancy_now" in
  let hit_spatial = Registry.counter registry ~labels "events_hit_spatial" in
  let hit_temporal = Registry.counter registry ~labels "events_hit_temporal" in
  let miss_cold = Registry.counter registry ~labels "events_miss_cold" in
  let repartitions = Registry.counter registry ~labels "repartitions" in
  {
    registry;
    eviction_age;
    reuse_distance;
    load_width;
    occupancy_h;
    occupancy;
    hit_spatial;
    hit_temporal;
    miss_cold;
    repartitions;
    loaded_at = Hashtbl.create 1024;
    last_access = Hashtbl.create 1024;
  }

let registry t = t.registry

let on_event t (ev : Event.t) =
  match ev with
  | Access { index; item } ->
      (match Hashtbl.find_opt t.last_access item with
      | Some prev -> Histogram.observe t.reuse_distance (index - prev)
      | None -> ());
      Hashtbl.replace t.last_access item index;
      Histogram.observe t.occupancy_h (Registry.gauge_value t.occupancy)
  | Hit { kind = Spatial; _ } -> Registry.incr t.hit_spatial
  | Hit { kind = Temporal; _ } -> Registry.incr t.hit_temporal
  | Miss { index; cold; loaded; _ } ->
      if cold then Registry.incr t.miss_cold;
      List.iter (fun item -> Hashtbl.replace t.loaded_at item index) loaded;
      Registry.change t.occupancy (List.length loaded)
  | Load { width; _ } -> Histogram.observe t.load_width width
  | Evict { index; item } ->
      (match Hashtbl.find_opt t.loaded_at item with
      | Some born ->
          Histogram.observe t.eviction_age (index - born);
          Hashtbl.remove t.loaded_at item
      | None -> ());
      Registry.change t.occupancy (-1)
  | Repartition _ -> Registry.incr t.repartitions

let sink t ev = on_event t ev
