(** Pluggable event sinks.

    A sink is just a function; the simulator's probe argument has this type.
    Composite sinks (tee) and stateful consumers (ring buffer, per-kind
    counter, JSONL writer) are built here.  "Disabled" is represented by not
    attaching a probe at all, which costs nothing — [null] exists for call
    sites that must supply something. *)

type t = Event.t -> unit

val null : t
(** Drops every event. *)

val callback : (Event.t -> unit) -> t
(** Identity; documents intent at call sites. *)

val tee : t list -> t
(** Deliver each event to every sink, in order. *)

val jsonl : ?labels:(string * string) list -> out_channel -> t
(** One compact JSON object per line.  [labels] (e.g.
    [["policy", "lru"]]) are prepended to every record, so streams from
    several runs can share one file. *)

(** Bounded in-memory buffer keeping the most recent events. *)
module Ring : sig
  type sink := t
  type t

  val create : capacity:int -> t
  (** [capacity >= 1]. *)

  val sink : t -> sink
  val length : t -> int

  val total : t -> int
  (** Events ever delivered, including dropped ones. *)

  val contents : t -> Event.t list
  (** Oldest first; at most [capacity] events. *)

  val clear : t -> unit
end

(** Per-kind event tally, for cheap reconciliation against {!Metrics}-style
    counters. *)
module Count : sig
  type sink := t
  type t

  val create : unit -> t
  val sink : t -> sink
  val total : t -> int

  val by_kind : t -> (string * int) list
  (** In {!Event.kind_names} order; kinds never seen are included as 0. *)

  val get : t -> string -> int
end
