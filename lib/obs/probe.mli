(** Standard event consumer: turns the raw stream into registry metrics.

    Attach [Probe.sink p] as a simulator probe and the registry fills with
    the per-access distributions the flat counters cannot express:

    - ["eviction_age"]: accesses an item spent cached, from the load that
      brought it in to its eviction;
    - ["reuse_distance"]: inter-reference gap in accesses between
      consecutive requests to the same item (hits and misses alike);
    - ["load_width"]: items brought in per block load (the granularity
      actually used — the paper's subset-load freedom, measured);
    - ["occupancy"]: resident items sampled at every access, maintained
      from load/evict events (shadow count, so layered policies holding
      duplicates contribute each item once);
    - counters ["events_hit_spatial"], ["events_hit_temporal"],
      ["events_miss_cold"] and ["repartitions"].

    All metrics are registered with the probe's [labels], so one registry
    can hold the families of several policies side by side. *)

type t

val create : ?labels:(string * string) list -> Registry.t -> t
(** Registers the metric family in the given registry. *)

val sink : t -> Sink.t

val registry : t -> Registry.t
