type t = Event.t -> unit

let null _ = ()
let callback f = f

let tee sinks ev = List.iter (fun sink -> sink ev) sinks

let jsonl ?(labels = []) oc =
  let labels = List.map (fun (key, v) -> (key, Json.String v)) labels in
  fun ev ->
    let json =
      match (labels, Event.to_json ev) with
      | [], json -> json
      | labels, Json.Obj fields -> Json.Obj (labels @ fields)
      | labels, other -> Json.Obj (labels @ [ ("event", other) ])
    in
    Json.to_channel oc json;
    output_char oc '\n'

module Ring = struct
  type t = {
    buf : Event.t option array;
    mutable next : int;
    mutable total : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    { buf = Array.make capacity None; next = 0; total = 0 }

  let sink t ev =
    t.buf.(t.next) <- Some ev;
    t.next <- (t.next + 1) mod Array.length t.buf;
    t.total <- t.total + 1

  let length t = min t.total (Array.length t.buf)
  let total t = t.total

  let contents t =
    let cap = Array.length t.buf in
    let n = length t in
    let first = (t.next - n + cap) mod cap in
    List.init n (fun idx ->
        match t.buf.((first + idx) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.next <- 0;
    t.total <- 0
end

module Count = struct
  type t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let sink (t : t) ev =
    let key = Event.kind_name ev in
    match Hashtbl.find_opt t key with
    | Some r -> incr r
    | None -> Hashtbl.add t key (ref 1)

  let get t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0
  let by_kind t = List.map (fun key -> (key, get t key)) Event.kind_names
  let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0
end
