(** File and CSV encoders for run artifacts. *)

val csv_field : string -> string
(** RFC-4180 quoting: fields containing commas, double quotes, CR or LF are
    quoted, with inner quotes doubled; everything else passes through. *)

val csv_row : string list -> string
(** One line, no trailing newline. *)

val csv : header:string list -> string list list -> string
(** Header plus rows, each newline-terminated. *)

val registry_csv : Registry.t -> string
(** One row per metric:
    [name,labels,type,value,count,sum,mean,min,max] — counters and gauges
    fill [value]; histograms fill the summary columns. *)

val write_json : string -> Json.t -> unit
(** Pretty-printed JSON to a file path, trailing newline included. *)

val write_string : string -> string -> unit
