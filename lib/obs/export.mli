(** File and CSV encoders for run artifacts. *)

val csv_field : string -> string
(** RFC-4180 quoting: fields containing commas, double quotes, CR or LF are
    quoted, with inner quotes doubled; everything else passes through. *)

val csv_row : string list -> string
(** One line, no trailing newline. *)

val csv : header:string list -> string list list -> string
(** Header plus rows, each newline-terminated. *)

val registry_csv : Registry.t -> string
(** One row per metric:
    [name,labels,type,value,count,sum,mean,min,max] — counters and gauges
    fill [value]; histograms fill the summary columns. *)

val write_json : string -> Json.t -> unit
(** Pretty-printed JSON to a file path, trailing newline included. *)

val write_string : string -> string -> unit

val write_string_atomic : string -> string -> unit
(** Crash-safe replacement write: the content goes to [path ^ ".tmp"] and
    is renamed over [path] only after a successful close, so a crash or
    full disk mid-write can never leave a truncated artifact under the
    final name.  Failures raise [Sys_error] with the temp file removed. *)

val write_json_atomic : string -> Json.t -> unit
(** {!write_json} through {!write_string_atomic}; every run-artifact
    writer should use this. *)
