(** File and CSV encoders for run artifacts. *)

val csv_field : string -> string
(** RFC-4180 quoting: fields containing commas, double quotes, CR or LF are
    quoted, with inner quotes doubled; everything else passes through. *)

val csv_row : string list -> string
(** One line, no trailing newline. *)

val csv : header:string list -> string list list -> string
(** Header plus rows, each newline-terminated. *)

val registry_csv : Registry.t -> string
(** One row per metric:
    [name,labels,type,value,count,sum,mean,min,max] — counters and gauges
    fill [value]; histograms fill the summary columns. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition (format 0.0.4) of every metric in the
    registry: a [# TYPE] header per metric name with all of the name's
    labeled samples grouped under it, metric and label names sanitised
    to the Prometheus charset, label values escaped.  Histograms render
    as cumulative [_bucket] samples ([le] = the log bucket's inclusive
    upper edge, plus [+Inf]) with [_sum] and [_count]. *)

val prometheus_of_json : Json.t -> (string, string) result
(** The same exposition text, rendered from a {!Registry.to_json}
    snapshot (the shape served by [gcserved]'s stats op) rather than a
    live registry.  [Error] describes the first malformed row. *)

exception Crashed_before_rename

val crash_before_rename : bool ref
(** Chaos-drill fault hook ([gcchaos]; off — [false] — everywhere else).
    Armed, the next {!write_string_atomic} finishes its temp file and
    then raises {!Crashed_before_rename} in place of the rename — the
    window a real crash would hit — leaving the temp file behind and the
    final name untouched.  One-shot: disarms as it fires. *)

val write_string_atomic : string -> string -> unit
(** Crash-safe, durable replacement write: the content goes to a
    per-process-unique temp name ([path ^ ".tmp.<pid>.<seq>"], so two
    concurrent writers of the same artifact cannot clobber each other's
    temp file), is flushed and [fsync]ed, and only then renamed over
    [path] — a crash, full disk, or power loss mid-write can never leave
    a truncated artifact under the final name.  The containing directory
    is fsynced after the rename where the platform allows it.  Failures
    raise [Sys_error] with the temp file removed. *)

val write_string : string -> string -> unit
(** Alias of {!write_string_atomic}.  The plain non-atomic variant was
    removed so that every artifact writer shares the same crash-safety
    guarantee; streaming writers (JSONL event sinks, checkpoint journals)
    manage their own channels instead. *)

val write_json_atomic : string -> Json.t -> unit
(** Pretty-printed JSON (trailing newline included) through
    {!write_string_atomic}; every run-artifact writer should use this. *)

val write_json : string -> Json.t -> unit
(** Alias of {!write_json_atomic}. *)
