let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_row fields = String.concat "," (List.map csv_field fields)

let csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (csv_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let label_string labels =
  String.concat ";" (List.map (fun (key, v) -> key ^ "=" ^ v) labels)

let registry_csv reg =
  let opt = function Some v -> string_of_int v | None -> "" in
  let rows =
    List.map
      (fun (name, labels, metric) ->
        match metric with
        | Registry.Counter c ->
            [ name; label_string labels; "counter";
              string_of_int (Registry.counter_value c); ""; ""; ""; ""; "" ]
        | Registry.Gauge g ->
            [ name; label_string labels; "gauge";
              string_of_int (Registry.gauge_value g); ""; ""; ""; ""; "" ]
        | Registry.Histogram h ->
            [ name; label_string labels; "histogram"; "";
              string_of_int (Histogram.count h);
              string_of_int (Histogram.sum h);
              Printf.sprintf "%.6g" (Histogram.mean h);
              opt (Histogram.min_value h);
              opt (Histogram.max_value h) ])
      (Registry.rows reg)
  in
  csv
    ~header:
      [ "name"; "labels"; "type"; "value"; "count"; "sum"; "mean"; "min"; "max" ]
    rows

(* ------------------------------------------------ Prometheus exposition *)

(* Prometheus text exposition format (version 0.0.4): one "# TYPE" header
   per metric name with every sample of that name grouped under it.
   Histograms render in the native histogram convention — cumulative
   [_bucket] samples with an [le] label on the bucket's inclusive upper
   edge, plus [_sum] and [_count].  Quantiles are left to the scraper
   (that is what the bucket samples are for). *)

type prom_metric =
  | Prom_value of string * int  (* "counter" | "gauge" *)
  | Prom_hist of { hcount : int; hsum : int; hbuckets : (int * int) list }
      (* (hi_edge, count) ascending *)

type prom_row = {
  p_name : string;
  p_labels : (string * string) list;
  p_metric : prom_metric;
}

let prom_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  let b = Bytes.of_string s in
  Bytes.iteri
    (fun i c ->
      let valid = if i = 0 then ok_first c else ok c in
      if not valid then Bytes.set b i '_')
    b;
  if s = "" then "_" else Bytes.to_string b

let prom_label_value v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      let pair (k, v) =
        Printf.sprintf "%s=\"%s\"" (prom_name k) (prom_label_value v)
      in
      "{" ^ String.concat "," (List.map pair labels) ^ "}"

let render_prometheus rows =
  let buf = Buffer.create 1024 in
  let names =
    (* First-occurrence order, every row of one name grouped together. *)
    List.fold_left
      (fun acc row ->
        if List.mem row.p_name acc then acc else row.p_name :: acc)
      [] rows
    |> List.rev
  in
  List.iter
    (fun name ->
      let group = List.filter (fun r -> r.p_name = name) rows in
      let pname = prom_name name in
      let typ =
        match group with
        | { p_metric = Prom_value (t, _); _ } :: _ -> t
        | _ -> "histogram"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" pname typ);
      List.iter
        (fun r ->
          match r.p_metric with
          | Prom_value (_, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" pname (prom_labels r.p_labels) v)
          | Prom_hist { hcount; hsum; hbuckets } ->
              let cum = ref 0 in
              List.iter
                (fun (hi, n) ->
                  cum := !cum + n;
                  let labels = r.p_labels @ [ ("le", string_of_int hi) ] in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" pname
                       (prom_labels labels) !cum))
                hbuckets;
              let inf = r.p_labels @ [ ("le", "+Inf") ] in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" pname (prom_labels inf)
                   hcount);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %d\n" pname (prom_labels r.p_labels)
                   hsum);
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" pname
                   (prom_labels r.p_labels) hcount))
        group)
    names;
  Buffer.contents buf

let prometheus reg =
  let rows =
    List.map
      (fun (name, labels, metric) ->
        let p_metric =
          match metric with
          | Registry.Counter c ->
              Prom_value ("counter", Registry.counter_value c)
          | Registry.Gauge g -> Prom_value ("gauge", Registry.gauge_value g)
          | Registry.Histogram h ->
              Prom_hist
                {
                  hcount = Histogram.count h;
                  hsum = Histogram.sum h;
                  hbuckets =
                    List.map (fun (_, hi, n) -> (hi, n)) (Histogram.buckets h);
                }
        in
        { p_name = name; p_labels = labels; p_metric })
      (Registry.rows reg)
  in
  render_prometheus rows

(* The same text from a [Registry.to_json] snapshot, for consumers that
   only hold the wire form (e.g. [gcserved client stats --prom]). *)
let prometheus_of_json json =
  let ( let* ) = Result.bind in
  let str = function Json.String s -> Ok s | _ -> Error "expected a string" in
  let int = function Json.Int n -> Ok n | _ -> Error "expected an int" in
  let field name row =
    match Json.member name row with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "metric row lacks %S" name)
  in
  let parse_row row =
    let* name = Result.bind (field "name" row) str in
    let* labels =
      match Json.member "labels" row with
      | None | Some (Json.Obj []) -> Ok []
      | Some (Json.Obj kvs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | (k, Json.String v) :: rest -> go ((k, v) :: acc) rest
            | (k, _) :: _ -> Error (Printf.sprintf "label %S: expected a string" k)
          in
          go [] kvs
      | Some _ -> Error "labels: expected an object"
    in
    let* typ = Result.bind (field "type" row) str in
    let* p_metric =
      match typ with
      | "counter" | "gauge" ->
          let* v = Result.bind (field "value" row) int in
          Ok (Prom_value (typ, v))
      | "histogram" ->
          let* hcount = Result.bind (field "count" row) int in
          let* hsum = Result.bind (field "sum" row) int in
          let* hbuckets =
            match Json.member "buckets" row with
            | Some (Json.Array bs) ->
                let rec go acc = function
                  | [] -> Ok (List.rev acc)
                  | b :: rest ->
                      let* hi = Result.bind (field "hi" b) int in
                      let* n = Result.bind (field "count" b) int in
                      go ((hi, n) :: acc) rest
                in
                go [] bs
            | _ -> Error "histogram row lacks buckets"
          in
          Ok (Prom_hist { hcount; hsum; hbuckets })
      | t -> Error (Printf.sprintf "unknown metric type %S" t)
    in
    Ok { p_name = name; p_labels = labels; p_metric }
  in
  match json with
  | Json.Array rows ->
      let rec go acc = function
        | [] -> Ok (render_prometheus (List.rev acc))
        | row :: rest -> (
            match parse_row row with
            | Ok r -> go (r :: acc) rest
            | Error _ as e -> e)
      in
      go [] rows
  | _ -> Error "metrics snapshot: expected an array of metric rows"

(* A per-process counter makes the temp name unique even when two threads
   of one process write the same artifact concurrently; the pid covers
   concurrent processes.  A fixed ".tmp" suffix would let two writers
   clobber each other's temp file and rename a half-written one into
   place. *)
let tmp_seq = Atomic.make 0

(* Chaos-drill fault hook (gcchaos): when armed, the next atomic write
   completes the temp file (write, flush, fsync) and then raises
   [Crashed_before_rename] instead of renaming — the window a real crash
   would hit.  One-shot, off everywhere outside a drill.  The invariant
   it exists to prove: the final name is either absent or still the old
   content, never a truncated in-between. *)
exception Crashed_before_rename

let crash_before_rename = ref false

let write_string_atomic path s =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  (match
     let oc = open_out tmp in
     match
       output_string oc s;
       (* "Atomic" must also mean durable: without the fsync the rename
          can hit the disk before the data, and a power cut leaves the
          final name pointing at a truncated file. *)
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc);
       close_out oc
     with
     | () -> ()
     | exception e ->
         close_out_noerr oc;
         raise e
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  if !crash_before_rename then begin
    crash_before_rename := false;
    raise Crashed_before_rename
  end;
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* Persist the rename itself (the directory entry).  Best-effort: some
     platforms refuse to open or fsync directories. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* The plain (non-atomic) write_string/write_json variants are gone on
   purpose: every artifact writer goes through the atomic path so a crash
   or full disk can never leave a truncated file under a final name. *)
let write_string = write_string_atomic

let write_json_atomic path json =
  write_string_atomic path (Format.asprintf "%a@." Json.pp json)

let write_json = write_json_atomic
