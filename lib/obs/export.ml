let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let csv_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_row fields = String.concat "," (List.map csv_field fields)

let csv ~header rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (csv_row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (csv_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let label_string labels =
  String.concat ";" (List.map (fun (key, v) -> key ^ "=" ^ v) labels)

let registry_csv reg =
  let opt = function Some v -> string_of_int v | None -> "" in
  let rows =
    List.map
      (fun (name, labels, metric) ->
        match metric with
        | Registry.Counter c ->
            [ name; label_string labels; "counter";
              string_of_int (Registry.counter_value c); ""; ""; ""; ""; "" ]
        | Registry.Gauge g ->
            [ name; label_string labels; "gauge";
              string_of_int (Registry.gauge_value g); ""; ""; ""; ""; "" ]
        | Registry.Histogram h ->
            [ name; label_string labels; "histogram"; "";
              string_of_int (Histogram.count h);
              string_of_int (Histogram.sum h);
              Printf.sprintf "%.6g" (Histogram.mean h);
              opt (Histogram.min_value h);
              opt (Histogram.max_value h) ])
      (Registry.rows reg)
  in
  csv
    ~header:
      [ "name"; "labels"; "type"; "value"; "count"; "sum"; "mean"; "min"; "max" ]
    rows

(* A per-process counter makes the temp name unique even when two threads
   of one process write the same artifact concurrently; the pid covers
   concurrent processes.  A fixed ".tmp" suffix would let two writers
   clobber each other's temp file and rename a half-written one into
   place. *)
let tmp_seq = Atomic.make 0

let write_string_atomic path s =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  (match
     let oc = open_out tmp in
     match
       output_string oc s;
       (* "Atomic" must also mean durable: without the fsync the rename
          can hit the disk before the data, and a power cut leaves the
          final name pointing at a truncated file. *)
       flush oc;
       Unix.fsync (Unix.descr_of_out_channel oc);
       close_out oc
     with
     | () -> ()
     | exception e ->
         close_out_noerr oc;
         raise e
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* Persist the rename itself (the directory entry).  Best-effort: some
     platforms refuse to open or fsync directories. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* The plain (non-atomic) write_string/write_json variants are gone on
   purpose: every artifact writer goes through the atomic path so a crash
   or full disk can never leave a truncated file under a final name. *)
let write_string = write_string_atomic

let write_json_atomic path json =
  write_string_atomic path (Format.asprintf "%a@." Json.pp json)

let write_json = write_json_atomic
