type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* "%.17g" is enough digits to round-trip any float; JSON has no syntax for
   non-finite values, so those become null.  Whole floats keep a decimal
   point ("2.0", not "2") so decoders preserve their floatness. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then None
  else if Float.is_integer f && Float.abs f < 1e16 then
    Some (Printf.sprintf "%.1f" f)
  else Some (Printf.sprintf "%.17g" f)

let rec write buf t =
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> (
      match float_repr f with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Array xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun idx x ->
          if idx > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun idx (key, v) ->
          if idx > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let to_channel oc t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.output_buffer oc buf

let rec pp fmt t =
  match t with
  | Null | Bool _ | Int _ | Float _ | String _ ->
      Format.pp_print_string fmt (to_string t)
  | Array [] -> Format.pp_print_string fmt "[]"
  | Array xs ->
      Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,")
           pp)
        xs
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
      Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,")
           (fun fmt (key, v) -> Format.fprintf fmt "@[<hv 2>\"%s\":@ %a@]" (escape key) pp v))
        fields

(* ------------------------------------------------------------- decoding *)

type parse_error = { offset : int; reason : string }

let string_of_parse_error e =
  Printf.sprintf "offset %d: %s" e.offset e.reason

exception Parse of parse_error

(* Recursive descent over a string.  Depth-limited so hostile input (a
   checkpoint journal corrupted into "[[[[[...") is rejected with a
   diagnostic instead of a stack overflow. *)
let max_depth = 256

let parse src =
  let pos = ref 0 in
  let len = String.length src in
  let fail reason = raise (Parse { offset = !pos; reason }) in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail (Printf.sprintf "expected %C, got %C" c d)
    | None -> fail (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let h = String.sub src !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> fail (Printf.sprintf "bad \\u escape %S" h)
  in
  let add_utf8 buf code =
    (* Codepoint to UTF-8; surrogates and out-of-range rejected upstream. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
              advance ();
              let code = hex4 () in
              if code >= 0xD800 && code <= 0xDFFF then
                fail "surrogate \\u escape unsupported"
              else add_utf8 buf code
          | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
          | None -> fail "unterminated escape");
          go ()
      | Some c when Char.code c < 0x20 ->
          fail (Printf.sprintf "unescaped control character %C" c)
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    (* OCaml's numeric conversions are laxer than RFC 8259 (leading zeros,
       leading '+', '1.'), so validate the grammar — an optional minus, then
       0 or a nonzero-led digit run, then optional frac and exp parts —
       before converting. *)
    let grammatical =
      let n = String.length text in
      let i = ref 0 in
      let digits () =
        let s = !i in
        while
          !i < n && match text.[!i] with '0' .. '9' -> true | _ -> false
        do
          incr i
        done;
        !i > s
      in
      let ok = ref true in
      if !i < n && text.[!i] = '-' then incr i;
      (match if !i < n then Some text.[!i] else None with
      | Some '0' -> incr i
      | Some ('1' .. '9') -> ignore (digits ())
      | _ -> ok := false);
      if !ok && !i < n && text.[!i] = '.' then begin
        incr i;
        if not (digits ()) then ok := false
      end;
      if !ok && !i < n && (text.[!i] = 'e' || text.[!i] = 'E') then begin
        incr i;
        if !i < n && (text.[!i] = '+' || text.[!i] = '-') then incr i;
        if not (digits ()) then ok := false
      end;
      !ok && !i = n
    in
    if not grammatical then fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some n -> Int n
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Array []
        end
        else
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Array (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse e -> Error e

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | t -> invalid_arg ("Json.get_int: " ^ to_string t)

let get_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | t -> invalid_arg ("Json.get_float: " ^ to_string t)

let get_string = function
  | String s -> s
  | t -> invalid_arg ("Json.get_string: " ^ to_string t)

let get_list = function
  | Array xs -> xs
  | t -> invalid_arg ("Json.get_list: " ^ to_string t)
