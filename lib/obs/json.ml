type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Array of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* "%.17g" is enough digits to round-trip any float; JSON has no syntax for
   non-finite values, so those become null.  Whole floats keep a decimal
   point ("2.0", not "2") so decoders preserve their floatness. *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then None
  else if Float.is_integer f && Float.abs f < 1e16 then
    Some (Printf.sprintf "%.1f" f)
  else Some (Printf.sprintf "%.17g" f)

let rec write buf t =
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> (
      match float_repr f with
      | None -> Buffer.add_string buf "null"
      | Some s -> Buffer.add_string buf s)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Array xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun idx x ->
          if idx > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun idx (key, v) ->
          if idx > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape key);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let to_channel oc t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.output_buffer oc buf

let rec pp fmt t =
  match t with
  | Null | Bool _ | Int _ | Float _ | String _ ->
      Format.pp_print_string fmt (to_string t)
  | Array [] -> Format.pp_print_string fmt "[]"
  | Array xs ->
      Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,")
           pp)
        xs
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
      Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,")
           (fun fmt (key, v) -> Format.fprintf fmt "@[<hv 2>\"%s\":@ %a@]" (escape key) pp v))
        fields

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | t -> invalid_arg ("Json.get_int: " ^ to_string t)

let get_float = function
  | Int n -> float_of_int n
  | Float f -> f
  | t -> invalid_arg ("Json.get_float: " ^ to_string t)

let get_string = function
  | String s -> s
  | t -> invalid_arg ("Json.get_string: " ^ to_string t)

let get_list = function
  | Array xs -> xs
  | t -> invalid_arg ("Json.get_list: " ^ to_string t)
