(** Structured simulation events.

    One record per interesting thing that happens while a trace is driven
    through a policy; [index] is always the 0-based position of the current
    request in the trace.  The simulator emits, per access, in order:

    - [Access], before the policy is consulted;
    - [Repartition], if the policy re-splits its layers while handling the
      request (adaptive IBLP);
    - exactly one of [Hit] or [Miss];
    - on a miss, one [Load] carrying the requested block and load width;
    - one [Evict] per item that left the cache on this access.

    Events are plain data — construction is guarded by the probe option in
    the simulator, so a run without a probe allocates none of them. *)

type hit_kind =
  | Temporal
  | Spatial
      (** A spatial hit is on an item brought in by a miss on a {e different}
          item of its block and not referenced since (paper, Section 2). *)

type t =
  | Access of { index : int; item : int }
  | Hit of { index : int; item : int; kind : hit_kind; evicted : int list }
  | Miss of {
      index : int;
      item : int;
      cold : bool;  (** First-ever reference to the item. *)
      loaded : int list;
      evicted : int list;
    }
  | Load of {
      index : int;
      block : int;
      width : int;  (** Number of items brought in by this block load. *)
    }
  | Evict of { index : int; item : int }
  | Repartition of { index : int; item_budget : int; block_budget : int }

val index : t -> int

val kind_name : t -> string
(** Lowercase constructor name: ["access"], ["hit"], ["miss"], ["load"],
    ["evict"], ["repartition"]. *)

val kind_names : string list
(** Every possible [kind_name], in emission order. *)

val to_json : t -> Json.t
(** Flat object: [{"ev":"miss","index":3,"item":17,...}].  List fields
    encode as arrays; [kind] as ["temporal"]/["spatial"]. *)

val pp : Format.formatter -> t -> unit
