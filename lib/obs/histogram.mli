(** Log-bucketed histograms of non-negative integers.

    Bucket [0] holds the value 0 and bucket [i >= 1] holds values in
    [[2^(i-1), 2^i - 1]] — i.e. values are bucketed by bit length.  This
    gives ~2x resolution over the whole int range with a fixed 64-slot
    footprint and O(1) observation, which is the right trade for the
    quantities we track (eviction ages, reuse distances, occupancies):
    their tails span many orders of magnitude. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Negative values clamp to 0 (they only arise from caller bugs; the
    histogram stays total rather than raising on a metrics path). *)

val count : t -> int
(** Number of observations. *)

val sum : t -> int
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> int option
val max_value : t -> int option

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)] with inclusive bounds, ascending. *)

val quantile : t -> float -> int option
(** [quantile t q] for [q] in [[0, 1]]: an upper bound on the [q]-quantile
    (the [hi] edge of the bucket where the quantile falls); [None] when
    empty. *)

val quantile_interp : t -> float -> float option
(** [quantile_interp t q]: the [q]-quantile estimated by linear
    interpolation inside the log bucket where the rank falls, clamped to
    the observed [[min, max]] range.  Tighter than {!quantile} (which
    returns the bucket's upper edge); [None] when empty.  [q] outside
    [[0, 1]] clamps. *)

val p50 : t -> float option
val p90 : t -> float option

val p99 : t -> float option
(** Interpolated 50th/90th/99th percentiles, as included in
    {!to_json} snapshots. *)

val merge : t -> t -> unit
(** [merge acc x] accumulates [x] into [acc]. *)

val to_json : t -> Json.t
(** [{"count":n,"sum":s,"min":m,"max":m,"p50":..,"p90":..,"p99":..,
     "buckets":[{"lo":..,"hi":..,"count":..},...]}], quantiles by
    {!quantile_interp} ([null] when empty). *)

val pp : Format.formatter -> t -> unit
(** One line per non-empty bucket with a proportional bar. *)
