(** The run manifest: one JSON document that makes a run reproducible and
    comparable.

    Every tool that simulates something emits one of these ([gcsim run],
    [gcexp], [bench/main.exe]): which tool and subcommand ran, with which
    seed and capacity, over which trace (identified by a content digest),
    how long it took, and the full metric snapshot per policy.  Volatile
    fields (wall time) can be zeroed so manifests from different machines —
    or golden files in the test suite — compare byte-for-byte. *)

type trace_info = {
  path : string;  (** As given on the command line; ["-"] for stdin. *)
  length : int;
  block_size : int;
  digest : string;  (** Content digest, e.g. {!Gc_trace.Trace.digest}. *)
}

type run = {
  policy : string;  (** Registry spec, parameters included. *)
  metrics : (string * Json.t) list;  (** Flat counters, stable order. *)
  histograms : Json.t option;  (** Registry snapshot when histograms are on. *)
  events : (string * int) list;  (** Per-kind event counts; [] when off. *)
  error : (string * string) option;
      (** [(kind, message)] when the policy failed instead of finishing:
          ["model-violation"] (the shadow audit raised), ["exception"] (the
          policy crashed), ["timeout"] (a supervised cell exceeded its
          wall-clock deadline), ["cancelled"] (a supervised cell was never
          started because the run was interrupted), or ["interrupted"]
          (reserved for whole-run stamps).  A failed run keeps its slot in
          [runs] (with whatever metrics were gathered before the failure)
          so one bad policy never erases a sweep's other results. *)
}

type t = {
  version : int;  (** Manifest schema version; currently 1. *)
  tool : string;
  command : string;
  seed : int option;
  k : int option;
  trace : trace_info option;
  wall_time_s : float;
  runs : run list;
  extra : (string * Json.t) list;  (** Tool-specific payload (sweeps, ...). *)
}

val make :
  tool:string ->
  command:string ->
  ?seed:int ->
  ?k:int ->
  ?trace:trace_info ->
  ?wall_time_s:float ->
  ?extra:(string * Json.t) list ->
  run list ->
  t

val zero_volatile : t -> t
(** Zero the wall time (the only field that differs between identical runs)
    for golden-file comparison. *)

val to_json : t -> Json.t

val run_to_json : run -> Json.t
(** One run slot, exactly as it appears inside [to_json]'s [runs] array.
    Checkpoint journals store completed cells in this shape. *)

val run_of_json : Json.t -> (run, string) result
(** Inverse of {!run_to_json}; tolerant of the optional fields being
    absent.  [run_to_json (Result.get_ok (run_of_json j))] re-encodes
    byte-identically, which resume paths rely on. *)
