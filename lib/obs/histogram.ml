let slots = 64

type t = {
  counts : int array;  (* counts.(i): values of bit length i *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make slots 0; count = 0; sum = 0; min_v = max_int; max_v = -1 }

(* Bucket index = bit length of the value: 0 -> 0, 1 -> 1, 2..3 -> 2, ... *)
let bucket_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let bucket_lo idx = if idx = 0 then 0 else 1 lsl (idx - 1)
let bucket_hi idx = if idx = 0 then 0 else (1 lsl idx) - 1

let observe t v =
  let v = max 0 v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then None else Some t.min_v
let max_value t = if t.count = 0 then None else Some t.max_v

let buckets t =
  let out = ref [] in
  for idx = slots - 1 downto 0 do
    if t.counts.(idx) > 0 then
      out := (bucket_lo idx, bucket_hi idx, t.counts.(idx)) :: !out
  done;
  !out

let quantile t q =
  if t.count = 0 then None
  else begin
    let rank = Float.max 1. (Float.round (q *. float_of_int t.count)) in
    let rank = int_of_float (Float.min rank (float_of_int t.count)) in
    let seen = ref 0 and result = ref None and idx = ref 0 in
    while !result = None && !idx < slots do
      seen := !seen + t.counts.(!idx);
      if !seen >= rank then result := Some (min (bucket_hi !idx) t.max_v);
      incr idx
    done;
    !result
  end

(* Interpolated quantile: find the bucket holding the rank as above,
   then place the estimate linearly between the bucket's edges by the
   rank's position among that bucket's observations.  Clamped to the
   observed [min, max] so an estimate never leaves the data's range —
   with one observation every quantile is that observation. *)
let quantile_interp t q =
  if t.count = 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Float.max 1. (Float.round (q *. float_of_int t.count)) in
    let rank = int_of_float (Float.min rank (float_of_int t.count)) in
    let seen = ref 0 and result = ref None and idx = ref 0 in
    while !result = None && !idx < slots do
      let n = t.counts.(!idx) in
      if n > 0 && !seen + n >= rank then begin
        let lo = float_of_int (bucket_lo !idx)
        and hi = float_of_int (bucket_hi !idx) in
        let frac = float_of_int (rank - !seen) /. float_of_int n in
        let est = lo +. ((hi -. lo) *. frac) in
        let est = Float.max (float_of_int t.min_v) est in
        let est = Float.min (float_of_int t.max_v) est in
        result := Some est
      end;
      seen := !seen + n;
      incr idx
    done;
    !result
  end

let p50 t = quantile_interp t 0.50
let p90 t = quantile_interp t 0.90
let p99 t = quantile_interp t 0.99

let merge acc x =
  Array.iteri (fun idx n -> acc.counts.(idx) <- acc.counts.(idx) + n) x.counts;
  acc.count <- acc.count + x.count;
  acc.sum <- acc.sum + x.sum;
  if x.count > 0 then begin
    if x.min_v < acc.min_v then acc.min_v <- x.min_v;
    if x.max_v > acc.max_v then acc.max_v <- x.max_v
  end

let to_json t =
  let quant q = match quantile_interp t q with
    | None -> Json.Null
    | Some v -> Json.Float v
  in
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", if t.count = 0 then Json.Null else Json.Int t.min_v);
      ("max", if t.count = 0 then Json.Null else Json.Int t.max_v);
      ("p50", quant 0.50);
      ("p90", quant 0.90);
      ("p99", quant 0.99);
      ( "buckets",
        Json.Array
          (List.map
             (fun (lo, hi, n) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int n) ])
             (buckets t)) );
    ]

let pp fmt t =
  if t.count = 0 then Format.fprintf fmt "(empty)"
  else begin
    let bs = buckets t in
    let widest = List.fold_left (fun acc (_, _, n) -> max acc n) 1 bs in
    Format.fprintf fmt "@[<v>count %d  sum %d  mean %.2f  min %d  max %d" t.count
      t.sum (mean t) t.min_v t.max_v;
    List.iter
      (fun (lo, hi, n) ->
        let bar = String.make (max 1 (n * 40 / widest)) '#' in
        Format.fprintf fmt "@,[%10d, %10d] %8d %s" lo hi n bar)
      bs;
    Format.fprintf fmt "@]"
  end
