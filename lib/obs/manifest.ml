type trace_info = {
  path : string;
  length : int;
  block_size : int;
  digest : string;
}

type run = {
  policy : string;
  metrics : (string * Json.t) list;
  histograms : Json.t option;
  events : (string * int) list;
  error : (string * string) option;
}

type t = {
  version : int;
  tool : string;
  command : string;
  seed : int option;
  k : int option;
  trace : trace_info option;
  wall_time_s : float;
  runs : run list;
  extra : (string * Json.t) list;
}

let make ~tool ~command ?seed ?k ?trace ?(wall_time_s = 0.) ?(extra = []) runs =
  { version = 1; tool; command; seed; k; trace; wall_time_s; runs; extra }

let zero_volatile t = { t with wall_time_s = 0. }

let opt_field name f = function Some v -> [ (name, f v) ] | None -> []

let trace_json info =
  Json.Obj
    [
      ("path", Json.String info.path);
      ("length", Json.Int info.length);
      ("block_size", Json.Int info.block_size);
      ("digest", Json.String info.digest);
    ]

let run_json r =
  Json.Obj
    ([
       ("policy", Json.String r.policy);
       ("metrics", Json.Obj r.metrics);
     ]
    @ (match r.histograms with
      | Some h -> [ ("histograms", h) ]
      | None -> [])
    @ (match r.events with
      | [] -> []
      | events ->
          [
            ( "events",
              Json.Obj (List.map (fun (key, n) -> (key, Json.Int n)) events) );
          ])
    @
    match r.error with
    | None -> []
    | Some (kind, message) ->
        [
          ( "error",
            Json.Obj
              [
                ("kind", Json.String kind); ("message", Json.String message);
              ] );
        ])

let run_to_json = run_json

let run_of_json json =
  let ( let* ) r f = Result.bind r f in
  let* policy =
    match Json.member "policy" json with
    | Some (Json.String p) -> Ok p
    | _ -> Error "run slot: missing or non-string \"policy\""
  in
  let* metrics =
    match Json.member "metrics" json with
    | Some (Json.Obj fields) -> Ok fields
    | None -> Ok []
    | Some _ -> Error "run slot: \"metrics\" is not an object"
  in
  let histograms = Json.member "histograms" json in
  let* events =
    match Json.member "events" json with
    | None -> Ok []
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (key, v) ->
            let* acc = acc in
            match v with
            | Json.Int n -> Ok ((key, n) :: acc)
            | _ -> Error "run slot: non-integer event count")
          (Ok []) fields
        |> Result.map List.rev
    | Some _ -> Error "run slot: \"events\" is not an object"
  in
  let* error =
    match Json.member "error" json with
    | None -> Ok None
    | Some err -> (
        match (Json.member "kind" err, Json.member "message" err) with
        | Some (Json.String kind), Some (Json.String message) ->
            Ok (Some (kind, message))
        | _ -> Error "run slot: \"error\" lacks string kind/message")
  in
  Ok { policy; metrics; histograms; events; error }

let to_json t =
  Json.Obj
    ([
       ("version", Json.Int t.version);
       ("tool", Json.String t.tool);
       ("command", Json.String t.command);
     ]
    @ opt_field "seed" (fun n -> Json.Int n) t.seed
    @ opt_field "k" (fun n -> Json.Int n) t.k
    @ opt_field "trace" trace_json t.trace
    @ [
        ("wall_time_s", Json.Float t.wall_time_s);
        ("runs", Json.Array (List.map run_json t.runs));
      ]
    @ match t.extra with [] -> [] | extra -> [ ("extra", Json.Obj extra) ])
