type trace_info = {
  path : string;
  length : int;
  block_size : int;
  digest : string;
}

type run = {
  policy : string;
  metrics : (string * Json.t) list;
  histograms : Json.t option;
  events : (string * int) list;
  error : (string * string) option;
}

type t = {
  version : int;
  tool : string;
  command : string;
  seed : int option;
  k : int option;
  trace : trace_info option;
  wall_time_s : float;
  runs : run list;
  extra : (string * Json.t) list;
}

let make ~tool ~command ?seed ?k ?trace ?(wall_time_s = 0.) ?(extra = []) runs =
  { version = 1; tool; command; seed; k; trace; wall_time_s; runs; extra }

let zero_volatile t = { t with wall_time_s = 0. }

let opt_field name f = function Some v -> [ (name, f v) ] | None -> []

let trace_json info =
  Json.Obj
    [
      ("path", Json.String info.path);
      ("length", Json.Int info.length);
      ("block_size", Json.Int info.block_size);
      ("digest", Json.String info.digest);
    ]

let run_json r =
  Json.Obj
    ([
       ("policy", Json.String r.policy);
       ("metrics", Json.Obj r.metrics);
     ]
    @ (match r.histograms with
      | Some h -> [ ("histograms", h) ]
      | None -> [])
    @ (match r.events with
      | [] -> []
      | events ->
          [
            ( "events",
              Json.Obj (List.map (fun (key, n) -> (key, Json.Int n)) events) );
          ])
    @
    match r.error with
    | None -> []
    | Some (kind, message) ->
        [
          ( "error",
            Json.Obj
              [
                ("kind", Json.String kind); ("message", Json.String message);
              ] );
        ])

let to_json t =
  Json.Obj
    ([
       ("version", Json.Int t.version);
       ("tool", Json.String t.tool);
       ("command", Json.String t.command);
     ]
    @ opt_field "seed" (fun n -> Json.Int n) t.seed
    @ opt_field "k" (fun n -> Json.Int n) t.k
    @ opt_field "trace" trace_json t.trace
    @ [
        ("wall_time_s", Json.Float t.wall_time_s);
        ("runs", Json.Array (List.map run_json t.runs));
      ]
    @ match t.extra with [] -> [] | extra -> [ ("extra", Json.Obj extra) ])
