(** Address streams of classic computational kernels.

    Beyond the micro-patterns in {!Workloads}, these model whole kernels
    whose cache behaviour is textbook material — useful to see where
    granularity-change caching pays off on "real" computations.

    All kernels emit {e data} accesses only (no instruction stream) at
    element granularity; the hierarchy maps them onto lines and rows. *)

val matmul_naive :
  n:int -> elem_bytes:int -> a:int -> b:int -> c:int -> int array
(** Triple-loop [C = A * B] (ijk order): A streamed row-wise (good), B
    column-wise (bad at row granularity).  Bases [a], [b], [c] locate the
    matrices.  Emits [n^3 * 3] accesses — keep [n] modest. *)

val matmul_blocked :
  n:int -> tile:int -> elem_bytes:int -> a:int -> b:int -> c:int -> int array
(** The tiled version: same multiset of work, far better reuse.  [tile]
    must divide [n]. *)

val stencil_2d :
  rows:int -> cols:int -> iters:int -> elem_bytes:int -> base:int -> int array
(** 5-point stencil sweeps: each cell reads its 4 neighbours and itself,
    row-major traversal, [iters] times. *)

val hash_join :
  Gc_trace.Rng.t ->
  build_rows:int ->
  probe_rows:int ->
  row_bytes:int ->
  buckets:int ->
  base_table:int ->
  base_hash:int ->
  int array
(** Build: stream the build table once, one random bucket write each.
    Probe: stream probes, one random bucket read each.  Sequential table
    scans with random hash-bucket accesses — mixed locality by design. *)

val btree_lookups :
  Gc_trace.Rng.t ->
  lookups:int ->
  keys:int ->
  fanout:int ->
  node_bytes:int ->
  base:int ->
  int array
(** Root-to-leaf descents over an implicit B-tree laid out level by level:
    the root and upper levels are hot (temporal), the leaves sparse. *)

(** {1 Catalog}

    The canonical parameterizations, so tests, the bench harness, and the
    static-analysis lowering ({!Gc_analysis}) all drive the same kernels
    instead of re-plumbing parameters at every call site. *)

type size =
  | Small  (** Seconds-fast shapes for tests and static analysis. *)
  | Bench  (** The bench harness's larger shapes. *)

type entry = {
  name : string;  (** Stable identifier, e.g. ["matmul-naive"]. *)
  doc : string;
  generate : size -> seed:int -> int array;
      (** Byte-address stream; deterministic in [size] and [seed] (the
          randomized kernels derive their {!Gc_trace.Rng} from [seed]). *)
}

val catalog : entry list
(** Every kernel, in a stable order; names are unique. *)

val find : string -> entry option

val names : string list
