let matmul_naive ~n ~elem_bytes ~a ~b ~c =
  let out = Array.make (n * n * n * 3) 0 in
  let pos = ref 0 in
  let push addr =
    out.(!pos) <- addr;
    incr pos
  in
  let idx base row col = base + (((row * n) + col) * elem_bytes) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for kk = 0 to n - 1 do
        push (idx a i kk);
        push (idx b kk j);
        push (idx c i j)
      done
    done
  done;
  out

let matmul_blocked ~n ~tile ~elem_bytes ~a ~b ~c =
  if tile < 1 || n mod tile <> 0 then
    invalid_arg "Kernels.matmul_blocked: tile must divide n";
  let out = Array.make (n * n * n * 3) 0 in
  let pos = ref 0 in
  let push addr =
    out.(!pos) <- addr;
    incr pos
  in
  let idx base row col = base + (((row * n) + col) * elem_bytes) in
  let nt = n / tile in
  for it = 0 to nt - 1 do
    for jt = 0 to nt - 1 do
      for kt = 0 to nt - 1 do
        for i = it * tile to (it * tile) + tile - 1 do
          for j = jt * tile to (jt * tile) + tile - 1 do
            for kk = kt * tile to (kt * tile) + tile - 1 do
              push (idx a i kk);
              push (idx b kk j);
              push (idx c i j)
            done
          done
        done
      done
    done
  done;
  out

let stencil_2d ~rows ~cols ~iters ~elem_bytes ~base =
  if rows < 3 || cols < 3 then
    invalid_arg "Kernels.stencil_2d: grid too small";
  let interior = (rows - 2) * (cols - 2) in
  let out = Array.make (iters * interior * 5) 0 in
  let pos = ref 0 in
  let push addr =
    out.(!pos) <- addr;
    incr pos
  in
  let idx row col = base + (((row * cols) + col) * elem_bytes) in
  for _ = 1 to iters do
    for r = 1 to rows - 2 do
      for col = 1 to cols - 2 do
        push (idx (r - 1) col);
        push (idx r (col - 1));
        push (idx r col);
        push (idx r (col + 1));
        push (idx (r + 1) col)
      done
    done
  done;
  out

let hash_join rng ~build_rows ~probe_rows ~row_bytes ~buckets ~base_table
    ~base_hash =
  let bucket_bytes = 16 in
  let out = Array.make (2 * (build_rows + probe_rows)) 0 in
  let pos = ref 0 in
  let push addr =
    out.(!pos) <- addr;
    incr pos
  in
  for r = 0 to build_rows - 1 do
    push (base_table + (r * row_bytes));
    push (base_hash + (Gc_trace.Rng.int rng buckets * bucket_bytes))
  done;
  let probe_base = base_table + (build_rows * row_bytes) in
  for r = 0 to probe_rows - 1 do
    push (probe_base + (r * row_bytes));
    push (base_hash + (Gc_trace.Rng.int rng buckets * bucket_bytes))
  done;
  out

let btree_lookups rng ~lookups ~keys ~fanout ~node_bytes ~base =
  if fanout < 2 then invalid_arg "Kernels.btree_lookups: fanout must be >= 2";
  (* Depth of an implicit tree with [keys] leaves. *)
  let depth =
    let rec go d capacity =
      if capacity >= keys then d else go (d + 1) (capacity * fanout)
    in
    go 1 fanout
  in
  (* Level l (0 = root) starts after fanout^0 + ... + fanout^(l-1) nodes. *)
  let level_offset = Array.make (depth + 1) 0 in
  for l = 1 to depth do
    level_offset.(l) <-
      level_offset.(l - 1) + int_of_float (Float.pow (float_of_int fanout) (float_of_int (l - 1)))
  done;
  let out = Array.make (lookups * depth) 0 in
  let pos = ref 0 in
  for _ = 1 to lookups do
    let key = Gc_trace.Rng.int rng keys in
    (* Level l has fanout^l nodes; the one on [key]'s path is
       key / fanout^(depth - l). *)
    for l = 0 to depth - 1 do
      let div =
        int_of_float (Float.pow (float_of_int fanout) (float_of_int (depth - l)))
      in
      let node = level_offset.(l) + (key / div) in
      out.(!pos) <- base + (node * node_bytes);
      incr pos
    done
  done;
  out

(* ---------------------------------------------------------------- catalog *)

type size = Small | Bench

type entry = {
  name : string;
  doc : string;
  generate : size -> seed:int -> int array;
}

let catalog =
  [
    {
      name = "matmul-naive";
      doc = "triple-loop C = A * B (ijk order), B streamed column-wise";
      generate =
        (fun size ~seed:_ ->
          match size with
          | Small -> matmul_naive ~n:8 ~elem_bytes:8 ~a:0 ~b:4096 ~c:8192
          | Bench ->
              matmul_naive ~n:32 ~elem_bytes:8 ~a:0 ~b:65_536 ~c:131_072);
    };
    {
      name = "matmul-blocked";
      doc = "tiled C = A * B: the same work multiset with far better reuse";
      generate =
        (fun size ~seed:_ ->
          match size with
          | Small -> matmul_blocked ~n:8 ~tile:4 ~elem_bytes:8 ~a:0 ~b:4096 ~c:8192
          | Bench ->
              matmul_blocked ~n:32 ~tile:8 ~elem_bytes:8 ~a:0 ~b:65_536
                ~c:131_072);
    };
    {
      name = "stencil";
      doc = "5-point stencil sweeps, row-major traversal";
      generate =
        (fun size ~seed:_ ->
          match size with
          | Small -> stencil_2d ~rows:10 ~cols:10 ~iters:2 ~elem_bytes:8 ~base:0
          | Bench -> stencil_2d ~rows:64 ~cols:64 ~iters:4 ~elem_bytes:8 ~base:0);
    };
    {
      name = "hash-join";
      doc = "sequential table scans with random hash-bucket accesses";
      generate =
        (fun size ~seed ->
          let rng = Gc_trace.Rng.create seed in
          match size with
          | Small ->
              hash_join rng ~build_rows:100 ~probe_rows:200 ~row_bytes:64
                ~buckets:32 ~base_table:0 ~base_hash:1_048_576
          | Bench ->
              hash_join rng ~build_rows:8192 ~probe_rows:32_768 ~row_bytes:64
                ~buckets:1024 ~base_table:0 ~base_hash:8_388_608);
    };
    {
      name = "btree";
      doc = "root-to-leaf descents: hot upper levels, sparse leaves";
      generate =
        (fun size ~seed ->
          let rng = Gc_trace.Rng.create seed in
          match size with
          | Small ->
              btree_lookups rng ~lookups:100 ~keys:4096 ~fanout:16
                ~node_bytes:256 ~base:0
          | Bench ->
              btree_lookups rng ~lookups:20_000 ~keys:65_536 ~fanout:16
                ~node_bytes:256 ~base:0);
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) catalog
let names = List.map (fun e -> e.name) catalog
