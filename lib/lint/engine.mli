(** The analysis engine: parse with compiler-libs, walk the Parsetree.

    Each [.ml] is parsed with [Parse.implementation] (interfaces with
    [Parse.interface]) and walked once with an {!Ast_iterator}; every
    enabled rule inspects the nodes it cares about during that single
    pass.  A rule fires only when {!Rules.applies} says the file is in
    scope, the {!Config} allowlist does not cover the file, and no
    [\[@lint.allow "rule-id"\]] attribute is in effect at the site.

    Suppression forms (ids may be space- or comma-separated):
    - [(expr \[@lint.allow "rule-id"\])] — the expression and everything
      inside it;
    - [let f x = ... \[@@lint.allow "rule-id"\]] — one binding;
    - [\[@@@lint.allow "rule-id"\]] — the whole file.

    Two engine diagnostics exist outside the rule catalog: [parse-error]
    (the file does not parse — the engine never crashes on bad input) and
    [bad-allow] (a malformed [lint.allow] payload or an unknown rule id,
    so a typo cannot silently suppress nothing).  Neither can be
    suppressed. *)

val check_file :
  ?config:Config.t -> ?as_path:string -> root:string -> string -> Finding.t list
(** [check_file ~root path] lints [root/path].  [as_path] substitutes the
    root-relative path used for rule scoping, config matching, and
    diagnostics — the fixture corpus uses it to lint
    [test/lint_fixtures/spawn.ml] as if it lived at [lib/…].  Findings
    are sorted. *)

val discover : ?config:Config.t -> root:string -> unit -> string list
(** Every [.ml]/[.mli] under [lib/], [bin/], [bench/], and [test/] below
    [root] (sorted, root-relative), minus the config's [exclude] globs.
    Hidden directories and [_build] are skipped. *)

val check_tree :
  ?config:Config.t -> root:string -> string list -> Finding.t list
(** Lint the given root-relative paths ({!discover} when the list is
    empty).  Findings are sorted by file, line, column, rule. *)
