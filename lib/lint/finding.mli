(** Positioned lint diagnostics.

    A finding pins one convention violation to a [file:line:col] site,
    names the rule that produced it, and carries the rule's one-line fix
    hint so the rendered diagnostic is actionable on its own. *)

type severity = Error | Warn

val severity_to_string : severity -> string
(** ["error"] / ["warn"]. *)

type t = {
  file : string;  (** Root-relative path, ['/']-separated. *)
  line : int;  (** 1-based. *)
  col : int;  (** 1-based. *)
  rule : string;  (** Stable rule id, e.g. ["spawn-outside-pool"]. *)
  severity : severity;
  message : string;  (** What is wrong at this site. *)
  hint : string;  (** One-line fix hint; [""] for none. *)
}

val compare : t -> t -> int
(** Orders by file, then line, then column, then rule id. *)

val to_string : t -> string
(** ["file:line:col: severity rule: message (fix: hint)"] — one line,
    stable, asserted verbatim by the fixture goldens. *)

val to_json : t -> Gc_obs.Json.t
(** Object with [file]/[line]/[col]/[severity]/[rule]/[message]/[hint]
    fields, encoded by the hardened {!Gc_obs.Json} writer. *)
