type t = {
  exclude : string list;
  allow : (string * string list) list;
}

let empty = { exclude = []; allow = [] }

let glob_match ~pattern s =
  let pl = String.length pattern and sl = String.length s in
  let rec go pi si =
    if pi = pl then si = sl
    else
      match pattern.[pi] with
      | '*' -> go (pi + 1) si || (si < sl && go pi (si + 1))
      | '?' -> si < sl && go (pi + 1) (si + 1)
      | c -> si < sl && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let excluded t ~file =
  List.exists (fun pattern -> glob_match ~pattern file) t.exclude

let allowed t ~rule ~file =
  match List.assoc_opt rule t.allow with
  | None -> false
  | Some globs -> List.exists (fun pattern -> glob_match ~pattern file) globs

(* ------------------------------------------------------------- parsing *)

let fail lineno fmt =
  Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt

let trim = String.trim

(* ["a", "b"] -> Ok ["a"; "b"].  Single line, quoted strings only. *)
let parse_string_list lineno s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail lineno "expected a [\"glob\", ...] list, got %S" s
  else begin
    let body = trim (String.sub s 1 (n - 2)) in
    if body = "" then Ok []
    else
      let rec items acc rest =
        let rest = trim rest in
        let rn = String.length rest in
        if rn < 2 || rest.[0] <> '"' then
          fail lineno "expected a quoted glob, got %S" rest
        else
          match String.index_from_opt rest 1 '"' with
          | None -> fail lineno "unterminated string in %S" rest
          | Some close ->
              let item = String.sub rest 1 (close - 1) in
              let tail = trim (String.sub rest (close + 1) (rn - close - 1)) in
              if tail = "" then Ok (List.rev (item :: acc))
              else if tail.[0] = ',' then
                items (item :: acc)
                  (String.sub tail 1 (String.length tail - 1))
              else fail lineno "expected ',' between globs, got %S" tail
      in
      items [] body
  end

let of_string ?known_rules source =
  let lines = String.split_on_char '\n' source in
  let rec go lineno section acc = function
    | [] -> Ok { acc with allow = List.rev acc.allow }
    | raw :: rest -> (
        let line = trim raw in
        if line = "" || line.[0] = '#' then go (lineno + 1) section acc rest
        else if line.[0] = '[' then
          if String.length line < 2 || line.[String.length line - 1] <> ']'
          then fail lineno "malformed section header %S" line
          else
            let name = trim (String.sub line 1 (String.length line - 2)) in
            if name = "exclude" || name = "allow" then
              go (lineno + 1) (Some name) acc rest
            else fail lineno "unknown section [%s] (expected exclude or allow)" name
        else
          match String.index_opt line '=' with
          | None -> fail lineno "expected 'key = [...]', got %S" line
          | Some eq -> (
              let key = trim (String.sub line 0 eq) in
              let value =
                trim (String.sub line (eq + 1) (String.length line - eq - 1))
              in
              match parse_string_list lineno value with
              | Error _ as e -> e
              | Ok globs -> (
                  match section with
                  | None -> fail lineno "%S appears before any section" key
                  | Some "exclude" ->
                      if key <> "paths" then
                        fail lineno "unknown key %S in [exclude] (expected paths)"
                          key
                      else
                        go (lineno + 1) section
                          { acc with exclude = acc.exclude @ globs }
                          rest
                  | Some _ ->
                      let known =
                        match known_rules with
                        | None -> true
                        | Some ids -> List.mem key ids
                      in
                      if not known then
                        fail lineno "unknown rule id %S in [allow]" key
                      else if List.mem_assoc key acc.allow then
                        fail lineno "duplicate rule id %S in [allow]" key
                      else
                        go (lineno + 1) section
                          { acc with allow = (key, globs) :: acc.allow }
                          rest)))
  in
  go 1 None empty lines

let load ?known_rules path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> (
      match of_string ?known_rules contents with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
