(** Hand-rolled parser for the [lint.toml]-style configuration.

    The grammar is a deliberate sliver of TOML — enough for a per-file
    allowlist without pulling a TOML package into the tree:

    {v
    # comment
    [exclude]
    paths = ["test/lint_fixtures/*"]

    [allow]
    partial-stdlib = ["test/*", "bench/*"]
    v}

    Sections other than [exclude] and [allow] are errors, as are unknown
    rule ids under [allow] (when the known-rule list is supplied), so a
    typo in the config cannot silently disable nothing.

    Globs are matched against the whole root-relative path: [*] matches
    any run of characters including ['/'], [?] matches one character,
    everything else is literal. *)

type t = {
  exclude : string list;
      (** Path globs skipped during tree discovery.  Explicitly named
          files are still linted (the fixture corpus relies on this). *)
  allow : (string * string list) list;
      (** [rule id -> path globs] where that rule is switched off. *)
}

val empty : t

val glob_match : pattern:string -> string -> bool

val excluded : t -> file:string -> bool

val allowed : t -> rule:string -> file:string -> bool

val of_string : ?known_rules:string list -> string -> (t, string) result
(** Parse a config document.  Errors are positioned ("line N: reason"). *)

val load : ?known_rules:string list -> string -> (t, string) result
(** {!of_string} over a file's contents; unreadable files are [Error]. *)
