open Parsetree

let scan_dirs = [ "lib"; "bin"; "bench"; "test" ]

(* -------------------------------------------------------------- idents *)

let rec flatten (li : Longident.t) =
  match li with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply _ -> []

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | path -> path

let out_channel_openers =
  [
    "open_text"; "open_bin"; "open_gen";
    "with_open_text"; "with_open_bin"; "with_open_gen";
  ]

let stdout_printers =
  [
    "print_endline"; "print_string"; "print_newline";
    "print_char"; "print_int"; "print_float";
  ]

(* The single ident -> (rule, message) table.  Paths arrive with a
   leading [Stdlib] already stripped. *)
let ident_rule path =
  match path with
  | [ "Domain"; "spawn" ] ->
      Some ("spawn-outside-pool", "raw Domain.spawn outside the supervised runtime")
  | [ "Thread"; "create" ] ->
      Some ("spawn-outside-pool", "raw Thread.create outside the supervised runtime")
  | [ "Unix"; (("sleep" | "sleepf") as f) ] ->
      Some ("bare-sleep", Printf.sprintf "Unix.%s is cut short by signals" f)
  | [ "List"; (("hd" | "nth") as f) ] ->
      Some ("partial-stdlib", Printf.sprintf "partial List.%s raises a bare Failure" f)
  | [ "Option"; "get" ] ->
      Some ("partial-stdlib", "partial Option.get raises a bare Invalid_argument")
  | [ (("open_out" | "open_out_bin" | "open_out_gen") as f) ] ->
      Some
        ( "raw-artifact-write",
          Printf.sprintf "%s creates a file outside the crash-safe Export path" f )
  | [ "Out_channel"; f ] when List.mem f out_channel_openers ->
      Some
        ( "raw-artifact-write",
          Printf.sprintf
            "Out_channel.%s creates a file outside the crash-safe Export path" f )
  | [ "Marshal"; (("from_channel" | "from_string" | "from_bytes") as f) ] ->
      Some ("unsafe-deser", Printf.sprintf "Marshal.%s trusts its input's shape" f)
  | [ "Obj"; "magic" ] -> Some ("unsafe-deser", "Obj.magic defeats the type system")
  | "Random" :: _ :: _ ->
      Some ("nondeterministic-rng", "Stdlib.Random breaks replayable runs")
  | [ f ] when List.mem f stdout_printers ->
      Some ("print-in-lib", Printf.sprintf "%s writes to stdout from library code" f)
  | [ (("Printf" | "Format") as m); "printf" ] ->
      Some
        ( "print-in-lib",
          Printf.sprintf "%s.printf writes to stdout from library code" m )
  | [ "Unix"; "gettimeofday" ] ->
      Some
        ( "wall-clock-timing",
          "Unix.gettimeofday is a wall clock; durations need the monotonic \
           Gc_prof.Clock" )
  | [ "Sys"; "time" ] ->
      Some
        ( "wall-clock-timing",
          "Sys.time measures CPU time; durations need the monotonic \
           Gc_prof.Clock" )
  | [ "failwith" ] ->
      Some ("exit-contract", "failwith bypasses the CLI exit-code contract")
  | [ "exit" ] ->
      Some ("exit-contract", "exit bypasses the Cli_common.eval exit-code contract")
  | _ -> None

(* ------------------------------------------------------- small queries *)

let expr_contains pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it x ->
          if !found then ()
          else begin
            if pred x then found := true;
            Ast_iterator.default_iterator.expr it x
          end);
    }
  in
  it.expr it e;
  !found

let reraise_idents =
  [ [ "raise" ]; [ "raise_notrace" ]; [ "Printexc"; "raise_with_backtrace" ] ]

let body_reraises e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt; _ } ->
          List.mem (strip_stdlib (flatten txt)) reraise_idents
      | _ -> false)
    e

(* Catch-all exception patterns: [_], a bare variable, or an or-pattern
   with a catch-all arm. *)
let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_open (_, q)
  | Ppat_exception q ->
      catch_all q
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let rec pat_is_exception p =
  match p.ppat_desc with
  | Ppat_exception _ -> true
  | Ppat_or (a, b) -> pat_is_exception a || pat_is_exception b
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_open (_, q) ->
      pat_is_exception q
  | _ -> false

let mentions_ident name e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt = Lident n; _ } -> n = name
      | _ -> false)
    e

(* The simple-variable names a [let rec] binds; tuple/constraint patterns
   cannot name a function being re-entered from a handler. *)
let rec_bound_names vbs =
  List.filter_map
    (fun vb ->
      match vb.pvb_pat.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | _ -> None)
    vbs

let pat_contains pred p =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it x ->
          if !found then ()
          else begin
            if pred x then found := true;
            Ast_iterator.default_iterator.pat it x
          end);
    }
  in
  it.pat it p;
  !found

(* Does the pattern name a cancellation-family constructor?  Matching on
   the last path component keeps the check alias-proof (Cancel.Cancelled,
   Gc_exec.Cancel.Cancelled, Pool.Transient, ...). *)
let pat_mentions_rescue p =
  pat_contains
    (fun x ->
      match x.ppat_desc with
      | Ppat_construct ({ txt; _ }, _) -> (
          match List.rev (flatten txt) with
          | ("Cancelled" | "Transient") :: _ -> true
          | _ -> false)
      | _ -> false)
    p

(* --------------------------------------------------------- walk context *)

type ctx = {
  path : string;  (* root-relative, used for scoping and diagnostics *)
  config : Config.t;
  mutable file_allow : string list;  (* [@@@lint.allow] ids *)
  mutable stack : string list list;  (* nested [@lint.allow] scopes *)
  mutable rec_names : string list list;  (* enclosing [let rec] bindings *)
  sanctioned : (int, unit) Hashtbl.t;  (* start offsets of blessed idents *)
  mutable findings : Finding.t list;
}

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol + 1)

(* Engine diagnostics (parse-error, bad-allow) bypass scoping and
   suppression: they mean the lint run itself is compromised. *)
let emit_raw ctx loc rule message =
  let line, col = pos_of loc in
  ctx.findings <-
    {
      Finding.file = ctx.path;
      line;
      col;
      rule;
      severity = Finding.Error;
      message;
      hint = Rules.hint rule;
    }
    :: ctx.findings

let suppressed ctx id =
  List.mem id ctx.file_allow
  || List.exists (List.mem id) ctx.stack
  || Config.allowed ctx.config ~rule:id ~file:ctx.path

let emit ctx loc id message =
  if Rules.applies ~id ~file:ctx.path && not (suppressed ctx id) then begin
    let line, col = pos_of loc in
    ctx.findings <-
      {
        Finding.file = ctx.path;
        line;
        col;
        rule = id;
        severity = Rules.severity id;
        message;
        hint = Rules.hint id;
      }
      :: ctx.findings
  end

(* ---------------------------------------------------------- suppression *)

let split_ids s =
  String.split_on_char ' '
    (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun id -> id <> "")

(* Extract lint.allow ids from an attribute list, reporting malformed
   payloads and unknown rule ids as [bad-allow]. *)
let allow_ids ctx (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then []
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] -> (
            match split_ids s with
            | [] ->
                emit_raw ctx a.attr_name.loc "bad-allow"
                  "empty lint.allow payload";
                []
            | ids ->
                List.iter
                  (fun id ->
                    if not (List.mem id Rules.ids) then
                      emit_raw ctx a.attr_name.loc "bad-allow"
                        (Printf.sprintf
                           "lint.allow names unknown rule %S" id))
                  ids;
                ids)
        | _ ->
            emit_raw ctx a.attr_name.loc "bad-allow"
              "lint.allow expects a quoted rule id";
            [])
    attrs

(* ------------------------------------------------------------ rule body *)

let sanction ctx (e : expression) = Hashtbl.replace ctx.sanctioned e.pexp_loc.loc_start.pos_cnum ()

let mentions_cli_eval e =
  expr_contains
    (fun x ->
      match x.pexp_desc with
      | Pexp_ident { txt; _ } -> flatten txt = [ "Cli_common"; "eval" ]
      | _ -> false)
    e

(* One try/match handler: flag catch-all exception cases that neither
   re-raise themselves nor sit beside a case that names the cancellation
   family.  A sibling that matches [Cancelled]/[Transient] explicitly has
   made a deliberate disposition — whether it re-raises on the spot or
   captures the exception to re-raise after cleanup. *)
let check_handler ctx cases ~exception_cases_only =
  let exc_case c =
    if exception_cases_only then pat_is_exception c.pc_lhs else true
  in
  let rescued =
    List.exists (fun c -> exc_case c && pat_mentions_rescue c.pc_lhs) cases
  in
  if not rescued then
    List.iter
      (fun c ->
        if exc_case c && catch_all c.pc_lhs && not (body_reraises c.pc_rhs)
        then
          emit ctx c.pc_lhs.ppat_loc "swallowed-cancellation"
            "catch-all exception handler can swallow cooperative cancellation")
      cases

(* One try/match handler, again: a catch-all case with no [when] guard
   whose body re-enters an enclosing [let rec] binding is a bare retry
   loop — every failure, retried forever, with no backoff.  A guard is a
   bound the author wrote down; a narrow pattern is a deliberate
   classification; both are left alone. *)
let check_retry ctx cases ~exception_cases_only =
  let names = List.concat ctx.rec_names in
  if names <> [] then
    List.iter
      (fun c ->
        let exc =
          if exception_cases_only then pat_is_exception c.pc_lhs else true
        in
        if
          exc && catch_all c.pc_lhs && c.pc_guard = None
          && List.exists (fun n -> mentions_ident n c.pc_rhs) names
        then
          emit ctx c.pc_lhs.ppat_loc "unbounded-retry"
            "catch-all handler re-enters the recursive binding: an \
             unbounded retry with no backoff")
      cases

(* ------------------------------------------------------- fixed-deadline *)

(* Field or argument labels that carry a time bound in the serving layer. *)
let timing_label l =
  l = "deadline" || l = "budget_ms"
  || (String.length l >= 7
      && String.sub l (String.length l - 7) 7 = "timeout")

(* A literal time bound: a bare int/float constant, possibly wrapped in
   [Some] (budget_ms is an option).  Variables, projections, and computed
   expressions all trace back to configuration and are left alone. *)
let rec literal_timing (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_float _) -> true
  | Pexp_construct ({ txt = Lident "Some"; _ }, Some arg) ->
      literal_timing arg
  | Pexp_constraint (inner, _) -> literal_timing inner
  | _ -> false

let check_fixed_deadline ctx (e : expression) =
  let flag loc what =
    emit ctx loc "fixed-deadline"
      (Printf.sprintf
         "hardcoded time bound in %s: deadlines must derive from \
          Server.config or the propagated budget"
         what)
  in
  match e.pexp_desc with
  | Pexp_record (fields, _) ->
      List.iter
        (fun (({ txt; loc } : Longident.t Location.loc), value) ->
          match List.rev (flatten txt) with
          | label :: _ when timing_label label && literal_timing value ->
              flag loc (Printf.sprintf "record field %s" label)
          | _ -> ())
        fields
  | Pexp_apply (_, args) ->
      List.iter
        (fun (arg_label, value) ->
          match arg_label with
          | Asttypes.Labelled l | Asttypes.Optional l ->
              if timing_label l && literal_timing value then
                flag value.pexp_loc (Printf.sprintf "argument ~%s" l)
          | Asttypes.Nolabel -> ())
        args
  | _ -> ()

(* --------------------------------------------------- hardcoded-endpoint *)

let all_chars_in s pred =
  let ok = ref (s <> "") in
  String.iter (fun c -> if not (pred c) then ok := false) s;
  !ok

(* A string literal that names a concrete network endpoint: a Unix
   socket path (".sock" anywhere after a path-looking prefix) or a
   host:port.  Format strings are skipped — "%s.sock" and "%s:%d" are
   the sanctioned way to *derive* an endpoint from configuration. *)
let endpoint_literal s =
  if String.contains s '%' then false
  else if
    (* Strictly longer than the suffix: a bare ".sock" is a pattern
       (this very matcher), not a place. *)
    String.length s > 5 && Filename.check_suffix s ".sock"
  then true
  else
    match String.rindex_opt s ':' with
    | None -> false
    | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        all_chars_in port (fun c -> c >= '0' && c <= '9')
        && all_chars_in host (fun c ->
               (c >= 'a' && c <= 'z')
               || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9')
               || c = '.' || c = '-')
        && (String.contains host '.' || host = "localhost")

let check_hardcoded_endpoint ctx (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) when endpoint_literal s ->
      emit ctx e.pexp_loc "hardcoded-endpoint"
        (Printf.sprintf
           "string literal %S pins a concrete endpoint: addresses are \
            deployment configuration"
           s)
  | _ -> ()

let check_expr ctx (e : expression) =
  check_fixed_deadline ctx e;
  check_hardcoded_endpoint ctx e;
  match e.pexp_desc with
  | Pexp_apply
      ( ({ pexp_desc = Pexp_ident { txt = Lident "exit"; _ }; _ } as fn),
        args ) ->
      (* `exit (Cli_common.eval ...)` is the sanctioned entry-point form. *)
      if List.exists (fun (_, arg) -> mentions_cli_eval arg) args then
        sanction ctx fn
  | Pexp_ident { txt; loc } -> (
      match ident_rule (strip_stdlib (flatten txt)) with
      | Some ("exit-contract", _)
        when Hashtbl.mem ctx.sanctioned e.pexp_loc.loc_start.pos_cnum ->
          ()
      | Some (id, message) -> emit ctx loc id message
      | None -> ())
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
      emit ctx e.pexp_loc "exit-contract"
        "assert false aborts outside the exit-code contract"
  | Pexp_try (_, cases) ->
      check_handler ctx cases ~exception_cases_only:false;
      check_retry ctx cases ~exception_cases_only:false
  | Pexp_match (_, cases)
    when List.exists (fun c -> pat_is_exception c.pc_lhs) cases ->
      check_handler ctx cases ~exception_cases_only:true;
      check_retry ctx cases ~exception_cases_only:true
  | _ -> ()

(* ------------------------------------------------------------- the walk *)

let iterator ctx =
  let super = Ast_iterator.default_iterator in
  let with_scope ids k =
    ctx.stack <- ids :: ctx.stack;
    k ();
    ctx.stack <- (match ctx.stack with _ :: rest -> rest | [] -> [])
  in
  let with_recs names k =
    ctx.rec_names <- names :: ctx.rec_names;
    k ();
    ctx.rec_names <-
      (match ctx.rec_names with _ :: rest -> rest | [] -> [])
  in
  {
    super with
    expr =
      (fun it e ->
        let recs =
          match e.pexp_desc with
          | Pexp_let (Recursive, vbs, _) -> rec_bound_names vbs
          | _ -> []
        in
        with_recs recs (fun () ->
            with_scope (allow_ids ctx e.pexp_attributes) (fun () ->
                check_expr ctx e;
                super.expr it e)));
    value_binding =
      (fun it vb ->
        (* [default_config] is where deadline/timeout literals live by
           design: it IS the configuration the fixed-deadline rule sends
           authors to. *)
        let sanctioned_defaults =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = "default_config"; _ } -> [ "fixed-deadline" ]
          | _ -> []
        in
        with_scope
          (sanctioned_defaults @ allow_ids ctx vb.pvb_attributes)
          (fun () -> super.value_binding it vb));
    structure_item =
      (fun it si ->
        match si.pstr_desc with
        | Pstr_eval (_, attrs) ->
            with_scope (allow_ids ctx attrs) (fun () ->
                super.structure_item it si)
        | Pstr_value (Recursive, vbs) ->
            with_recs (rec_bound_names vbs) (fun () ->
                super.structure_item it si)
        | _ -> super.structure_item it si);
  }

(* [@@@lint.allow] anywhere in the file suppresses for the whole file;
   collected before the walk so placement does not matter. *)
let collect_file_allows ctx structure =
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_attribute a ->
          ctx.file_allow <- allow_ids ctx [ a ] @ ctx.file_allow
      | _ -> ())
    structure

let parse_error_loc exn =
  match Location.error_of_exn exn with
  | Some (`Ok (err : Location.error)) -> err.main.loc
  | Some `Already_displayed | None -> Location.none

(* The parser's own exception carries the position; anything else (a
   lexer bug, say) still must not crash the lint run, so the catch-all is
   deliberate.  Nothing here executes under a pool token — a lint walk is
   plain single-domain code. *)
let protected_parse parse lexbuf =
  match parse lexbuf with
  | v -> Ok v
  | exception exn -> Error (parse_error_loc exn)
[@@lint.allow "swallowed-cancellation"]

let run_file ctx source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf ctx.path;
  if Filename.check_suffix ctx.path ".mli" then begin
    (* Signatures contain no expressions the rules care about; parse them
       so a syntax error still surfaces, then stop. *)
    match protected_parse Parse.interface lexbuf with
    | Ok (_ : signature) -> ()
    | Error loc -> emit_raw ctx loc "parse-error" "file does not parse"
  end
  else
    match protected_parse Parse.implementation lexbuf with
    | Ok structure ->
        collect_file_allows ctx structure;
        let it = iterator ctx in
        it.structure it structure
    | Error loc -> emit_raw ctx loc "parse-error" "file does not parse"

let check_file ?(config = Config.empty) ?as_path ~root path =
  let ctx =
    {
      path = (match as_path with Some p -> p | None -> path);
      config;
      file_allow = [];
      stack = [];
      rec_names = [];
      sanctioned = Hashtbl.create 8;
      findings = [];
    }
  in
  let source =
    In_channel.with_open_bin (Filename.concat root path) In_channel.input_all
  in
  run_file ctx source;
  List.sort Finding.compare ctx.findings

(* ------------------------------------------------------------ discovery *)

let discover ?(config = Config.empty) ~root () =
  let acc = ref [] in
  let rec walk rel abs =
    Array.iter
      (fun name ->
        if String.length name > 0 && name.[0] <> '.' && name <> "_build"
        then begin
          let rel = rel ^ "/" ^ name and abs = Filename.concat abs name in
          if Sys.is_directory abs then walk rel abs
          else if
            Filename.check_suffix name ".ml"
            || Filename.check_suffix name ".mli"
          then acc := rel :: !acc
        end)
      (Sys.readdir abs)
  in
  List.iter
    (fun dir ->
      let abs = Filename.concat root dir in
      if Sys.file_exists abs && Sys.is_directory abs then walk dir abs)
    scan_dirs;
  List.filter
    (fun file -> not (Config.excluded config ~file))
    (List.sort String.compare !acc)

let check_tree ?(config = Config.empty) ~root paths =
  let paths = match paths with [] -> discover ~config ~root () | ps -> ps in
  List.sort Finding.compare
    (List.concat_map (fun p -> check_file ~config ~root p) paths)
