type severity = Error | Warn

let severity_to_string = function Error -> "error" | Warn -> "warn"

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  severity : severity;
  message : string;
  hint : string;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let to_string t =
  let hint = if t.hint = "" then "" else Printf.sprintf " (fix: %s)" t.hint in
  Printf.sprintf "%s:%d:%d: %s %s: %s%s" t.file t.line t.col
    (severity_to_string t.severity)
    t.rule t.message hint

let to_json t =
  Gc_obs.Json.Obj
    [
      ("file", Gc_obs.Json.String t.file);
      ("line", Gc_obs.Json.Int t.line);
      ("col", Gc_obs.Json.Int t.col);
      ("severity", Gc_obs.Json.String (severity_to_string t.severity));
      ("rule", Gc_obs.Json.String t.rule);
      ("message", Gc_obs.Json.String t.message);
      ("hint", Gc_obs.Json.String t.hint);
    ]
