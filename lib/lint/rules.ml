type t = {
  id : string;
  severity : Finding.severity;
  synopsis : string;
  rationale : string;
  example : string;
  fix : string;
  scope_doc : string;
}

let all =
  [
    {
      id = "spawn-outside-pool";
      severity = Finding.Error;
      synopsis = "raw Domain.spawn/Thread.create outside the supervised runtime";
      rationale =
        "Every concurrent task must run under Gc_exec.Pool: the pool owns \
         deadlines, Transient retry, cooperative cancellation, and graceful \
         drain.  A raw domain or thread is invisible to the supervisor — it \
         cannot be cancelled, retried, or drained, and a wedged one hangs \
         the process.";
      example = "let h = Domain.spawn worker";
      fix = "run the task through Gc_exec.Pool.run (lib/exec owns spawning)";
      scope_doc = "everywhere except lib/exec/";
    };
    {
      id = "swallowed-cancellation";
      severity = Finding.Error;
      synopsis = "catch-all exception handler that cannot re-raise cancellation";
      rationale =
        "Cooperative cancellation travels as the Cancel.Cancelled exception \
         (and retryable faults as Pool.Transient).  A `with _ ->` or \
         `with e ->` handler that does not re-raise swallows the \
         cancellation signal, so a deadline or drain request silently never \
         lands and the supervisor must abandon the task instead.";
      example = "try work () with _ -> default";
      fix =
        "narrow the pattern, or re-raise: `| (Cancel.Cancelled _ | \
         Pool.Transient _) as e -> raise e` before the catch-all";
      scope_doc = "lib/ only";
    };
    {
      id = "exit-contract";
      severity = Finding.Error;
      synopsis = "failwith/exit/assert false in bin/ outside cli_common.ml";
      rationale =
        "The gc* binaries share one exit-code contract (0 ok / 1 runtime / \
         2 usage / 3 model violation / 130 interrupted), enforced by \
         Cli_common.eval.  A stray failwith, exit, or assert false picks \
         its own process status and breaks scripts that drive the tools.  \
         `exit (Cli_common.eval ...)` at the entry point is the sanctioned \
         form and is not flagged.";
      example = "let () = failwith \"bad flag\"";
      fix = "raise through Cli_common.fail_usage/fail_runtime instead";
      scope_doc = "bin/ only, except bin/cli_common.ml";
    };
    {
      id = "nondeterministic-rng";
      severity = Finding.Error;
      synopsis = "Stdlib.Random instead of the deterministic Gc_trace.Rng";
      rationale =
        "Runs must be replayable: traces, adversaries, and replicates all \
         derive from seeded Gc_trace.Rng streams (splitmix64, splittable \
         per domain).  Stdlib.Random is a single global mutable state — \
         domain-dependent, seed-hostile, and unreproducible across runs.";
      example = "let coin () = Random.bool ()";
      fix = "thread a seeded Gc_trace.Rng.t through the call site";
      scope_doc = "everywhere";
    };
    {
      id = "raw-artifact-write";
      severity = Finding.Error;
      synopsis = "direct open_out/Out_channel file creation outside Export";
      rationale =
        "Artifacts must never be observable half-written: \
         Gc_obs.Export.write_string_atomic goes through a unique temp \
         file, fsync, and rename, so a crash or full disk cannot leave a \
         truncated file under a final name.  A direct open_out skips all \
         of that.";
      example = "let oc = open_out \"manifest.json\"";
      fix = "write through Gc_obs.Export (write_string/write_json are atomic)";
      scope_doc = "everywhere except lib/obs/export.ml";
    };
    {
      id = "unsafe-deser";
      severity = Finding.Error;
      synopsis = "Marshal.from_*/Obj.magic on data";
      rationale =
        "Marshal.from_* trusts its input's shape and segfaults on hostile \
         or stale bytes; Obj.magic defeats the type system outright.  \
         Every decoder in the tree (Trace_io, Gc_obs.Json, Frame) is a \
         hardened, positioned-diagnostic parser instead — new formats \
         must follow suit.";
      example = "let t : state = Marshal.from_channel ic";
      fix = "decode through a checked parser (Trace_io / Gc_obs.Json style)";
      scope_doc = "everywhere";
    };
    {
      id = "bare-sleep";
      severity = Finding.Error;
      synopsis = "Unix.sleep/sleepf instead of the EINTR-safe Pool.nap";
      rationale =
        "Unix.sleepf returns early when a signal lands — and the signals \
         this tree cares about (SIGINT/SIGTERM during a supervised drain) \
         arrive in storms.  Pool.nap retries the remaining duration, so \
         monitor ticks and backoff sleeps keep their intended length \
         instead of collapsing into busy-spins.";
      example = "Unix.sleepf 0.05";
      fix = "call Gc_exec.Pool.nap, which retries the remaining time on EINTR";
      scope_doc = "everywhere except lib/exec/pool.ml";
    };
    {
      id = "unbounded-retry";
      severity = Finding.Error;
      synopsis = "recursive retry loop with no attempt bound or backoff";
      rationale =
        "A catch-all handler that re-enters its own recursive binding \
         retries forever with no attempt cap, no backoff, and no jitter — \
         against a down dependency it busy-loops, and a fleet of them \
         synchronizes into a thundering herd.  Gc_resil.Retry is the one \
         sanctioned retry shape: capped exponential backoff, deterministic \
         jitter, and an optional wall-clock budget.";
      example = "let rec dial () = try connect () with _ -> dial ()";
      fix =
        "drive the attempt through Gc_resil.Retry.run (capped attempts, \
         backoff, jitter), or bound the handler with a `when` guard";
      scope_doc = "lib/ and bin/, except lib/resil/ and lib/exec/pool.ml";
    };
    {
      id = "partial-stdlib";
      severity = Finding.Warn;
      synopsis = "partial List.hd/List.nth/Option.get";
      rationale =
        "These raise bare Failure/Invalid_argument with no position and no \
         context, which the exit-code contract then misclassifies as a \
         generic runtime failure.  Total variants (List.nth_opt, pattern \
         matches) force the empty case to say what went wrong.";
      example = "let first = List.hd xs";
      fix = "match on the shape, or use the _opt variant with an explicit error";
      scope_doc = "everywhere";
    };
    {
      id = "wall-clock-timing";
      severity = Finding.Warn;
      synopsis = "Unix.gettimeofday/Sys.time for durations in library code";
      rationale =
        "Wall clocks jump: NTP slews, leap smears, and suspend/resume all \
         move Unix.gettimeofday, so a duration computed from two readings \
         can be negative or wildly long — deadlines misfire and latency \
         metrics lie.  Sys.time measures CPU time, not elapsed time.  \
         Durations, deadlines, and span timestamps in lib/ read the \
         monotonic clock (Gc_prof.Clock.now_s / now_ns) instead; \
         Unix.gettimeofday remains fine for calendar timestamps in \
         artifacts.";
      example = "let t0 = Unix.gettimeofday () in ... ; elapsed t0";
      fix = "read Gc_prof.Clock.now_s (monotonic) for durations and deadlines";
      scope_doc = "lib/ only";
    };
    {
      id = "print-in-lib";
      severity = Finding.Error;
      synopsis = "printing to stdout from library code";
      rationale =
        "Libraries are embedded in the simulator service and in tests \
         whose stdout is golden-checked; a stray print corrupts machine \
         output (CSV, JSON, manifests).  Only the bin/ layer owns stdout; \
         libraries return data or go through the Gc_obs event sinks.";
      example = "print_endline \"done\"";
      fix = "return the data, or emit a Gc_obs event/metric instead";
      scope_doc = "lib/ only";
    };
    {
      id = "hardcoded-endpoint";
      severity = Finding.Warn;
      synopsis = "hardcoded socket path or host:port literal in library code";
      rationale =
        "Where a service listens is deployment policy, not library code: \
         replica sets derive their sockets from a base path \
         (Fleet.replica_socket), clients take endpoint lists from \
         configuration, and the drills place everything under a fresh \
         temp directory.  A string literal naming a .sock path or a \
         host:port pins the library to one topology — it cannot be \
         fleet-deployed, proxied, or drilled without editing source.";
      example = "let addr = Client.Unix_path \"/tmp/gcserved.sock\"";
      fix =
        "take the address from config or a parameter; derive fleet \
         sockets via Fleet.replica_socket";
      scope_doc = "lib/ only";
    };
    {
      id = "fixed-deadline";
      severity = Finding.Warn;
      synopsis = "hardcoded deadline/timeout/budget literal in serving code";
      rationale =
        "Deadlines in the serving layer compose: the effective per-job \
         deadline is min(server deadline, client budget minus queue \
         sojourn), and every constant in that chain must trace back to \
         Server.config so operators can tune it and drills can shrink it.  \
         A numeric literal wired straight into a deadline, timeout, or \
         budget_ms field or argument is invisible to configuration — it \
         silently wins (or loses) against the propagated budget.  The one \
         sanctioned home for such literals is [default_config], where they \
         are the documented defaults.";
      example = "Pool.run pool { cfg with deadline = 5.0 } job";
      fix =
        "derive the value from Server.config (or a caller-supplied \
         budget); literals belong in default_config only";
      scope_doc = "lib/serve/ only";
    };
  ]

let ids = List.map (fun r -> r.id) all
let find id = List.find_opt (fun r -> r.id = id) all
let hint id = match find id with Some r -> r.fix | None -> ""
let severity id =
  match find id with Some r -> r.severity | None -> Finding.Error

let under dir file =
  String.length file >= String.length dir
  && String.sub file 0 (String.length dir) = dir

let applies ~id ~file =
  match id with
  | "spawn-outside-pool" -> not (under "lib/exec/" file)
  | "swallowed-cancellation" -> under "lib/" file
  | "exit-contract" -> under "bin/" file && file <> "bin/cli_common.ml"
  | "raw-artifact-write" -> file <> "lib/obs/export.ml"
  | "bare-sleep" -> file <> "lib/exec/pool.ml"
  | "unbounded-retry" ->
      (under "lib/" file || under "bin/" file)
      && (not (under "lib/resil/" file))
      && file <> "lib/exec/pool.ml"
  | "print-in-lib" -> under "lib/" file
  | "wall-clock-timing" -> under "lib/" file
  | "fixed-deadline" -> under "lib/serve/" file
  | "hardcoded-endpoint" -> under "lib/" file
  | "nondeterministic-rng" | "unsafe-deser" | "partial-stdlib" -> true
  | _ -> true

let to_json r =
  Gc_obs.Json.Obj
    [
      ("id", Gc_obs.Json.String r.id);
      ("severity", Gc_obs.Json.String (Finding.severity_to_string r.severity));
      ("synopsis", Gc_obs.Json.String r.synopsis);
      ("fix", Gc_obs.Json.String r.fix);
      ("scope", Gc_obs.Json.String r.scope_doc);
    ]
