(** The rule catalog.

    Every rule has a stable id (the suppression and config vocabulary), a
    severity, a one-line synopsis, a rationale grounded in the repo's own
    contracts, a violating example, and a one-line fix hint.  Detection
    logic lives in {!Engine}; this module is the metadata the [rules] and
    [explain] subcommands (and [doc/LINT.md]) present. *)

type t = {
  id : string;
  severity : Finding.severity;
  synopsis : string;  (** One line, shown by [gclint rules]. *)
  rationale : string;  (** Why the convention exists, for [explain]. *)
  example : string;  (** A violating snippet. *)
  fix : string;  (** One-line fix hint, echoed in findings. *)
  scope_doc : string;  (** Human-readable scope description. *)
}

val all : t list
(** In catalog order (the order [rules] prints). *)

val ids : string list

val find : string -> t option

val applies : id:string -> file:string -> bool
(** Whether rule [id] is active for the root-relative [file]: path scoping
    (e.g. [exit-contract] is [bin/]-only) plus the per-rule exempt files
    that implement the convention itself (e.g. [lib/obs/export.ml] for
    [raw-artifact-write]). *)

val hint : string -> string
(** Fix hint for a rule id; [""] for unknown ids (engine diagnostics). *)

val severity : string -> Finding.severity
(** Severity for a rule id; [Error] for unknown ids. *)

val to_json : t -> Gc_obs.Json.t
