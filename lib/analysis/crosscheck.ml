type contradiction = {
  program : string;
  engine : string;
  config : Cache_model.config;
  point : int;
  item : int;
  verdict : Report.verdict;
  hits : int;
  misses : int;
}

type summary = {
  programs : int;
  runs : int;
  points_checked : int;
  always_claims : int;
  contradictions : contradiction list;
}

let dynamic_policy (cfg : Cache_model.config) =
  let make_way_policy ~k =
    match cfg.policy with
    | Cache_model.Lru -> Gc_cache.Lru.create ~k
    | Cache_model.Fifo -> Gc_cache.Fifo.create ~k
    | Cache_model.Plru -> Gc_cache.Plru.create ~k
  in
  Gc_cache.Set_assoc.create ~sets:cfg.sets ~ways:cfg.ways ~make_way_policy

let observe ?max_paths (cfg : Cache_model.config) (p : Program.t) =
  let counts = Array.make p.Program.points (0, 0) in
  List.iter
    (fun path ->
      let sim =
        Gc_cache.Simulator.create (dynamic_policy cfg) p.Program.blocks
      in
      Array.iter
        (fun (point, item) ->
          let hits, misses = counts.(point) in
          match Gc_cache.Simulator.access sim item with
          | Gc_cache.Policy.Hit _ -> counts.(point) <- (hits + 1, misses)
          | Gc_cache.Policy.Miss _ -> counts.(point) <- (hits, misses + 1))
        path)
    (Program.executions ?max_paths p);
  counts

let check_run ~observed (run : Report.run) =
  Array.to_list run.Report.points
  |> List.filter_map (fun (pt : Report.point) ->
         let hits, misses = observed.(pt.Report.point) in
         let contradicted =
           match pt.Report.verdict with
           | Report.Always_hit -> misses > 0
           | Report.Always_miss -> hits > 0
           | Report.Unknown -> false
         in
         if contradicted then
           Some
             {
               program = run.Report.program;
               engine = run.Report.engine;
               config = run.Report.config;
               point = pt.Report.point;
               item = pt.Report.item;
               verdict = pt.Report.verdict;
               hits;
               misses;
             }
         else None)

let check ?(unsound = false) ?max_paths programs configs =
  let runs = ref 0 and points_checked = ref 0 and always = ref 0 in
  let contradictions = ref [] in
  List.iter
    (fun (name, program) ->
      List.iter
        (fun (cfg : Cache_model.config) ->
          let observed = observe ?max_paths cfg program in
          let engines =
            if cfg.policy = Cache_model.Lru then
              [ Engine.Exact; (if unsound then Engine.Age_unsound else Engine.Age) ]
            else [ Engine.Exact ]
          in
          List.iter
            (fun kind ->
              let run = Engine.run kind cfg ~name program in
              incr runs;
              points_checked := !points_checked + Array.length run.Report.points;
              Array.iter
                (fun (pt : Report.point) ->
                  if pt.Report.verdict <> Report.Unknown then incr always)
                run.Report.points;
              contradictions := !contradictions @ check_run ~observed run)
            engines)
        configs)
    programs;
  {
    programs = List.length programs;
    runs = !runs;
    points_checked = !points_checked;
    always_claims = !always;
    contradictions = !contradictions;
  }

let contradiction_to_json c =
  let open Gc_obs.Json in
  Obj
    [
      ("program", String c.program);
      ("engine", String c.engine);
      ("policy", String (Cache_model.policy_name c.config.policy));
      ("sets", Int c.config.sets);
      ("ways", Int c.config.ways);
      ("point", Int c.point);
      ("item", Int c.item);
      ("verdict", String (Report.verdict_name c.verdict));
      ("hits", Int c.hits);
      ("misses", Int c.misses);
    ]

let summary_to_json s =
  let open Gc_obs.Json in
  Obj
    [
      ("schema", String "gcanalyze-check/v1");
      ("programs", Int s.programs);
      ("runs", Int s.runs);
      ("points_checked", Int s.points_checked);
      ("always_claims", Int s.always_claims);
      ("contradictions", Array (List.map contradiction_to_json s.contradictions));
    ]

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>%d programs, %d runs, %d points (%d always-* claims), %d \
     contradictions"
    s.programs s.runs s.points_checked s.always_claims
    (List.length s.contradictions);
  List.iter
    (fun c ->
      Format.fprintf fmt
        "@,CONTRADICTION %s/%s %s sets=%d ways=%d @@%d item=%d claimed %s, \
         observed %d hits / %d misses"
        c.program c.engine
        (Cache_model.policy_name c.config.policy)
        c.config.sets c.config.ways c.point c.item
        (Report.verdict_name c.verdict)
        c.hits c.misses)
    s.contradictions;
  Format.fprintf fmt "@]"
