(** The access-program IR the static analyses run over.

    A program is structured control flow over item accesses: straight-line
    runs, loops with a {e known, positive} iteration count, and two-armed
    branches whose direction is unknown to the analysis.  Each [Access]
    node is a distinct {e program point}; the analyses classify program
    points ([Always_hit] / [Always_miss] / [Unknown]), not dynamic
    accesses — one point inside a loop stands for every iteration's
    execution of it.

    Build programs with the {!section-spec} combinators and {!make}, which
    numbers the points in pre-order and validates the shape. *)

type stmt =
  | Access of { point : int; item : int }
  | Loop of { count : int; body : stmt list }
      (** Executes [body] exactly [count >= 1] times. *)
  | Branch of { then_ : stmt list; else_ : stmt list }
      (** Either arm may run; the analysis must cover both. *)

type t = private {
  body : stmt list;
  blocks : Gc_trace.Block_map.t;
  points : int;  (** Number of [Access] points; ids are [0 .. points-1]. *)
}

(** {2:spec Building programs} *)

type spec

val access : int -> spec
(** Request item [i >= 0]. *)

val loop : int -> spec list -> spec
(** [loop n body] with [n >= 1] iterations. *)

val branch : spec list -> spec list -> spec

val make : Gc_trace.Block_map.t -> spec list -> t
(** Assigns point ids in pre-order.  Raises [Invalid_argument] on a
    negative item, a non-positive loop count, or an unrolled length above
    {!max_unrolled}. *)

val max_unrolled : int
(** Cap on {!unrolled_length}, so a malformed loop nest cannot wedge the
    interpreters. *)

(** {2 Observing programs} *)

val point_items : t -> int array
(** [point_items t].(p) is the item accessed at point [p]. *)

val unrolled_length : t -> int
(** Dynamic accesses on the longest path (loops multiplied out, branches
    counting their longer arm). *)

val executions : ?max_paths:int -> t -> (int * int) array list
(** Every concrete execution as a [(point, item)] sequence, one per
    resolution of the branch outcomes, in deterministic (then-first DFS)
    order.  At most [max_paths] (default 64) are returned; programs whose
    resolution space is larger are truncated, which keeps downstream
    cross-validation a sound {e partial} audit. *)

val truncated : ?max_paths:int -> t -> bool
(** Whether {!executions} with the same cap drops some resolutions. *)

val pp : Format.formatter -> t -> unit
(** Structured listing, one point per line ([@3 access 17]). *)
