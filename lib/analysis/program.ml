type stmt =
  | Access of { point : int; item : int }
  | Loop of { count : int; body : stmt list }
  | Branch of { then_ : stmt list; else_ : stmt list }

type t = {
  body : stmt list;
  blocks : Gc_trace.Block_map.t;
  points : int;
}

type spec =
  | S_access of int
  | S_loop of int * spec list
  | S_branch of spec list * spec list

let access i = S_access i
let loop n body = S_loop (n, body)
let branch then_ else_ = S_branch (then_, else_)

let max_unrolled = 10_000_000

let make blocks specs =
  let next = ref 0 in
  let rec number = function
    | S_access item ->
        if item < 0 then
          invalid_arg "Gc_analysis.Program.make: negative item";
        let point = !next in
        incr next;
        Access { point; item }
    | S_loop (count, body) ->
        if count < 1 then
          invalid_arg "Gc_analysis.Program.make: loop count must be >= 1";
        Loop { count; body = List.map number body }
    | S_branch (then_, else_) ->
        (* Bind in order: record fields evaluate right to left. *)
        let then_ = List.map number then_ in
        let else_ = List.map number else_ in
        Branch { then_; else_ }
  in
  let body = List.map number specs in
  (* Saturating unrolled length, checked against the cap. *)
  let sat a b = if a > max_unrolled - b then max_unrolled + 1 else a + b in
  let rec len_of acc = function
    | Access _ -> sat acc 1
    | Loop { count; body } ->
        let one = List.fold_left len_of 0 body in
        if one > 0 && count > max_unrolled / one then max_unrolled + 1
        else sat acc (count * one)
    | Branch { then_; else_ } ->
        sat acc
          (max (List.fold_left len_of 0 then_) (List.fold_left len_of 0 else_))
  in
  if List.fold_left len_of 0 body > max_unrolled then
    invalid_arg "Gc_analysis.Program.make: unrolled length exceeds cap";
  { body; blocks; points = !next }

let point_items t =
  let items = Array.make t.points (-1) in
  let rec go = function
    | Access { point; item } -> items.(point) <- item
    | Loop { body; _ } -> List.iter go body
    | Branch { then_; else_ } ->
        List.iter go then_;
        List.iter go else_
  in
  List.iter go t.body;
  items

let unrolled_length t =
  let rec len_of acc = function
    | Access _ -> acc + 1
    | Loop { count; body } -> acc + (count * List.fold_left len_of 0 body)
    | Branch { then_; else_ } ->
        acc
        + max (List.fold_left len_of 0 then_) (List.fold_left len_of 0 else_)
  in
  List.fold_left len_of 0 t.body

(* Enumerate branch resolutions by DFS, then-arm first, keeping at most
   [max_paths] partial prefixes alive.  Each prefix is a reversed
   [(point, item)] list; deterministic truncation keeps the audit
   reproducible. *)
let executions_with_flag ?(max_paths = 64) t =
  let truncated = ref false in
  let cap prefixes =
    let rec take n = function
      | [] -> []
      | _ when n = 0 ->
          truncated := true;
          []
      | x :: rest -> x :: take (n - 1) rest
    in
    take max_paths prefixes
  in
  let rec step prefixes = function
    | Access { point; item } ->
        List.map (fun pre -> (point, item) :: pre) prefixes
    | Loop { count; body } ->
        let cur = ref prefixes in
        for _ = 1 to count do
          cur := run !cur body
        done;
        !cur
    | Branch { then_; else_ } -> cap (run prefixes then_ @ run prefixes else_)
  and run prefixes stmts = List.fold_left step prefixes stmts in
  let paths = run [ [] ] t.body in
  (List.map (fun pre -> Array.of_list (List.rev pre)) paths, !truncated)

let executions ?max_paths t = fst (executions_with_flag ?max_paths t)
let truncated ?max_paths t = snd (executions_with_flag ?max_paths t)

let pp fmt t =
  let open Format in
  let rec stmt f = function
    | Access { point; item } -> fprintf f "@@%d access %d" point item
    | Loop { count; body } ->
        fprintf f "@[<v 2>loop %d {@,%a@]@,}" count stmts body
    | Branch { then_; else_ } ->
        fprintf f "@[<v 2>branch {@,%a@]@,@[<v 2>} else {@,%a@]@,}" stmts then_
          stmts else_
  and stmts f body =
    pp_print_list ~pp_sep:pp_print_cut stmt f body
  in
  fprintf fmt "@[<v>%a@]" stmts t.body
