(** Pure-functional reference cache states for the exact analysis.

    The collecting semantics ({!Collecting}) tracks {e sets of} concrete
    cache states, so states must be immutable values with structural
    equality acting as state identity.  This module provides that model
    for the three analyzed policies, with semantics matching the imperative
    [lib/cache] implementations access for access (a property the tests
    check differentially).

    LRU and FIFO states are recency/insertion-ordered lists, which are
    canonical by construction.  Tree-PLRU keeps the concrete slot and bit
    arrays — two fills of the same items in different ways genuinely are
    different hardware states, and the exact analysis must keep them
    apart. *)

type policy = Lru | Fifo | Plru

val policy_name : policy -> string
val policy_of_name : string -> policy option

type config = { policy : policy; sets : int; ways : int }

val validate : config -> unit
(** Raises [Invalid_argument] unless [sets >= 1] and [ways >= 1]. *)

type set_state =
  | Lru_s of int list  (** MRU first. *)
  | Fifo_s of int list  (** Newest first; the victim is the last element. *)
  | Plru_s of { slots : int array; bits : int array }
      (** Tree padded to the next power of two; empty ways hold [-1]. *)

type state = set_state array
(** One {!set_state} per set, indexed by [item mod sets]. *)

val init : config -> state
(** The cold (empty) cache. *)

val set_of : config -> int -> int

val mem : config -> state -> int -> bool

val access : config -> state -> int -> bool * state
(** [access cfg st item] is [(hit, st')].  [st] is not mutated. *)

val items : set_state -> int list
(** Resident items of one set, in an unspecified order. *)
