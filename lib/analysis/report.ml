type verdict = Always_hit | Always_miss | Unknown

let verdict_name = function
  | Always_hit -> "always-hit"
  | Always_miss -> "always-miss"
  | Unknown -> "unknown"

type point = { point : int; item : int; verdict : verdict }

type run = {
  program : string;
  engine : string;
  config : Cache_model.config;
  points : point array;
}

type summary = {
  points : int;
  always_hit : int;
  always_miss : int;
  unknown : int;
}

let summarize (run : run) =
  let count v =
    Array.fold_left
      (fun n p -> if p.verdict = v then n + 1 else n)
      0 run.points
  in
  {
    points = Array.length run.points;
    always_hit = count Always_hit;
    always_miss = count Always_miss;
    unknown = count Unknown;
  }

let run_to_json run =
  let open Gc_obs.Json in
  let s = summarize run in
  Obj
    [
      ("program", String run.program);
      ("engine", String run.engine);
      ("policy", String (Cache_model.policy_name run.config.policy));
      ("sets", Int run.config.sets);
      ("ways", Int run.config.ways);
      ( "summary",
        Obj
          [
            ("points", Int s.points);
            ("always_hit", Int s.always_hit);
            ("always_miss", Int s.always_miss);
            ("unknown", Int s.unknown);
          ] );
      ( "points",
        Array
          (Array.to_list run.points
          |> List.map (fun p ->
                 Obj
                   [
                     ("point", Int p.point);
                     ("item", Int p.item);
                     ("verdict", String (verdict_name p.verdict));
                   ])) );
    ]

let doc_to_json runs =
  Gc_obs.Json.Obj
    [
      ("schema", Gc_obs.Json.String "gcanalyze/v1");
      ("runs", Gc_obs.Json.Array (List.map run_to_json runs));
    ]

let pp_run fmt run =
  let s = summarize run in
  Format.fprintf fmt "@[<v>%s %s %s sets=%d ways=%d@," run.program run.engine
    (Cache_model.policy_name run.config.policy)
    run.config.sets run.config.ways;
  Array.iter
    (fun p ->
      Format.fprintf fmt "  @@%d item=%d %s@," p.point p.item
        (verdict_name p.verdict))
    run.points;
  Format.fprintf fmt "  %d points: %d always-hit, %d always-miss, %d unknown@]"
    s.points s.always_hit s.always_miss s.unknown
