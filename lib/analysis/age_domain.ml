module IntMap = Map.Make (Int)

type t = { must : int IntMap.t; may : int IntMap.t }

let init = { must = IntMap.empty; may = IntMap.empty }

let equal d1 d2 =
  IntMap.equal Int.equal d1.must d2.must
  && IntMap.equal Int.equal d1.may d2.may

(* d1 at least as precise as d2: d2's must guarantees are a subset (with
   looser bounds), d2's may possibilities are a superset (with tighter-
   or-equal lower bounds from below, i.e. smaller). *)
let leq d1 d2 =
  IntMap.for_all
    (fun y ub2 ->
      match IntMap.find_opt y d1.must with
      | Some ub1 -> ub1 <= ub2
      | None -> false)
    d2.must
  && IntMap.for_all
       (fun y lb1 ->
         match IntMap.find_opt y d2.may with
         | Some lb2 -> lb2 <= lb1
         | None -> false)
       d1.may

let join d1 d2 =
  {
    must =
      IntMap.merge
        (fun _ a b ->
          match (a, b) with Some x, Some y -> Some (max x y) | _ -> None)
        d1.must d2.must;
    may =
      IntMap.union (fun _ x y -> Some (min x y)) d1.may d2.may;
  }

let widen old next =
  {
    must =
      IntMap.merge
        (fun _ a b ->
          match (a, b) with
          | Some x, Some y when y <= x -> Some x
          | _ -> None)
        old.must next.must;
    may =
      IntMap.merge
        (fun _ a b ->
          match (a, b) with
          | Some x, Some y -> Some (if y < x then 0 else x)
          | Some x, None -> Some x
          | None, Some _ -> Some 0
          | None, None -> None)
        old.may next.may;
  }

let transfer ?(unsound = false) (cfg : Cache_model.config) d x =
  let s = Cache_model.set_of cfg x in
  let same_set y = Cache_model.set_of cfg y = s in
  let must =
    if unsound then IntMap.add x 0 d.must
    else
      (* Items provably younger than x age by one; x's own upper bound
         (ways if absent) caps how deep the reshuffle can reach. *)
      let ub_x =
        match IntMap.find_opt x d.must with
        | Some a -> a
        | None -> cfg.ways
      in
      IntMap.fold
        (fun y a acc ->
          if y = x then acc (* already x |-> 0 *)
          else if not (same_set y) then IntMap.add y a acc
          else if a < ub_x then
            if a + 1 >= cfg.ways then acc else IntMap.add y (a + 1) acc
          else IntMap.add y a acc)
        d.must (IntMap.singleton x 0)
  in
  let may =
    (* Lower bounds only grow on a definite miss, when every concrete
       state demotes every resident of the set. *)
    let definite_miss = not (IntMap.mem x d.may) in
    IntMap.fold
      (fun y a acc ->
        if y = x then acc (* already x |-> 0 *)
        else if not (same_set y) then IntMap.add y a acc
        else if definite_miss then
          if a + 1 >= cfg.ways then acc else IntMap.add y (a + 1) acc
        else IntMap.add y a acc)
      d.may (IntMap.singleton x 0)
  in
  { must; may }

let classify d x =
  if IntMap.mem x d.must then Report.Always_hit
  else if not (IntMap.mem x d.may) then Report.Always_miss
  else Report.Unknown

let must_age d x = IntMap.find_opt x d.must
let may_age d x = IntMap.find_opt x d.may

let concretizes (cfg : Cache_model.config) d (st : Cache_model.state) =
  let age_of y =
    match st.(Cache_model.set_of cfg y) with
    | Cache_model.Lru_s xs ->
        let rec idx i = function
          | [] -> None
          | z :: _ when z = y -> Some i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 xs
    | _ -> None
  in
  let lru_only =
    Array.for_all
      (function Cache_model.Lru_s _ -> true | _ -> false)
      st
  in
  lru_only
  && IntMap.for_all
       (fun y ub -> match age_of y with Some a -> a <= ub | None -> false)
       d.must
  && Array.for_all
       (fun set_st ->
         List.for_all
           (fun y ->
             match (IntMap.find_opt y d.may, age_of y) with
             | Some lb, Some a -> lb <= a
             | _, _ -> false)
           (Cache_model.items set_st))
       st
