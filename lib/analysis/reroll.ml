(* Greedy exact-repeat detection.  At position [i], for each candidate
   period [p], the run of positions matching [p] places earlier is
   extended as far as it goes; [r = 1 + run/p] full repetitions cover
   [r*p] items.  The longest cover with [r >= 2] wins (smallest period on
   ties, since shorter periods are found first and strict improvement is
   required); the body is re-rolled recursively when long enough to hide
   further structure. *)

let rec reroll_range ~max_period (items : int array) lo hi =
  let specs = ref [] in
  let push s = specs := s :: !specs in
  let i = ref lo in
  while !i < hi do
    let best_p = ref 0 and best_cover = ref 0 in
    let p_limit = min max_period ((hi - !i) / 2) in
    for p = 1 to p_limit do
      (* Longest run of positions equal to the position one period back. *)
      let j = ref (!i + p) in
      while !j < hi && items.(!j) = items.(!j - p) do
        incr j
      done;
      let repeats = 1 + ((!j - !i - p) / p) in
      let cover = repeats * p in
      if repeats >= 2 && cover > !best_cover then begin
        best_p := p;
        best_cover := cover
      end
    done;
    if !best_p > 0 then begin
      let p = !best_p in
      let body =
        if p >= 8 then reroll_range ~max_period:(p / 2) items !i (!i + p)
        else
          List.init p (fun idx -> Program.access items.(!i + idx))
      in
      push (Program.loop (!best_cover / p) body);
      i := !i + !best_cover
    end
    else begin
      push (Program.access items.(!i));
      incr i
    end
  done;
  List.rev !specs

let of_items ?(max_period = 256) blocks items =
  Program.make blocks
    (reroll_range ~max_period items 0 (Array.length items))

let of_trace ?max_period (trace : Gc_trace.Trace.t) =
  of_items ?max_period trace.Gc_trace.Trace.blocks
    trace.Gc_trace.Trace.requests

let compression p =
  let rec size acc = function
    | Program.Access _ -> acc + 1
    | Program.Loop { body; _ } -> 1 + List.fold_left size acc body
    | Program.Branch { then_; else_ } ->
        1 + List.fold_left size (List.fold_left size acc then_) else_
  in
  let static = List.fold_left size 0 p.Program.body in
  if static = 0 then 1.0
  else float_of_int (Program.unrolled_length p) /. float_of_int static
