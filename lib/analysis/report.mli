(** Verdicts and the [gcanalyze] report schema.

    Every engine classifies each program point with a {!verdict}; a {!run}
    bundles the verdicts of one engine over one program under one cache
    configuration.  The JSON encoding is fully deterministic (no
    timestamps, no environment), so a report doubles as a golden fixture:
    byte-identical output is the regression contract. *)

type verdict = Always_hit | Always_miss | Unknown

val verdict_name : verdict -> string
(** ["always-hit"], ["always-miss"], ["unknown"]. *)

type point = { point : int; item : int; verdict : verdict }

type run = {
  program : string;
  engine : string;  (** ["exact"], ["age"], or ["age-unsound"]. *)
  config : Cache_model.config;
  points : point array;  (** Indexed by program point. *)
}

type summary = { points : int; always_hit : int; always_miss : int; unknown : int }

val summarize : run -> summary

val run_to_json : run -> Gc_obs.Json.t
val doc_to_json : run list -> Gc_obs.Json.t
(** [{"schema": "gcanalyze/v1", "runs": [...]}]. *)

val pp_run : Format.formatter -> run -> unit
(** Human-readable per-point listing plus a summary line. *)
