type kind = Exact | Age | Age_unsound

let kind_name = function
  | Exact -> "exact"
  | Age -> "age"
  | Age_unsound -> "age-unsound"

let kind_of_name = function
  | "exact" -> Some Exact
  | "age" -> Some Age
  | "age-unsound" -> Some Age_unsound
  | _ -> None

let run kind (cfg : Cache_model.config) ~name program =
  let points =
    match kind with
    | Exact -> Collecting.run_exact cfg program
    | Age -> Abstract.run_age cfg program
    | Age_unsound -> Abstract.run_age ~unsound:true cfg program
  in
  { Report.program = name; engine = kind_name kind; config = cfg; points }

let standard_geometries = [ (1, 1); (1, 2); (1, 4); (2, 2) ]

let standard_configs =
  List.concat_map
    (fun policy ->
      List.map
        (fun (sets, ways) -> { Cache_model.policy; sets; ways })
        standard_geometries)
    [ Cache_model.Lru; Cache_model.Fifo; Cache_model.Plru ]

let grid ~name program =
  List.map (fun cfg -> run Exact cfg ~name program) standard_configs
  @ List.filter_map
      (fun cfg ->
        if cfg.Cache_model.policy = Cache_model.Lru then
          Some (run Age cfg ~name program)
        else None)
      standard_configs
