type policy = Lru | Fifo | Plru

let policy_name = function Lru -> "lru" | Fifo -> "fifo" | Plru -> "plru"

let policy_of_name = function
  | "lru" -> Some Lru
  | "fifo" -> Some Fifo
  | "plru" -> Some Plru
  | _ -> None

type config = { policy : policy; sets : int; ways : int }

let validate cfg =
  if cfg.sets < 1 then
    invalid_arg "Gc_analysis.Cache_model: sets must be >= 1";
  if cfg.ways < 1 then
    invalid_arg "Gc_analysis.Cache_model: ways must be >= 1"

type set_state =
  | Lru_s of int list
  | Fifo_s of int list
  | Plru_s of { slots : int array; bits : int array }

type state = set_state array

let rec next_pow2 n acc = if acc >= n then acc else next_pow2 n (acc * 2)

let empty_set cfg =
  match cfg.policy with
  | Lru -> Lru_s []
  | Fifo -> Fifo_s []
  | Plru ->
      let padded = next_pow2 cfg.ways 1 in
      Plru_s
        {
          slots = Array.make padded (-1);
          bits = Array.make (max 0 (padded - 1)) 0;
        }

let init cfg =
  validate cfg;
  Array.init cfg.sets (fun _ -> empty_set cfg)

let set_of cfg item = item mod cfg.sets

let mem_set st item =
  match st with
  | Lru_s xs | Fifo_s xs -> List.mem item xs
  | Plru_s { slots; _ } -> Array.exists (fun x -> x = item) slots

let mem cfg st item = mem_set st.(set_of cfg item) item

(* Drop the last element; lists here never exceed [ways], so this is the
   eviction step for both recency (LRU) and insertion (FIFO) orders. *)
let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: rest -> x :: drop_last rest

(* Mirrors lib/cache/plru.ml: bits on the root path point away from the
   touched leaf; the victim walk only turns toward subtrees holding at
   least one real (non-phantom) way. *)
let plru_touch bits padded slot =
  let node = ref (padded - 1 + slot) in
  while !node > 0 do
    let parent = (!node - 1) / 2 in
    bits.(parent) <- (if !node = (2 * parent) + 1 then 1 else 0);
    node := parent
  done

let plru_victim bits padded ways =
  let rec go node low high =
    if node >= padded - 1 then node - (padded - 1)
    else
      let mid = (low + high) / 2 in
      if bits.(node) = 1 && mid + 1 < ways then go ((2 * node) + 2) (mid + 1) high
      else go ((2 * node) + 1) low mid
  in
  go 0 0 (padded - 1)

let access_set cfg st item =
  match st with
  | Lru_s xs ->
      if List.mem item xs then
        (true, Lru_s (item :: List.filter (fun x -> x <> item) xs))
      else
        let xs = if List.length xs >= cfg.ways then drop_last xs else xs in
        (false, Lru_s (item :: xs))
  | Fifo_s xs ->
      if List.mem item xs then (true, st)
      else
        let xs = if List.length xs >= cfg.ways then drop_last xs else xs in
        (false, Fifo_s (item :: xs))
  | Plru_s { slots; bits } ->
      let padded = Array.length slots in
      let found = ref (-1) in
      Array.iteri (fun i x -> if x = item then found := i) slots;
      if !found >= 0 then begin
        let bits = Array.copy bits in
        plru_touch bits padded !found;
        (true, Plru_s { slots; bits })
      end
      else begin
        let slots = Array.copy slots and bits = Array.copy bits in
        let count =
          Array.fold_left (fun n x -> if x >= 0 then n + 1 else n) 0 slots
        in
        let slot =
          if count >= cfg.ways then plru_victim bits padded cfg.ways
          else begin
            let free = ref 0 in
            while slots.(!free) >= 0 do
              incr free
            done;
            !free
          end
        in
        slots.(slot) <- item;
        plru_touch bits padded slot;
        (false, Plru_s { slots; bits })
      end

let access cfg st item =
  let s = set_of cfg item in
  let hit, st_s = access_set cfg st.(s) item in
  if hit && st_s == st.(s) then (hit, st)
  else
    let st' = Array.copy st in
    st'.(s) <- st_s;
    (hit, st')

let items = function
  | Lru_s xs | Fifo_s xs -> xs
  | Plru_s { slots; _ } ->
      Array.to_list slots |> List.filter (fun x -> x >= 0)
