let default_max_states = 65536

let run_exact ?(max_states = default_max_states) (cfg : Cache_model.config)
    (p : Program.t) =
  Cache_model.validate cfg;
  let items = Program.point_items p in
  let all_hit = Array.make p.Program.points true in
  let all_miss = Array.make p.Program.points true in
  (* Structural dedup preserving first-occurrence order, so traversal
     stays deterministic. *)
  let dedup states =
    let tbl = Hashtbl.create 64 in
    List.filter
      (fun st ->
        if Hashtbl.mem tbl st then false
        else begin
          Hashtbl.add tbl st ();
          true
        end)
      states
  in
  let check_cap states =
    if List.length states > max_states then
      failwith
        (Printf.sprintf
           "Gc_analysis.Collecting: reachable-state set exceeds %d" max_states);
    states
  in
  let rec exec states stmts = List.fold_left step states stmts
  and step states = function
    | Program.Access { point; item } ->
        check_cap
          (dedup
             (List.map
                (fun st ->
                  let hit, st' = Cache_model.access cfg st item in
                  if hit then all_miss.(point) <- false
                  else all_hit.(point) <- false;
                  st')
                states))
    | Program.Loop { count; body } ->
        let cur = ref states in
        for _ = 1 to count do
          cur := exec !cur body
        done;
        !cur
    | Program.Branch { then_; else_ } ->
        check_cap (dedup (exec states then_ @ exec states else_))
  in
  let (_ : Cache_model.state list) =
    exec [ Cache_model.init cfg ] p.Program.body
  in
  Array.init p.Program.points (fun i ->
      let verdict =
        if all_hit.(i) then Report.Always_hit
        else if all_miss.(i) then Report.Always_miss
        else Report.Unknown
      in
      { Report.point = i; item = items.(i); verdict })
