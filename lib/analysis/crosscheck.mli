(** Cross-validation of static verdicts against the dynamic simulator.

    The harness replays every execution path of a program (each branch
    resolution, loops unrolled) through the real [lib/cache] machinery —
    {!Gc_cache.Set_assoc} over the policy's imperative implementation,
    audited by {!Gc_cache.Simulator}'s shadow checker — and tallies
    observed hits and misses per program point.  A {e contradiction} is a
    static [Always_hit] with an observed miss, or [Always_miss] with an
    observed hit: any single one means an engine is unsound, so
    {!check} is wired to a hard-failing exit in [gcanalyze check] and to
    the [@analysis] alias.

    [Unknown] verdicts are unfalsifiable and never contradicted; when path
    enumeration is truncated ({!Program.executions}) the audit is partial
    but still sound — it can only miss contradictions, not invent them. *)

type contradiction = {
  program : string;
  engine : string;
  config : Cache_model.config;
  point : int;
  item : int;
  verdict : Report.verdict;
  hits : int;  (** Observed dynamic hits at the point. *)
  misses : int;
}

type summary = {
  programs : int;
  runs : int;  (** Engine runs checked (program x config x engine). *)
  points_checked : int;
  always_claims : int;  (** [Always_*] verdicts among checked points. *)
  contradictions : contradiction list;
}

val dynamic_policy : Cache_model.config -> Gc_cache.Policy.t
(** The simulator-side twin of a config: {!Gc_cache.Set_assoc} around the
    matching way policy. *)

val observe :
  ?max_paths:int -> Cache_model.config -> Program.t -> (int * int) array
(** Per-point [(hits, misses)] accumulated over every (capped) execution
    path, each replayed through a fresh checked simulator. *)

val check_run :
  observed:(int * int) array -> Report.run -> contradiction list

val check :
  ?unsound:bool ->
  ?max_paths:int ->
  (string * Program.t) list ->
  Cache_model.config list ->
  summary
(** Run the exact engine on every program x config, the age engine on the
    LRU configs, and cross-validate all of it.  [~unsound:true] swaps the
    age engine for its deliberately broken variant — the harness must then
    report contradictions (this is the harness's own self-test). *)

val summary_to_json : summary -> Gc_obs.Json.t

val pp_summary : Format.formatter -> summary -> unit
