let seed = 7

let demo () =
  let open Program in
  make Gc_trace.Block_map.singleton
    [
      access 0;
      access 1;
      loop 3 [ access 0; access 1; access 2 ];
      branch [ access 0 ] [ access 3 ];
      access 0;
    ]

let geometry = lazy (Gc_memhier.Geometry.create ~line_bytes:64 ~row_bytes:512)

let lower (entry : Gc_memhier.Kernels.entry) =
  let geo = Lazy.force geometry in
  let addrs = entry.Gc_memhier.Kernels.generate Gc_memhier.Kernels.Small ~seed in
  let lines = Array.map (Gc_memhier.Geometry.line_of_addr geo) addrs in
  Reroll.of_items (Gc_memhier.Geometry.block_map geo) lines

let programs () =
  ("demo", demo ())
  :: List.map
       (fun e -> (e.Gc_memhier.Kernels.name, lower e))
       Gc_memhier.Kernels.catalog

let names () = List.map fst (programs ())

let find name =
  if name = "demo" then Some (demo ())
  else Option.map lower (Gc_memhier.Kernels.find name)
