(** Must/may age-bound abstract domain for set-associative LRU.

    The classic WCET-style cache abstraction (Ferdinand's must/may
    analysis): for each item the {e must} map holds an upper bound on its
    LRU age (stack position within its set, 0 = most recent) valid in
    {e every} reaching concrete state — presence in [must] guarantees the
    item is cached.  The {e may} map holds a lower bound valid in every
    state — absence from [may] guarantees the item is {e not} cached.
    Bounds live in [0 .. ways-1]; an item whose bound reaches [ways] is
    dropped from the map.

    Soundness invariant (checked by the qcheck properties and the
    cross-validation harness): if concrete state [c] is reachable and
    abstract state [d] covers that program point, then {!concretizes}
    [d c] holds, and therefore {!classify} never contradicts the concrete
    hit/miss outcome.

    The domain models LRU only; FIFO and PLRU ages do not decay with this
    transfer and are covered by the exact engine ({!Collecting}). *)

type t

val init : t
(** The cold cache: [must] empty (no guarantees), [may] empty (nothing
    can be cached) — exact for an empty cache. *)

val equal : t -> t -> bool

val leq : t -> t -> bool
(** [leq d1 d2]: [d1] is at least as precise as [d2] (every concrete
    state covered by [d1] is covered by [d2]). *)

val join : t -> t -> t
(** Least upper bound: [must] intersects keys keeping the max bound,
    [may] unions keys keeping the min bound. *)

val widen : t -> t -> t
(** [widen old next] accelerates: [must] drops items whose bound grew,
    [may] resets grown entries to bound 0.  Above {!join}[ old next];
    chains stabilize because a program touches finitely many items. *)

val transfer : ?unsound:bool -> Cache_model.config -> t -> int -> t
(** Abstract effect of accessing an item.  With [~unsound:true] the
    [must] map skips aging other items — a deliberately broken domain the
    cross-validation harness must catch (it manufactures [Always_hit]
    claims the simulator refutes). *)

val classify : t -> int -> Report.verdict
(** [Always_hit] if in [must], [Always_miss] if absent from [may],
    [Unknown] otherwise. *)

val must_age : t -> int -> int option
val may_age : t -> int -> int option

val concretizes : Cache_model.config -> t -> Cache_model.state -> bool
(** Whether a concrete LRU state is described by the abstract state: every
    [must] item is cached within its bound, and every cached item appears
    in [may] with a bound at or below its true age.  Meaningful for
    [Lru_s] states only (others return [false]). *)
