(** Loop re-rolling: recover program structure from flat traces.

    A recorded trace is a flat item sequence; the analyses want loops back.
    Re-rolling finds {e exact} contiguous repeats — at each position the
    period maximizing covered length with at least two full repetitions —
    and folds them into [Loop] nodes, recursing into long loop bodies so
    nested structure (a stencil's per-row pattern inside its sweep) is
    recovered too.  Unrolling the result reproduces the input exactly, so
    re-rolling never changes what the program {e does}, only how compactly
    the analyses traverse it. *)

val of_items :
  ?max_period:int -> Gc_trace.Block_map.t -> int array -> Program.t
(** [of_items blocks items] re-rolls a flat request sequence.  [max_period]
    (default 256) bounds the candidate loop-body length. *)

val of_trace : ?max_period:int -> Gc_trace.Trace.t -> Program.t
(** {!of_items} over a trace's requests, keeping its block map. *)

val compression : Program.t -> float
(** [unrolled_length / static size] — 1.0 means nothing re-rolled. *)
