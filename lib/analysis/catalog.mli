(** The named programs [gcanalyze] analyzes out of the box.

    ["demo"] is a small hand-built program exercising every IR construct
    (straight line, loop, branch) with verdicts one can check by hand; the
    rest lower {!Gc_memhier.Kernels.catalog} at [Small] size: kernel
    addresses become cache-line items through a 64 B-line / 512 B-row
    {!Gc_memhier.Geometry}, and {!Reroll} recovers their loop structure
    from the flat trace. *)

val seed : int
(** Seed used for the randomized kernels (7); fixed so catalog programs —
    and everything downstream, goldens included — are deterministic. *)

val demo : unit -> Program.t

val programs : unit -> (string * Program.t) list
(** ["demo"] first, then the kernels in catalog order. *)

val names : unit -> string list

val find : string -> Program.t option
