let run_age ?unsound (cfg : Cache_model.config) (p : Program.t) =
  Cache_model.validate cfg;
  if cfg.policy <> Cache_model.Lru then
    invalid_arg "Gc_analysis.Abstract.run_age: age domain models LRU only";
  let items = Program.point_items p in
  let points =
    Array.mapi
      (fun i item -> { Report.point = i; item; verdict = Report.Unknown })
      items
  in
  let rec exec ~record d stmts = List.fold_left (step ~record) d stmts
  and step ~record d = function
    | Program.Access { point; item } ->
        if record then
          points.(point) <-
            { (points.(point)) with Report.verdict = Age_domain.classify d item };
        Age_domain.transfer ?unsound cfg d item
    | Program.Branch { then_; else_ } ->
        Age_domain.join (exec ~record d then_) (exec ~record d else_)
    | Program.Loop { count = _; body } ->
        (* The iteration count is irrelevant to soundness here: the
           invariant covers entry and is closed under the body, and with
           count >= 1 the recorded pass's post-state covers the exit. *)
        let rec fix inv =
          let next =
            Age_domain.widen inv
              (Age_domain.join inv (exec ~record:false inv body))
          in
          if Age_domain.leq next inv then inv else fix next
        in
        exec ~record (fix d) body
  in
  let (_ : Age_domain.t) = exec ~record:true Age_domain.init p.Program.body in
  points
