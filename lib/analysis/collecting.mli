(** Exact collecting-semantics analysis for small caches.

    Instead of abstracting, track the {e set of reachable concrete cache
    states} ({!Cache_model.state}, deduplicated structurally): branches
    union the reachable sets of both arms, loops execute their bodies the
    declared number of times.  A point is [Always_hit] exactly when every
    dynamic execution of it hits in every reachable state, [Always_miss]
    when every one misses — no approximation, so this engine is both the
    most precise classifier and the ground truth the age domain is
    compared against.

    The cost is exponential in branch structure; {!run_exact} caps the
    state-set size and fails rather than degrade silently. *)

val default_max_states : int
(** 65536. *)

val run_exact :
  ?max_states:int -> Cache_model.config -> Program.t -> Report.point array
(** Classify every point exactly, for any of the three policies.  Raises
    [Failure] if the reachable-state set ever exceeds [max_states]. *)
