(** Abstract interpreter: {!Age_domain} over a {!Program}.

    Straight-line code is the domain transfer; branches {!Age_domain.join}
    their arm post-states; loops compute an inductive invariant by
    widening-accelerated fixpoint iteration.  After the invariant
    stabilizes, one {e recorded} pass over the loop body classifies its
    points under the invariant — which covers every iteration's entry
    state, so recorded verdicts hold for all iterations at once.  Each
    program point is classified exactly once. *)

val run_age :
  ?unsound:bool -> Cache_model.config -> Program.t -> Report.point array
(** Classify every point of the program under set-associative LRU.
    Raises [Invalid_argument] for non-LRU configs — the age transfer
    models LRU recency only (use {!Collecting} for FIFO/PLRU).
    [~unsound:true] selects the deliberately broken must transfer (see
    {!Age_domain.transfer}) used to exercise the cross-validation
    harness. *)
