(** Engine dispatch and the standard configuration grid.

    The grid is the fixture surface of [gcanalyze]: every
    policy × geometry the exact engine covers, plus the age engine on its
    LRU slice.  The golden-fixture test asserts every grid cell appears in
    [test/golden/gcanalyze.json], so adding a policy or engine here forces
    the fixture to be regenerated (see doc/ANALYSIS.md). *)

type kind = Exact | Age | Age_unsound

val kind_name : kind -> string
(** ["exact"], ["age"], ["age-unsound"]. *)

val kind_of_name : string -> kind option

val run :
  kind -> Cache_model.config -> name:string -> Program.t -> Report.run
(** Run one engine over one program.  [Age]/[Age_unsound] require an LRU
    config ({!Abstract.run_age}). *)

val standard_geometries : (int * int) list
(** [(sets, ways)] pairs: [(1,1); (1,2); (1,4); (2,2)] — associativities
    1, 2 and 4. *)

val standard_configs : Cache_model.config list
(** All three policies crossed with {!standard_geometries} (12 configs). *)

val grid : name:string -> Program.t -> Report.run list
(** [Exact] on every standard config plus [Age] on the LRU ones
    (16 runs), in deterministic order. *)
