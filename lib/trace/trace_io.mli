(** Plain-text and binary trace serialization, with hardened decoders.

    Text format (line-oriented, ASCII):
    {v
    gctrace 1
    blocks uniform <B>
    requests <n>
    <item> <item> ... (whitespace separated, any line breaking)
    v}
    or, for explicit partitions:
    {v
    gctrace 1
    blocks explicit <B> <nblocks>
    <item> <item> ...   (one line per block)
    requests <n>
    ...
    v}

    Decoding is built around a strict, [Result]-returning core with
    positional diagnostics (line number for text, byte offset for binary).
    Reads from channels stream through a fixed-size buffer, so decoding a
    file never materializes its serialized form in memory, and no
    allocation is sized from an untrusted length field: a hostile header
    claiming 2^60 requests fails with a clean [Error] after reading only
    the bytes actually present.  The legacy exception-raising entry points
    ([of_string], [of_bytes], [load], ...) survive as thin wrappers that
    [failwith] the rendered diagnostic. *)

(** {1 Diagnostics} *)

type position =
  | Line of int  (** 1-based line in a text trace. *)
  | Byte of int  (** 0-based byte offset in a binary trace. *)
  | Io  (** The failure happened opening or reading the file itself. *)

type error = { position : position; reason : string }

val string_of_error : error -> string
(** ["line 3: expected integer, got \"x\""] / ["byte 17: varint overflow"]. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Encoding} *)

val to_buffer : Buffer.t -> Trace.t -> unit
val to_string : Trace.t -> string
val to_channel : out_channel -> Trace.t -> unit

val save : string -> Trace.t -> unit
(** Write the text form to a file path. *)

(** {1 Strict decoding}

    All decoders consume the entire input: trailing non-whitespace after
    the declared requests is an error, as is a request count that the
    input cannot back. *)

val of_string_result : string -> (Trace.t, error) result

val of_channel_result : in_channel -> (Trace.t, error) result
(** Streaming: reads through a fixed 64 KiB buffer. *)

val load_result : string -> (Trace.t, error) result
(** Text format from a file path; I/O failures yield [Error] with
    [position = Io]. *)

val load_any_result : string -> (Trace.t, error) result
(** Dispatch on the file extension: [.gctb] is binary, anything else
    text. *)

(** {1 Lenient decoding}

    Recovery mode for damaged traces: the header must still parse, but
    malformed records are skipped rather than fatal.  For the text format
    that means non-integer or negative request tokens are dropped (and
    block lines are cleaned of unparsable or duplicate items); for the
    binary format, decoding stops at the first undecodable byte and the
    intact prefix is kept.  The report says exactly what was lost. *)

type recovery = {
  trace : Trace.t;
  dropped : int;  (** Requests lost: malformed, negative, or truncated. *)
  diagnostics : error list;
      (** First {!max_diagnostics} individual problems, in input order. *)
}

val max_diagnostics : int

val of_string_lenient : string -> (recovery, error) result
val of_bytes_lenient : bytes -> (recovery, error) result

val load_lenient : string -> (recovery, error) result
(** Extension-dispatched lenient load, like {!load_any_result}. *)

(** {1 Legacy raising decoders} *)

val of_string : string -> Trace.t
(** Raises [Failure] on malformed input. *)

val of_channel : in_channel -> Trace.t
(** Streaming; raises [Failure] on malformed input. *)

val load : string -> Trace.t

(** {1 Binary format}

    A compact varint encoding ("GCTB" magic): requests are zigzag-encoded
    deltas from the previous request, so sequential and spatially local
    traces compress to ~1 byte per access.  Explicit block maps are stored
    as per-block item lists.

    Version 2 (written by {!to_bytes}) ends with an 8-byte little-endian
    FNV-1a64 checksum of every preceding byte, so torn writes and bit rot
    are detected rather than decoded into a silently different trace.
    Version 1 payloads (no footer) are still read. *)

val to_bytes : Trace.t -> bytes

val of_bytes_result : bytes -> (Trace.t, error) result

val load_binary_result : string -> (Trace.t, error) result
(** Streaming binary read with incremental checksum verification. *)

val of_bytes : bytes -> Trace.t
(** Raises [Failure] on malformed input. *)

val save_binary : string -> Trace.t -> unit
val load_binary : string -> Trace.t
