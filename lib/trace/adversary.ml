module type ORACLE = sig
  type t

  val access : t -> int -> unit
  val mem : t -> int -> bool
end

type construction = {
  trace : Trace.t;
  warmup_len : int;
  online_misses : int;
  opt_misses : int;
  warmup_online_misses : int;
  warmup_opt_misses : int;
  bound : float;
  info : (string * float) list;
}

let measured_ratio c =
  if c.opt_misses = 0 then infinity
  else float_of_int c.online_misses /. float_of_int c.opt_misses

let ceil_div a b = (a + b - 1) / b

module Make (O : ORACLE) = struct
  type ctx = {
    o : O.t;
    mutable buf : int array;
    mutable len : int;
    mutable online_misses : int;
    mutable next_block : int;
    bsize : int;
  }

  let make_ctx o bsize =
    {
      o;
      buf = Array.make 1024 0;
      len = 0;
      online_misses = 0;
      next_block = 0;
      bsize;
    }

  let push ctx x =
    if ctx.len = Array.length ctx.buf then begin
      let bigger = Array.make (2 * ctx.len) 0 in
      Array.blit ctx.buf 0 bigger 0 ctx.len;
      ctx.buf <- bigger
    end;
    ctx.buf.(ctx.len) <- x;
    ctx.len <- ctx.len + 1

  let access ctx x =
    if not (O.mem ctx.o x) then ctx.online_misses <- ctx.online_misses + 1;
    O.access ctx.o x;
    push ctx x

  let fresh_block ctx =
    let b = ctx.next_block in
    ctx.next_block <- b + 1;
    b

  let item_of ctx blk j = (blk * ctx.bsize) + j

  (* Access items of fresh blocks, whole block at a time, until [count] items
     have been accessed.  Returns (items in order, blocks used, items of the
     last - possibly partially accessed - block). *)
  let stream_fresh_items ctx count =
    let items = ref [] in
    let last_block_items = ref [] in
    let blocks = ref 0 in
    let accessed = ref 0 in
    while !accessed < count do
      let blk = fresh_block ctx in
      incr blocks;
      last_block_items := [];
      let j = ref 0 in
      while !j < ctx.bsize && !accessed < count do
        let x = item_of ctx blk !j in
        access ctx x;
        items := x :: !items;
        last_block_items := x :: !last_block_items;
        incr accessed;
        incr j
      done
    done;
    (List.rev !items, !blocks, List.rev !last_block_items)

  (* Pick a candidate the online cache is currently not holding; if the
     policy somehow holds them all (cannot happen when there are more than k
     candidates), fall back to the first. *)
  let pick_uncached ctx candidates =
    let n = Array.length candidates in
    let rec go i =
      if i >= n then candidates.(0)
      else if not (O.mem ctx.o candidates.(i)) then candidates.(i)
      else go (i + 1)
    in
    if n = 0 then invalid_arg "Adversary: empty candidate set";
    go 0

  let dedup_keep_order items =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun x ->
        if Hashtbl.mem seen x then false
        else begin
          Hashtbl.add seen x ();
          true
        end)
      items

  (* Extend [base] with elements of [pool] (in order) up to [limit] total. *)
  let pad_to base pool limit =
    let seen = Hashtbl.create 64 in
    List.iter (fun x -> Hashtbl.replace seen x ()) base;
    let rec go acc count = function
      | [] -> List.rev acc
      | _ when count >= limit -> List.rev acc
      | x :: rest ->
          if Hashtbl.mem seen x then go acc count rest
          else begin
            Hashtbl.add seen x ();
            go (x :: acc) (count + 1) rest
          end
    in
    base @ go [] (List.length base) pool

  let last_n n l =
    let len = List.length l in
    if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

  let finish ctx ~warmup_len ~warmup_online ~warmup_opt ~opt_misses ~bound
      ~info =
    let requests = Array.sub ctx.buf 0 ctx.len in
    {
      trace = Trace.make (Block_map.uniform ~block_size:ctx.bsize) requests;
      warmup_len;
      online_misses = ctx.online_misses - warmup_online;
      opt_misses;
      warmup_online_misses = warmup_online;
      warmup_opt_misses = warmup_opt;
      bound;
      info;
    }

  (* Theorem 2 construction, also covering Sleator-Tarjan when B = 1. *)
  let item_cache_impl o ~k ~h ~block_size ~cycles ~bound ~extra_info =
    if not (k >= h && h >= block_size && h >= 2) then
      invalid_arg "Adversary.item_cache: need k >= h >= max(block_size, 2)";
    let ctx = make_ctx o block_size in
    (* Warmup: fill the online cache with k fresh items, whole blocks at a
       time; the offline cache keeps the h most recent. *)
    let warm_items, warm_blocks, _ = stream_fresh_items ctx k in
    let warmup_online = ctx.online_misses in
    let warmup_len = ctx.len in
    let opt_content = ref (last_n h warm_items) in
    let opt_misses = ref 0 in
    for _ = 1 to cycles do
      (* Step 2: stream k - h + 1 fresh items; offline pays once per block. *)
      let step2, nb, _ = stream_fresh_items ctx (k - h + 1) in
      opt_misses := !opt_misses + nb;
      (* Step 3: candidate set = offline content at cycle start + step-2
         items (k + 1 items in total). *)
      let candidates = Array.of_list (!opt_content @ step2) in
      (* Step 4: h - B requests to items the online cache does not hold. *)
      let keep = ref [] in
      for _ = 1 to h - block_size do
        let x = pick_uncached ctx candidates in
        access ctx x;
        keep := x :: !keep
      done;
      (* Offline content for the next cycle.  During step 2 the offline
         cache rotates blocks through B slots and can retain at most h - B
         designated items, so the keep set is padded only to h - B (with
         other candidates it provably held).  The rotation slot itself ends
         the cycle holding the last B accessed step-2 items (loading a
         block's s-item subset evicts only the s oldest slot entries), so
         those join the content too. *)
      let keep_slots =
        pad_to (dedup_keep_order (List.rev !keep)) (Array.to_list candidates)
          (h - block_size)
      in
      opt_content := dedup_keep_order (keep_slots @ last_n block_size step2)
    done;
    finish ctx ~warmup_len ~warmup_online ~warmup_opt:warm_blocks
      ~opt_misses:!opt_misses ~bound ~info:extra_info

  let item_cache o ~k ~h ~block_size ~cycles =
    let b = float_of_int block_size
    and kf = float_of_int k
    and hf = float_of_int h in
    let bound = b *. (kf -. b +. 1.) /. (kf -. hf +. 1.) in
    item_cache_impl o ~k ~h ~block_size ~cycles ~bound
      ~extra_info:[ ("B", b) ]

  let sleator_tarjan o ~k ~h ~cycles =
    let kf = float_of_int k and hf = float_of_int h in
    let bound = kf /. (kf -. hf +. 1.) in
    item_cache_impl o ~k ~h ~block_size:1 ~cycles ~bound ~extra_info:[]

  let block_cache o ~k ~h ~block_size ~cycles =
    let cap_blocks = ceil_div k block_size in
    if not (cap_blocks >= h && h >= 2) then
      invalid_arg "Adversary.block_cache: need ceil(k/B) >= h >= 2";
    let ctx = make_ctx o block_size in
    (* Warmup: one item from each of ceil(k/B) fresh blocks fills a block
       cache of size k. *)
    let warm_items = ref [] in
    for _ = 1 to cap_blocks do
      let x = item_of ctx (fresh_block ctx) 0 in
      access ctx x;
      warm_items := x :: !warm_items
    done;
    let warmup_online = ctx.online_misses in
    let warmup_len = ctx.len in
    let opt_content = ref (last_n h (List.rev !warm_items)) in
    let opt_misses = ref 0 in
    for _ = 1 to cycles do
      (* Step 2: one item from each of ceil(k/B) - h + 1 fresh blocks. *)
      let m = cap_blocks - h + 1 in
      let step2 = ref [] in
      for _ = 1 to m do
        let x = item_of ctx (fresh_block ctx) 0 in
        access ctx x;
        step2 := x :: !step2
      done;
      let step2 = List.rev !step2 in
      opt_misses := !opt_misses + m;
      let candidates = Array.of_list (!opt_content @ step2) in
      let keep = ref [] in
      for _ = 1 to h - 1 do
        let x = pick_uncached ctx candidates in
        access ctx x;
        keep := x :: !keep
      done;
      (* The offline cache rotates one item per step-2 block, so it retains
         at most h - 1 designated items alongside the resident last item. *)
      let last_item =
        match List.nth_opt step2 (m - 1) with
        | Some x -> x
        | None -> invalid_arg "Adversary: empty step-2 phase"
      in
      let keep_slots =
        pad_to (dedup_keep_order (List.rev !keep)) (Array.to_list candidates)
          (h - 1)
      in
      opt_content := dedup_keep_order (keep_slots @ [ last_item ])
    done;
    let kf = float_of_int k
    and hf = float_of_int h
    and bf = float_of_int block_size in
    let denom = kf -. (bf *. (hf -. 1.)) in
    let bound = if denom <= 0. then infinity else kf /. denom in
    finish ctx ~warmup_len ~warmup_online ~warmup_opt:cap_blocks
      ~opt_misses:!opt_misses ~bound ~info:[ ("B", bf) ]

  let general_a o ~k ~h ~block_size ~cycles =
    if not (k >= h && h >= 2) then
      invalid_arg "Adversary.general_a: need k >= h >= 2";
    let ctx = make_ctx o block_size in
    let warm_items, warm_blocks, _ = stream_fresh_items ctx k in
    let warmup_online = ctx.online_misses in
    let warmup_len = ctx.len in
    let opt_content = ref (last_n h warm_items) in
    let opt_misses = ref 0 in
    let a_overall = ref 1 in
    for _ = 1 to cycles do
      (* Step 2: for each fresh block, keep requesting items the policy has
         not cached until it holds the whole block (or we have tried every
         item).  The number of requests this takes measures the policy's
         effective [a] parameter. *)
      let nb = ceil_div (k - h + 1) block_size in
      let step2 = ref [] in
      let block_items = ref [] in
      let a_max = ref 1 in
      for _ = 1 to nb do
        let blk = fresh_block ctx in
        let items = Array.init block_size (fun j -> item_of ctx blk j) in
        block_items := Array.to_list items @ !block_items;
        let accessed = ref [] in
        let count = ref 0 in
        let continue = ref true in
        while !continue && !count < block_size do
          match Array.find_opt (fun x -> not (O.mem ctx.o x)) items with
          | None -> continue := false
          | Some x ->
              access ctx x;
              accessed := x :: !accessed;
              incr count
        done;
        a_max := max !a_max !count;
        step2 := !accessed @ !step2
      done;
      opt_misses := !opt_misses + nb;
      a_overall := max !a_overall !a_max;
      let step2 = List.rev !step2 in
      (* Step 3 uses ALL items of the accessed blocks (the offline cache can
         load any of them with the block's single miss), not only the ones
         the online policy was forced through. *)
      let candidates = Array.of_list (!opt_content @ List.rev !block_items) in
      let keep = ref [] in
      for _ = 1 to max 0 (h - !a_max) do
        let x = pick_uncached ctx candidates in
        access ctx x;
        keep := x :: !keep
      done;
      (* The offline cache used a_max slots per step-2 block, leaving
         h - a_max retainable designated items; its rotation slot ends the
         cycle with the last a_max accessed step-2 items. *)
      let keep_slots =
        pad_to (dedup_keep_order (List.rev !keep)) (Array.to_list candidates)
          (max 0 (h - !a_max))
      in
      opt_content := dedup_keep_order (keep_slots @ last_n !a_max step2)
    done;
    let kf = float_of_int k
    and hf = float_of_int h
    and bf = float_of_int block_size
    and af = float_of_int !a_overall in
    let bound =
      ((af *. (kf -. hf +. 1.)) +. (bf *. (hf -. af))) /. (kf -. hf +. 1.)
    in
    finish ctx ~warmup_len ~warmup_online ~warmup_opt:warm_blocks
      ~opt_misses:!opt_misses ~bound
      ~info:[ ("a", af); ("B", bf) ]

  let spatial_stress o ~h ~block_size ~t_load ~spacing ~cycles =
    if t_load < 2 || t_load > block_size then
      invalid_arg "Adversary.spatial_stress: need 2 <= t_load <= block_size";
    if h < t_load + 1 then
      invalid_arg "Adversary.spatial_stress: need h >= t_load + 1";
    let ctx = make_ctx o block_size in
    let opt_misses = ref 0 in
    for _ = 1 to cycles do
      let blk = fresh_block ctx in
      access ctx (item_of ctx blk 0);
      (* Offline loads the whole useful prefix of the block here: 1 miss. *)
      opt_misses := !opt_misses + 1;
      for j = 1 to t_load - 1 do
        for _ = 1 to spacing do
          let f = item_of ctx (fresh_block ctx) 0 in
          access ctx f;
          (* Fillers are single-use: everyone misses them. *)
          opt_misses := !opt_misses + 1
        done;
        access ctx (item_of ctx blk j)
      done
    done;
    let t = float_of_int t_load and s = float_of_int spacing in
    let per_cycle_online = t +. ((t -. 1.) *. s)
    and per_cycle_opt = 1. +. ((t -. 1.) *. s) in
    finish ctx ~warmup_len:0 ~warmup_online:0 ~warmup_opt:0
      ~opt_misses:!opt_misses
      ~bound:(per_cycle_online /. per_cycle_opt)
      ~info:[ ("t", t); ("spacing", s) ]

  let spatial_stress_pipelined o ~h ~block_size ~t_load ~width ~rotations =
    if t_load < 2 || t_load > block_size then
      invalid_arg
        "Adversary.spatial_stress_pipelined: need 2 <= t_load <= block_size";
    if width < 2 then
      invalid_arg "Adversary.spatial_stress_pipelined: need width >= 2";
    if 2 * (h - 1) < width * (t_load + 1) then
      invalid_arg
        "Adversary.spatial_stress_pipelined: h too small for the offline \
         triangle (need h >= width (t_load + 1) / 2 + 1)";
    let ctx = make_ctx o block_size in
    let opt_misses = ref 0 in
    (* Per slot: current block, items already accessed, and the slot's
       target length (shorter for the initial blocks so that retirements
       stagger across slots). *)
    let block = Array.make width 0 in
    let progress = Array.make width 0 in
    let target = Array.make width 0 in
    for j = 0 to width - 1 do
      block.(j) <- fresh_block ctx;
      progress.(j) <- 0;
      target.(j) <- max 1 (1 + (j * t_load / width));
      (* The offline cache pays one load per block, full or partial. *)
      incr opt_misses
    done;
    for _ = 1 to rotations do
      for j = 0 to width - 1 do
        access ctx (item_of ctx block.(j) progress.(j));
        progress.(j) <- progress.(j) + 1;
        if progress.(j) >= target.(j) then begin
          block.(j) <- fresh_block ctx;
          progress.(j) <- 0;
          target.(j) <- t_load;
          incr opt_misses
        end
      done
    done;
    (* Blocks still active at the end have been paid for by the offline
       cache already (counted at open), which only makes the certified cost
       conservative. *)
    finish ctx ~warmup_len:0 ~warmup_online:0 ~warmup_opt:0
      ~opt_misses:!opt_misses
      ~bound:(float_of_int t_load)
      ~info:[ ("t", float_of_int t_load); ("width", float_of_int width) ]

  let temporal_stress o ~h ~block_size ~spacing ~cycles =
    if h < 2 then invalid_arg "Adversary.temporal_stress: need h >= 2";
    let ctx = make_ctx o block_size in
    let hot =
      Array.init (h - 1) (fun _ -> item_of ctx (fresh_block ctx) 0)
    in
    Array.iter (access ctx) hot;
    let warmup_online = ctx.online_misses in
    let warmup_len = ctx.len in
    let opt_misses = ref 0 in
    for _ = 1 to cycles do
      Array.iter
        (fun x ->
          for _ = 1 to spacing do
            let f = item_of ctx (fresh_block ctx) 0 in
            access ctx f;
            opt_misses := !opt_misses + 1
          done;
          (* Offline pinned the hot items: this is a hit for it. *)
          access ctx x)
        hot
    done;
    let s = float_of_int spacing in
    finish ctx ~warmup_len ~warmup_online
      ~warmup_opt:(Array.length hot) ~opt_misses:!opt_misses
      ~bound:((s +. 1.) /. s)
      ~info:[ ("spacing", s) ]
end
