(** A request trace over an item universe partitioned into blocks.

    A trace is the pair of (i) a sequence of item requests and (ii) the block
    partition that gives the requests their spatial structure.  Items are
    non-negative integers. *)

type t = private {
  requests : int array;
  blocks : Block_map.t;
}

val make : Block_map.t -> int array -> t
(** [make blocks requests] wraps a request array (takes ownership; callers
    must not mutate the array afterwards). *)

val of_list : Block_map.t -> int list -> t

val length : t -> int

val get : t -> int -> int
(** [get t i] is the [i]-th request. *)

val block_at : t -> int -> int
(** [block_at t i] is the block of the [i]-th request. *)

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val concat : t list -> t
(** Concatenate traces sharing the same block map (physical equality is not
    required, but block sizes must agree; the first trace's map is kept). *)

val sub : t -> pos:int -> len:int -> t

val distinct_items : t -> int
(** Number of distinct items requested. *)

val distinct_blocks : t -> int
(** Number of distinct blocks touched. *)

val universe : t -> int array
(** Sorted array of distinct items requested. *)

val max_item : t -> int
(** Largest item id in the trace; [-1] if empty. *)

val digest : t -> string
(** Content digest ([fnv1a64:] plus 16 hex digits) over the requests and
    their block assignment, for identifying traces in run manifests.
    Simulation-equivalent traces digest equal; unequal ones collide only
    with hash probability. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (length, universe sizes, block size). *)
