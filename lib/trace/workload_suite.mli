(** The canonical synthetic workload suite.

    One catalog used by the integration tests, the bench harness, and the
    CLIs, spanning the locality spectrum the paper's analysis carves up:
    pure temporal, pure spatial, both, neither, and phase changes.  Every
    entry is deterministic in the seed. *)

type entry = {
  name : string;
  description : string;
  trace : Trace.t;
}

val standard :
  ?seed:int -> ?n:int -> ?universe:int -> ?block_size:int -> unit -> entry list
(** Eight workloads (defaults: seed 1, n = 20000, universe = 16384, B = 16):
    sequential, uniform, zipf, zipf-blocks, spatial-mix, pointer-chase,
    phases, markov. *)

val standard_names : string list
(** The names of {!standard}'s entries, without generating any trace. *)

val build :
  ?seed:int ->
  ?n:int ->
  ?universe:int ->
  ?block_size:int ->
  string ->
  (Trace.t, string) result
(** Generate a single workload by name, byte-identical to the entry of the
    same name in {!standard} with the same parameters but without paying
    for the other seven (the simulation service builds request traces
    through this).  [Error] names the valid choices. *)

val find : string -> entry list -> Trace.t
(** Lookup by name; raises [Not_found]. *)

val names : entry list -> string list
