type t = {
  requests : int array;
  blocks : Block_map.t;
}

let make blocks requests =
  Array.iter
    (fun r -> if r < 0 then invalid_arg "Trace.make: negative item id")
    requests;
  { requests; blocks }

let of_list blocks l = make blocks (Array.of_list l)

let length t = Array.length t.requests

let get t i = t.requests.(i)

let block_at t i = Block_map.block_of t.blocks t.requests.(i)

let iter f t = Array.iter f t.requests

let iteri f t = Array.iteri f t.requests

let fold f init t = Array.fold_left f init t.requests

let concat = function
  | [] -> invalid_arg "Trace.concat: empty list"
  | first :: _ as ts ->
      let requests = Array.concat (List.map (fun t -> t.requests) ts) in
      { requests; blocks = first.blocks }

let sub t ~pos ~len = { t with requests = Array.sub t.requests pos len }

let distinct_of_array proj t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun r ->
      let v = proj r in
      if not (Hashtbl.mem seen v) then Hashtbl.add seen v ())
    t.requests;
  Hashtbl.length seen

let distinct_items t = distinct_of_array (fun r -> r) t

let distinct_blocks t = distinct_of_array (Block_map.block_of t.blocks) t

let universe t =
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun r -> if not (Hashtbl.mem seen r) then Hashtbl.add seen r ())
    t.requests;
  let out = Array.make (Hashtbl.length seen) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun item () ->
      out.(!i) <- item;
      incr i)
    seen;
  Array.sort compare out;
  out

let max_item t = Array.fold_left max (-1) t.requests

(* FNV-1a (64-bit) over the block size, the length, and each request with
   its block id.  Covers everything that affects a simulation: the same
   requests under a different partition digest differently. *)
let digest t =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let mix v =
    (* Mix an int little-endian, 8 bytes. *)
    let v = ref (Int64.of_int v) in
    for _ = 0 to 7 do
      let byte = Int64.to_int (Int64.logand !v 0xFFL) in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime;
      v := Int64.shift_right_logical !v 8
    done
  in
  mix (Block_map.block_size t.blocks);
  mix (Array.length t.requests);
  Array.iter
    (fun r ->
      mix r;
      mix (Block_map.block_of t.blocks r))
    t.requests;
  Printf.sprintf "fnv1a64:%016Lx" !h

let pp fmt t =
  Format.fprintf fmt "trace(len=%d, items=%d, blocks=%d, %a)" (length t)
    (distinct_items t) (distinct_blocks t) Block_map.pp t.blocks
