(* ------------------------------------------------------------ diagnostics *)

type position = Line of int | Byte of int | Io

type error = { position : position; reason : string }

let string_of_error e =
  match e.position with
  | Line l -> Printf.sprintf "line %d: %s" l e.reason
  | Byte b -> Printf.sprintf "byte %d: %s" b e.reason
  | Io -> e.reason

let pp_error fmt e = Format.pp_print_string fmt (string_of_error e)

exception Parse_error of error

let perr position fmt =
  Printf.ksprintf (fun reason -> raise (Parse_error { position; reason })) fmt

(* Lenient decoding accumulates per-record problems instead of failing. *)
type recovery = { trace : Trace.t; dropped : int; diagnostics : error list }

let max_diagnostics = 20

type sink = {
  mutable dropped : int;
  mutable ndiags : int;
  mutable diags : error list; (* reversed; capped at [max_diagnostics] *)
}

let new_sink () = { dropped = 0; ndiags = 0; diags = [] }

let note sink position fmt =
  Printf.ksprintf
    (fun reason ->
      if sink.ndiags < max_diagnostics then
        sink.diags <- { position; reason } :: sink.diags;
      sink.ndiags <- sink.ndiags + 1)
    fmt

let diagnostics sink = List.rev sink.diags

(* Growable int buffer: decoded requests are never preallocated from an
   untrusted length field, so a header claiming 2^60 requests allocates in
   proportion to the bytes actually present, not the claim. *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 64 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

(* -------------------------------------------------------------- encoding *)

let to_buffer buf (t : Trace.t) =
  Buffer.add_string buf "gctrace 1\n";
  let blocks = t.Trace.blocks in
  if Block_map.is_uniform blocks then
    Buffer.add_string buf
      (Printf.sprintf "blocks uniform %d\n" (Block_map.block_size blocks))
  else begin
    (* Collect the blocks actually referenced by the trace. *)
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    Trace.iter
      (fun r ->
        let b = Block_map.block_of blocks r in
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.add seen b ();
          order := b :: !order
        end)
      t;
    let block_ids = List.rev !order in
    Buffer.add_string buf
      (Printf.sprintf "blocks explicit %d %d\n"
         (Block_map.block_size blocks)
         (List.length block_ids));
    List.iter
      (fun b ->
        let items = Block_map.items_of blocks b in
        Array.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int item))
          items;
        Buffer.add_char buf '\n')
      block_ids
  end;
  Buffer.add_string buf (Printf.sprintf "requests %d\n" (Trace.length t));
  Trace.iteri
    (fun i r ->
      if i > 0 then
        Buffer.add_char buf (if i mod 16 = 0 then '\n' else ' ');
      Buffer.add_string buf (string_of_int r))
    t;
  if Trace.length t > 0 then Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  to_buffer buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

(* gc_trace sits below gc_obs in the dependency order, so the Export
   atomic-write path is out of reach; loaders reject malformed text, so a
   truncated save is detected rather than silently used. *)
let save path t =
  (Out_channel.with_open_text [@lint.allow "raw-artifact-write"]) path
    (fun oc -> to_channel oc t)

(* ------------------------------------------------- streaming text cursor *)

(* Characters are pulled through a fixed-size buffer so channel decoding is
   bounded-memory; a string source is just a pre-filled buffer that never
   refills. *)
type cursor = {
  refill : bytes -> int;
  cbuf : Bytes.t;
  mutable clo : int;
  mutable chi : int;
  mutable line : int;
  mutable ceof : bool;
}

let cursor_of_string s =
  {
    refill = (fun _ -> 0);
    cbuf = Bytes.of_string s;
    clo = 0;
    chi = String.length s;
    line = 1;
    ceof = false;
  }

let cursor_of_channel ic =
  let cbuf = Bytes.create 65536 in
  {
    refill = (fun b -> input ic b 0 (Bytes.length b));
    cbuf;
    clo = 0;
    chi = 0;
    line = 1;
    ceof = false;
  }

let peek_char c =
  if c.clo < c.chi then Some (Bytes.unsafe_get c.cbuf c.clo)
  else if c.ceof then None
  else begin
    let n = c.refill c.cbuf in
    if n = 0 then begin
      c.ceof <- true;
      None
    end
    else begin
      c.clo <- 0;
      c.chi <- n;
      Some (Bytes.unsafe_get c.cbuf 0)
    end
  end

let skip_char c ch =
  c.clo <- c.clo + 1;
  if ch = '\n' then c.line <- c.line + 1

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let rec skip_ws c =
  match peek_char c with
  | Some ch when is_space ch ->
      skip_char c ch;
      skip_ws c
  | _ -> ()

let read_token_chars c buf =
  let rec go () =
    match peek_char c with
    | Some ch when not (is_space ch) ->
        Buffer.add_char buf ch;
        skip_char c ch;
        go ()
    | _ -> ()
  in
  go ()

(* Any-whitespace token; returns the line the token starts on. *)
let next_token c =
  skip_ws c;
  match peek_char c with
  | None -> None
  | Some _ ->
      let line = c.line in
      let buf = Buffer.create 16 in
      read_token_chars c buf;
      Some (line, Buffer.contents buf)

(* Token bounded by the current line; consumes the terminating newline. *)
let next_token_on_line c =
  let rec skip_sp () =
    match peek_char c with
    | Some ((' ' | '\t' | '\r') as ch) ->
        skip_char c ch;
        skip_sp ()
    | _ -> ()
  in
  skip_sp ();
  match peek_char c with
  | None -> None
  | Some '\n' ->
      skip_char c '\n';
      None
  | Some _ ->
      let buf = Buffer.create 16 in
      read_token_chars c buf;
      Some (Buffer.contents buf)

(* ----------------------------------------------------- strict text parse *)

let expect c what =
  match next_token c with
  | Some (_, tok) when tok = what -> ()
  | Some (line, tok) -> perr (Line line) "expected %S, got %S" what tok
  | None -> perr (Line c.line) "expected %S, got end of input" what

let next_int c what =
  match next_token c with
  | Some (line, tok) -> (
      match int_of_string_opt tok with
      | Some v -> (line, v)
      | None -> perr (Line line) "expected %s, got %S" what tok)
  | None -> perr (Line c.line) "expected %s, got end of input" what

(* One block of an explicit map: the items on the next non-blank line.
   [lenient] drops unparsable or duplicated items instead of failing. *)
let read_block_line ~lenient sink seen c =
  skip_ws c;
  let line = c.line in
  let at_eof = peek_char c = None in
  let items = ref [] in
  let rec go () =
    match next_token_on_line c with
    | None -> ()
    | Some tok ->
        (match int_of_string_opt tok with
        | None ->
            if lenient then note sink (Line line) "bad block item %S" tok
            else perr (Line line) "bad block item %S" tok
        | Some v ->
            if Hashtbl.mem seen v then
              if lenient then
                note sink (Line line) "item %d listed in two blocks" v
              else perr (Line line) "item %d listed in two blocks" v
            else begin
              Hashtbl.add seen v ();
              items := v :: !items
            end);
        go ()
  in
  go ();
  (line, at_eof, Array.of_list (List.rev !items))

let parse_text ~lenient c =
  let sink = new_sink () in
  expect c "gctrace";
  let vline, version = next_int c "version" in
  if version <> 1 then perr (Line vline) "unsupported version %d" version;
  expect c "blocks";
  let blocks =
    match next_token c with
    | Some (_, "uniform") ->
        let bline, b = next_int c "block size" in
        if b < 1 then perr (Line bline) "block size must be positive, got %d" b;
        Block_map.uniform ~block_size:b
    | Some (_, "explicit") ->
        let bline, b = next_int c "block size" in
        if b < 1 then perr (Line bline) "block size must be positive, got %d" b;
        let nline, nblocks = next_int c "block count" in
        if nblocks < 0 then perr (Line nline) "negative block count %d" nblocks;
        let seen = Hashtbl.create 64 in
        let bs = ref [] in
        (try
           for _ = 1 to nblocks do
             let line, at_eof, items = read_block_line ~lenient sink seen c in
             if Array.length items = 0 then
               if at_eof then
                 if lenient then begin
                   note sink (Line line) "truncated block list";
                   raise Exit
                 end
                 else perr (Line line) "truncated block list"
               else if lenient then note sink (Line line) "empty block dropped"
               else perr (Line line) "empty block"
             else bs := items :: !bs
           done
         with Exit -> ());
        Block_map.of_blocks (List.rev !bs)
    | Some (line, tok) -> perr (Line line) "unknown block map kind %S" tok
    | None -> perr (Line c.line) "truncated header"
  in
  expect c "requests";
  let nline, n = next_int c "request count" in
  if n < 0 then perr (Line nline) "negative request count %d" n;
  let vec = Ivec.create () in
  if lenient then begin
    (* Keep every parseable non-negative request; report the rest. *)
    let rec go () =
      match next_token c with
      | None -> ()
      | Some (line, tok) ->
          (match int_of_string_opt tok with
          | Some v when v >= 0 -> Ivec.push vec v
          | Some v ->
              sink.dropped <- sink.dropped + 1;
              note sink (Line line) "negative item id %d dropped" v
          | None ->
              sink.dropped <- sink.dropped + 1;
              note sink (Line line) "bad request %S dropped" tok);
          go ()
    in
    go ();
    (* Anything declared but neither recovered nor counted as a bad token
       was lost to truncation. *)
    let missing = n - vec.Ivec.len - sink.dropped in
    if missing > 0 then begin
      sink.dropped <- sink.dropped + missing;
      note sink (Line c.line) "%d of %d declared requests missing" missing n
    end
    else if vec.Ivec.len > n then
      note sink (Line c.line) "%d requests beyond the declared %d kept"
        (vec.Ivec.len - n) n
  end
  else begin
    for _ = 1 to n do
      match next_token c with
      | None ->
          perr (Line c.line) "expected %d requests, found %d" n vec.Ivec.len
      | Some (line, tok) -> (
          match int_of_string_opt tok with
          | Some v when v >= 0 -> Ivec.push vec v
          | Some v -> perr (Line line) "negative item id %d" v
          | None -> perr (Line line) "expected integer, got %S" tok)
    done;
    match next_token c with
    | Some (line, tok) ->
        perr (Line line) "trailing garbage %S after %d requests" tok n
    | None -> ()
  end;
  let trace = Trace.make blocks (Ivec.to_array vec) in
  { trace; dropped = sink.dropped; diagnostics = diagnostics sink }

(* --------------------------------------------------------- binary format *)

let magic = "GCTB"

let add_varint buf v =
  (* Unsigned LEB128. *)
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr low);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (low lor 0x80))
  done

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag v = if v land 1 = 0 then v lsr 1 else -((v + 1) lsr 1)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L
let fnv_add h byte = Int64.mul (Int64.logxor h (Int64.of_int byte)) fnv_prime

let to_bytes (t : Trace.t) =
  let buf = Buffer.create (Trace.length t * 2) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\002' (* version: 2 = checksummed *);
  let blocks = t.Trace.blocks in
  if Block_map.is_uniform blocks then begin
    Buffer.add_char buf '\000';
    add_varint buf (Block_map.block_size blocks)
  end
  else begin
    Buffer.add_char buf '\001';
    add_varint buf (Block_map.block_size blocks);
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    Trace.iter
      (fun r ->
        let b = Block_map.block_of blocks r in
        if not (Hashtbl.mem seen b) then begin
          Hashtbl.add seen b ();
          order := b :: !order
        end)
      t;
    let block_ids = List.rev !order in
    add_varint buf (List.length block_ids);
    List.iter
      (fun b ->
        let items = Block_map.items_of blocks b in
        add_varint buf (Array.length items);
        Array.iter (add_varint buf) items)
      block_ids
  end;
  add_varint buf (Trace.length t);
  let prev = ref 0 in
  Trace.iter
    (fun r ->
      add_varint buf (zigzag (r - !prev));
      prev := r)
    t;
  (* FNV-1a64 footer over everything above, little-endian. *)
  let payload = Buffer.to_bytes buf in
  let len = Bytes.length payload in
  let h = ref fnv_offset in
  Bytes.iter (fun ch -> h := fnv_add !h (Char.code ch)) payload;
  let out = Bytes.create (len + 8) in
  Bytes.blit payload 0 out 0 len;
  for i = 0 to 7 do
    Bytes.set out (len + i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical !h (8 * i)) 0xFFL)))
  done;
  out

(* ---------------------------------------------- streaming binary cursor *)

type bcursor = {
  brefill : bytes -> int;
  bbuf : Bytes.t;
  mutable blo : int;
  mutable bhi : int;
  mutable consumed : int;
  mutable hash : int64;
  mutable beof : bool;
}

let bcursor_of_bytes b =
  {
    brefill = (fun _ -> 0);
    bbuf = b;
    blo = 0;
    bhi = Bytes.length b;
    consumed = 0;
    hash = fnv_offset;
    beof = false;
  }

let bcursor_of_channel ic =
  let bbuf = Bytes.create 65536 in
  {
    brefill = (fun b -> input ic b 0 (Bytes.length b));
    bbuf;
    blo = 0;
    bhi = 0;
    consumed = 0;
    hash = fnv_offset;
    beof = false;
  }

let read_byte_opt c =
  if c.blo >= c.bhi && not c.beof then begin
    let n = c.brefill c.bbuf in
    if n = 0 then c.beof <- true
    else begin
      c.blo <- 0;
      c.bhi <- n
    end
  end;
  if c.blo >= c.bhi then None
  else begin
    let b = Char.code (Bytes.unsafe_get c.bbuf c.blo) in
    c.blo <- c.blo + 1;
    c.consumed <- c.consumed + 1;
    c.hash <- fnv_add c.hash b;
    Some b
  end

let read_byte c what =
  match read_byte_opt c with
  | Some b -> b
  | None -> perr (Byte c.consumed) "truncated %s" what

let read_varint c what =
  let rec go shift acc =
    let b = read_byte c what in
    if shift > 62 then perr (Byte (c.consumed - 1)) "varint overflow in %s" what;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if acc < 0 then perr (Byte (c.consumed - 1)) "varint overflow in %s" what;
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let parse_binary ~lenient c =
  let sink = new_sink () in
  String.iteri
    (fun i expected ->
      let b = read_byte c "magic" in
      if Char.chr b <> expected then perr (Byte i) "bad magic")
    magic;
  let version = read_byte c "version" in
  if version <> 1 && version <> 2 then
    perr (Byte (c.consumed - 1)) "unsupported version %d" version;
  let blocks =
    match read_byte c "block map kind" with
    | 0 ->
        let b = read_varint c "block size" in
        if b < 1 then
          perr (Byte c.consumed) "block size must be positive, got %d" b;
        Block_map.uniform ~block_size:b
    | 1 ->
        let b = read_varint c "block size" in
        if b < 1 then
          perr (Byte c.consumed) "block size must be positive, got %d" b;
        let nblocks = read_varint c "block count" in
        let seen = Hashtbl.create 64 in
        let bs = ref [] in
        for _ = 1 to nblocks do
          let count = read_varint c "block item count" in
          if count = 0 then perr (Byte c.consumed) "empty block";
          let items = Ivec.create () in
          for _ = 1 to count do
            let item = read_varint c "block item" in
            if Hashtbl.mem seen item then
              perr (Byte c.consumed) "item %d listed in two blocks" item;
            Hashtbl.add seen item ();
            Ivec.push items item
          done;
          bs := Ivec.to_array items :: !bs
        done;
        Block_map.of_blocks (List.rev !bs)
    | k -> perr (Byte (c.consumed - 1)) "unknown block kind %d" k
  in
  let n = read_varint c "request count" in
  let vec = Ivec.create () in
  let prev = ref 0 in
  let intact = ref true in
  (try
     for _ = 1 to n do
       let raw = read_varint c "request" in
       let v = !prev + unzigzag raw in
       if v < 0 then perr (Byte c.consumed) "negative request id %d" v;
       Ivec.push vec v;
       prev := v
     done
   with Parse_error e when lenient ->
     intact := false;
     sink.dropped <- sink.dropped + (n - vec.Ivec.len);
     note sink e.position "%s (%d of %d requests recovered)" e.reason
       vec.Ivec.len n);
  (* Checksum footer (version 2): FNV-1a64 of every byte before it.  A
     lenient read that already lost its tail skips verification — the
     stream position is meaningless past the first bad byte. *)
  if version = 2 && !intact then begin
    let computed = c.hash in
    let footer_at = c.consumed in
    match
      let stored = ref 0L in
      for i = 0 to 7 do
        let b = read_byte c "checksum" in
        stored := Int64.logor !stored (Int64.shift_left (Int64.of_int b) (8 * i))
      done;
      !stored
    with
    | stored when stored <> computed ->
        if lenient then
          note sink (Byte footer_at)
            "checksum mismatch (stored %016Lx, computed %016Lx)" stored
            computed
        else
          perr (Byte footer_at)
            "checksum mismatch (stored %016Lx, computed %016Lx)" stored
            computed
    | _ -> ()
    | exception Parse_error e when lenient -> note sink e.position "%s" e.reason
  end;
  if !intact then begin
    match read_byte_opt c with
    | Some _ ->
        if lenient then
          note sink (Byte (c.consumed - 1)) "trailing garbage after trace"
        else perr (Byte (c.consumed - 1)) "trailing garbage after trace"
    | None -> ()
  end;
  let trace = Trace.make blocks (Ivec.to_array vec) in
  { trace; dropped = sink.dropped; diagnostics = diagnostics sink }

(* -------------------------------------------------------------- text API *)

let strict f x =
  match f x with
  | r -> Ok r.trace
  | exception Parse_error e -> Error e

let lenient_ f x =
  match f x with r -> Ok r | exception Parse_error e -> Error e

let of_string_result s = strict (parse_text ~lenient:false) (cursor_of_string s)

let of_channel_result ic =
  strict (parse_text ~lenient:false) (cursor_of_channel ic)

let of_string_lenient s =
  lenient_ (parse_text ~lenient:true) (cursor_of_string s)

let io_guard f =
  try f () with Sys_error reason -> Error { position = Io; reason }

let load_result path =
  io_guard (fun () -> In_channel.with_open_text path of_channel_result)

(* ------------------------------------------------------------ binary API *)

let of_bytes_result b = strict (parse_binary ~lenient:false) (bcursor_of_bytes b)

let of_bytes_lenient b =
  lenient_ (parse_binary ~lenient:true) (bcursor_of_bytes b)

let load_binary_result path =
  io_guard (fun () ->
      In_channel.with_open_bin path (fun ic ->
          strict (parse_binary ~lenient:false) (bcursor_of_channel ic)))

let is_binary_path path = Filename.check_suffix path ".gctb"

let load_any_result path =
  if is_binary_path path then load_binary_result path else load_result path

let load_lenient path =
  io_guard (fun () ->
      if is_binary_path path then
        In_channel.with_open_bin path (fun ic ->
            lenient_ (parse_binary ~lenient:true) (bcursor_of_channel ic))
      else
        In_channel.with_open_text path (fun ic ->
            lenient_ (parse_text ~lenient:true) (cursor_of_channel ic)))

(* ------------------------------------------------------ raising wrappers *)

let or_fail = function
  | Ok t -> t
  | Error e -> failwith ("Trace_io: " ^ string_of_error e)

let of_string s = or_fail (of_string_result s)
let of_channel ic = or_fail (of_channel_result ic)
let load path = or_fail (load_result path)
let of_bytes b = or_fail (of_bytes_result b)
let load_binary path = or_fail (load_binary_result path)

let save_binary path t =
  (* Below gc_obs, same as [save]; the GCTB footer checksum makes a
     truncated binary artifact fail loudly at load time. *)
  (Out_channel.with_open_bin [@lint.allow "raw-artifact-write"]) path
    (fun oc -> Out_channel.output_bytes oc (to_bytes t))
