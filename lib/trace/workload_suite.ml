type entry = {
  name : string;
  description : string;
  trace : Trace.t;
}

(* One catalog row per workload.  [splits] is how many times the row's
   generator draws from the master RNG; building a single workload (the
   serving layer does this per request) skips the preceding rows by
   consuming their splits, so a workload built alone is byte-identical to
   the same workload inside {!standard}. *)
type row = {
  row_name : string;
  row_description : string;
  splits : int;
  gen : n:int -> universe:int -> block_size:int -> Rng.t -> Trace.t;
}

let catalog =
  [
    {
      row_name = "sequential";
      row_description = "cyclic scan: maximal spatial locality, zero reuse";
      splits = 0;
      gen =
        (fun ~n ~universe ~block_size _r ->
          Generators.sequential ~n ~universe:(universe / 8) ~block_size);
    };
    {
      row_name = "uniform";
      row_description = "independent uniform requests: neither locality";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.uniform_random (Rng.split r) ~n ~universe:(universe / 8)
            ~block_size);
    };
    {
      row_name = "zipf";
      row_description = "skewed item popularity: temporal locality only";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.zipf_items (Rng.split r) ~n ~universe:(universe / 8)
            ~block_size ~alpha:1.0);
    };
    {
      row_name = "zipf-blocks";
      row_description = "skewed block popularity with in-block walks";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.zipf_blocks (Rng.split r) ~n
            ~blocks:(universe / block_size / 8)
            ~block_size ~alpha:0.8 ~within:`Sequential);
    };
    {
      row_name = "spatial-mix";
      row_description = "60% same-block continuation: both localities";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.spatial_mix (Rng.split r) ~n ~universe:(universe / 4)
            ~block_size ~p_spatial:0.6);
    };
    {
      row_name = "pointer-chase";
      row_description = "permutation cycle: perfect reuse, no spatial structure";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.pointer_chase (Rng.split r) ~n ~universe:(universe / 16)
            ~block_size);
    };
    {
      row_name = "phases";
      row_description = "working set grows 8x then shrinks: phase changes";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.working_set_phases (Rng.split r) ~block_size
            ~phases:
              [
                (universe / 64, n / 4);
                (universe / 8, n / 2);
                (universe / 128, n / 4);
              ]);
    };
    {
      row_name = "markov";
      row_description = "bursty streaming/random alternation";
      splits = 1;
      gen =
        (fun ~n ~universe ~block_size r ->
          Generators.markov (Rng.split r) ~n ~universe ~block_size
            ~p_switch:0.01);
    };
  ]

let standard ?(seed = 1) ?(n = 20_000) ?(universe = 16_384) ?(block_size = 16)
    () =
  let r = Rng.create seed in
  List.map
    (fun row ->
      {
        name = row.row_name;
        description = row.row_description;
        trace = row.gen ~n ~universe ~block_size r;
      })
    catalog

let standard_names = List.map (fun row -> row.row_name) catalog

let build ?(seed = 1) ?(n = 20_000) ?(universe = 16_384) ?(block_size = 16)
    name =
  let r = Rng.create seed in
  let rec go = function
    | [] ->
        Error
          (Printf.sprintf "unknown workload %S, expected one of: %s" name
             (String.concat ", " standard_names))
    | row :: rest ->
        if row.row_name = name then
          Ok (row.gen ~n ~universe ~block_size r)
        else begin
          for _ = 1 to row.splits do
            ignore (Rng.split r)
          done;
          go rest
        end
  in
  go catalog

let find name entries =
  match List.find_opt (fun e -> e.name = name) entries with
  | Some e -> e.trace
  | None -> raise Not_found

let names entries = List.map (fun e -> e.name) entries
