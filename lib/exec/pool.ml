module Clock = Gc_prof.Clock
module Tracer = Gc_prof.Tracer

exception Transient of string

let attempt_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 1)
let attempt () = Domain.DLS.get attempt_key

type 'a outcome =
  | Done of 'a
  | Failed of exn
  | Timed_out of float
  | Cancelled

type config = {
  domains : int;
  deadline : float option;
  grace : float;
  retries : int;
  backoff : float;
  retryable : exn -> bool;
  tick : float;
}

let default_config () =
  {
    domains = max 1 (Domain.recommended_domain_count () - 1);
    deadline = None;
    grace = 0.25;
    retries = 1;
    backoff = 0.05;
    retryable = (function Transient _ -> true | _ -> false);
    tick = 0.002;
  }

(* sleepf can be interrupted by the very SIGINT we are supervising — and
   under a signal storm, repeatedly.  Retry the *remaining* duration so
   monitor ticks and backoff sleeps keep their intended length instead of
   collapsing to busy-spins. *)
let nap s =
  let until = Clock.now_s () +. s in
  let rec go remaining =
    if remaining > 0. then
      match Unix.sleepf remaining with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          go (until -. Clock.now_s ())
  in
  go s

type 'a slot = {
  idx : int;
  cell : 'a outcome option Atomic.t;
  cancel : Cancel.t;
  started : float Atomic.t;
  domain : unit Domain.t;
}

(* Runs inside the worker domain.  Everything is caught: the domain itself
   never raises, so joining it is always safe.  The pool is the
   supervisor — converting Cancelled and Transient into outcomes (after
   handling them) is its job, so the catch-alls below are the one
   sanctioned place cancellation stops propagating. *)
let worker config task idx cancel started cell () =
  let classify_cancel reason =
    if reason = Cancel.deadline_reason then
      Timed_out (Option.value config.deadline ~default:0.)
    else Cancelled
  in
  (* Task-lifecycle spans: one "pool.task" per worker domain with a
     "pool.attempt" child per try, so a Perfetto track shows queue,
     retries and backoff gaps structurally.  Args are only built when
     tracing is on; disabled tracing costs one atomic load per span. *)
  let task_tok =
    Tracer.enter
      ~args:
        (if Tracer.enabled () then [ ("task", string_of_int idx) ] else [])
      "pool.task"
  in
  let attempt_span i =
    Tracer.enter
      ~args:
        (if Tracer.enabled () then
           [ ("task", string_of_int idx); ("attempt", string_of_int i) ]
         else [])
      "pool.attempt"
  in
  let outcome =
    let rec go i =
      Domain.DLS.set attempt_key i;
      Atomic.set started (Clock.now_s ());
      let att = attempt_span i in
      match Cancel.with_current cancel (fun () -> task ~cancel) with
      | v ->
          Tracer.leave att;
          Done v
      | exception Cancel.Cancelled reason ->
          Tracer.leave att;
          classify_cancel reason
      | exception exn when i <= config.retries && config.retryable exn ->
          Tracer.leave att;
          (* Exponential backoff; the deadline clock restarts with the
             attempt, not the sleep. *)
          Atomic.set started (Clock.now_s ());
          nap (config.backoff *. Float.pow 2. (float_of_int (i - 1)));
          if Cancel.requested cancel then
            classify_cancel (Option.value (Cancel.reason cancel) ~default:"")
          else go (i + 1)
      | exception exn ->
          Tracer.leave att;
          Failed exn
    in
    try go 1 with exn -> Failed exn
  in
  Tracer.leave task_tok;
  Atomic.set cell (Some outcome)
[@@lint.allow "swallowed-cancellation"]

let run ?config ?interrupt ?on_start ?on_outcome tasks =
  let config = match config with Some c -> c | None -> default_config () in
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let results = Array.make n None in
  let settle idx o =
    (* An abandoned task's late completion must not overwrite the timeout
       already recorded for it. *)
    if results.(idx) = None then begin
      results.(idx) <- Some o;
      match on_outcome with Some f -> f idx o | None -> ()
    end
  in
  let interrupted () =
    match interrupt with Some t -> Cancel.requested t | None -> false
  in
  let max_workers = max 1 (min config.domains (max n 1)) in
  let running = ref [] in
  let next = ref 0 in
  (* All tasks enter the queue when [run] is called; the "pool.queued"
     span for task [idx] stretches from here to its spawn. *)
  let queued_ns = if Tracer.enabled () then Clock.now_ns () else 0 in
  let rec loop () =
    let now = Clock.now_s () in
    let progressed = ref false in
    let still =
      List.filter
        (fun s ->
          match Atomic.get s.cell with
          | Some o ->
              Domain.join s.domain;
              settle s.idx o;
              progressed := true;
              false
          | None -> true)
        !running
    in
    let still =
      match config.deadline with
      | None -> still
      | Some d ->
          List.filter
            (fun s ->
              let elapsed = now -. Atomic.get s.started in
              if elapsed > d then
                Cancel.request s.cancel ~reason:Cancel.deadline_reason;
              if elapsed > d +. config.grace then begin
                (* The task never reached a cancellation point: abandon its
                   domain (never joined; the process exit reaps it) so the
                   rest of the grid keeps moving. *)
                settle s.idx (Timed_out d);
                progressed := true;
                false
              end
              else true)
            still
    in
    running := still;
    while
      List.length !running < max_workers && !next < n && not (interrupted ())
    do
      let idx = !next in
      incr next;
      let cancel = Cancel.create () in
      (* Expose the task's token before its domain runs, so an external
         event (a client disconnect, say) can never race the launch and
         miss its chance to cancel. *)
      (match on_start with Some f -> f idx cancel | None -> ());
      if Tracer.enabled () then
        Tracer.emit
          ~args:[ ("task", string_of_int idx) ]
          ~ts_ns:queued_ns
          ~dur_ns:(Clock.now_ns () - queued_ns)
          "pool.queued";
      let started = Atomic.make (Clock.now_s ()) in
      let cell = Atomic.make None in
      let domain =
        Domain.spawn (worker config tasks.(idx) idx cancel started cell)
      in
      running := { idx; cell; cancel; started; domain } :: !running;
      progressed := true
    done;
    if !running = [] && (!next >= n || interrupted ()) then
      for i = 0 to n - 1 do
        if results.(i) = None then settle i Cancelled
      done
    else begin
      if not !progressed then nap config.tick;
      loop ()
    end
  in
  if n > 0 then loop ();
  Array.to_list
    (Array.map (function Some o -> o | None -> assert false) results)
