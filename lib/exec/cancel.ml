type t = { flag : string option Atomic.t }

exception Cancelled of string

let deadline_reason = "deadline"
let interrupt_reason = "interrupt"

let create () = { flag = Atomic.make None }

let request t ~reason =
  (* First reason wins: a deadline firing after an interrupt (or vice
     versa) must not reclassify the cancellation. *)
  ignore (Atomic.compare_and_set t.flag None (Some reason))

let requested t = Atomic.get t.flag <> None
let reason t = Atomic.get t.flag

let check t =
  match Atomic.get t.flag with Some r -> raise (Cancelled r) | None -> ()

(* The current token travels in domain-local storage so deep call stacks
   (a Simulator progress hook, a drill policy) can poll without explicit
   plumbing through every layer. *)
let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let with_current t f =
  let previous = Domain.DLS.get key in
  Domain.DLS.set key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key previous) f

let poll () = match current () with Some t -> check t | None -> ()
