(** Cooperative cancellation tokens.

    A token is an atomic flag plus the reason it was raised.  The
    supervised pool arms one per task and requests it when the task's
    deadline expires or the run is interrupted; cancellation points deep
    inside the task (the {!Gc_cache.Simulator} progress hook, the
    [broken:hang] drill policy) observe it through the domain-local
    "current token" and raise {!Cancelled}. *)

type t

exception Cancelled of string
(** Raised by {!check}/{!poll} with the cancellation reason. *)

val deadline_reason : string
(** ["deadline"] — the monitor cancelled the task at its deadline. *)

val interrupt_reason : string
(** ["interrupt"] — the whole run is shutting down (SIGINT/SIGTERM). *)

val create : unit -> t

val request : t -> reason:string -> unit
(** Idempotent; the first reason wins.  Safe from any domain and from
    signal handlers. *)

val requested : t -> bool
val reason : t -> string option

val check : t -> unit
(** Raise {!Cancelled} if the token has been requested. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Run a thunk with the token installed as the calling domain's current
    token (restored afterwards, exceptions included). *)

val current : unit -> t option

val poll : unit -> unit
(** {!check} the current domain's token; a no-op when none is installed,
    so unsupervised code paths pay one domain-local read. *)
