type cell = {
  key : string;
  payload : Gc_obs.Json.t option;
  resumed : bool;
}

type stats = {
  total : int;
  resumed : int;
  ran : int;
  cancelled : int;
  interrupted : bool;
}

let default_classify exn = ("exception", Printexc.to_string exn)

let journal_error path e =
  failwith (Printf.sprintf "%s: %s" path (Journal.string_of_error e))

let run ?config ?interrupt ?journal ?(resume = false)
    ?(meta = Gc_obs.Json.Null) ?(classify = default_classify) ~to_error cells =
  let completed : (string, Gc_obs.Json.t) Hashtbl.t = Hashtbl.create 64 in
  let writer =
    match journal with
    | None -> None
    | Some path when resume -> (
        match Journal.resume path with
        | Error e -> journal_error path e
        | Ok (loaded, w) ->
            if Gc_obs.Json.to_string loaded.meta <> Gc_obs.Json.to_string meta
            then
              failwith
                (Printf.sprintf
                   "%s: journal belongs to a different invocation (metadata \
                    mismatch); refusing to resume"
                   path);
            List.iter
              (fun (cell, payload) ->
                if not (Hashtbl.mem completed cell) then
                  Hashtbl.add completed cell payload)
              loaded.entries;
            Some w)
    | Some path -> Some (Journal.create path ~meta)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close writer)
    (fun () ->
      let pending =
        List.filter (fun (key, _) -> not (Hashtbl.mem completed key)) cells
      in
      let pending_keys = Array.of_list (List.map fst pending) in
      let fresh : (string, Gc_obs.Json.t) Hashtbl.t = Hashtbl.create 64 in
      let record key payload =
        Hashtbl.replace fresh key payload;
        Option.iter (fun w -> Journal.append w key payload) writer
      in
      let on_outcome i outcome =
        let key = pending_keys.(i) in
        match outcome with
        | Pool.Done payload -> record key payload
        | Pool.Failed exn ->
            let kind, message = classify exn in
            record key (to_error ~key ~kind ~message)
        | Pool.Timed_out deadline ->
            record key
              (to_error ~key ~kind:"timeout"
                 ~message:
                   (Printf.sprintf "cell exceeded its %gs deadline" deadline))
        | Pool.Cancelled -> ()
      in
      ignore
        (Pool.run ?config ?interrupt ~on_outcome (List.map snd pending));
      let results =
        List.map
          (fun (key, _) ->
            match Hashtbl.find_opt completed key with
            | Some payload -> { key; payload = Some payload; resumed = true }
            | None -> (
                match Hashtbl.find_opt fresh key with
                | Some payload ->
                    { key; payload = Some payload; resumed = false }
                | None -> { key; payload = None; resumed = false }))
          cells
      in
      let count p = List.length (List.filter p results) in
      let stats =
        {
          total = List.length results;
          resumed = count (fun c -> c.resumed);
          ran = count (fun c -> (not c.resumed) && c.payload <> None);
          cancelled = count (fun c -> c.payload = None);
          interrupted =
            (match interrupt with
            | Some t -> Cancel.requested t
            | None -> false);
        }
      in
      (results, stats))
