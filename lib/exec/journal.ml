(* Checkpoint journal: one checksummed JSON object per line.

   Line format (fixed-width prefix, so the checksummed region is
   recoverable without parsing):

     {"sum":"<16 hex chars>","entry":{"cell":"...","payload":...}}

   [sum] is the FNV-1a 64 hash of the raw bytes of the [entry] value.  The
   writer flushes after every line, so the only damage a crash can inflict
   is an unterminated final line — which [load] drops (the cell simply
   re-runs on resume) while any corruption of a complete line is rejected
   with a line-numbered diagnostic. *)

type error = { line : int; reason : string }

let string_of_error e = Printf.sprintf "line %d: %s" e.line e.reason

let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let meta_cell = "@meta"

let entry_json cell payload =
  Gc_obs.Json.to_string
    (Gc_obs.Json.Obj
       [ ("cell", Gc_obs.Json.String cell); ("payload", payload) ])

let line_of cell payload =
  let entry = entry_json cell payload in
  Printf.sprintf "{\"sum\":\"%s\",\"entry\":%s}" (fnv1a64 entry) entry

(* {"sum":" = 8 chars, 16 hex chars, ","entry": = 10 chars. *)
let prefix_len = 34

type writer = { oc : out_channel }

(* Chaos-drill fault hook (gcchaos): when armed with [Some n], the next
   append writes only the first [n] bytes of its line, flushes them, and
   raises [Torn_write] — the observable effect of a crash or power cut
   mid-append.  One-shot: the hook disarms as it fires.  Off (None)
   everywhere outside a drill; this exists so [load]/[resume]'s torn-tail
   recovery can be exercised against the real writer instead of against
   hand-truncated fixture bytes. *)
exception Torn_write

let torn_write_after = ref None

let append w cell payload =
  let line = line_of cell payload ^ "\n" in
  match !torn_write_after with
  | Some n ->
      torn_write_after := None;
      output_string w.oc (String.sub line 0 (min (max n 0) (String.length line)));
      flush w.oc;
      raise Torn_write
  | None ->
      output_string w.oc line;
      flush w.oc

let create path ~meta =
  (* A checkpoint journal is append-only with per-line checksums: crash
     safety comes from the torn-tail recovery in [load], not from the
     atomic-rename Export path (which cannot express appends). *)
  let oc = (open_out [@lint.allow "raw-artifact-write"]) path in
  let w = { oc } in
  append w meta_cell meta;
  w

let close w = close_out w.oc

type loaded = {
  meta : Gc_obs.Json.t;
  entries : (string * Gc_obs.Json.t) list;
  valid_bytes : int;
  torn : bool;
}

let decode_line lineno line =
  let fail reason = Error { line = lineno; reason } in
  let len = String.length line in
  if len < prefix_len + 2 then fail "malformed journal line (too short)"
  else if String.sub line 0 8 <> "{\"sum\":\"" then
    fail "malformed journal line (bad prefix)"
  else if String.sub line 24 10 <> "\",\"entry\":" then
    fail "malformed journal line (bad prefix)"
  else if line.[len - 1] <> '}' then
    fail "malformed journal line (bad suffix)"
  else begin
    let sum = String.sub line 8 16 in
    let entry = String.sub line prefix_len (len - prefix_len - 1) in
    if fnv1a64 entry <> sum then fail "checksum mismatch"
    else
      match Gc_obs.Json.parse entry with
      | Error e -> fail (Gc_obs.Json.string_of_parse_error e)
      | Ok json -> (
          match
            (Gc_obs.Json.member "cell" json, Gc_obs.Json.member "payload" json)
          with
          | Some (Gc_obs.Json.String cell), Some payload -> Ok (cell, payload)
          | _ -> fail "journal entry lacks cell/payload")
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error msg -> Error { line = 0; reason = msg }
  | text ->
      let len = String.length text in
      let ( let* ) r f = Result.bind r f in
      let rec go lineno pos meta acc =
        if pos >= len then
          Ok { meta; entries = List.rev acc; valid_bytes = pos; torn = false }
        else
          match String.index_from_opt text pos '\n' with
          | None ->
              (* Unterminated final line: a crash mid-append, not
                 corruption.  Drop it; the cell re-runs. *)
              Ok { meta; entries = List.rev acc; valid_bytes = pos; torn = true }
          | Some nl ->
              let line = String.sub text pos (nl - pos) in
              let* cell, payload = decode_line lineno line in
              if lineno = 1 then
                if cell = meta_cell then go 2 (nl + 1) payload acc
                else Error { line = 1; reason = "missing journal header" }
              else
                (* First occurrence wins: a duplicate can only arise from a
                   cell journaled, torn on a later crash, and re-run. *)
                let acc =
                  if List.mem_assoc cell acc then acc
                  else (cell, payload) :: acc
                in
                go (lineno + 1) (nl + 1) meta acc
      in
      if len = 0 then Error { line = 1; reason = "empty journal" }
      else go 1 0 Gc_obs.Json.Null []

let resume path =
  match load path with
  | Error e -> Error e
  | Ok loaded ->
      if loaded.torn then Unix.truncate path loaded.valid_bytes;
      let oc =
        (* Same append-only story as [create]: recovery already truncated
           the torn tail, and the rename-based Export path cannot append. *)
        (open_out_gen [@lint.allow "raw-artifact-write"])
          [ Open_wronly; Open_append; Open_binary ] 0o644 path
      in
      Ok (loaded, { oc })
