(** Checkpointed sweep execution: the {!Pool} plus a {!Journal}, giving
    [--resume] semantics to any grid of named cells.

    Each cell is a (key, task) pair whose task produces the cell's JSON
    payload.  As cells settle they are appended to the journal — including
    failed and timed-out cells, shaped by [to_error], so a deterministic
    crash is not pointlessly re-run on resume.  Cells cancelled by an
    interrupt are {e not} journaled and re-run on resume.  On resume,
    journaled cells are returned without re-execution, after verifying the
    journal's metadata header matches this invocation. *)

type cell = {
  key : string;
  payload : Gc_obs.Json.t option;
      (** [None] iff the cell was cancelled by an interrupt. *)
  resumed : bool;  (** Came from the journal, not re-simulated. *)
}

type stats = {
  total : int;
  resumed : int;
  ran : int;  (** Executed (or failed) this run. *)
  cancelled : int;
  interrupted : bool;
}

val run :
  ?config:Pool.config ->
  ?interrupt:Cancel.t ->
  ?journal:string ->
  ?resume:bool ->
  ?meta:Gc_obs.Json.t ->
  ?classify:(exn -> string * string) ->
  to_error:(key:string -> kind:string -> message:string -> Gc_obs.Json.t) ->
  (string * (cancel:Cancel.t -> Gc_obs.Json.t)) list ->
  cell list * stats
(** Results come back in input order regardless of completion order.
    [classify] maps a task exception to a manifest error [(kind, message)]
    (default: [("exception", Printexc.to_string exn)]); [to_error] shapes
    a failed cell's payload from its key and that pair.  An unreadable,
    corrupt, or mismatched journal raises [Failure] with a positioned
    diagnostic (a runtime failure under the CLI exit-code contract). *)
