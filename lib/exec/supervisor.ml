let exit_interrupted = 130

let with_interrupt ?(message = "interrupt: draining in-flight cells (interrupt again to abort)") f =
  let token = Cancel.create () in
  let handler _ =
    if Cancel.requested token then Stdlib.exit exit_interrupted
    else begin
      Cancel.request token ~reason:Cancel.interrupt_reason;
      prerr_endline message
    end
  in
  let install s =
    match Sys.signal s (Sys.Signal_handle handler) with
    | previous -> Some (s, previous)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let saved = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (s, previous) ->
          try Sys.set_signal s previous with Invalid_argument _ | Sys_error _ -> ())
        saved)
    (fun () -> f token)
