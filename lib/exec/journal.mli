(** Crash-safe checkpoint journal for long sweeps.

    An append-only JSONL file recording one line per completed sweep cell
    (plus a metadata header line identifying the run).  Every line carries
    an FNV-1a 64 checksum of its entry and is flushed as written, so after
    a crash or SIGKILL the journal is a valid prefix of the run: at worst
    the final line is unterminated, which {!load} drops (that cell simply
    re-runs).  Corruption of any complete line — bit flips, truncation
    mid-file, editing — is rejected with a line-numbered diagnostic. *)

type error = { line : int; reason : string }

val string_of_error : error -> string
(** ["line N: reason"]. *)

type writer

val create : string -> meta:Gc_obs.Json.t -> writer
(** Start a fresh journal (truncating any existing file), writing [meta]
    as the header line.  Raises [Sys_error] on I/O failure. *)

val append : writer -> string -> Gc_obs.Json.t -> unit
(** [append w cell payload] — one checksummed line, flushed. *)

exception Torn_write

val torn_write_after : int option ref
(** Chaos-drill fault hook ([gcchaos]; off — [None] — everywhere else).
    Armed with [Some n], the {e next} {!append} writes only the first [n]
    bytes of its line, flushes, disarms the hook, and raises
    {!Torn_write}: a deterministic stand-in for a crash mid-append, so
    drills can prove {!load}/{!resume} drop exactly the torn tail. *)

val close : writer -> unit

type loaded = {
  meta : Gc_obs.Json.t;  (** The header payload. *)
  entries : (string * Gc_obs.Json.t) list;
      (** Completed cells in journal order, duplicates dropped
          (first occurrence wins). *)
  valid_bytes : int;  (** File prefix covered by intact lines. *)
  torn : bool;  (** An unterminated final line was dropped. *)
}

val load : string -> (loaded, error) result

val resume : string -> (loaded * writer, error) result
(** {!load}, truncate any torn tail, and reopen for appending — the
    one-call entry point for [--resume]. *)
