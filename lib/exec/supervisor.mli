(** Graceful-shutdown signal supervision for sweep commands.

    The first SIGINT/SIGTERM requests the returned interrupt token (the
    {!Pool} stops launching cells and drains the ones in flight, the CLI
    writes its partial, [interrupted]-stamped artifacts and exits
    {!exit_interrupted}); a second signal hard-exits the process with the
    same code immediately. *)

val exit_interrupted : int
(** 130, the conventional fatal-SIGINT exit status; shared with
    [Cli_common.interrupted]. *)

val with_interrupt : ?message:string -> (Cancel.t -> 'a) -> 'a
(** Install the two-stage handlers around [f], passing it the interrupt
    token; the previous handlers are restored afterwards.  [message] is
    printed to stderr on the first signal. *)
