(** A supervised task pool over OCaml 5 domains.

    Where {!Gc_cache.Parallel.map} is a bare fan-out, this pool is the
    runtime for long parameter sweeps: every task gets its own domain and
    {!Cancel.t} token, a monitor enforces per-task wall-clock deadlines,
    transient failures retry with exponential backoff, and an interrupt
    token drains the pool gracefully (in-flight tasks finish, pending ones
    settle as {!Cancelled}).

    Deadline enforcement is two-tier.  At the deadline the task's token is
    requested with {!Cancel.deadline_reason}; a cooperative task (anything
    running under the {!Gc_cache.Simulator} progress hook) raises
    {!Cancel.Cancelled} at its next cancellation point and settles as
    {!Timed_out}.  A task that never reaches a cancellation point is
    abandoned after a grace period — its domain is left running, never
    joined, and reaped when the process exits — so one wedged cell cannot
    hang the grid. *)

exception Transient of string
(** A retryable task failure.  The default {!config} retries only these. *)

val attempt : unit -> int
(** 1-based attempt number of the task running on the calling domain; [1]
    outside the pool.  The [broken:flaky] drill policy keys off this. *)

type 'a outcome =
  | Done of 'a
  | Failed of exn  (** Non-retryable, or retries exhausted. *)
  | Timed_out of float  (** The per-task deadline, in seconds. *)
  | Cancelled  (** Interrupted before completion. *)

type config = {
  domains : int;  (** Max in-flight tasks (each on its own domain). *)
  deadline : float option;  (** Per-attempt wall-clock budget, seconds. *)
  grace : float;
      (** Extra seconds after the deadline before an uncooperative task is
          abandoned. *)
  retries : int;  (** Extra attempts granted to retryable failures. *)
  backoff : float;  (** Base retry sleep, doubling per attempt. *)
  retryable : exn -> bool;
  tick : float;  (** Monitor poll interval, seconds. *)
}

val default_config : unit -> config
(** [domains = recommended_domain_count () - 1] (min 1), no deadline,
    grace 0.25s, 1 retry of {!Transient} with 50ms base backoff. *)

val nap : float -> unit
(** Sleep for the given number of seconds, retrying the {e remaining}
    duration when a signal interrupts the sleep (EINTR) — under the
    signal storms a supervised drain produces, a bare [Unix.sleepf]
    collapses into a busy-spin.  This is the tree's one sanctioned
    sleep. *)

val run :
  ?config:config ->
  ?interrupt:Cancel.t ->
  ?on_start:(int -> Cancel.t -> unit) ->
  ?on_outcome:(int -> 'a outcome -> unit) ->
  (cancel:Cancel.t -> 'a) list ->
  'a outcome list
(** Execute the tasks, at most [config.domains] concurrently, returning
    outcomes in input order.  [on_start] runs on the calling domain just
    before each task's domain is spawned, exposing the task's own cancel
    token so an external event can cancel one in-flight task without
    touching the rest — the serving layer requests it when the client that
    asked for the task disconnects.  [on_outcome] runs on the calling
    domain the moment each task settles (checkpoint journals hook in
    here).  When [interrupt] is requested, no further tasks start;
    in-flight tasks drain (subject to their deadline) and unstarted ones
    settle as {!Cancelled}. *)
