(* Gc_prof: the span tracer (enter/leave/emit, rings, restart), the
   scoped Span.with_ wrapper, nesting under concurrent Pool tasks, the
   Chrome trace-event export (golden file), the raw span-dump JSON round
   trip, the zero-allocation guarantee of the disabled path — including
   on the simulator access loop — and the gcprof CLI (trace conversion
   and the perf-regression compare gate, with its exit-code contract).

   Tracer state is global; every test that records starts with
   [Tracer.start] (fresh rings discard earlier spans) and stops before
   dumping, so order between tests does not matter. *)

module Json = Gc_obs.Json
module Tracer = Gc_prof.Tracer
module Span = Gc_prof.Span
module Chrome = Gc_prof.Chrome
module Pool = Gc_exec.Pool

let gcprof = "../bin/gcprof.exe"

let find_spans name spans =
  List.filter (fun s -> s.Tracer.name = name) spans

let span_interval s = (s.Tracer.ts_ns, s.Tracer.ts_ns + s.Tracer.dur_ns)

(* ---------------------------------------------------------------- tracer *)

let test_enter_leave_dump () =
  Tracer.start ();
  Alcotest.(check bool) "enabled after start" true (Tracer.enabled ());
  let outer = Tracer.enter ~args:[ ("k", "v") ] "outer" in
  let inner = Tracer.enter "inner" in
  Tracer.leave inner;
  Tracer.leave outer;
  Tracer.stop ();
  Alcotest.(check bool) "disabled after stop" false (Tracer.enabled ());
  let spans = Tracer.dump () in
  Alcotest.(check int) "both spans dumped" 2 (List.length spans);
  let o =
    match find_spans "outer" spans with
    | [ s ] -> s
    | _ -> Alcotest.fail "no outer span"
  in
  let i =
    match find_spans "inner" spans with
    | [ s ] -> s
    | _ -> Alcotest.fail "no inner span"
  in
  Alcotest.(check (list (pair string string))) "args recorded"
    [ ("k", "v") ] o.Tracer.args;
  Alcotest.(check bool) "inner nested in outer" true
    (let o0, o1 = span_interval o and i0, i1 = span_interval i in
     o0 <= i0 && i1 <= o1);
  Alcotest.(check bool) "sorted by start time" true
    (match spans with
    | [ a; b ] -> a.Tracer.ts_ns <= b.Tracer.ts_ns
    | _ -> false)

let test_emit_premeasured () =
  Tracer.start ();
  Tracer.emit ~args:[ ("id", "9") ] ~tid:42 ~ts_ns:500 ~dur_ns:100 "past";
  Tracer.stop ();
  match Tracer.dump () with
  | [ s ] ->
      Alcotest.(check string) "name" "past" s.Tracer.name;
      Alcotest.(check int) "caller timestamp kept" 500 s.Tracer.ts_ns;
      Alcotest.(check int) "caller duration kept" 100 s.Tracer.dur_ns;
      Alcotest.(check int) "caller track kept" 42 s.Tracer.tid;
      Alcotest.(check (float 0.)) "emitted spans carry no GC delta" 0.
        s.Tracer.minor_words
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_disabled_is_null () =
  Tracer.stop ();
  let t = Tracer.enter "nope" in
  Alcotest.(check bool) "negative ticket when disabled" true (t < 0);
  Tracer.leave t;
  Tracer.emit ~ts_ns:0 ~dur_ns:1 "nope";
  Alcotest.(check int) "with_ still runs the body" 41
    (Span.with_ "nope" (fun () -> 41))

let test_restart_discards () =
  Tracer.start ();
  Tracer.leave (Tracer.enter "stale");
  Tracer.start ();
  Tracer.leave (Tracer.enter "fresh");
  Tracer.stop ();
  let spans = Tracer.dump () in
  Alcotest.(check int) "only the post-restart span" 1 (List.length spans);
  Alcotest.(check string) "fresh" "fresh" (List.hd spans).Tracer.name

let test_ring_wraparound () =
  Tracer.start ~capacity:4 ();
  for i = 1 to 10 do
    Tracer.leave (Tracer.enter (Printf.sprintf "s%d" i))
  done;
  Tracer.stop ();
  let spans = Tracer.dump () in
  Alcotest.(check bool)
    (Printf.sprintf "at most 4 of 10 spans survive (got %d)" (List.length spans))
    true
    (List.length spans <= 4);
  Alcotest.(check int) "the latest span survives" 1
    (List.length (find_spans "s10" spans))

let test_span_with_exception () =
  Tracer.start ();
  (match Span.with_ "boom" (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "value passes through" 42
    (Span.with_ "ok" (fun () -> 42));
  Tracer.stop ();
  let spans = Tracer.dump () in
  Alcotest.(check int) "raising span still closed" 1
    (List.length (find_spans "boom" spans));
  Alcotest.(check int) "value span closed" 1 (List.length (find_spans "ok" spans))

(* ------------------------------------------------------- json round trip *)

let test_dump_json_roundtrip () =
  let spans = Test_util.chrome_fixture_spans in
  let reparsed =
    Test_util.parse_json (Json.to_string (Tracer.dump_to_json spans))
  in
  match Tracer.dump_of_json reparsed with
  | Ok back ->
      Alcotest.(check int) "length" (List.length spans) (List.length back);
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Printf.sprintf "span %s round-trips" a.Tracer.name)
            true (a = b))
        spans back
  | Error msg -> Alcotest.failf "dump_of_json: %s" msg

let test_dump_of_json_rejects_garbage () =
  match Tracer.dump_of_json (Json.Obj [ ("spans", Json.Int 3) ]) with
  | Error _ -> ()
  | Ok spans -> Alcotest.failf "accepted garbage as %d spans" (List.length spans)

(* ----------------------------------------------------------chrome export *)

(* The golden file pins the trace-event schema Perfetto depends on.
   After an intentional change, regenerate with
   [dune exec test/regen_golden.exe -- chrome > test/golden/chrome_trace.json]. *)
let test_chrome_golden () =
  let rendered =
    Format.asprintf "%a@." Json.pp (Chrome.to_json Test_util.chrome_fixture_spans)
  in
  let golden =
    let ic = open_in_bin "golden/chrome_trace.json" in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  in
  Alcotest.(check string) "chrome trace matches the golden file" golden rendered

let test_chrome_event_fields () =
  let s = List.hd Test_util.chrome_fixture_spans in
  let j = Chrome.event s in
  let member name =
    match Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "event has no %S" name
  in
  Alcotest.(check string) "complete event" "X"
    (Json.get_string (member "ph"));
  Test_util.check_float ~eps:1e-9 "ts is microseconds"
    (float_of_int s.Tracer.ts_ns /. 1000.)
    (Json.get_float (member "ts"));
  Test_util.check_float ~eps:1e-9 "dur is microseconds"
    (float_of_int s.Tracer.dur_ns /. 1000.)
    (Json.get_float (member "dur"));
  match Json.member "minor_words" (member "args") with
  | Some (Json.Float w) ->
      Test_util.check_float ~eps:1e-9 "gc delta in args" s.Tracer.minor_words w
  | _ -> Alcotest.fail "args carry no minor_words"

(* ------------------------------------------------------- pool concurrency *)

(* Same-track spans must nest: any two intervals are disjoint or one
   contains the other. *)
let well_nested spans =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_tid s.Tracer.tid) in
      Hashtbl.replace by_tid s.Tracer.tid (s :: prev))
    spans;
  Hashtbl.fold
    (fun _tid group ok ->
      ok
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 a == b
                 ||
                 let a0, a1 = span_interval a and b0, b1 = span_interval b in
                 a1 <= b0 || b1 <= a0
                 || (a0 <= b0 && b1 <= a1)
                 || (b0 <= a0 && a1 <= b1))
               group)
           group)
    by_tid true

let test_pool_spans_nest () =
  Tracer.start ();
  let tasks =
    List.init 4 (fun i ~cancel:_ ->
        (* Enough work for a measurable span. *)
        let acc = ref 0 in
        for j = 0 to 50_000 do
          acc := !acc + ((i + j) mod 7)
        done;
        !acc)
  in
  let outcomes = Pool.run tasks in
  Tracer.stop ();
  List.iter
    (function
      | Pool.Done _ -> ()
      | _ -> Alcotest.fail "pool task did not complete")
    outcomes;
  let spans = Tracer.dump () in
  let tasks_spans = find_spans "pool.task" spans in
  let attempts = find_spans "pool.attempt" spans in
  let queued = find_spans "pool.queued" spans in
  Alcotest.(check int) "one pool.task span per task" 4 (List.length tasks_spans);
  Alcotest.(check int) "one pool.attempt per first try" 4 (List.length attempts);
  Alcotest.(check int) "one pool.queued per task" 4 (List.length queued);
  Alcotest.(check bool) "same-track spans nest" true (well_nested spans);
  (* Every attempt is contained in some task span on its track. *)
  List.iter
    (fun att ->
      let a0, a1 = span_interval att in
      if
        not
          (List.exists
             (fun t ->
               let t0, t1 = span_interval t in
               t.Tracer.tid = att.Tracer.tid && t0 <= a0 && a1 <= t1)
             tasks_spans)
      then Alcotest.fail "pool.attempt outside every pool.task")
    attempts

let test_pool_retry_spans () =
  Tracer.start ();
  let flaky ~cancel:_ =
    if Pool.attempt () = 1 then raise (Pool.Transient "first try fails");
    41 + Pool.attempt ()
  in
  let config = { (Pool.default_config ()) with Pool.backoff = 0.001 } in
  let outcomes = Pool.run ~config [ flaky ] in
  Tracer.stop ();
  (match outcomes with
  | [ Pool.Done 43 ] -> ()
  | _ -> Alcotest.fail "flaky task did not succeed on attempt 2");
  let spans = Tracer.dump () in
  let attempts = find_spans "pool.attempt" spans in
  Alcotest.(check int) "a pool.attempt span per try" 2 (List.length attempts);
  Alcotest.(check int) "one pool.task span around both" 1
    (List.length (find_spans "pool.task" spans));
  let tries =
    List.sort compare
      (List.filter_map
         (fun s -> List.assoc_opt "attempt" s.Tracer.args)
         attempts)
  in
  Alcotest.(check (list string)) "attempts numbered" [ "1"; "2" ] tries

(* ------------------------------------------------------- zero allocation *)

let measure f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_disabled_zero_alloc () =
  Tracer.stop ();
  (* [Gc.minor_words] boxes its float result inside the bracket, so the
     empty bracket's cost is the calibration baseline; the disabled
     enter/leave path must add exactly nothing to it. *)
  let baseline = measure (fun () -> ()) in
  let cost =
    measure (fun () ->
        for _ = 1 to 10_000 do
          Tracer.leave (Tracer.enter "hot")
        done)
  in
  Alcotest.(check (float 0.))
    "10k disabled enter/leave pairs allocate zero words" baseline cost

let test_simulator_hook_zero_alloc () =
  Tracer.stop ();
  let blocks = Gc_trace.Block_map.uniform ~block_size:4 in
  let requests = Array.init 20_000 (fun i -> i * 7 mod 512) in
  let trace = Gc_trace.Trace.make blocks requests in
  let run progress =
    let p = Gc_cache.Registry.make "lru" ~k:64 ~blocks ~seed:1 in
    measure (fun () ->
        ignore (Gc_cache.Simulator.run ~check:false ?progress p trace))
  in
  let plain = run None in
  let progress, finish = Gc_cache.Obs_run.span_hooks () in
  let hooked = run (Some progress) in
  finish ();
  let per_access = (hooked -. plain) /. float_of_int (Array.length requests) in
  if per_access > 0.01 then
    Alcotest.failf
      "disabled span hook allocates %.4f minor words per access (plain %.0f, hooked %.0f)"
      per_access plain hooked

(* ------------------------------------------------------------- gcprof cli *)

(* Run a shell command, returning (exit code, combined stdout+stderr). *)
let exec cmd =
  let out = Filename.temp_file "gc_prof" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out)) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let write_json path j =
  let oc = open_out_bin path in
  output_string oc (Json.to_string j);
  output_string oc "\n";
  close_out oc

let temp_json name j =
  let path = Filename.temp_file ("gc_prof_" ^ name) ".json" in
  write_json path j;
  path

(* The minimal manifest shape `gcprof compare` gates on: extra.perf rows. *)
let perf_manifest rows =
  let row (policy, ns_per_access, minor_per_access) =
    Json.Obj
      [
        ("policy", Json.String policy);
        ("ns_per_run", Json.Float (ns_per_access *. 1000.));
        ("ns_per_access", Json.Float ns_per_access);
        ("minor_allocated", Json.Float (minor_per_access *. 1000.));
        ("minor_words_per_access", Json.Float minor_per_access);
      ]
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("tool", Json.String "bench");
      ("command", Json.String "perf");
      ("runs", Json.Array []);
      ("extra", Json.Obj [ ("perf", Json.Array (List.map row rows)) ]);
    ]

let compare_exit old_rows new_rows =
  let old_path = temp_json "old" (perf_manifest old_rows) in
  let new_path = temp_json "new" (perf_manifest new_rows) in
  let code, out = exec (Printf.sprintf "%s compare %s %s" gcprof old_path new_path) in
  Sys.remove old_path;
  Sys.remove new_path;
  (code, out)

let baseline_rows = [ ("lru", 1000., 40.); ("fifo", 800., 30.) ]

let test_gcprof_compare_ok () =
  let code, out = compare_exit baseline_rows baseline_rows in
  Alcotest.(check int) "identical runs exit 0" 0 code;
  Alcotest.(check bool) "says no regressions" true
    (Test_util.contains out "no regressions")

let test_gcprof_compare_within_threshold () =
  (* +8% is inside the 10% gate. *)
  let code, _ =
    compare_exit baseline_rows [ ("lru", 1080., 40.); ("fifo", 800., 30.) ]
  in
  Alcotest.(check int) "8% slower still passes" 0 code

let test_gcprof_compare_regression () =
  let code, out =
    compare_exit baseline_rows [ ("lru", 1250., 40.); ("fifo", 800., 30.) ]
  in
  Alcotest.(check int) "25% slower exits 1" 1 code;
  Alcotest.(check bool) "names the regression" true
    (Test_util.contains out "REGRESSED")

let test_gcprof_compare_alloc_growth () =
  let code, out =
    compare_exit baseline_rows [ ("lru", 1000., 60.); ("fifo", 800., 30.) ]
  in
  Alcotest.(check int) "+50% minor words exits 1" 1 code;
  Alcotest.(check bool) "names the allocation growth" true
    (Test_util.contains out "ALLOC GREW")

let test_gcprof_compare_missing_policy () =
  let code, out = compare_exit baseline_rows [ ("lru", 1000., 40.) ] in
  Alcotest.(check int) "policy missing from NEW exits 1" 1 code;
  Alcotest.(check bool) "says which disappeared" true
    (Test_util.contains out "MISSING")

let test_gcprof_compare_threshold_flag () =
  (* The same 25% regression passes under an explicit looser gate. *)
  let old_path = temp_json "old" (perf_manifest baseline_rows) in
  let new_path =
    temp_json "new"
      (perf_manifest [ ("lru", 1250., 40.); ("fifo", 800., 30.) ])
  in
  let code, _ =
    exec (Printf.sprintf "%s compare --threshold 30 %s %s" gcprof old_path new_path)
  in
  Sys.remove old_path;
  Sys.remove new_path;
  Alcotest.(check int) "looser threshold passes" 0 code

let test_gcprof_compare_errors () =
  let corrupt = Filename.temp_file "gc_prof_corrupt" ".json" in
  let oc = open_out_bin corrupt in
  output_string oc "{not json";
  close_out oc;
  let ok = temp_json "ok" (perf_manifest baseline_rows) in
  let code, _ = exec (Printf.sprintf "%s compare %s %s" gcprof corrupt ok) in
  Alcotest.(check int) "corrupt manifest exits 1" 1 code;
  let code, _ = exec (Printf.sprintf "%s compare %s" gcprof ok) in
  Alcotest.(check int) "missing positional arg exits 2" 2 code;
  Sys.remove corrupt;
  Sys.remove ok

let test_gcprof_trace_converts () =
  let dump =
    temp_json "dump" (Tracer.dump_to_json Test_util.chrome_fixture_spans)
  in
  let out_path = Filename.temp_file "gc_prof_chrome" ".json" in
  let code, _ = exec (Printf.sprintf "%s trace %s %s" gcprof dump out_path) in
  Alcotest.(check int) "trace exits 0" 0 code;
  let converted = Test_util.parse_json_file out_path in
  Alcotest.(check string) "chrome document matches the library export"
    (Json.to_string (Chrome.to_json Test_util.chrome_fixture_spans))
    (Json.to_string converted);
  Sys.remove dump;
  Sys.remove out_path

let test_gcprof_trace_rejects_non_dump () =
  let not_dump = temp_json "notdump" (Json.Obj [ ("spans", Json.Int 1) ]) in
  let code, _ = exec (Printf.sprintf "%s trace %s -" gcprof not_dump) in
  Alcotest.(check int) "non-dump input exits 1" 1 code;
  Sys.remove not_dump

let () =
  Alcotest.run "prof"
    [
      ( "tracer",
        [
          Alcotest.test_case "enter/leave/dump" `Quick test_enter_leave_dump;
          Alcotest.test_case "emit pre-measured" `Quick test_emit_premeasured;
          Alcotest.test_case "disabled is null" `Quick test_disabled_is_null;
          Alcotest.test_case "restart discards" `Quick test_restart_discards;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "with_ closes on exception" `Quick
            test_span_with_exception;
        ] );
      ( "json",
        [
          Alcotest.test_case "dump round-trips" `Quick test_dump_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_dump_of_json_rejects_garbage;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "golden file" `Quick test_chrome_golden;
          Alcotest.test_case "event fields" `Quick test_chrome_event_fields;
        ] );
      ( "pool",
        [
          Alcotest.test_case "spans nest under concurrency" `Quick
            test_pool_spans_nest;
          Alcotest.test_case "retry attempts traced" `Quick test_pool_retry_spans;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "disabled path is allocation-free" `Quick
            test_disabled_zero_alloc;
          Alcotest.test_case "simulator hook adds nothing" `Quick
            test_simulator_hook_zero_alloc;
        ] );
      ( "gcprof",
        [
          Alcotest.test_case "compare ok" `Quick test_gcprof_compare_ok;
          Alcotest.test_case "compare within threshold" `Quick
            test_gcprof_compare_within_threshold;
          Alcotest.test_case "compare regression" `Quick
            test_gcprof_compare_regression;
          Alcotest.test_case "compare alloc growth" `Quick
            test_gcprof_compare_alloc_growth;
          Alcotest.test_case "compare missing policy" `Quick
            test_gcprof_compare_missing_policy;
          Alcotest.test_case "compare --threshold" `Quick
            test_gcprof_compare_threshold_flag;
          Alcotest.test_case "compare error exits" `Quick
            test_gcprof_compare_errors;
          Alcotest.test_case "trace converts a dump" `Quick
            test_gcprof_trace_converts;
          Alcotest.test_case "trace rejects non-dumps" `Quick
            test_gcprof_trace_rejects_non_dump;
        ] );
    ]
