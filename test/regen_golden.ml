(* Reprints the golden artifacts byte-for-byte after an intentional
   schema change:

     dune exec test/regen_golden.exe -- manifest > test/golden/manifest.json
     dune exec test/regen_golden.exe -- chrome > test/golden/chrome_trace.json

   The fixtures live in Test_util, shared with the golden checks in
   test_obs and test_prof, so printer and check cannot drift apart. *)

module Json = Gc_obs.Json

let print j = Format.printf "%a@." Json.pp j

let () =
  match Sys.argv with
  | [| _; "manifest" |] ->
      print
        (Gc_obs.Manifest.to_json
           (Gc_obs.Manifest.zero_volatile (Test_util.build_golden_manifest ())))
  | [| _; "chrome" |] ->
      print (Gc_prof.Chrome.to_json Test_util.chrome_fixture_spans)
  | _ ->
      prerr_endline "usage: regen_golden (manifest|chrome)";
      exit 2
