(* Reprints the golden artifacts byte-for-byte after an intentional
   schema change:

     dune exec test/regen_golden.exe -- manifest > test/golden/manifest.json
     dune exec test/regen_golden.exe -- chrome > test/golden/chrome_trace.json
     dune exec test/regen_golden.exe -- gcanalyze > test/golden/gcanalyze.json

   The fixtures live in Test_util (or, for gcanalyze, in Gc_analysis
   itself: the same Engine.grid the CLI serves), shared with the golden
   checks in test_obs/test_prof/test_analysis, so printer and check
   cannot drift apart. *)

module Json = Gc_obs.Json

let print j = Format.printf "%a@." Json.pp j

let () =
  match Sys.argv with
  | [| _; "manifest" |] ->
      print
        (Gc_obs.Manifest.to_json
           (Gc_obs.Manifest.zero_volatile (Test_util.build_golden_manifest ())))
  | [| _; "chrome" |] ->
      print (Gc_prof.Chrome.to_json Test_util.chrome_fixture_spans)
  | [| _; "gcanalyze" |] ->
      print
        (Gc_analysis.Report.doc_to_json
           (Gc_analysis.Engine.grid ~name:"demo" (Gc_analysis.Catalog.demo ())))
  | _ ->
      prerr_endline "usage: regen_golden (manifest|chrome|gcanalyze)";
      exit 2
