open Gc_trace
open Gc_cache

let rng () = Rng.create 99

(* --------------------------------------------------------------- Lru_core *)

let test_lru_core_order () =
  let l = Lru_core.create () in
  List.iter (Lru_core.touch l) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "mru order" [ 3; 2; 1 ] (Lru_core.to_list_mru_first l);
  Lru_core.touch l 1;
  Alcotest.(check (list int)) "after touch" [ 1; 3; 2 ] (Lru_core.to_list_mru_first l);
  Alcotest.(check (option int)) "lru" (Some 2) (Lru_core.lru l);
  Alcotest.(check (option int)) "mru" (Some 1) (Lru_core.mru l);
  Lru_core.remove l 3;
  Alcotest.(check (list int)) "after remove" [ 1; 2 ] (Lru_core.to_list_mru_first l);
  Alcotest.(check (option int)) "pop" (Some 2) (Lru_core.pop_lru l);
  Alcotest.(check (option int)) "pop" (Some 1) (Lru_core.pop_lru l);
  Alcotest.(check (option int)) "empty" None (Lru_core.pop_lru l);
  Alcotest.(check int) "size" 0 (Lru_core.size l)

let test_lru_core_insert_if_absent () =
  let l = Lru_core.create () in
  Lru_core.insert_if_absent l 1;
  Lru_core.insert_if_absent l 2;
  Lru_core.insert_if_absent l 1;
  Alcotest.(check (list int)) "no reorder" [ 2; 1 ] (Lru_core.to_list_mru_first l)

(* -------------------------------------------------------------- Index_set *)

let test_index_set () =
  let s = Index_set.create () in
  List.iter (Index_set.add s) [ 5; 7; 9; 7 ];
  Alcotest.(check int) "size dedups" 3 (Index_set.size s);
  Alcotest.(check bool) "mem" true (Index_set.mem s 7);
  Index_set.remove s 7;
  Alcotest.(check bool) "removed" false (Index_set.mem s 7);
  Index_set.remove s 7;
  Alcotest.(check int) "idempotent remove" 2 (Index_set.size s);
  let r = rng () in
  for _ = 1 to 50 do
    let v = Index_set.random s r in
    Alcotest.(check bool) "random member" true (v = 5 || v = 9)
  done;
  Index_set.clear s;
  Alcotest.(check int) "cleared" 0 (Index_set.size s)

(* ------------------------------------------------- policies vs references *)

let qcheck_lru_matches_reference =
  Test_util.qcheck ~count:300 "LRU matches list reference"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let reference = Test_util.Reference_cache.create ~k ~touch_on_hit:true in
      let expected = Test_util.Reference_cache.misses reference reqs in
      expected = Test_util.run_misses (Lru.create ~k) trace)

let qcheck_fifo_matches_reference =
  Test_util.qcheck ~count:300 "FIFO matches list reference"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let reference = Test_util.Reference_cache.create ~k ~touch_on_hit:false in
      let expected = Test_util.Reference_cache.misses reference reqs in
      expected = Test_util.run_misses (Fifo.create ~k) trace)

(* Tree-PLRU against hand-computed bit-tree traces (k = 4: a full
   two-level tree; k = 3: padded to 4 with a locked phantom way the
   victim walk must route around). *)
let test_plru_eviction_sequence () =
  let p = Plru.create ~k:4 in
  let feed x = ignore (Policy.access p x) in
  List.iter feed [ 10; 11; 12; 13 ];
  (* Fill order leaves all bits pointing left-left: victim is way 0. *)
  feed 14;
  Alcotest.(check bool) "10 evicted" false (Policy.mem p 10);
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x ^ " kept") true (Policy.mem p x))
    [ 11; 12; 13; 14 ];
  (* Hitting 11 flips the root toward the right subtree; its bit says
     left, so the next victim is way 2 (item 12). *)
  feed 11;
  feed 15;
  Alcotest.(check bool) "12 evicted" false (Policy.mem p 12);
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x ^ " kept") true (Policy.mem p x))
    [ 11; 13; 14; 15 ]

let test_plru_non_pow2 () =
  let p = Plru.create ~k:3 in
  let feed x = ignore (Policy.access p x) in
  List.iter feed [ 1; 2; 3 ];
  feed 4;
  (* Bits point left-left after the fill: way 0 (item 1) goes. *)
  Alcotest.(check bool) "1 evicted" false (Policy.mem p 1);
  (* Root now points right; the right subtree's bit also points right,
     but way 3 is a phantom, so the walk is forced back to way 2. *)
  feed 5;
  Alcotest.(check bool) "3 evicted" false (Policy.mem p 3);
  List.iter
    (fun x -> Alcotest.(check bool) (string_of_int x ^ " kept") true (Policy.mem p x))
    [ 2; 4; 5 ];
  Alcotest.(check int) "occupancy capped at 3" 3 (Policy.occupancy p)

let test_lfu_evicts_least_frequent () =
  let p = Lfu.create ~k:2 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 1;
  feed 2;
  (* Cache {1(x2), 2(x1)}; loading 3 must evict 2. *)
  feed 3;
  Alcotest.(check bool) "1 kept" true (Policy.mem p 1);
  Alcotest.(check bool) "2 evicted" false (Policy.mem p 2);
  Alcotest.(check bool) "3 loaded" true (Policy.mem p 3)

let test_lfu_tie_breaks_lru () =
  let p = Lfu.create ~k:2 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 2;
  (* Both frequency 1; 1 is older -> evicted. *)
  feed 3;
  Alcotest.(check bool) "older evicted" false (Policy.mem p 1);
  Alcotest.(check bool) "newer kept" true (Policy.mem p 2)

let test_clock_second_chance () =
  let p = Clock.create ~k:2 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 2;
  feed 1 (* sets 1's reference bit *);
  feed 3 (* hand clears 1, evicts 2 *);
  Alcotest.(check bool) "referenced survives" true (Policy.mem p 1);
  Alcotest.(check bool) "unreferenced evicted" false (Policy.mem p 2)

let test_random_evict_occupancy () =
  let p = Random_evict.create ~k:4 ~rng:(rng ()) in
  for x = 0 to 99 do
    ignore (Policy.access p x)
  done;
  Alcotest.(check int) "occupancy capped" 4 (Policy.occupancy p)

(* ------------------------------------------------------------- Block_lru *)

let test_block_lru_loads_whole_block () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Block_lru.create ~k:8 ~blocks in
  (match Policy.access p 1 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "whole block" [ 0; 1; 2; 3 ] (List.sort compare loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  Alcotest.(check bool) "sibling cached" true (Policy.mem p 3);
  Alcotest.(check int) "occupancy" 4 (Policy.occupancy p);
  ignore (Policy.access p 5);
  Alcotest.(check int) "two blocks" 8 (Policy.occupancy p);
  (* Third block evicts the LRU block (block 0). *)
  (match Policy.access p 9 with
  | Policy.Miss { evicted; _ } ->
      Alcotest.(check (list int)) "whole block evicted" [ 0; 1; 2; 3 ]
        (List.sort compare evicted)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  Alcotest.(check bool) "block 0 gone" false (Policy.mem p 1)

let test_block_lru_requires_space () =
  Alcotest.check_raises "k < B"
    (Invalid_argument "Block_lru.create: k smaller than block size") (fun () ->
      ignore (Block_lru.create ~k:3 ~blocks:(Block_map.uniform ~block_size:4)))

(* ------------------------------------------------------------------ IBLP *)

let test_iblp_degenerates_to_lru =
  Test_util.qcheck ~count:200 "IBLP with b=0 equals LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let blocks = trace.Trace.blocks in
      let iblp = Iblp.create ~i:k ~b:0 ~blocks () in
      Test_util.run_misses iblp trace
      = Test_util.run_misses (Lru.create ~k) trace)

let test_iblp_degenerates_to_block_lru =
  Test_util.qcheck ~count:200 "IBLP with i=0 equals Block-LRU"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ())
       QCheck.(int_range 1 4))
    (fun ((bs, reqs), kb) ->
      let k = kb * bs in
      let trace = Test_util.trace_of (bs, reqs) in
      let blocks = trace.Trace.blocks in
      let iblp = Iblp.create ~i:0 ~b:k ~blocks () in
      Test_util.run_misses iblp trace
      = Test_util.run_misses (Block_lru.create ~k ~blocks) trace)

let test_iblp_item_hit_does_not_reorder_block_layer () =
  (* B = 2; block layer holds 2 blocks; item layer holds 2 items.
     Load blocks 0 then 1, then hammer item 0 through the item layer only;
     loading block 2 must still evict block 0, whose block-layer recency is
     untouched by item-layer hits. *)
  let blocks = Block_map.uniform ~block_size:2 in
  let p = Iblp.create ~i:2 ~b:4 ~blocks () in
  ignore (Policy.access p 0) (* miss: block 0 resident; item layer {0} *);
  ignore (Policy.access p 2) (* miss: block 1 resident; item layer {2,0} *);
  ignore (Policy.access p 0) (* item-layer hit: must NOT touch block layer *);
  ignore (Policy.access p 0);
  ignore (Policy.access p 0);
  (* Now load block 2: LRU block must be block 0 despite the recent hits. *)
  (match Policy.access p 4 with
  | Policy.Miss { evicted; _ } ->
      Alcotest.(check bool) "block 0's other item evicted" true
        (List.mem 1 evicted)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  (* Item 0 survives in the item layer even though its block was evicted. *)
  Alcotest.(check bool) "hot item survives in item layer" true (Policy.mem p 0);
  Alcotest.(check bool) "cold sibling gone" false (Policy.mem p 1)

let test_iblp_spatial_hits () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Iblp.create ~i:2 ~b:8 ~blocks () in
  let trace = Trace.of_list blocks [ 0; 1; 2; 3 ] in
  let m = Simulator.run p trace in
  Alcotest.(check int) "one miss" 1 m.Metrics.misses;
  Alcotest.(check int) "three spatial hits" 3 m.Metrics.spatial_hits

let test_iblp_occupancy_counts_duplicates () =
  let blocks = Block_map.uniform ~block_size:2 in
  let p = Iblp.create ~i:2 ~b:2 ~blocks () in
  ignore (Policy.access p 0);
  (* Item 0 is in both layers: 1 (item layer) + 2 (block layer). *)
  Alcotest.(check int) "duplicate counted" 3 (Policy.occupancy p)

let test_iblp_create_validation () =
  let blocks = Block_map.uniform ~block_size:4 in
  Alcotest.check_raises "nothing fits"
    (Invalid_argument "Iblp.create: cache cannot hold anything (i = 0, b < B)")
    (fun () -> ignore (Iblp.create ~i:0 ~b:3 ~blocks ()))

(* --------------------------------------------------------------- Marking *)

let test_marking_never_evicts_marked () =
  let p = Marking.create ~k:3 ~rng:(rng ()) in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 2;
  feed 3;
  (* All marked; next miss starts a new phase, then evicts one at random —
     but within the phase, re-accessing keeps everything. *)
  feed 1;
  feed 2;
  feed 3;
  Alcotest.(check int) "full" 3 (Policy.occupancy p);
  feed 4;
  (* New phase: 4 is marked, one of {1,2,3} was evicted. *)
  Alcotest.(check bool) "4 present" true (Policy.mem p 4);
  Alcotest.(check int) "occupancy" 3 (Policy.occupancy p)

let test_marking_hits_within_phase () =
  let p = Marking.create ~k:4 ~rng:(rng ()) in
  let trace = Test_util.trace_of (1, [| 0; 1; 2; 3; 0; 1; 2; 3 |]) in
  let m = Simulator.run p trace in
  Alcotest.(check int) "4 cold misses only" 4 m.Metrics.misses

(* ------------------------------------------------------------------- GCM *)

let test_gcm_loads_block_marks_requested () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Gcm.create ~k:8 ~blocks ~rng:(rng ()) () in
  (match Policy.access p 1 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "whole block loaded" [ 0; 1; 2; 3 ]
        (List.sort compare loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  (* Fill with another block; the unmarked siblings of 1 are fair game,
     marked 1 is not: after many conflicting loads, 1 must survive until a
     phase change. *)
  ignore (Policy.access p 5);
  ignore (Policy.access p 9) (* replaces unmarked items, never 1 or 5 *);
  Alcotest.(check bool) "marked 1 survives" true (Policy.mem p 1);
  Alcotest.(check bool) "marked 5 survives" true (Policy.mem p 5)

let test_gcm_load_limit_one_loads_only_requested () =
  let blocks = Block_map.uniform ~block_size:8 in
  let p = Gcm.create ~load_limit:1 ~k:16 ~blocks ~rng:(rng ()) () in
  match Policy.access p 3 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "only the request" [ 3 ] loaded
  | Policy.Hit _ -> Alcotest.fail "expected miss"

let test_gcm_load_limit_caps_loads =
  Test_util.qcheck ~count:150 "GCM never loads more than its limit"
    (QCheck.triple
       (Test_util.small_trace_arbitrary ~max_universe:24 ~max_len:100 ())
       QCheck.(int_range 1 4)
       QCheck.(int_range 0 1000))
    (fun ((bs, reqs), m, seed) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let p =
        Gcm.create ~load_limit:m ~k:(4 * bs) ~blocks:trace.Trace.blocks
          ~rng:(Rng.create seed) ()
      in
      let ok = ref true in
      Array.iter
        (fun x ->
          match Policy.access p x with
          | Policy.Miss { loaded; _ } ->
              if List.length loaded > m then ok := false
          | Policy.Hit _ -> ())
        reqs;
      !ok)

let test_gcm_spatial_hits_on_scan () =
  let blocks = Block_map.uniform ~block_size:8 in
  let p = Gcm.create ~k:16 ~blocks ~rng:(rng ()) () in
  let trace = Generators.sequential ~n:16 ~universe:16 ~block_size:8 in
  let m = Simulator.run p trace in
  Alcotest.(check int) "2 misses for 2 blocks" 2 m.Metrics.misses;
  Alcotest.(check int) "14 spatial hits" 14 m.Metrics.spatial_hits

(* --------------------------------------------------------------- Param_a *)

let test_param_a_one_loads_block () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Param_a.create ~k:8 ~a:1 ~blocks in
  (match Policy.access p 2 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check int) "whole block" 4 (List.length loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss")

let test_param_a_two_waits () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Param_a.create ~k:8 ~a:2 ~blocks in
  (match Policy.access p 2 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "only requested" [ 2 ] loaded
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  (match Policy.access p 3 with
  | Policy.Miss { loaded; _ } ->
      (* Second distinct consecutive access: the rest of the block comes in. *)
      Alcotest.(check (list int)) "rest of block" [ 0; 1; 3 ]
        (List.sort compare loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss")

let test_param_a_run_resets () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Param_a.create ~k:12 ~a:2 ~blocks in
  ignore (Policy.access p 2) (* block 0, run = {2} *);
  ignore (Policy.access p 5) (* block 1 resets the run *);
  (match Policy.access p 3 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "run was reset" [ 3 ] loaded
  | Policy.Hit _ -> Alcotest.fail "expected miss")

let test_param_a_large_behaves_like_lru =
  Test_util.qcheck ~count:200 "param-a with huge a equals LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 4 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let p = Param_a.create ~k ~a:1000 ~blocks:trace.Trace.blocks in
      Test_util.run_misses p trace = Test_util.run_misses (Lru.create ~k) trace)

(* A deliberately slow, obviously-correct IBLP model for differential
   testing of the production implementation: plain lists, MRU first. *)
module Reference_iblp = struct
  type t = {
    i : int;
    cap_blocks : int;
    bsize : int;
    mutable items : int list;
    mutable blocks : int list;
  }

  let create ~i ~b ~bsize =
    { i; cap_blocks = b / bsize; bsize; items = []; blocks = [] }

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest

  (* Returns true on hit. *)
  let access t x =
    let blk = x / t.bsize in
    if List.mem x t.items then begin
      t.items <- x :: List.filter (fun y -> y <> x) t.items;
      true
    end
    else if List.mem blk t.blocks then begin
      t.blocks <- blk :: List.filter (fun b -> b <> blk) t.blocks;
      if t.i > 0 then
        t.items <- take t.i (x :: List.filter (fun y -> y <> x) t.items);
      true
    end
    else begin
      if t.cap_blocks > 0 then
        t.blocks <- take t.cap_blocks (blk :: t.blocks);
      if t.i > 0 then
        t.items <- take t.i (x :: List.filter (fun y -> y <> x) t.items);
      false
    end
end

let qcheck_iblp_matches_reference =
  Test_util.qcheck ~count:400 "IBLP hit/miss sequence matches list reference"
    (QCheck.triple
       (Test_util.small_trace_arbitrary ~max_universe:24 ~max_len:120 ())
       QCheck.(int_range 0 6)
       QCheck.(int_range 0 3))
    (fun ((bs, reqs), i, b_blocks) ->
      let b = b_blocks * bs in
      QCheck.assume (i + b >= 1 && (i > 0 || b >= bs));
      let trace = Test_util.trace_of (bs, reqs) in
      let prod = Iblp.create ~i ~b ~blocks:trace.Trace.blocks () in
      let reference = Reference_iblp.create ~i ~b ~bsize:bs in
      Array.for_all
        (fun x ->
          let expected = Reference_iblp.access reference x in
          let got =
            match Policy.access prod x with
            | Policy.Hit _ -> true
            | Policy.Miss _ -> false
          in
          expected = got)
        reqs)

let test_iblp_reorder_ablation_hurts_worst_case () =
  (* The Section-5.1 design argument: if item-layer hits refreshed the
     block layer, blocks holding one hot item would pin the block layer and
     starve a concurrent scan.  Faithful IBLP serves the scan from the
     block layer; the ablated variant thrashes. *)
  let block_size = 16 in
  let blocks = Block_map.uniform ~block_size in
  let b = 384 in
  let n_hot = b / block_size in
  let hot_blocks = Array.init n_hot (fun j -> 1000 + j) in
  let scan_blocks = Array.init (n_hot - 4) (fun j -> 2000 + j) in
  let requests = ref [] in
  let push x = requests := x :: !requests in
  Array.iter
    (fun blk ->
      push ((blk * block_size) + 1);
      push (blk * block_size))
    hot_blocks;
  for round = 0 to 1000 do
    let scan = scan_blocks.(round mod Array.length scan_blocks) in
    let offset = round / Array.length scan_blocks mod block_size in
    push ((scan * block_size) + offset);
    Array.iter (fun blk -> push (blk * block_size)) hot_blocks
  done;
  let trace = Trace.make blocks (Array.of_list (List.rev !requests)) in
  let run reorder =
    let p = Iblp.create ~reorder_on_item_hit:reorder ~i:64 ~b ~blocks () in
    Test_util.run_misses p trace
  in
  let faithful = run false and ablated = run true in
  Alcotest.(check bool)
    (Printf.sprintf "faithful %d << ablated %d" faithful ablated)
    true
    (5 * faithful < ablated)

(* ------------------------------------------------------------------ FWF *)

let test_fwf_flushes () =
  let p = Fwf.create ~k:3 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 2;
  feed 3;
  Alcotest.(check int) "full" 3 (Policy.occupancy p);
  (match Policy.access p 4 with
  | Policy.Miss { evicted; _ } ->
      Alcotest.(check (list int)) "flushes everything" [ 1; 2; 3 ]
        (List.sort compare evicted)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  Alcotest.(check int) "only the new item" 1 (Policy.occupancy p)

let qcheck_fwf_at_most_k_plus_one_phases =
  Test_util.qcheck ~count:150 "FWF misses <= (distinct plus flush churn)"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      (* Sanity invariant: FWF never beats Belady, never exceeds trace
         length. *)
      let misses = Test_util.run_misses (Fwf.create ~k) trace in
      misses <= Array.length reqs
      && misses >= Gc_offline.Belady.cost ~k trace)

(* ------------------------------------------------------------- Replicates *)

let test_replicates_summary () =
  let s = Replicates.summarize [ 2.; 4.; 6. ] in
  Test_util.check_float ~eps:1e-9 "mean" 4. s.Replicates.mean;
  Test_util.check_float ~eps:1e-9 "min" 2. s.Replicates.min;
  Test_util.check_float ~eps:1e-9 "max" 6. s.Replicates.max;
  Test_util.check_float ~eps:1e-9 "stddev" (sqrt (8. /. 3.)) s.Replicates.stddev

let test_replicates_deterministic_policy_has_zero_variance () =
  let trace = Test_util.trace_of (2, Array.init 200 (fun i -> i mod 17)) in
  let s =
    Replicates.misses
      ~make:(fun ~seed:_ -> Lru.create ~k:8)
      ~trace ~seeds:[ 1; 2; 3; 4 ]
  in
  Test_util.check_float ~eps:1e-9 "no variance" 0. s.Replicates.stddev

let test_replicates_randomized_policy_varies () =
  let trace =
    Generators.uniform_random (rng ()) ~n:5000 ~universe:200 ~block_size:4
  in
  let s =
    Replicates.misses
      ~make:(fun ~seed ->
        Random_evict.create ~k:50 ~rng:(Rng.create seed))
      ~trace
      ~seeds:(List.init 8 (fun i -> i))
  in
  Alcotest.(check bool) "some variance" true (s.Replicates.stddev > 0.)

(* --------------------------------------------------------------- Timeline *)

let test_timeline_sums_to_metrics () =
  let trace =
    Generators.spatial_mix (rng ()) ~n:10_000 ~universe:2048 ~block_size:8
      ~p_spatial:0.5
  in
  let p = Registry.make "iblp" ~k:128 ~blocks:trace.Trace.blocks ~seed:1 in
  let points, m = Timeline.run ~window:512 p trace in
  Alcotest.(check int) "windows cover trace" (Trace.length trace)
    (List.fold_left (fun a pt -> a + pt.Timeline.accesses) 0 points);
  Alcotest.(check int) "misses sum" m.Metrics.misses
    (List.fold_left (fun a pt -> a + pt.Timeline.misses) 0 points);
  Alcotest.(check int) "spatial hits sum" m.Metrics.spatial_hits
    (List.fold_left (fun a pt -> a + pt.Timeline.spatial_hits) 0 points)

let test_timeline_detects_phase_change () =
  (* Small working set, then a huge one: the miss rate must jump. *)
  let trace =
    Generators.working_set_phases (rng ()) ~block_size:4
      ~phases:[ (64, 8000); (100_000, 8000) ]
  in
  let p = Registry.make "lru" ~k:256 ~blocks:trace.Trace.blocks ~seed:1 in
  let points, _ = Timeline.run ~window:2000 p trace in
  let rates = List.map snd (Timeline.miss_rates points) in
  let early = List.nth rates 1 and late = List.nth rates 6 in
  Alcotest.(check bool)
    (Printf.sprintf "rate jumps (%.3f -> %.3f)" early late)
    true
    (late > 10. *. early)

let test_timeline_ragged_last_window () =
  (* 1000 accesses in windows of 300: the last window holds the 100
     leftovers, and starts line up on window boundaries. *)
  let trace =
    Generators.uniform_random (rng ()) ~n:1000 ~universe:400 ~block_size:4
  in
  let p = Registry.make "lru" ~k:64 ~blocks:trace.Trace.blocks ~seed:1 in
  let points, m = Timeline.run ~window:300 p trace in
  Alcotest.(check (list int))
    "starts" [ 0; 300; 600; 900 ]
    (List.map (fun pt -> pt.Timeline.start) points);
  Alcotest.(check (list int))
    "window sizes" [ 300; 300; 300; 100 ]
    (List.map (fun pt -> pt.Timeline.accesses) points);
  Alcotest.(check int) "misses sum" m.Metrics.misses
    (List.fold_left (fun a pt -> a + pt.Timeline.misses) 0 points)

let test_timeline_window_larger_than_trace () =
  let trace =
    Generators.uniform_random (rng ()) ~n:57 ~universe:400 ~block_size:4
  in
  let p = Registry.make "lru" ~k:64 ~blocks:trace.Trace.blocks ~seed:1 in
  let points, m = Timeline.run ~window:1000 p trace in
  match points with
  | [ pt ] ->
      Alcotest.(check int) "start" 0 pt.Timeline.start;
      Alcotest.(check int) "accesses" 57 pt.Timeline.accesses;
      Alcotest.(check int) "misses" m.Metrics.misses pt.Timeline.misses;
      Alcotest.(check int) "spatial" m.Metrics.spatial_hits
        pt.Timeline.spatial_hits
  | pts ->
      Alcotest.failf "expected exactly one window, got %d" (List.length pts)

let test_timeline_empty_trace () =
  let blocks = Gc_trace.Block_map.uniform ~block_size:4 in
  let trace = Trace.of_list blocks [] in
  let p = Registry.make "lru" ~k:4 ~blocks ~seed:1 in
  let points, _ = Timeline.run ~window:10 p trace in
  Alcotest.(check int) "no windows" 0 (List.length points)

let qcheck_timeline_windows_agree_with_metrics =
  Test_util.qcheck ~count:50
    "timeline window sums equal overall metrics (any window)"
    QCheck.(pair (Test_util.small_trace_arbitrary ()) (int_range 1 500))
    (fun (small, window) ->
         let trace = Test_util.trace_of small in
         let p = Registry.make "iblp" ~k:32 ~blocks:trace.Trace.blocks ~seed:1 in
         let points, m = Timeline.run ~window p trace in
         let sum f = List.fold_left (fun a pt -> a + f pt) 0 points in
         sum (fun pt -> pt.Timeline.accesses) = m.Metrics.accesses
         && sum (fun pt -> pt.Timeline.misses) = m.Metrics.misses
         && sum (fun pt -> pt.Timeline.spatial_hits) = m.Metrics.spatial_hits
         && List.for_all
              (fun pt ->
                pt.Timeline.accesses > 0
                && pt.Timeline.accesses <= window
                && pt.Timeline.start mod window = 0)
              points)

(* ------------------------------------------------------------------ ARC *)

let test_arc_promotes_on_second_hit () =
  let p = Arc.create ~k:4 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 1 (* 1 now in T2 *);
  feed 2;
  feed 3;
  feed 4 (* T1 = [4;3;2], T2 = [1] *);
  feed 5 (* cold miss with full cache: evicts from T1 *);
  Alcotest.(check bool) "frequent item survives" true (Policy.mem p 1);
  Alcotest.(check int) "occupancy" 4 (Policy.occupancy p)

let test_arc_ghost_hit_adapts () =
  (* Evict an item, then re-request it: ARC must miss (ghosts hold no
     data) but still cache it afterwards. *)
  let p = Arc.create ~k:2 in
  let feed x = ignore (Policy.access p x) in
  feed 1;
  feed 2;
  feed 3 (* evicts 1 into B1 *);
  Alcotest.(check bool) "1 gone" false (Policy.mem p 1);
  (match Policy.access p 1 with
  | Policy.Miss _ -> ()
  | Policy.Hit _ -> Alcotest.fail "ghost hit must still be a miss");
  Alcotest.(check bool) "1 back" true (Policy.mem p 1)

let qcheck_arc_respects_capacity =
  Test_util.qcheck ~count:200 "ARC occupancy never exceeds k"
    (QCheck.pair (Test_util.small_trace_arbitrary ~max_len:120 ()) QCheck.(int_range 2 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let p = Arc.create ~k in
      let m = Gc_cache.Simulator.run p trace in
      m.Metrics.hits + m.Metrics.misses = m.Metrics.accesses)

(* ------------------------------------------------------------------- 2Q *)

let test_two_q_filters_one_hit_wonders () =
  (* A scan of cold items must not displace the hot working set in Am. *)
  let p = Two_q.create ~in_fraction:0.25 ~k:8 () in
  let feed x = ignore (Policy.access p x) in
  (* Fill the cache and overflow A1in so item 100 lands in the ghost. *)
  feed 100;
  for x = 0 to 7 do
    feed x
  done;
  Alcotest.(check bool) "100 demoted to ghost" false (Policy.mem p 100);
  (* Re-reference within the ghost window: promoted to Am. *)
  feed 100;
  Alcotest.(check bool) "100 back (in Am)" true (Policy.mem p 100);
  (* A long scan of one-hit wonders churns through A1in, not Am. *)
  for x = 20 to 49 do
    feed x
  done;
  Alcotest.(check bool) "hot item survives scan" true (Policy.mem p 100)

let test_two_q_validation () =
  match Two_q.create ~in_fraction:1.5 ~k:8 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad fraction accepted"

(* ---------------------------------------------------------- Block_marking *)

let test_block_marking_marks_whole_block () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Block_marking.create ~k:8 ~blocks ~rng:(rng ()) in
  (match Policy.access p 1 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "whole block" [ 0; 1; 2; 3 ]
        (List.sort compare loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss");
  (* Unlike GCM, the spatially loaded siblings are marked: a later miss on
     another block cannot displace them within the phase. *)
  ignore (Policy.access p 5) (* loads block 1, fills the cache, all marked *);
  (match Policy.access p 9 with
  | Policy.Miss { loaded; evicted } ->
      (* Everything was marked: a phase reset happened for the requested
         item, then extras could displace the now-unmarked items. *)
      Alcotest.(check bool) "loaded something" true (List.length loaded >= 1);
      Alcotest.(check bool) "evicted something" true (List.length evicted >= 1)
  | Policy.Hit _ -> Alcotest.fail "expected miss")

let test_block_marking_pollutes_vs_gcm =
  Test_util.qcheck ~count:50 "block-marking never beats GCM by much on sparse traces"
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      (* One hot item per block: marked siblings are pure pollution. *)
      let trace =
        Generators.zipf_blocks (Rng.create seed) ~n:5_000 ~blocks:256
          ~block_size:8 ~alpha:0.9 ~within:`First
      in
      let run name =
        Test_util.run_misses
          (Registry.make name ~k:128 ~blocks:trace.Trace.blocks ~seed)
          trace
      in
      (* GCM should win (strictly in almost all seeds; allow rare ties). *)
      run "gcm" <= run "block-marking")

(* ---------------------------------------------------------- Iblp_adaptive *)

let test_iblp_adaptive_validation () =
  match
    Iblp_adaptive.create ~k:8 ~blocks:(Block_map.uniform ~block_size:16) ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k < 2B accepted"

let qcheck_iblp_adaptive_model =
  Test_util.qcheck ~count:150 "adaptive IBLP passes checked simulation"
    (QCheck.pair
       (Test_util.small_trace_arbitrary ~max_universe:20 ~max_len:150 ())
       QCheck.(int_range 2 6))
    (fun ((bs, reqs), mult) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let k = 2 * bs * mult in
      let p = Iblp_adaptive.create ~k ~blocks:trace.Trace.blocks () in
      let m = Gc_cache.Simulator.run p trace in
      m.Metrics.hits + m.Metrics.misses = m.Metrics.accesses)

let test_iblp_adaptive_tracks_better_baseline () =
  (* On a temporal workload it should approach LRU; on a spatial workload
     it should approach Block-LRU - in both cases beating the wrong-headed
     fixed split by a margin. *)
  let k = 512 in
  let temporal =
    Generators.zipf_items (Rng.create 3) ~n:60_000 ~universe:4096
      ~block_size:16 ~alpha:1.0
  in
  let spatial =
    Generators.spatial_mix (Rng.create 4) ~n:60_000 ~universe:8192
      ~block_size:16 ~p_spatial:0.85
  in
  let run name trace =
    Test_util.run_misses
      (Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:5)
      trace
  in
  let adapt_t = run "iblp-adaptive" temporal in
  let lru_t = run "lru" temporal in
  let fixed_t = run "iblp" temporal in
  Alcotest.(check bool)
    (Printf.sprintf "temporal: adaptive %d within 15%% of lru %d" adapt_t lru_t)
    true
    (float_of_int adapt_t <= 1.15 *. float_of_int lru_t);
  Alcotest.(check bool) "temporal: adaptive beats fixed split" true
    (adapt_t < fixed_t);
  let adapt_s = run "iblp-adaptive" spatial in
  let bl_s = run "block-lru" spatial in
  Alcotest.(check bool)
    (Printf.sprintf "spatial: adaptive %d within 25%% of block-lru %d" adapt_s
       bl_s)
    true
    (float_of_int adapt_s <= 1.25 *. float_of_int bl_s)

(* --------------------------------------------------------- Stride_prefetch *)

let test_stride_prefetch_degree0_is_lru =
  Test_util.qcheck ~count:200 "degree 0 = LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Test_util.run_misses
        (Stride_prefetch.create ~k ~degree:0 ~blocks:trace.Trace.blocks)
        trace
      = Test_util.run_misses (Lru.create ~k) trace)

let test_stride_prefetch_loads_within_block () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Stride_prefetch.create ~k:8 ~degree:4 ~blocks in
  (* Item 2's block is {0,1,2,3}: prefetch stops at the block edge. *)
  match Policy.access p 2 with
  | Policy.Miss { loaded; _ } ->
      Alcotest.(check (list int)) "request + next-in-block" [ 2; 3 ]
        (List.sort compare loaded)
  | Policy.Hit _ -> Alcotest.fail "expected miss"

let test_stride_prefetch_helps_scans () =
  let trace = Generators.sequential ~n:8192 ~universe:4096 ~block_size:8 in
  let lru = Test_util.run_misses (Lru.create ~k:64) trace in
  let pf =
    Test_util.run_misses
      (Stride_prefetch.create ~k:64 ~degree:7 ~blocks:trace.Trace.blocks)
      trace
  in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch %d ~ lru/8 = %d" pf (lru / 8))
    true
    (8 * pf <= lru + 8)

(* ------------------------------------------------------------------ LRU-K *)

let test_lru_k_depth1_is_lru =
  Test_util.qcheck ~count:200 "LRU-1 = LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Test_util.run_misses (Lru_k.create ~k ~depth:1 ()) trace
      = Test_util.run_misses (Lru.create ~k) trace)

let test_lru_k2_scan_resistance () =
  (* Hot pair accessed twice, then a scan: LRU-2 keeps the hot items (the
     scan items have no second reference), LRU loses them. *)
  let reqs =
    Array.concat
      [ [| 0; 1; 0; 1 |]; Array.init 8 (fun i -> 100 + i); [| 0; 1 |] ]
  in
  let trace = Test_util.trace_of (1, reqs) in
  let lru2 = Test_util.run_misses (Lru_k.create ~k:4 ~depth:2 ()) trace in
  let lru = Test_util.run_misses (Lru.create ~k:4) trace in
  Alcotest.(check bool)
    (Printf.sprintf "LRU-2 %d < LRU %d" lru2 lru)
    true (lru2 < lru)

(* ---------------------------------------------------------------- S3-FIFO *)

let test_s3_fifo_capacity =
  Test_util.qcheck ~count:200 "S3-FIFO never exceeds k"
    (QCheck.pair (Test_util.small_trace_arbitrary ~max_len:200 ()) QCheck.(int_range 2 10))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let m = Gc_cache.Simulator.run (S3_fifo.create ~k ()) trace in
      m.Metrics.hits + m.Metrics.misses = m.Metrics.accesses)

let test_s3_fifo_scan_resistance () =
  (* A hot working set under a long one-hit-wonder scan: S3-FIFO's small
     probationary queue shields the main queue. *)
  let rng1 = Rng.create 5 in
  let hot = Generators.zipf_items rng1 ~n:30_000 ~universe:512 ~block_size:4 ~alpha:1.2 in
  let scan = Generators.sequential ~n:30_000 ~universe:30_000 ~block_size:4 in
  (* Offset the scan's items clear of the hot set. *)
  let scan = Gc_trace.Transform.remap_items scan ~mapping:(fun x -> x + 10_000) in
  let trace = Generators.interleave hot scan in
  let s3 = Test_util.run_misses (S3_fifo.create ~k:1024 ()) trace in
  let lru = Test_util.run_misses (Lru.create ~k:1024) trace in
  Alcotest.(check bool)
    (Printf.sprintf "S3-FIFO %d < LRU %d under scan" s3 lru)
    true (s3 < lru)

(* -------------------------------------------------------------- Set_assoc *)

let test_set_assoc_single_set_is_lru =
  Test_util.qcheck ~count:200 "1 set x k ways = LRU"
    (QCheck.pair (Test_util.small_trace_arbitrary ()) QCheck.(int_range 1 8))
    (fun ((bs, reqs), k) ->
      let trace = Test_util.trace_of (bs, reqs) in
      Test_util.run_misses (Set_assoc.create_lru ~sets:1 ~ways:k) trace
      = Test_util.run_misses (Lru.create ~k) trace)

let test_set_assoc_conflict_misses () =
  (* Four items in the same set of a 4-set, 1-way cache conflict even
     though the total capacity (4) would hold them all. *)
  let trace = Test_util.trace_of (1, [| 0; 4; 0; 4; 0; 4 |]) in
  let sa = Test_util.run_misses (Set_assoc.create_lru ~sets:4 ~ways:1) trace in
  let full = Test_util.run_misses (Lru.create ~k:4) trace in
  Alcotest.(check int) "set-assoc thrashes" 6 sa;
  Alcotest.(check int) "fully associative holds both" 2 full

let test_set_assoc_capacity () =
  let p = Set_assoc.create_lru ~sets:4 ~ways:2 in
  Alcotest.(check int) "k" 8 (Policy.k p);
  for x = 0 to 99 do
    ignore (Policy.access p x)
  done;
  Alcotest.(check int) "occupancy" 8 (Policy.occupancy p)

(* --------------------------------------------------------------- Parallel *)

let test_parallel_map_matches_serial () =
  let xs = List.init 50 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> x * x) xs)
    (Parallel.map ~domains:4 (fun x -> x * x) xs)

let test_parallel_sweep_matches_serial () =
  let trace =
    Generators.spatial_mix (rng ()) ~n:20_000 ~universe:4096 ~block_size:16
      ~p_spatial:0.6
  in
  let points = [ 64; 128; 256; 512 ] in
  let make k = Registry.make "iblp" ~k ~blocks:trace.Trace.blocks ~seed:1 in
  let serial =
    List.map (fun k -> (k, Test_util.run_misses (make k) trace)) points
  in
  let parallel =
    Parallel.run_sweep ~domains:3 ~make ~trace points
    |> List.map (fun (k, m) -> (k, m.Metrics.misses))
  in
  Alcotest.(check (list (pair int int))) "same results" serial parallel

let test_parallel_propagates_exceptions () =
  match Parallel.map ~domains:2 (fun x -> if x = 3 then failwith "boom" else x) [ 1; 2; 3 ] with
  | exception _ -> ()
  | _ -> Alcotest.fail "exception swallowed"

(* ----------------------------------------------- simulator sanity sweep *)

let all_policy_names =
  [ "lru"; "fifo"; "lfu"; "clock"; "plru"; "random"; "marking"; "block-lru"; "gcm";
    "iblp"; "param-a"; "param-a:1"; "param-a:3"; "iblp:i=4,b=12"; "arc"; "2q";
    "block-marking"; "iblp-adaptive" ]

let qcheck_policies_respect_model =
  Test_util.qcheck ~count:60 "every policy passes checked simulation"
    (Test_util.small_trace_arbitrary ~max_universe:20 ~max_len:120 ())
    (fun (bs, reqs) ->
      let trace = Test_util.trace_of (bs, reqs) in
      let k = 2 * bs * 2 in
      List.for_all
        (fun name ->
          let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:5 in
          let m = Simulator.run p trace in
          m.Metrics.hits + m.Metrics.misses = m.Metrics.accesses
          && m.Metrics.spatial_hits + m.Metrics.temporal_hits = m.Metrics.hits
          && m.Metrics.items_loaded >= m.Metrics.misses)
        all_policy_names)

let test_simulator_catches_liar () =
  (* A policy that claims a hit on an uncached item must be rejected. *)
  let module Liar = struct
    type t = unit

    let name = "liar"
    let k () = 1
    let mem () _ = true
    let occupancy () = 0
    let access () _ = Policy.Hit { evicted = [] }
  end in
  let p = Policy.Instance ((module Liar), ()) in
  let trace = Test_util.trace_of (1, [| 3 |]) in
  match Simulator.run p trace with
  | exception Simulator.Model_violation _ -> ()
  | _ -> Alcotest.fail "liar accepted"

let test_simulator_catches_foreign_load () =
  let module Foreign = struct
    type t = (int, unit) Hashtbl.t

    let name = "foreign"
    let k _ = 10
    let mem t x = Hashtbl.mem t x
    let occupancy t = Hashtbl.length t

    let access t x =
      Hashtbl.replace t x ();
      Hashtbl.replace t (x + 1000) ();
      Policy.Miss { loaded = [ x; x + 1000 ]; evicted = [] }
  end in
  let p = Policy.Instance ((module Foreign), Hashtbl.create 8) in
  let trace = Test_util.trace_of (2, [| 0 |]) in
  match Simulator.run p trace with
  | exception Simulator.Model_violation _ -> ()
  | _ -> Alcotest.fail "foreign load accepted"

let test_simulator_catches_over_occupancy () =
  let module Greedy = struct
    type t = (int, unit) Hashtbl.t

    let name = "greedy"
    let k _ = 1
    let mem t x = Hashtbl.mem t x
    let occupancy t = Hashtbl.length t

    let access t x =
      Hashtbl.replace t x ();
      Policy.Miss { loaded = [ x ]; evicted = [] }
  end in
  let p = Policy.Instance ((module Greedy), Hashtbl.create 8) in
  let trace = Test_util.trace_of (1, [| 0; 1 |]) in
  match Simulator.run p trace with
  | exception Simulator.Model_violation _ -> ()
  | _ -> Alcotest.fail "over-occupancy accepted"

(* ------------------------------------------------------------ determinism *)

let test_randomized_policies_deterministic_per_seed () =
  let trace =
    Generators.spatial_mix (rng ()) ~n:20_000 ~universe:4096 ~block_size:16
      ~p_spatial:0.5
  in
  List.iter
    (fun name ->
      let run () =
        Test_util.run_misses
          (Registry.make name ~k:256 ~blocks:trace.Trace.blocks ~seed:123)
          trace
      in
      Alcotest.(check int) (name ^ " deterministic per seed") (run ()) (run ()))
    [ "random"; "marking"; "gcm"; "block-marking" ]

let test_metrics_add_and_reset () =
  let a = Metrics.create () and b = Metrics.create () in
  a.Metrics.hits <- 3;
  a.Metrics.misses <- 2;
  a.Metrics.accesses <- 5;
  b.Metrics.hits <- 1;
  b.Metrics.misses <- 4;
  b.Metrics.accesses <- 5;
  Metrics.add a b;
  Alcotest.(check int) "hits" 4 a.Metrics.hits;
  Alcotest.(check int) "accesses" 10 a.Metrics.accesses;
  Test_util.check_float ~eps:1e-9 "hit rate" 0.4 (Metrics.hit_rate a);
  Metrics.reset a;
  Alcotest.(check int) "reset" 0 a.Metrics.accesses;
  Test_util.check_float ~eps:1e-9 "rate on empty" 0. (Metrics.hit_rate a)

let test_registry_docs_complete () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (spec.Registry.name ^ " has a description")
        true
        (String.length spec.Registry.doc > 10))
    Registry.all

(* -------------------------------------------------------------- Registry *)

let test_registry_all_construct () =
  let blocks = Block_map.uniform ~block_size:4 in
  List.iter
    (fun spec ->
      let p = spec.Registry.make ~k:16 ~blocks ~seed:3 in
      Alcotest.(check bool) "k" true (Policy.k p >= 1))
    Registry.all

let test_registry_param_parsing () =
  let blocks = Block_map.uniform ~block_size:4 in
  let p = Registry.make "iblp:i=4,b=12" ~k:16 ~blocks ~seed:0 in
  Alcotest.(check int) "k = i + b" 16 (Policy.k p);
  let p2 = Registry.make "param-a:3" ~k:16 ~blocks ~seed:0 in
  Alcotest.(check string) "name" "param-a" (Policy.name p2)

let test_registry_unknown () =
  let blocks = Block_map.uniform ~block_size:4 in
  match Registry.make "nonsense" ~k:16 ~blocks ~seed:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted unknown policy"

let () =
  Alcotest.run "gc_cache"
    [
      ( "lru_core",
        [
          Alcotest.test_case "order" `Quick test_lru_core_order;
          Alcotest.test_case "insert_if_absent" `Quick test_lru_core_insert_if_absent;
        ] );
      ("index_set", [ Alcotest.test_case "ops" `Quick test_index_set ]);
      ( "item_policies",
        [
          qcheck_lru_matches_reference;
          qcheck_fifo_matches_reference;
          Alcotest.test_case "plru eviction sequence" `Quick test_plru_eviction_sequence;
          Alcotest.test_case "plru non-pow2 ways" `Quick test_plru_non_pow2;
          Alcotest.test_case "lfu evicts least frequent" `Quick test_lfu_evicts_least_frequent;
          Alcotest.test_case "lfu tie-breaks lru" `Quick test_lfu_tie_breaks_lru;
          Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "random occupancy" `Quick test_random_evict_occupancy;
        ] );
      ( "block_lru",
        [
          Alcotest.test_case "loads whole block" `Quick test_block_lru_loads_whole_block;
          Alcotest.test_case "requires k >= B" `Quick test_block_lru_requires_space;
        ] );
      ( "iblp",
        [
          test_iblp_degenerates_to_lru;
          test_iblp_degenerates_to_block_lru;
          Alcotest.test_case "item hits do not reorder block layer" `Quick
            test_iblp_item_hit_does_not_reorder_block_layer;
          Alcotest.test_case "spatial hits" `Quick test_iblp_spatial_hits;
          Alcotest.test_case "duplicate occupancy" `Quick test_iblp_occupancy_counts_duplicates;
          Alcotest.test_case "validation" `Quick test_iblp_create_validation;
          Alcotest.test_case "reorder ablation hurts worst case" `Quick
            test_iblp_reorder_ablation_hurts_worst_case;
          qcheck_iblp_matches_reference;
        ] );
      ( "marking",
        [
          Alcotest.test_case "never evicts marked" `Quick test_marking_never_evicts_marked;
          Alcotest.test_case "hits within phase" `Quick test_marking_hits_within_phase;
        ] );
      ( "gcm",
        [
          Alcotest.test_case "loads block, marks requested" `Quick
            test_gcm_loads_block_marks_requested;
          Alcotest.test_case "spatial hits on scan" `Quick test_gcm_spatial_hits_on_scan;
          Alcotest.test_case "load limit 1" `Quick test_gcm_load_limit_one_loads_only_requested;
          test_gcm_load_limit_caps_loads;
        ] );
      ( "param_a",
        [
          Alcotest.test_case "a=1 loads block" `Quick test_param_a_one_loads_block;
          Alcotest.test_case "a=2 waits" `Quick test_param_a_two_waits;
          Alcotest.test_case "run resets" `Quick test_param_a_run_resets;
          test_param_a_large_behaves_like_lru;
        ] );
      ( "fwf",
        [
          Alcotest.test_case "flushes" `Quick test_fwf_flushes;
          qcheck_fwf_at_most_k_plus_one_phases;
        ] );
      ( "replicates",
        [
          Alcotest.test_case "summary" `Quick test_replicates_summary;
          Alcotest.test_case "deterministic zero variance" `Quick
            test_replicates_deterministic_policy_has_zero_variance;
          Alcotest.test_case "randomized varies" `Quick
            test_replicates_randomized_policy_varies;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "sums to metrics" `Quick test_timeline_sums_to_metrics;
          Alcotest.test_case "detects phase change" `Quick
            test_timeline_detects_phase_change;
          Alcotest.test_case "ragged last window" `Quick
            test_timeline_ragged_last_window;
          Alcotest.test_case "window larger than trace" `Quick
            test_timeline_window_larger_than_trace;
          Alcotest.test_case "empty trace" `Quick test_timeline_empty_trace;
          qcheck_timeline_windows_agree_with_metrics;
        ] );
      ( "arc",
        [
          Alcotest.test_case "promotes on second hit" `Quick test_arc_promotes_on_second_hit;
          Alcotest.test_case "ghost hit adapts" `Quick test_arc_ghost_hit_adapts;
          qcheck_arc_respects_capacity;
        ] );
      ( "two_q",
        [
          Alcotest.test_case "filters one-hit wonders" `Quick test_two_q_filters_one_hit_wonders;
          Alcotest.test_case "validation" `Quick test_two_q_validation;
        ] );
      ( "block_marking",
        [
          Alcotest.test_case "marks whole block" `Quick test_block_marking_marks_whole_block;
          test_block_marking_pollutes_vs_gcm;
        ] );
      ( "iblp_adaptive",
        [
          Alcotest.test_case "validation" `Quick test_iblp_adaptive_validation;
          qcheck_iblp_adaptive_model;
          Alcotest.test_case "tracks better baseline" `Slow test_iblp_adaptive_tracks_better_baseline;
        ] );
      ( "stride_prefetch",
        [
          test_stride_prefetch_degree0_is_lru;
          Alcotest.test_case "within block" `Quick test_stride_prefetch_loads_within_block;
          Alcotest.test_case "helps scans" `Quick test_stride_prefetch_helps_scans;
        ] );
      ( "lru_k",
        [
          test_lru_k_depth1_is_lru;
          Alcotest.test_case "scan resistance" `Quick test_lru_k2_scan_resistance;
        ] );
      ( "s3_fifo",
        [
          test_s3_fifo_capacity;
          Alcotest.test_case "scan resistance" `Quick test_s3_fifo_scan_resistance;
        ] );
      ( "set_assoc",
        [
          test_set_assoc_single_set_is_lru;
          Alcotest.test_case "conflict misses" `Quick test_set_assoc_conflict_misses;
          Alcotest.test_case "capacity" `Quick test_set_assoc_capacity;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map matches serial" `Quick test_parallel_map_matches_serial;
          Alcotest.test_case "sweep matches serial" `Quick test_parallel_sweep_matches_serial;
          Alcotest.test_case "propagates exceptions" `Quick test_parallel_propagates_exceptions;
        ] );
      ( "simulator",
        [
          qcheck_policies_respect_model;
          Alcotest.test_case "catches phantom hits" `Quick test_simulator_catches_liar;
          Alcotest.test_case "catches foreign loads" `Quick test_simulator_catches_foreign_load;
          Alcotest.test_case "catches over-occupancy" `Quick test_simulator_catches_over_occupancy;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all construct" `Quick test_registry_all_construct;
          Alcotest.test_case "param parsing" `Quick test_registry_param_parsing;
          Alcotest.test_case "unknown rejected" `Quick test_registry_unknown;
          Alcotest.test_case "docs complete" `Quick test_registry_docs_complete;
          Alcotest.test_case "randomized deterministic per seed" `Quick
            test_randomized_policies_deterministic_per_seed;
          Alcotest.test_case "metrics add/reset" `Quick test_metrics_add_and_reset;
        ] );
    ]
