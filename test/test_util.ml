(** Shared helpers for the test suites. *)

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name gen prop)

(* A trivially correct list-based cache used as a reference model for the
   production policies.  [touch_on_hit] distinguishes LRU from FIFO. *)
module Reference_cache = struct
  type t = { k : int; mutable items : int list; touch_on_hit : bool }

  let create ~k ~touch_on_hit = { k; items = []; touch_on_hit }

  (* Returns true on hit. *)
  let access t x =
    if List.mem x t.items then begin
      if t.touch_on_hit then
        t.items <- x :: List.filter (fun y -> y <> x) t.items;
      true
    end
    else begin
      let items = x :: t.items in
      let items =
        if List.length items > t.k then
          List.filteri (fun idx _ -> idx < t.k) items
        else items
      in
      t.items <- items;
      false
    end

  let misses t requests =
    Array.fold_left
      (fun acc x -> if access t x then acc else acc + 1)
      0 requests
end

let run_misses policy trace =
  (Gc_cache.Simulator.run policy trace).Gc_cache.Metrics.misses

(* qcheck generator for a small random trace plus a block size. *)
let small_trace_gen ?(max_universe = 12) ?(max_len = 40) () =
  QCheck.Gen.(
    let* universe = int_range 1 max_universe in
    let* block_size = int_range 1 4 in
    let* len = int_range 1 max_len in
    let* requests = list_size (return len) (int_range 0 (universe - 1)) in
    return (block_size, Array.of_list requests))

let small_trace_arbitrary ?max_universe ?max_len () =
  QCheck.make
    ?print:
      (Some
         (fun (bs, reqs) ->
           Printf.sprintf "B=%d [%s]" bs
             (String.concat ";" (Array.to_list (Array.map string_of_int reqs)))))
    (small_trace_gen ?max_universe ?max_len ())

let trace_of (block_size, requests) =
  Gc_trace.Trace.make
    (Gc_trace.Block_map.uniform ~block_size)
    (Array.copy requests)

let check_float ~eps msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.6f, got %.6f" msg expected actual

let check_rel ~rel msg expected actual =
  if expected = actual then ()
  else begin
    let denom = Float.max (Float.abs expected) 1e-9 in
    if Float.abs (expected -. actual) /. denom > rel then
      Alcotest.failf "%s: expected %.6f, got %.6f (rel err > %g)" msg expected
        actual rel
  end

(* ---------------------------------------------------- minimal JSON parser *)

(* Just enough of RFC 8259 to round-trip [Gc_obs.Json] output in tests:
   an independent decoder, so encoder bugs cannot cancel out. *)
module Json_parse = struct
  exception Error of string

  type state = { src : string; mutable pos : int }

  let fail s msg = raise (Error (Printf.sprintf "at %d: %s" s.pos msg))
  let peek s = if s.pos < String.length s.src then Some s.src.[s.pos] else None

  let advance s = s.pos <- s.pos + 1

  let rec skip_ws s =
    match peek s with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance s;
        skip_ws s
    | _ -> ()

  let expect s c =
    match peek s with
    | Some d when d = c -> advance s
    | _ -> fail s (Printf.sprintf "expected %C" c)

  let literal s word value =
    String.iter (fun c -> expect s c) word;
    value

  let parse_string s =
    expect s '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek s with
      | None -> fail s "unterminated string"
      | Some '"' -> advance s
      | Some '\\' ->
          advance s;
          (match peek s with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'u' ->
              advance s;
              if s.pos + 4 > String.length s.src then fail s "short \\u escape";
              let hex = String.sub s.src s.pos 4 in
              s.pos <- s.pos + 3;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail s "bad \\u escape"
              in
              (* The encoder only emits \u00XX (control characters). *)
              if code > 0xff then fail s "non-latin \\u escape unsupported"
              else Buffer.add_char buf (Char.chr code)
          | _ -> fail s "bad escape");
          advance s;
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance s;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number s =
    let start = s.pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek s with Some c -> is_num_char c | None -> false) do
      advance s
    done;
    let text = String.sub s.src start (s.pos - start) in
    match int_of_string_opt text with
    | Some n -> Gc_obs.Json.Int n
    | None -> (
        match float_of_string_opt text with
        | Some f -> Gc_obs.Json.Float f
        | None -> fail s (Printf.sprintf "bad number %S" text))

  let rec parse_value s =
    skip_ws s;
    match peek s with
    | None -> fail s "unexpected end of input"
    | Some 'n' -> literal s "null" Gc_obs.Json.Null
    | Some 't' -> literal s "true" (Gc_obs.Json.Bool true)
    | Some 'f' -> literal s "false" (Gc_obs.Json.Bool false)
    | Some '"' -> Gc_obs.Json.String (parse_string s)
    | Some '[' ->
        advance s;
        skip_ws s;
        if peek s = Some ']' then begin
          advance s;
          Gc_obs.Json.Array []
        end
        else
          let rec items acc =
            let v = parse_value s in
            skip_ws s;
            match peek s with
            | Some ',' ->
                advance s;
                items (v :: acc)
            | Some ']' ->
                advance s;
                List.rev (v :: acc)
            | _ -> fail s "expected , or ]"
          in
          Gc_obs.Json.Array (items [])
    | Some '{' ->
        advance s;
        skip_ws s;
        if peek s = Some '}' then begin
          advance s;
          Gc_obs.Json.Obj []
        end
        else
          let rec fields acc =
            skip_ws s;
            let key = parse_string s in
            skip_ws s;
            expect s ':';
            let v = parse_value s in
            skip_ws s;
            match peek s with
            | Some ',' ->
                advance s;
                fields ((key, v) :: acc)
            | Some '}' ->
                advance s;
                List.rev ((key, v) :: acc)
            | _ -> fail s "expected , or }"
          in
          Gc_obs.Json.Obj (fields [])
    | Some _ -> parse_number s

  let parse text =
    let s = { src = text; pos = 0 } in
    let v = parse_value s in
    skip_ws s;
    if s.pos <> String.length text then fail s "trailing garbage";
    v
end

let parse_json = Json_parse.parse

let parse_json_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Json_parse.parse text

let parse_jsonl_file path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else Json_parse.parse line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------ shared golden fixtures *)

(* A fully deterministic manifest: fixed trace, fixed seed; consumers
   zero the volatile fields.  Shared between test_obs's golden check and
   regen_golden (which reprints the file after an intentional schema
   change), so the two can never drift apart. *)
let build_golden_manifest () =
  let blocks = Gc_trace.Block_map.uniform ~block_size:4 in
  let trace =
    Gc_trace.Trace.make blocks [| 0; 1; 4; 0; 5; 1; 8; 0; 4; 12 |]
  in
  let result =
    Gc_cache.Obs_run.run_policy ~histograms:true ~k:8 ~seed:1 "iblp" trace
  in
  Gc_cache.Obs_run.manifest ~tool:"gcsim" ~command:"run" ~seed:1 ~k:8
    ~trace:(Gc_cache.Obs_run.trace_info ~path:"golden.gct" trace)
    ~wall_time_s:123.456 [ result ]

(* Hand-built span records with fixed timestamps: the input both to the
   Chrome-export golden check in test_prof and to regen_golden.  Covers
   nesting on one track, a second track, GC-delta args, caller args, and
   an emitted (zero-GC) span; kept sorted by start time like a real
   [Tracer.dump]. *)
let chrome_fixture_spans =
  let span ?(args = []) ?(minor = 0.) ?(major = 0.) ?(promoted = 0.) ~tid
      ~ts_ns ~dur_ns name =
    {
      Gc_prof.Tracer.name;
      tid;
      ts_ns;
      dur_ns;
      minor_words = minor;
      major_words = major;
      promoted_words = promoted;
      args;
    }
  in
  [
    span ~tid:0 ~ts_ns:1_000 ~dur_ns:9_500_000 "run_policy"
      ~args:[ ("policy", "lru"); ("k", "256") ]
      ~minor:80_000. ~major:512. ~promoted:128.;
    span ~tid:0 ~ts_ns:2_000 ~dur_ns:4_000_000 "sim.chunk" ~minor:40_000.;
    span ~tid:1 ~ts_ns:1_500_000 ~dur_ns:2_500_000 "pool.task"
      ~args:[ ("task", "3") ]
      ~minor:1_024.;
    span ~tid:1 ~ts_ns:3_000_000 ~dur_ns:750_000 "queue-wait"
      ~args:[ ("id", "7") ];
  ]
