(* The supervised execution runtime: Gc_exec (cancel tokens, pool,
   journal, checkpoint) plus the Gc_obs pieces it leans on (the JSON
   parser, atomic export, manifest run codecs) and the Gc_cache wiring
   (Parallel result preservation, the Simulator progress hook, the
   broken:hang / broken:flaky drill policies). *)

open Gc_exec
module Json = Gc_obs.Json

let with_tmp suffix f =
  let path = Filename.temp_file "gc_exec" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------ Json.parse *)

let json_testable =
  Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j))
    ( = )

let test_parse_roundtrip_cases () =
  List.iter
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> Alcotest.check json_testable (Json.to_string j) j j'
      | Error e ->
          Alcotest.failf "%s: %s" (Json.to_string j)
            (Json.string_of_parse_error e))
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.5;
      Json.Float (-1.25e-3);
      Json.Float 0.087550000000000003;
      Json.String "";
      Json.String "a\"b\\c\n\t\x01";
      Json.String "caf\xc3\xa9";
      Json.Array [];
      Json.Obj [];
      Json.Obj
        [
          ("xs", Json.Array [ Json.Int 1; Json.Null; Json.String "s" ]);
          ("nested", Json.Obj [ ("k", Json.Float 3.25) ]);
        ];
    ]

(* Random JSON trees survive encode -> parse. *)
let json_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
               map (fun s -> Json.String s) string_printable;
             ]
         in
         if n <= 0 then leaf
         else
           frequency
             [
               (2, leaf);
               ( 1,
                 map
                   (fun xs -> Json.Array xs)
                   (list_size (int_bound 4) (self (n / 2))) );
               ( 1,
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_bound 4)
                      (pair string_printable (self (n / 2)))) );
             ])

let test_parse_roundtrip_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"parse (to_string j) = j"
       (QCheck.make json_gen ~print:Json.to_string)
       (fun j ->
         match Json.parse (Json.to_string j) with
         | Ok j' -> j = j'
         | Error _ -> false))

let test_parse_errors () =
  let fails ?at s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
    | Error e -> (
        match at with
        | None -> ()
        | Some offset ->
            Alcotest.(check int) (Printf.sprintf "%S error offset" s) offset
              e.Json.offset)
  in
  fails "" ~at:0;
  fails "  " ~at:2;
  fails "nul";
  fails "{\"a\":1" ~at:6;
  fails "[1,2,]";
  fails "{\"a\" 1}";
  fails "\"unterminated";
  fails "\"bad \x01 control\"";
  fails "01";
  fails "1.2.3";
  fails "[1] trailing" ~at:4;
  (* Deeply nested input must be rejected, not overflow the stack. *)
  let bomb = String.make 100_000 '[' in
  fails bomb;
  match Json.parse "[[[[1]]]]" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "shallow nesting rejected: %s" e.Json.reason

(* ---------------------------------------------------------- atomic export *)

let test_write_atomic () =
  with_tmp ".json" (fun path ->
      write_file path "stale";
      Gc_obs.Export.write_json_atomic path (Json.Obj [ ("x", Json.Int 1) ]);
      let s = read_file path in
      Alcotest.(check bool) "new content" true (Test_util.contains s "\"x\": 1");
      Alcotest.(check bool)
        "no tmp file left" false
        (Sys.file_exists (path ^ ".tmp")))

let test_write_atomic_failure_keeps_old () =
  (* Writing into a missing directory fails before the rename, so the
     destination (here: nonexistent) is never created half-written. *)
  let path = "/nonexistent-dir-gc-exec/out.json" in
  (match Gc_obs.Export.write_json_atomic path Json.Null with
  | () -> Alcotest.fail "write into missing directory succeeded"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "no output file" false (Sys.file_exists path)

(* --------------------------------------------------------------- journal *)

let payload i = Json.Obj [ ("cell", Json.Int i); ("v", Json.Float 0.25) ]
let meta = Json.Obj [ ("tool", Json.String "test"); ("seed", Json.Int 7) ]

let write_journal path n =
  let w = Journal.create path ~meta in
  for i = 1 to n do
    Journal.append w (Printf.sprintf "cell-%d" i) (payload i)
  done;
  Journal.close w

let test_journal_roundtrip () =
  with_tmp ".jsonl" (fun path ->
      write_journal path 3;
      match Journal.load path with
      | Error e -> Alcotest.fail (Journal.string_of_error e)
      | Ok loaded ->
          Alcotest.check json_testable "meta" meta loaded.Journal.meta;
          Alcotest.(check bool) "not torn" false loaded.Journal.torn;
          Alcotest.(check int)
            "whole file valid"
            (String.length (read_file path))
            loaded.Journal.valid_bytes;
          Alcotest.(check (list string))
            "cells in order"
            [ "cell-1"; "cell-2"; "cell-3" ]
            (List.map fst loaded.Journal.entries);
          List.iteri
            (fun i (_, p) ->
              Alcotest.check json_testable "payload" (payload (i + 1)) p)
            loaded.Journal.entries)

let test_journal_torn_tail () =
  with_tmp ".jsonl" (fun path ->
      write_journal path 2;
      (* Simulate a crash mid-append: an unterminated trailing line. *)
      let intact = read_file path in
      write_file path (intact ^ "{\"sum\":\"0000000000000000\",\"entry\":{\"ce");
      match Journal.load path with
      | Error e -> Alcotest.fail (Journal.string_of_error e)
      | Ok loaded ->
          Alcotest.(check bool) "torn" true loaded.Journal.torn;
          Alcotest.(check int)
            "valid prefix excludes the torn line" (String.length intact)
            loaded.Journal.valid_bytes;
          Alcotest.(check int) "both cells kept" 2
            (List.length loaded.Journal.entries))

let test_journal_corruption_positioned () =
  with_tmp ".jsonl" (fun path ->
      write_journal path 3;
      let lines = String.split_on_char '\n' (read_file path) in
      let corrupt line =
        (* Flip payload content without touching the checksum. *)
        String.map (function '2' -> '3' | c -> c) line
      in
      let mangled =
        List.mapi (fun i l -> if i = 2 then corrupt l else l) lines
      in
      write_file path (String.concat "\n" mangled);
      match Journal.load path with
      | Ok _ -> Alcotest.fail "corrupted journal loaded"
      | Error e ->
          Alcotest.(check int) "points at line 3" 3 e.Journal.line;
          Alcotest.(check bool)
            "names the checksum" true
            (Test_util.contains e.Journal.reason "checksum"))

let test_journal_missing_header () =
  with_tmp ".jsonl" (fun path ->
      write_file path "";
      (match Journal.load path with
      | Ok _ -> Alcotest.fail "empty journal loaded"
      | Error e -> Alcotest.(check int) "empty points at line 1" 1 e.Journal.line);
      write_journal path 1;
      (* Drop the header line: the first line is now a cell, not @meta. *)
      let lines = String.split_on_char '\n' (read_file path) in
      write_file path (String.concat "\n" (List.tl lines));
      match Journal.load path with
      | Ok _ -> Alcotest.fail "headerless journal loaded"
      | Error e -> Alcotest.(check int) "points at line 1" 1 e.Journal.line)

let test_journal_resume_appends () =
  with_tmp ".jsonl" (fun path ->
      write_journal path 2;
      let intact = read_file path in
      write_file path (intact ^ "{\"sum\":\"00");
      (match Journal.resume path with
      | Error e -> Alcotest.fail (Journal.string_of_error e)
      | Ok (loaded, w) ->
          Alcotest.(check bool) "torn on resume" true loaded.Journal.torn;
          Journal.append w "cell-3" (payload 3);
          Journal.close w);
      match Journal.load path with
      | Error e -> Alcotest.fail (Journal.string_of_error e)
      | Ok loaded ->
          Alcotest.(check bool)
            "tail repaired" false loaded.Journal.torn;
          Alcotest.(check (list string))
            "appended after truncation"
            [ "cell-1"; "cell-2"; "cell-3" ]
            (List.map fst loaded.Journal.entries))

(* ------------------------------------------------------------------ pool *)

let quick_config ?deadline ?(retries = 1) ?(domains = 2) () =
  {
    (Pool.default_config ()) with
    Pool.domains;
    deadline;
    retries;
    grace = 0.1;
    backoff = 0.01;
    tick = 0.001;
  }

let test_pool_order_and_results () =
  let tasks =
    List.init 9 (fun i ~cancel:_ ->
        if i mod 2 = 0 then Pool.nap 0.005;
        i * i)
  in
  let outcomes = Pool.run ~config:(quick_config ~domains:4 ()) tasks in
  Alcotest.(check (list int))
    "squares in input order"
    (List.init 9 (fun i -> i * i))
    (List.map
       (function Pool.Done v -> v | _ -> Alcotest.fail "non-Done outcome")
       outcomes)

let test_pool_failure_isolated () =
  let tasks =
    List.init 4 (fun i ~cancel:_ ->
        if i = 2 then failwith "boom" else i)
  in
  match Pool.run ~config:(quick_config ()) tasks with
  | [ Pool.Done 0; Pool.Done 1; Pool.Failed (Failure m); Pool.Done 3 ] ->
      Alcotest.(check string) "failure message" "boom" m
  | _ -> Alcotest.fail "unexpected outcome shape"

let test_pool_transient_retry () =
  let attempts = Atomic.make 0 in
  let task ~cancel:_ =
    Atomic.incr attempts;
    if Pool.attempt () = 1 then raise (Pool.Transient "flaky once");
    Pool.attempt ()
  in
  (match Pool.run ~config:(quick_config ()) [ task ] with
  | [ Pool.Done 2 ] -> ()
  | _ -> Alcotest.fail "transient task did not succeed on attempt 2");
  Alcotest.(check int) "ran twice" 2 (Atomic.get attempts);
  (* Retries exhausted -> Failed with the transient error. *)
  match
    Pool.run
      ~config:(quick_config ~retries:0 ())
      [ (fun ~cancel:_ -> raise (Pool.Transient "always")) ]
  with
  | [ Pool.Failed (Pool.Transient "always") ] -> ()
  | _ -> Alcotest.fail "exhausted transient not Failed"

let test_pool_deadline_cooperative () =
  (* The task spins on Cancel.poll: the deadline must cancel it and the
     pool classify the cancellation as Timed_out. *)
  let task ~cancel:_ =
    while true do
      Cancel.poll ();
      Domain.cpu_relax ()
    done
  in
  match Pool.run ~config:(quick_config ~deadline:0.05 ()) [ task ] with
  | [ Pool.Timed_out d ] -> Alcotest.(check (float 1e-9)) "deadline" 0.05 d
  | _ -> Alcotest.fail "cooperative hang not timed out"

let test_pool_deadline_abandons_wedged () =
  (* A task that never polls is abandoned after deadline + grace; its slot
     still settles as Timed_out and the sibling completes. *)
  let release = Atomic.make false in
  let wedged ~cancel:_ =
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done;
    0
  in
  let outcomes =
    Pool.run
      ~config:(quick_config ~deadline:0.05 ~domains:2 ())
      [ wedged; (fun ~cancel:_ -> 7) ]
  in
  Atomic.set release true;
  match outcomes with
  | [ Pool.Timed_out _; Pool.Done 7 ] -> ()
  | _ -> Alcotest.fail "wedged task not abandoned as Timed_out"

let test_pool_interrupt_drains () =
  let interrupt = Cancel.create () in
  let first_running = Atomic.make false in
  let tasks =
    List.init 6 (fun i ~cancel:_ ->
        if i = 0 then begin
          Atomic.set first_running true;
          (* Stay in flight until the interrupt lands, then finish. *)
          while not (Cancel.requested interrupt) do
            Domain.cpu_relax ()
          done
        end;
        i)
  in
  let requester =
    Domain.spawn (fun () ->
        while not (Atomic.get first_running) do
          Domain.cpu_relax ()
        done;
        Cancel.request interrupt ~reason:Cancel.interrupt_reason)
  in
  let outcomes =
    Pool.run ~config:(quick_config ~domains:1 ()) ~interrupt tasks
  in
  Domain.join requester;
  (match List.hd outcomes with
  | Pool.Done 0 -> ()
  | _ -> Alcotest.fail "in-flight task did not drain to completion");
  let cancelled =
    List.length
      (List.filter (function Pool.Cancelled -> true | _ -> false) outcomes)
  in
  Alcotest.(check bool)
    "unstarted tasks settle as Cancelled" true (cancelled >= 1)

(* -------------------------------------------------------------- parallel *)

let test_parallel_try_map_keeps_siblings () =
  let results =
    Gc_cache.Parallel.try_map ~domains:3
      (fun i -> if i = 5 then failwith "odd one out" else i * 10)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  List.iteri
    (fun i r ->
      match r with
      | Ok v when i <> 5 -> Alcotest.(check int) "sibling result" (i * 10) v
      | Error (Failure m) when i = 5 ->
          Alcotest.(check string) "failure kept in slot" "odd one out" m
      | _ -> Alcotest.fail "unexpected slot")
    results

let test_parallel_map_raises_after_joining () =
  let completed = Atomic.make 0 in
  (match
     Gc_cache.Parallel.map ~domains:2
       (fun i ->
         if i = 1 then failwith "first error"
         else begin
           Atomic.incr completed;
           i
         end)
       [ 0; 1; 2; 3; 4; 5 ]
   with
  | _ -> Alcotest.fail "map swallowed the task failure"
  | exception Failure m ->
      Alcotest.(check string) "lowest-index error" "first error" m);
  (* Every non-failing task still ran to completion before the raise. *)
  Alcotest.(check int) "siblings all completed" 5 (Atomic.get completed)

(* -------------------------------------------- simulator progress + drills *)

let spatial_trace n =
  Gc_trace.Trace.make
    (Gc_trace.Block_map.uniform ~block_size:4)
    (Array.init n (fun i -> (i * 3) mod 256))

let test_simulator_progress_hook () =
  let calls = ref [] in
  let trace = spatial_trace 10_000 in
  let p = Gc_cache.Fifo.create ~k:32 in
  let _ =
    Gc_cache.Simulator.run ~check:false
      ~progress:(fun i -> calls := i :: !calls)
      p trace
  in
  Alcotest.(check (list int))
    "fires on access 0 and every 4096" [ 8192; 4096; 0 ] !calls

let test_simulator_progress_cancels () =
  let trace = spatial_trace 100_000 in
  let token = Cancel.create () in
  Cancel.request token ~reason:Cancel.deadline_reason;
  match
    Cancel.with_current token (fun () ->
        Gc_cache.Simulator.run ~check:false
          ~progress:(fun _ -> Cancel.poll ())
          (Gc_cache.Fifo.create ~k:32) trace)
  with
  | _ -> Alcotest.fail "cancelled simulation ran to completion"
  | exception Cancel.Cancelled reason ->
      Alcotest.(check string) "reason" Cancel.deadline_reason reason

let test_broken_hang_times_out () =
  let trace = spatial_trace 4_000 in
  let blocks = trace.Gc_trace.Trace.blocks in
  let task ~cancel:_ =
    Gc_cache.Simulator.run ~check:false
      ~progress:(fun _ -> Cancel.poll ())
      (Gc_cache.Registry.make "broken:hang@100" ~k:64 ~blocks ~seed:1)
      trace
  in
  match Pool.run ~config:(quick_config ~deadline:0.1 ()) [ task ] with
  | [ Pool.Timed_out _ ] -> ()
  | _ -> Alcotest.fail "hanging policy not timed out"

let test_broken_flaky_retries () =
  let trace = spatial_trace 4_000 in
  let blocks = trace.Gc_trace.Trace.blocks in
  let task ~cancel:_ =
    Gc_cache.Simulator.run ~check:false
      ~progress:(fun _ -> Cancel.poll ())
      (Gc_cache.Registry.make "broken:flaky@100" ~k:64 ~blocks ~seed:1)
      trace
  in
  (match Pool.run ~config:(quick_config ()) [ task ] with
  | [ Pool.Done m ] ->
      Alcotest.(check int)
        "full trace simulated on retry" 4_000
        m.Gc_cache.Metrics.accesses
  | _ -> Alcotest.fail "flaky policy did not succeed on retry");
  (* Without retries the transient failure surfaces. *)
  match Pool.run ~config:(quick_config ~retries:0 ()) [ task ] with
  | [ Pool.Failed (Pool.Transient _) ] -> ()
  | _ -> Alcotest.fail "flaky policy without retries not Failed"

(* ------------------------------------------------------------ checkpoint *)

let to_error ~key ~kind ~message =
  Json.Obj
    [
      ("cell", Json.String key);
      ("kind", Json.String kind);
      ("message", Json.String message);
    ]

let ck_cells results_of =
  List.init 6 (fun i ->
      (Printf.sprintf "c%d" i, fun ~cancel:_ -> results_of i))

let test_checkpoint_resume_roundtrip () =
  with_tmp ".jsonl" (fun path ->
      let ran = Atomic.make 0 in
      let make_cells () =
        ck_cells (fun i ->
            Atomic.incr ran;
            Json.Obj [ ("i", Json.Int i); ("sq", Json.Int (i * i)) ])
      in
      let reference, _ =
        Checkpoint.run ~config:(quick_config ()) ~to_error (make_cells ())
      in
      (* First run: interrupted before it starts, with a journal. *)
      Atomic.set ran 0;
      let interrupt = Cancel.create () in
      let half = Atomic.make 0 in
      let cells_half =
        List.init 6 (fun i ->
            ( Printf.sprintf "c%d" i,
              fun ~cancel:_ ->
                (* After three cells, request the interrupt. *)
                if Atomic.fetch_and_add half 1 >= 2 then
                  Cancel.request interrupt ~reason:Cancel.interrupt_reason;
                Json.Obj [ ("i", Json.Int i); ("sq", Json.Int (i * i)) ] ))
      in
      let partial, pstats =
        Checkpoint.run
          ~config:(quick_config ~domains:1 ())
          ~interrupt ~journal:path ~meta ~to_error cells_half
      in
      Alcotest.(check bool) "interrupted" true pstats.Checkpoint.interrupted;
      Alcotest.(check bool)
        "some cells cancelled" true
        (pstats.Checkpoint.cancelled > 0);
      Alcotest.(check bool)
        "partial results incomplete" true
        (List.exists (fun c -> c.Checkpoint.payload = None) partial);
      (* Resume: completes the grid without re-running journaled cells. *)
      Atomic.set ran 0;
      let final, fstats =
        Checkpoint.run ~config:(quick_config ()) ~journal:path ~resume:true
          ~meta ~to_error (make_cells ())
      in
      Alcotest.(check int)
        "resumed count matches journal"
        (pstats.Checkpoint.total - pstats.Checkpoint.cancelled)
        fstats.Checkpoint.resumed;
      Alcotest.(check int)
        "only missing cells re-ran" fstats.Checkpoint.ran (Atomic.get ran);
      Alcotest.(check bool) "not interrupted" false fstats.Checkpoint.interrupted;
      (* Final payloads identical to an uninterrupted run, in order. *)
      List.iter2
        (fun (a : Checkpoint.cell) (b : Checkpoint.cell) ->
          Alcotest.(check string) "key order" a.Checkpoint.key b.Checkpoint.key;
          match (a.Checkpoint.payload, b.Checkpoint.payload) with
          | Some pa, Some pb ->
              Alcotest.(check string)
                "payload bytes" (Json.to_string pa) (Json.to_string pb)
          | _ -> Alcotest.fail "missing payload after resume")
        reference final)

let test_checkpoint_journals_failures () =
  with_tmp ".jsonl" (fun path ->
      let ran = Atomic.make 0 in
      let cells () =
        ck_cells (fun i ->
            Atomic.incr ran;
            if i = 3 then failwith "deterministic crash"
            else Json.Obj [ ("i", Json.Int i) ])
      in
      let first, _ =
        Checkpoint.run ~config:(quick_config ()) ~journal:path ~meta ~to_error
          (cells ())
      in
      let failed = List.nth first 3 in
      (match failed.Checkpoint.payload with
      | Some p ->
          Alcotest.(check bool)
            "failure shaped by to_error" true
            (Json.member "kind" p = Some (Json.String "exception"))
      | None -> Alcotest.fail "failed cell has no payload");
      (* A deterministic failure is journaled: resume re-runs nothing. *)
      Atomic.set ran 0;
      let _, stats =
        Checkpoint.run ~config:(quick_config ()) ~journal:path ~resume:true
          ~meta ~to_error (cells ())
      in
      Alcotest.(check int) "all resumed" 6 stats.Checkpoint.resumed;
      Alcotest.(check int) "nothing re-ran" 0 (Atomic.get ran))

let test_checkpoint_meta_mismatch () =
  with_tmp ".jsonl" (fun path ->
      let cells = ck_cells (fun i -> Json.Int i) in
      let _ =
        Checkpoint.run ~config:(quick_config ()) ~journal:path ~meta ~to_error
          cells
      in
      match
        Checkpoint.run ~config:(quick_config ()) ~journal:path ~resume:true
          ~meta:(Json.Obj [ ("tool", Json.String "other") ])
          ~to_error cells
      with
      | _ -> Alcotest.fail "mismatched journal resumed"
      | exception Failure m ->
          Alcotest.(check bool)
            "names the mismatch" true
            (Test_util.contains m "metadata mismatch"))

(* -------------------------------------------------------- manifest codecs *)

let test_manifest_run_roundtrip () =
  let open Gc_obs.Manifest in
  let runs =
    [
      {
        policy = "lru";
        metrics =
          [ ("misses", Json.Int 12); ("hit_rate", Json.Float 0.3333333333) ];
        histograms = Some (Json.Obj [ ("h", Json.Array [ Json.Int 1 ]) ]);
        events = [ ("access", 100); ("miss", 12) ];
        error = None;
      };
      {
        policy = "broken:crash@5@uniform";
        metrics = [];
        histograms = None;
        events = [];
        error = Some ("timeout", "cell exceeded its 2s deadline");
      };
    ]
  in
  List.iter
    (fun run ->
      let j = run_to_json run in
      match run_of_json j with
      | Error m -> Alcotest.fail m
      | Ok run' ->
          Alcotest.(check string)
            "byte-identical re-encoding" (Json.to_string j)
            (Json.to_string (run_to_json run')))
    runs;
  match run_of_json (Json.Array []) with
  | Ok _ -> Alcotest.fail "non-object decoded as run"
  | Error _ -> ()

let () =
  Alcotest.run "gc_exec"
    [
      ( "json_parse",
        [
          Alcotest.test_case "round-trip cases" `Quick
            test_parse_roundtrip_cases;
          test_parse_roundtrip_qcheck;
          Alcotest.test_case "malformed inputs rejected" `Quick
            test_parse_errors;
        ] );
      ( "atomic_export",
        [
          Alcotest.test_case "write then rename" `Quick test_write_atomic;
          Alcotest.test_case "failure leaves no artifact" `Quick
            test_write_atomic_failure_keeps_old;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick test_journal_torn_tail;
          Alcotest.test_case "corruption positioned" `Quick
            test_journal_corruption_positioned;
          Alcotest.test_case "missing header rejected" `Quick
            test_journal_missing_header;
          Alcotest.test_case "resume truncates and appends" `Quick
            test_journal_resume_appends;
        ] );
      ( "pool",
        [
          Alcotest.test_case "results in input order" `Quick
            test_pool_order_and_results;
          Alcotest.test_case "failure isolated to its slot" `Quick
            test_pool_failure_isolated;
          Alcotest.test_case "transient retries" `Quick
            test_pool_transient_retry;
          Alcotest.test_case "cooperative deadline" `Quick
            test_pool_deadline_cooperative;
          Alcotest.test_case "wedged task abandoned" `Quick
            test_pool_deadline_abandons_wedged;
          Alcotest.test_case "interrupt drains" `Quick
            test_pool_interrupt_drains;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "try_map keeps siblings" `Quick
            test_parallel_try_map_keeps_siblings;
          Alcotest.test_case "map joins before raising" `Quick
            test_parallel_map_raises_after_joining;
        ] );
      ( "supervised_simulation",
        [
          Alcotest.test_case "progress hook cadence" `Quick
            test_simulator_progress_hook;
          Alcotest.test_case "progress hook cancels" `Quick
            test_simulator_progress_cancels;
          Alcotest.test_case "broken:hang times out" `Quick
            test_broken_hang_times_out;
          Alcotest.test_case "broken:flaky retries" `Quick
            test_broken_flaky_retries;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "interrupt/resume round-trip" `Quick
            test_checkpoint_resume_roundtrip;
          Alcotest.test_case "failures journaled" `Quick
            test_checkpoint_journals_failures;
          Alcotest.test_case "meta mismatch refused" `Quick
            test_checkpoint_meta_mismatch;
        ] );
      ( "manifest_codec",
        [
          Alcotest.test_case "run round-trip" `Quick
            test_manifest_run_roundtrip;
        ] );
    ]
