(* End-to-end tests of the installed CLI surface: golden `gctrace validate`
   output and the exit-code contract (0 ok, 1 runtime failure, 2 usage
   error, 3 model violation) shared by every gc* binary.

   The binaries are dune deps of this test; cwd is _build/default/test, so
   they live at ../bin/*.exe. *)

open Gc_trace

let gcsim = "../bin/gcsim.exe"
let gctrace = "../bin/gctrace.exe"
let gcexp = "../bin/gcexp.exe"

(* Run a shell command, returning (exit code, combined stdout+stderr). *)
let exec ?stdin_from cmd =
  let out = Filename.temp_file "gc_cli" ".out" in
  let redirect_in =
    match stdin_from with
    | None -> ""
    | Some path -> Printf.sprintf " < %s" (Filename.quote path)
  in
  let code =
    Sys.command
      (Printf.sprintf "%s%s > %s 2>&1" cmd redirect_in (Filename.quote out))
  in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let with_tmp suffix f =
  let path = Filename.temp_file "gc_cli" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sample_trace () =
  Trace.make (Block_map.uniform ~block_size:4) [| 0; 1; 2; 8; 9; 4; 5; 0 |]

let check_run msg ~code ~output cmd =
  let c, o = exec cmd in
  Alcotest.(check int) (msg ^ " exit code") code c;
  Alcotest.(check string) (msg ^ " output") output o

(* --------------------------------------------------------------- validate *)

let test_validate_ok () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      check_run "validate ok" ~code:0
        ~output:
          (Printf.sprintf "%s: ok (8 requests, 7 items, block size 4)\n" path)
        (Printf.sprintf "%s validate %s" gctrace (Filename.quote path)))

let test_validate_stdin () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      let code, output =
        exec ~stdin_from:path (Printf.sprintf "%s validate" gctrace)
      in
      Alcotest.(check int) "stdin exit code" 0 code;
      Alcotest.(check string)
        "stdin output" "stdin: ok (8 requests, 7 items, block size 4)\n" output)

let test_validate_invalid_text () =
  with_tmp ".gct" (fun path ->
      let oc = open_out path in
      output_string oc "gctrace 1\nblocks uniform 4\nrequests 3\n1 2 x\n";
      close_out oc;
      check_run "validate invalid" ~code:1
        ~output:
          (Printf.sprintf "%s: invalid: line 4: expected integer, got \"x\"\n"
             path)
        (Printf.sprintf "%s validate %s" gctrace (Filename.quote path)))

let test_validate_checksum () =
  with_tmp ".gctb" (fun path ->
      Trace_io.save_binary path (sample_trace ());
      (* Flip the final checksum byte. *)
      let ic = open_in_bin path in
      let bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string bytes in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xFF));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let code, output =
        exec (Printf.sprintf "%s validate %s" gctrace (Filename.quote path))
      in
      Alcotest.(check int) "checksum exit code" 1 code;
      Alcotest.(check bool)
        "mentions checksum mismatch" true
        (Test_util.contains output "checksum mismatch"))

let test_validate_lenient () =
  with_tmp ".gct" (fun path ->
      let oc = open_out path in
      output_string oc "gctrace 1\nblocks uniform 4\nrequests 6\n1 2 x 3 4\n";
      close_out oc;
      check_run "validate lenient" ~code:1
        ~output:
          (Printf.sprintf
             "%s: recovered 4 requests, dropped 2\n\
             \  line 4: bad request \"x\" dropped\n\
             \  line 5: 1 of 6 declared requests missing\n"
             path)
        (Printf.sprintf "%s validate --lenient %s" gctrace
           (Filename.quote path)))

let test_validate_lenient_clean () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      check_run "validate lenient clean" ~code:0
        ~output:(Printf.sprintf "%s: recovered 8 requests, dropped 0\n" path)
        (Printf.sprintf "%s validate --lenient %s" gctrace
           (Filename.quote path)))

(* ------------------------------------------------------------- exit codes *)

let saved_trace f =
  with_tmp ".gct" (fun path ->
      Trace_io.save path
        (Trace.make (Block_map.uniform ~block_size:4)
           (Array.init 400 (fun i -> (i * 7) mod 64)));
      f path)

let test_exit_ok () =
  saved_trace (fun path ->
      let code, _ =
        exec (Printf.sprintf "%s run -p lru -k 16 %s" gcsim path)
      in
      Alcotest.(check int) "clean run exits 0" 0 code)

let test_exit_runtime () =
  let code, output =
    exec (Printf.sprintf "%s run -p lru -k 16 /nonexistent.gct" gcsim)
  in
  Alcotest.(check int) "missing trace exits 1" 1 code;
  Alcotest.(check bool)
    "names the file" true
    (Test_util.contains output "/nonexistent.gct")

let test_exit_usage () =
  List.iter
    (fun (msg, cmd, needle) ->
      let code, output = exec cmd in
      Alcotest.(check int) (msg ^ " exits 2") 2 code;
      Alcotest.(check bool)
        (msg ^ " lists choices") true
        (Test_util.contains output needle))
    [
      ( "unknown policy",
        Printf.sprintf "%s run -p nosuch -k 16 /dev/null" gcsim,
        "unknown policy" );
      ( "unknown workload kind",
        Printf.sprintf "%s gen --kind bogus" gctrace,
        "sequential" );
      ( "unknown construction",
        Printf.sprintf "%s h-sweep -c bogus" gcexp,
        "thm2" );
      ( "unknown subcommand",
        Printf.sprintf "%s frobnicate" gcsim,
        "unknown command" );
      ( "bad inject spec",
        Printf.sprintf "%s run -p lru --inject nosuch /dev/null" gcsim,
        "phantom-hit" );
    ]

let test_exit_violation () =
  saved_trace (fun path ->
      let code, output =
        exec
          (Printf.sprintf "%s run -p lru -k 16 --inject phantom-hit %s" gcsim
             path)
      in
      Alcotest.(check int) "injected fault exits 3" 3 code;
      Alcotest.(check bool)
        "drill reports detection" true
        (Test_util.contains output "caught by the audit"))

(* ------------------------------------------------------ suite degradation *)

let test_suite_crash_manifest () =
  with_tmp ".json" (fun json_path ->
      let code, output =
        exec
          (Printf.sprintf
             "%s suite -k 64 --seed 7 --policy lru --policy broken:crash@50 \
              --json %s"
             gcsim (Filename.quote json_path))
      in
      Alcotest.(check int) "suite with crashing policy exits 1" 1 code;
      Alcotest.(check bool)
        "table shows error cells" true
        (Test_util.contains output "error");
      let open Gc_obs in
      let manifest = Test_util.parse_json_file json_path in
      let runs =
        match Json.member "runs" manifest with
        | Some (Json.Array rs) -> rs
        | _ -> Alcotest.fail "manifest has no runs array"
      in
      let errors =
        List.filter_map
          (fun r ->
            match (Json.member "policy" r, Json.member "error" r) with
            | Some (Json.String p), Some err -> Some (p, err)
            | _ -> None)
          runs
      in
      (* 8 standard workloads: every broken cell must carry a structured
         error, and no lru cell may. *)
      Alcotest.(check int) "eight error slots" 8 (List.length errors);
      List.iter
        (fun (p, err) ->
          Alcotest.(check bool)
            "error slots belong to broken" true
            (Test_util.contains p "broken:crash@50@");
          match Json.member "kind" err with
          | Some (Json.String "exception") -> ()
          | _ -> Alcotest.fail "error slot missing kind \"exception\"")
        errors)

let () =
  Alcotest.run "gc_cli"
    [
      ( "validate",
        [
          Alcotest.test_case "valid text file" `Quick test_validate_ok;
          Alcotest.test_case "stdin" `Quick test_validate_stdin;
          Alcotest.test_case "invalid text diagnostics" `Quick
            test_validate_invalid_text;
          Alcotest.test_case "binary checksum mismatch" `Quick
            test_validate_checksum;
          Alcotest.test_case "lenient recovery report" `Quick
            test_validate_lenient;
          Alcotest.test_case "lenient clean file" `Quick
            test_validate_lenient_clean;
        ] );
      ( "exit_codes",
        [
          Alcotest.test_case "0 on success" `Quick test_exit_ok;
          Alcotest.test_case "1 on runtime failure" `Quick test_exit_runtime;
          Alcotest.test_case "2 on usage errors" `Quick test_exit_usage;
          Alcotest.test_case "3 on model violation" `Quick test_exit_violation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "suite crash recorded in manifest" `Quick
            test_suite_crash_manifest;
        ] );
    ]
