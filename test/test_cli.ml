(* End-to-end tests of the installed CLI surface: golden `gctrace validate`
   output, the exit-code contract (0 ok, 1 runtime failure, 2 usage error,
   3 model violation, 130 interrupted) shared by every gc* binary, and the
   supervised-sweep features (--journal/--resume checkpointing, --deadline
   timeouts).

   The binaries are dune deps of this test; cwd is _build/default/test, so
   they live at ../bin/*.exe.

   The "soak" group is the interrupt-and-resume e2e drill: it spawns a
   real journaled sweep, SIGINTs it mid-run, asserts the 130 exit and the
   interrupted manifest stamp, then resumes and checks the final artifacts
   are byte-identical to an uninterrupted run.  It only runs when GC_SOAK
   is set — `dune build @soak`. *)

open Gc_trace

let gcsim = "../bin/gcsim.exe"
let gctrace = "../bin/gctrace.exe"
let gcexp = "../bin/gcexp.exe"

(* Run a shell command, returning (exit code, combined stdout+stderr). *)
let exec ?stdin_from cmd =
  let out = Filename.temp_file "gc_cli" ".out" in
  let redirect_in =
    match stdin_from with
    | None -> ""
    | Some path -> Printf.sprintf " < %s" (Filename.quote path)
  in
  let code =
    Sys.command
      (Printf.sprintf "%s%s > %s 2>&1" cmd redirect_in (Filename.quote out))
  in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

(* Like [exec], but with stdout and stderr captured separately (the sweep
   tests compare CSV on stdout while asserting diagnostics on stderr). *)
let exec2 cmd =
  let out = Filename.temp_file "gc_cli" ".out" in
  let err = Filename.temp_file "gc_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s > %s 2> %s" cmd (Filename.quote out)
         (Filename.quote err))
  in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let o = read out and e = read err in
  Sys.remove out;
  Sys.remove err;
  (code, o, e)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let count_lines path =
  String.fold_left
    (fun n c -> if c = '\n' then n + 1 else n)
    0 (read_file path)

let index_of haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* Manifest comparison modulo the volatile wall-clock stamp. *)
let without_wall_time s =
  String.concat "\n"
    (List.filter
       (fun l -> not (Test_util.contains l "wall_time_s"))
       (String.split_on_char '\n' s))

let with_tmp suffix f =
  let path = Filename.temp_file "gc_cli" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let sample_trace () =
  Trace.make (Block_map.uniform ~block_size:4) [| 0; 1; 2; 8; 9; 4; 5; 0 |]

let check_run msg ~code ~output cmd =
  let c, o = exec cmd in
  Alcotest.(check int) (msg ^ " exit code") code c;
  Alcotest.(check string) (msg ^ " output") output o

(* --------------------------------------------------------------- validate *)

let test_validate_ok () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      check_run "validate ok" ~code:0
        ~output:
          (Printf.sprintf "%s: ok (8 requests, 7 items, block size 4)\n" path)
        (Printf.sprintf "%s validate %s" gctrace (Filename.quote path)))

let test_validate_stdin () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      let code, output =
        exec ~stdin_from:path (Printf.sprintf "%s validate" gctrace)
      in
      Alcotest.(check int) "stdin exit code" 0 code;
      Alcotest.(check string)
        "stdin output" "stdin: ok (8 requests, 7 items, block size 4)\n" output)

let test_validate_invalid_text () =
  with_tmp ".gct" (fun path ->
      let oc = open_out path in
      output_string oc "gctrace 1\nblocks uniform 4\nrequests 3\n1 2 x\n";
      close_out oc;
      check_run "validate invalid" ~code:1
        ~output:
          (Printf.sprintf "%s: invalid: line 4: expected integer, got \"x\"\n"
             path)
        (Printf.sprintf "%s validate %s" gctrace (Filename.quote path)))

let test_validate_checksum () =
  with_tmp ".gctb" (fun path ->
      Trace_io.save_binary path (sample_trace ());
      (* Flip the final checksum byte. *)
      let ic = open_in_bin path in
      let bytes = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string bytes in
      let last = Bytes.length b - 1 in
      Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xFF));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let code, output =
        exec (Printf.sprintf "%s validate %s" gctrace (Filename.quote path))
      in
      Alcotest.(check int) "checksum exit code" 1 code;
      Alcotest.(check bool)
        "mentions checksum mismatch" true
        (Test_util.contains output "checksum mismatch"))

let test_validate_lenient () =
  with_tmp ".gct" (fun path ->
      let oc = open_out path in
      output_string oc "gctrace 1\nblocks uniform 4\nrequests 6\n1 2 x 3 4\n";
      close_out oc;
      check_run "validate lenient" ~code:1
        ~output:
          (Printf.sprintf
             "%s: recovered 4 requests, dropped 2\n\
             \  line 4: bad request \"x\" dropped\n\
             \  line 5: 1 of 6 declared requests missing\n"
             path)
        (Printf.sprintf "%s validate --lenient %s" gctrace
           (Filename.quote path)))

let test_validate_lenient_clean () =
  with_tmp ".gct" (fun path ->
      Trace_io.save path (sample_trace ());
      check_run "validate lenient clean" ~code:0
        ~output:(Printf.sprintf "%s: recovered 8 requests, dropped 0\n" path)
        (Printf.sprintf "%s validate --lenient %s" gctrace
           (Filename.quote path)))

(* ------------------------------------------------------------- exit codes *)

let saved_trace f =
  with_tmp ".gct" (fun path ->
      Trace_io.save path
        (Trace.make (Block_map.uniform ~block_size:4)
           (Array.init 400 (fun i -> (i * 7) mod 64)));
      f path)

let test_exit_ok () =
  saved_trace (fun path ->
      let code, _ =
        exec (Printf.sprintf "%s run -p lru -k 16 %s" gcsim path)
      in
      Alcotest.(check int) "clean run exits 0" 0 code)

let test_exit_runtime () =
  let code, output =
    exec (Printf.sprintf "%s run -p lru -k 16 /nonexistent.gct" gcsim)
  in
  Alcotest.(check int) "missing trace exits 1" 1 code;
  Alcotest.(check bool)
    "names the file" true
    (Test_util.contains output "/nonexistent.gct")

let test_exit_usage () =
  List.iter
    (fun (msg, cmd, needle) ->
      let code, output = exec cmd in
      Alcotest.(check int) (msg ^ " exits 2") 2 code;
      Alcotest.(check bool)
        (msg ^ " lists choices") true
        (Test_util.contains output needle))
    [
      ( "unknown policy",
        Printf.sprintf "%s run -p nosuch -k 16 /dev/null" gcsim,
        "unknown policy" );
      ( "unknown workload kind",
        Printf.sprintf "%s gen --kind bogus" gctrace,
        "sequential" );
      ( "unknown construction",
        Printf.sprintf "%s h-sweep -c bogus" gcexp,
        "thm2" );
      ( "unknown subcommand",
        Printf.sprintf "%s frobnicate" gcsim,
        "unknown command" );
      ( "bad inject spec",
        Printf.sprintf "%s run -p lru --inject nosuch /dev/null" gcsim,
        "phantom-hit" );
    ]

let test_exit_violation () =
  saved_trace (fun path ->
      let code, output =
        exec
          (Printf.sprintf "%s run -p lru -k 16 --inject phantom-hit %s" gcsim
             path)
      in
      Alcotest.(check int) "injected fault exits 3" 3 code;
      Alcotest.(check bool)
        "drill reports detection" true
        (Test_util.contains output "caught by the audit"))

(* ------------------------------------------------------ suite degradation *)

let test_suite_crash_manifest () =
  with_tmp ".json" (fun json_path ->
      let code, output =
        exec
          (Printf.sprintf
             "%s suite -k 64 --seed 7 --policy lru --policy broken:crash@50 \
              --json %s"
             gcsim (Filename.quote json_path))
      in
      Alcotest.(check int) "suite with crashing policy exits 1" 1 code;
      Alcotest.(check bool)
        "table shows error cells" true
        (Test_util.contains output "error");
      let open Gc_obs in
      let manifest = Test_util.parse_json_file json_path in
      let runs =
        match Json.member "runs" manifest with
        | Some (Json.Array rs) -> rs
        | _ -> Alcotest.fail "manifest has no runs array"
      in
      let errors =
        List.filter_map
          (fun r ->
            match (Json.member "policy" r, Json.member "error" r) with
            | Some (Json.String p), Some err -> Some (p, err)
            | _ -> None)
          runs
      in
      (* 8 standard workloads: every broken cell must carry a structured
         error, and no lru cell may. *)
      Alcotest.(check int) "eight error slots" 8 (List.length errors);
      List.iter
        (fun (p, err) ->
          Alcotest.(check bool)
            "error slots belong to broken" true
            (Test_util.contains p "broken:crash@50@");
          match Json.member "kind" err with
          | Some (Json.String "exception") -> ()
          | _ -> Alcotest.fail "error slot missing kind \"exception\"")
        errors)

(* ------------------------------------------------------------ supervision *)

(* Keep the first [n] lines of a journal, simulating a run that died after
   completing n-1 cells (line 1 is the @meta header). *)
let truncate_journal path n =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i < n) lines in
  write_file path (String.concat "\n" kept ^ "\n")

let sweep_cmd ?(policies = [ "lru"; "fifo" ]) ?(grid = "--k-min 16 --k-max 64 --steps 2")
    ?(extra = "") ?json trace =
  Printf.sprintf "%s miss-curve %s %s --seed 3 --domains 1%s%s %s" gcexp
    (String.concat " " (List.map (fun p -> "--policy " ^ p) policies))
    grid
    (match json with
    | None -> ""
    | Some j -> Printf.sprintf " --json %s" (Filename.quote j))
    (if extra = "" then "" else " " ^ extra)
    (Filename.quote trace)

(* A journaled sweep truncated after two cells must resume to the exact
   CSV and manifest an uninterrupted run produces, re-running only the
   missing cells. *)
let test_resume_roundtrip () =
  saved_trace (fun trace ->
      with_tmp ".jsonl" (fun journal ->
          with_tmp ".json" (fun m_ref ->
              with_tmp ".json" (fun m_res ->
                  let code, csv_ref, _ =
                    exec2
                      (sweep_cmd ~json:m_ref
                         ~extra:
                           (Printf.sprintf "--journal %s"
                              (Filename.quote journal))
                         trace)
                  in
                  Alcotest.(check int) "journaled run exits 0" 0 code;
                  (* 2 policies x {16,32,64} = 6 cells + the meta header. *)
                  Alcotest.(check int) "journal complete" 7
                    (count_lines journal);
                  truncate_journal journal 3;
                  let code, csv_res, err =
                    exec2
                      (sweep_cmd ~json:m_res
                         ~extra:
                           (Printf.sprintf "--resume %s"
                              (Filename.quote journal))
                         trace)
                  in
                  Alcotest.(check int) "resumed run exits 0" 0 code;
                  Alcotest.(check bool)
                    "reports resumed cells" true
                    (Test_util.contains err "gcexp: resumed 2 of 6 cells");
                  Alcotest.(check string) "CSV identical" csv_ref csv_res;
                  Alcotest.(check string)
                    "manifest identical modulo wall time"
                    (without_wall_time (read_file m_ref))
                    (without_wall_time (read_file m_res))))))

(* Flipping one payload digit must be caught by the per-line checksum with
   a line-positioned diagnostic, and the resume refused. *)
let test_corrupt_journal_rejected () =
  saved_trace (fun trace ->
      with_tmp ".jsonl" (fun journal ->
          let code, _, _ =
            exec2
              (sweep_cmd ~grid:"--k-min 16 --k-max 32 --steps 1"
                 ~extra:
                   (Printf.sprintf "--journal %s" (Filename.quote journal))
                 trace)
          in
          Alcotest.(check int) "journaled run exits 0" 0 code;
          let text = read_file journal in
          let lines = String.split_on_char '\n' text in
          let corrupt line =
            (* Bump the digit after the first "k": field of the payload. *)
            match index_of line {|"k":|} with
            | None -> Alcotest.fail "journal line has no k field"
            | Some i ->
                let b = Bytes.of_string line in
                let d = Bytes.get b (i + 4) in
                Bytes.set b (i + 4) (if d = '9' then '8' else Char.chr (Char.code d + 1));
                Bytes.to_string b
          in
          let lines =
            List.mapi (fun i l -> if i = 1 then corrupt l else l) lines
          in
          write_file journal (String.concat "\n" lines);
          let code, _, err =
            exec2
              (sweep_cmd ~grid:"--k-min 16 --k-max 32 --steps 1"
                 ~extra:
                   (Printf.sprintf "--resume %s" (Filename.quote journal))
                 trace)
          in
          Alcotest.(check int) "corrupted journal exits 1" 1 code;
          Alcotest.(check bool)
            "diagnostic names the line" true
            (Test_util.contains err "line 2");
          Alcotest.(check bool)
            "diagnostic names the checksum" true
            (Test_util.contains err "checksum")))

(* A hanging cell must be killed at its deadline and surface as a timeout
   slot in the manifest, without poisoning the healthy policy's cells. *)
let test_deadline_timeout_slot () =
  saved_trace (fun trace ->
      with_tmp ".json" (fun json ->
          let code, _, _ =
            exec2
              (sweep_cmd
                 ~policies:[ "lru"; "broken:hang@100" ]
                 ~grid:"--k-min 16 --k-max 32 --steps 1" ~json
                 ~extra:"--deadline 0.3" trace)
          in
          Alcotest.(check int) "sweep with hung cells exits 1" 1 code;
          let manifest = read_file json in
          Alcotest.(check bool)
            "manifest records timeout slots" true
            (Test_util.contains manifest "timeout");
          Alcotest.(check bool)
            "timeout message names the deadline" true
            (Test_util.contains manifest "exceeded its 0.3s deadline");
          Alcotest.(check bool)
            "healthy cells unaffected" true
            (Test_util.contains manifest "\"lru\"")))

(* gcsim suite shares the checkpoint runtime: a truncated journal resumes
   to a manifest byte-identical to the uninterrupted run's. *)
let test_suite_resume_roundtrip () =
  with_tmp ".jsonl" (fun journal ->
      with_tmp ".json" (fun m_ref ->
          with_tmp ".json" (fun m_res ->
              let suite_cmd extra json =
                Printf.sprintf
                  "%s suite -k 64 --seed 7 --policy lru %s --json %s" gcsim
                  extra (Filename.quote json)
              in
              let code, _, _ =
                exec2
                  (suite_cmd
                     (Printf.sprintf "--journal %s" (Filename.quote journal))
                     m_ref)
              in
              Alcotest.(check int) "journaled suite exits 0" 0 code;
              truncate_journal journal 4;
              let code, _, err =
                exec2
                  (suite_cmd
                     (Printf.sprintf "--resume %s" (Filename.quote journal))
                     m_res)
              in
              Alcotest.(check int) "resumed suite exits 0" 0 code;
              Alcotest.(check bool)
                "reports resumed cells" true
                (Test_util.contains err "gcsim: resumed 3 of 8 cells");
              Alcotest.(check string)
                "suite manifest identical modulo wall time"
                (without_wall_time (read_file m_ref))
                (without_wall_time (read_file m_res)))))

(* ------------------------------------------------------------------- soak *)

(* The interrupt-and-resume e2e drill: a real journaled sweep is SIGINTed
   mid-run, must exit 130 with an interrupted-stamped partial manifest,
   and the resumed run must reproduce the uninterrupted artifacts exactly.
   Heavy (tens of seconds), so it only runs under `dune build @soak`. *)

let soak_policies = [ "lru"; "fifo"; "iblp" ]
let soak_cells = 21 (* 3 policies x 7 grid points *)

let soak_args ?journal ?resume ~json trace =
  List.concat
    [
      [ "miss-curve" ];
      List.concat_map (fun p -> [ "--policy"; p ]) soak_policies;
      [ "--k-min"; "64"; "--k-max"; "4096"; "--steps"; "6" ];
      [ "--seed"; "11"; "--domains"; "2" ];
      (match journal with Some j -> [ "--journal"; j ] | None -> []);
      (match resume with Some j -> [ "--resume"; j ] | None -> []);
      [ "--json"; json; trace ];
    ]

let soak_cmd ?journal ?resume ~json trace =
  String.concat " "
    (gcexp :: List.map Filename.quote (soak_args ?journal ?resume ~json trace))

let test_soak_interrupt_resume () =
  match Sys.getenv_opt "GC_SOAK" with
  | None ->
      print_endline
        "soak drill skipped (GC_SOAK unset; run it with `dune build @soak`)"
  | Some _ ->
      with_tmp ".gctb" (fun trace ->
          Trace_io.save_binary trace
            (Trace.make (Block_map.uniform ~block_size:16)
               (Array.init 1_500_000 (fun i -> (i * 7919 + (i / 97)) mod 65536)));
          with_tmp ".jsonl" (fun journal ->
              with_tmp ".json" (fun m_int ->
                  with_tmp ".json" (fun m_res ->
                      with_tmp ".json" (fun m_ref ->
                          with_tmp ".out" (fun out ->
                              with_tmp ".err" (fun err ->
                                  (* Spawn the journaled sweep directly so we
                                     can signal the gcexp process itself. *)
                                  let out_fd =
                                    Unix.openfile out
                                      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                                      0o600
                                  in
                                  let err_fd =
                                    Unix.openfile err
                                      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                                      0o600
                                  in
                                  let pid =
                                    Unix.create_process gcexp
                                      (Array.of_list
                                         (gcexp
                                         :: soak_args ~journal ~json:m_int
                                              trace))
                                      Unix.stdin out_fd err_fd
                                  in
                                  Unix.close out_fd;
                                  Unix.close err_fd;
                                  (* Wait for two completed cells, then
                                     interrupt. *)
                                  let give_up = Unix.gettimeofday () +. 120. in
                                  let rec wait_for_progress () =
                                    if Unix.gettimeofday () > give_up then
                                      Alcotest.fail
                                        "soak: journal never reached 2 cells"
                                    else if
                                      Sys.file_exists journal
                                      && count_lines journal >= 3
                                    then ()
                                    else begin
                                      Gc_exec.Pool.nap 0.02;
                                      wait_for_progress ()
                                    end
                                  in
                                  wait_for_progress ();
                                  Unix.kill pid Sys.sigint;
                                  let _, status = Unix.waitpid [] pid in
                                  (match status with
                                  | Unix.WEXITED 130 -> ()
                                  | Unix.WEXITED n ->
                                      Alcotest.fail
                                        (Printf.sprintf
                                           "interrupted run exited %d, want \
                                            130"
                                           n)
                                  | _ ->
                                      Alcotest.fail
                                        "interrupted run killed by signal");
                                  Alcotest.(check bool)
                                    "drain message printed" true
                                    (Test_util.contains (read_file err)
                                       "interrupt: draining");
                                  Alcotest.(check bool)
                                    "partial manifest stamped interrupted"
                                    true
                                    (Test_util.contains (read_file m_int)
                                       "interrupted");
                                  let cells_done = count_lines journal - 1 in
                                  Alcotest.(check bool)
                                    "interrupt left work to resume" true
                                    (cells_done >= 2
                                    && cells_done < soak_cells);
                                  (* Resume must pick up the survivors... *)
                                  let code, csv_res, err_res =
                                    exec2
                                      (soak_cmd ~resume:journal ~json:m_res
                                         trace)
                                  in
                                  Alcotest.(check int) "resume exits 0" 0
                                    code;
                                  Alcotest.(check bool)
                                    "resume reports journal cells" true
                                    (Test_util.contains err_res
                                       (Printf.sprintf
                                          "gcexp: resumed %d of %d cells"
                                          cells_done soak_cells));
                                  (* ...and land on the same artifacts as an
                                     uninterrupted run. *)
                                  let code, csv_ref, _ =
                                    exec2 (soak_cmd ~json:m_ref trace)
                                  in
                                  Alcotest.(check int) "reference exits 0" 0
                                    code;
                                  Alcotest.(check string)
                                    "resumed CSV identical" csv_ref csv_res;
                                  Alcotest.(check string)
                                    "resumed manifest identical modulo wall \
                                     time"
                                    (without_wall_time (read_file m_ref))
                                    (without_wall_time (read_file m_res));
                                  Alcotest.(check bool)
                                    "final manifest not marked interrupted"
                                    false
                                    (Test_util.contains (read_file m_res)
                                       "interrupted"))))))))

let () =
  Alcotest.run "gc_cli"
    [
      ( "validate",
        [
          Alcotest.test_case "valid text file" `Quick test_validate_ok;
          Alcotest.test_case "stdin" `Quick test_validate_stdin;
          Alcotest.test_case "invalid text diagnostics" `Quick
            test_validate_invalid_text;
          Alcotest.test_case "binary checksum mismatch" `Quick
            test_validate_checksum;
          Alcotest.test_case "lenient recovery report" `Quick
            test_validate_lenient;
          Alcotest.test_case "lenient clean file" `Quick
            test_validate_lenient_clean;
        ] );
      ( "exit_codes",
        [
          Alcotest.test_case "0 on success" `Quick test_exit_ok;
          Alcotest.test_case "1 on runtime failure" `Quick test_exit_runtime;
          Alcotest.test_case "2 on usage errors" `Quick test_exit_usage;
          Alcotest.test_case "3 on model violation" `Quick test_exit_violation;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "suite crash recorded in manifest" `Quick
            test_suite_crash_manifest;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "journal resume round-trip" `Quick
            test_resume_roundtrip;
          Alcotest.test_case "corrupted journal rejected" `Quick
            test_corrupt_journal_rejected;
          Alcotest.test_case "deadline kills hung cell" `Quick
            test_deadline_timeout_slot;
          Alcotest.test_case "suite resume round-trip" `Quick
            test_suite_resume_roundtrip;
        ] );
      ( "soak",
        [
          Alcotest.test_case "interrupt-and-resume drill" `Slow
            test_soak_interrupt_resume;
        ] );
    ]
