(* The simulation service under test: frame-codec units and fuzzers
   (GC_FUZZ_COUNT scales the corpus, the @fuzz alias raises it), protocol
   validation, and an in-process adversarial client suite that boots real
   servers on throwaway Unix sockets — malformed JSON, oversized frames,
   slow-loris dribble, mid-request disconnects, overload shedding, and
   graceful drain, asserting the daemon always answers with a well-formed
   framed reply and never wedges.

   The "soak" group is the full e2e drill against the ../bin/gcserved.exe
   binary: concurrent + adversarial clients, SIGTERM mid-load, clean-drain
   exit 0 with a shutdown manifest, and the second-signal 130 hard exit.
   It only runs when GC_SERVE_SOAK is set — `dune build @serve-soak`. *)

module Json = Gc_obs.Json
module Frame = Gc_serve.Frame
module Protocol = Gc_serve.Protocol
module Server = Gc_serve.Server
module Client = Gc_serve.Client

let fuzz_count =
  match Option.bind (Sys.getenv_opt "GC_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 2500

let fuzz name gen prop = Test_util.qcheck ~count:fuzz_count name gen prop

(* ----------------------------------------------------------- JSON poking *)

let field name = function
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let int_field name j =
  match field name j with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "reply has no int field %S in %s" name (Json.to_string j)

let string_field name j =
  match field name j with
  | Some (Json.String s) -> s
  | _ ->
      Alcotest.failf "reply has no string field %S in %s" name (Json.to_string j)

(* The value of a labelless counter/gauge row in a stats reply's metric
   dump ([registry.to_json] shape). *)
let metric_value stats name =
  match field "metrics" stats with
  | Some (Json.Array rows) -> (
      let hit = function
        | Json.Obj _ as row -> string_field "name" row = name
        | _ -> false
      in
      match List.find_opt hit rows with
      | Some row -> int_field "value" row
      | None -> Alcotest.failf "no metric %S in stats" name)
  | _ -> Alcotest.fail "stats reply has no metrics array"

let reply_exn = function
  | Ok j -> (
      match Protocol.reply_of_json j with
      | Ok (id, reply) -> (id, reply)
      | Error msg -> Alcotest.failf "malformed reply %s: %s" (Json.to_string j) msg)
  | Error msg -> Alcotest.failf "request failed: %s" msg

let kind_of = function
  | _, Protocol.Ok_result _ -> "ok"
  | _, Protocol.Err (kind, _) -> kind

let result_exn r =
  match reply_exn r with
  | _, Protocol.Ok_result result -> result
  | _, Protocol.Err (kind, msg) -> Alcotest.failf "error reply %s: %s" kind msg

(* ------------------------------------------------------- request builders *)

let load ?(workload = "zipf") ?(n = 5000) () =
  { Protocol.workload; n; universe = 4096; block_size = 16 }

let sim_req ?id ?budget_ms ?(policy = "lru") ?(k = 256) ?load:(l = load ())
    ?(check = false) () =
  Protocol.request_to_json
    {
      Protocol.id;
      op = Protocol.Sim { Protocol.policy; k; seed = 7; load = l; check };
      budget_ms;
    }

let curve_req ?id ?budget_ms ?(policy = "lru") ?(ks = [ 64; 256 ]) () =
  Protocol.request_to_json
    {
      Protocol.id;
      op =
        Protocol.Miss_curve
          { Protocol.curve_policy = policy; ks; curve_seed = 7; curve_load = load () };
      budget_ms;
    }

let op_req name = Json.Obj [ ("op", Json.String name) ]

(* --------------------------------------------------------- frame: units *)

let docs =
  [
    Json.Null;
    Json.Bool true;
    Json.Int (-42);
    Json.String "he\"llo\n";
    Json.Array [ Json.Int 1; Json.Float 2.5 ];
    sim_req ~id:(Json.Int 9) ();
  ]

let test_frame_roundtrip () =
  List.iter
    (fun doc ->
      let s = Frame.encode doc in
      match Frame.decode s with
      | Ok (back, consumed) ->
          Alcotest.(check string)
            "roundtrip" (Json.to_string doc) (Json.to_string back);
          Alcotest.(check int) "consumed whole frame" (String.length s) consumed
      | Error e -> Alcotest.failf "decode failed: %s" (Frame.string_of_error e))
    docs

let test_frame_stream () =
  let s = String.concat "" (List.map Frame.encode docs) in
  let rec go pos acc =
    if pos = String.length s then List.rev acc
    else
      match Frame.decode ~pos s with
      | Ok (doc, next) -> go next (doc :: acc)
      | Error e ->
          Alcotest.failf "stream decode at %d: %s" pos (Frame.string_of_error e)
  in
  Alcotest.(check (list string))
    "all frames, in order"
    (List.map Json.to_string docs)
    (List.map Json.to_string (go 0 []))

let check_decode_error ~reason_has s =
  match Frame.decode s with
  | Ok (doc, _) -> Alcotest.failf "decoded %s from garbage" (Json.to_string doc)
  | Error e ->
      if not (Test_util.contains e.Frame.reason reason_has) then
        Alcotest.failf "diagnostic %S does not mention %S"
          (Frame.string_of_error e) reason_has

let test_frame_errors () =
  check_decode_error ~reason_has:"truncated header" "\x00\x00\x01";
  check_decode_error ~reason_has:"empty frame" "\x00\x00\x00\x00";
  check_decode_error ~reason_has:"truncated header" "";
  (* Complete frame, junk payload: positioned past the header. *)
  (match Frame.decode "\x00\x00\x00\x03{x}" with
  | Ok _ -> Alcotest.fail "decoded junk payload"
  | Error e ->
      Alcotest.(check bool)
        "payload error positioned past header" true
        (e.Frame.offset >= Frame.header_bytes));
  (* Truncated payload. *)
  check_decode_error ~reason_has:"truncated frame" "\x00\x00\x00\x09{\"a\":1}"

let test_frame_length_bomb () =
  (* A maximal declared length with no payload: rejected on the declared
     length alone, allocating nothing close to the claim. *)
  let bomb = "\xff\xff\xff\xff" in
  (* Empty the minor heap first so no collection lands inside the
     measurement bracket and inflates the delta. *)
  Gc.minor ();
  let before = Gc.allocated_bytes () in
  check_decode_error ~reason_has:"frame cap" bomb;
  let allocated = Gc.allocated_bytes () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "bounded allocation (%.0f bytes)" allocated)
    true
    (allocated < 65_536.);
  (* Over a tiny explicit cap, same story. *)
  match Frame.decode ~max_frame:16 (Frame.encode (sim_req ())) with
  | Error e ->
      Alcotest.(check bool)
        "names the cap" true
        (Test_util.contains e.Frame.reason "16-byte frame cap")
  | Ok _ -> Alcotest.fail "decoded a frame over the cap"

(* ---------------------------------------------- frame: deadline edges *)

let outcome_name = function
  | Frame.Frame _ -> "frame"
  | Frame.Eof -> "eof"
  | Frame.Bad_payload e -> "bad payload: " ^ Frame.string_of_error e
  | Frame.Fault e -> "fault: " ^ Frame.string_of_error e
  | Frame.Timed_out -> "timed out"

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ()))
    (fun () -> f a b)

let write_str fd s =
  let (_ : int) = Unix.write_substring fd s 0 (String.length s) in
  ()

let test_frame_zero_budget () =
  (* A zero or negative whole-frame budget is already expired: once the
     frame has begun, the reader must answer Timed_out immediately — not
     hang, not crash, not mistake the expiry for EOF.  This pins the
     wait_readable contract that an expired deadline wins even when
     bytes are sitting in the socket buffer. *)
  List.iter
    (fun budget ->
      with_socketpair (fun a b ->
          write_str a (Frame.encode (op_req "health"));
          let t0 = Unix.gettimeofday () in
          match Frame.read_fd ~frame_timeout:budget b with
          | Frame.Timed_out ->
              Alcotest.(check bool)
                (Printf.sprintf "budget %g returns promptly" budget)
                true
                (Unix.gettimeofday () -. t0 < 1.)
          | o -> Alcotest.failf "budget %g: got %s" budget (outcome_name o)))
    [ 0.; -1. ]

let test_frame_deadline_mid_frame () =
  (* The deadline lands between two reads: the frame keeps growing (so
     every select wakes with data) but is never complete before the
     budget — and completing it *after* the budget must not resurrect
     the read.  Timed_out, at the deadline, not at the late bytes. *)
  with_socketpair (fun a b ->
      let budget = 0.3 in
      let full = Frame.encode (sim_req ()) in
      let feeder =
        Thread.create
          (fun () ->
            write_str a (String.sub full 0 5);
            Thread.delay (budget /. 2.);
            write_str a (String.sub full 5 3);
            Thread.delay budget;
            (* Frame completes well past the deadline. *)
            try write_str a (String.sub full 8 (String.length full - 8))
            with Unix.Unix_error _ -> ())
          ()
      in
      let t0 = Unix.gettimeofday () in
      let outcome = Frame.read_fd ~frame_timeout:budget b in
      let elapsed = Unix.gettimeofday () -. t0 in
      Thread.join feeder;
      (match outcome with
      | Frame.Timed_out -> ()
      | o -> Alcotest.failf "mid-frame expiry: got %s" (outcome_name o));
      Alcotest.(check bool)
        (Printf.sprintf "cut at the deadline (%.3fs)" elapsed)
        true
        (elapsed >= budget -. 0.05 && elapsed < budget +. 0.4))

let test_frame_eintr_storm () =
  (* A 2ms SIGALRM storm interrupts every select; the EINTR retry path
     must recompute the remaining budget each time, so the total
     deadline still holds — neither an early Timed_out (treating EINTR
     as expiry) nor a hang (restarting the full budget per retry). *)
  let storm = { Unix.it_interval = 0.002; it_value = 0.002 } in
  let old_handler = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let old_timer = Unix.setitimer Unix.ITIMER_REAL storm in
  Fun.protect
    ~finally:(fun () ->
      let (_ : Unix.interval_timer_status) =
        Unix.setitimer Unix.ITIMER_REAL old_timer
      in
      Sys.set_signal Sys.sigalrm old_handler)
    (fun () ->
      with_socketpair (fun a b ->
          let budget = 0.3 in
          write_str a "\x00\x00";
          let t0 = Unix.gettimeofday () in
          let outcome = Frame.read_fd ~frame_timeout:budget b in
          let elapsed = Unix.gettimeofday () -. t0 in
          (match outcome with
          | Frame.Timed_out -> ()
          | o -> Alcotest.failf "EINTR storm: got %s" (outcome_name o));
          Alcotest.(check bool)
            (Printf.sprintf "deadline survived the storm (%.3fs)" elapsed)
            true
            (elapsed >= budget -. 0.05 && elapsed < budget +. 1.0)))

(* -------------------------------------------------------- frame: fuzzers *)

(* Every property asserts totality (no exception) plus a positioned,
   non-empty diagnostic on rejection. *)
let total_decode ?max_frame s =
  match Frame.decode ?max_frame s with
  | Ok _ -> true
  | Error e ->
      String.length e.Frame.reason > 0
      && e.Frame.offset >= 0
      && e.Frame.offset <= String.length s + Frame.header_bytes
  | exception e ->
      QCheck.Test.fail_reportf "decode raised %s" (Printexc.to_string e)

let arbitrary_bytes =
  QCheck.string_gen_of_size QCheck.Gen.(0 -- 200) QCheck.Gen.char

let fuzz_random_bytes =
  fuzz "decode is total on random bytes" arbitrary_bytes total_decode

let fuzz_truncations =
  (* Truncating a valid frame anywhere strictly inside it must produce a
     positioned error, never a decode or a crash. *)
  let gen =
    QCheck.(pair (int_range 0 (List.length docs - 1)) (float_range 0. 1.))
  in
  fuzz "truncated frames are positioned errors" gen (fun (which, frac) ->
      let full = Frame.encode (List.nth docs which) in
      let cut = int_of_float (frac *. float_of_int (String.length full - 1)) in
      let s = String.sub full 0 cut in
      match Frame.decode s with
      | Ok (doc, _) ->
          QCheck.Test.fail_reportf "decoded %s from a %d/%d-byte truncation"
            (Json.to_string doc) cut (String.length full)
      | Error e -> String.length e.Frame.reason > 0 && e.Frame.offset >= 0)

let fuzz_length_bombs =
  (* A declared length beyond the cap is always rejected naming the cap,
     without allocating anything near the declared length. *)
  let gen = QCheck.(pair (int_range 1025 Stdlib.max_int) small_string) in
  fuzz "length bombs never allocate" gen (fun (declared, junk) ->
      let declared = 1025 + (declared mod ((1 lsl 32) - 1025)) in
      let b = Bytes.create 4 in
      Bytes.set b 0 (Char.chr ((declared lsr 24) land 0xFF));
      Bytes.set b 1 (Char.chr ((declared lsr 16) land 0xFF));
      Bytes.set b 2 (Char.chr ((declared lsr 8) land 0xFF));
      Bytes.set b 3 (Char.chr (declared land 0xFF));
      let s = Bytes.to_string b ^ junk in
      Gc.minor ();
      let before = Gc.allocated_bytes () in
      match Frame.decode ~max_frame:1024 s with
      | Ok _ -> QCheck.Test.fail_reportf "accepted a %d-byte claim" declared
      | Error e ->
          let allocated = Gc.allocated_bytes () -. before in
          if allocated >= 65_536. then
            QCheck.Test.fail_reportf "allocated %.0f bytes rejecting the bomb"
              allocated;
          Test_util.contains e.Frame.reason "frame cap")

(* ------------------------------------------------------------- protocol *)

let test_protocol_roundtrip () =
  let reqs =
    [
      { Protocol.id = Some (Json.Int 3); op = Protocol.Health; budget_ms = None };
      {
        Protocol.id = Some (Json.String "a");
        op = Protocol.Stats;
        budget_ms = Some 250;
      };
      {
        Protocol.id = None;
        op =
          Protocol.Sim
            {
              Protocol.policy = "arc";
              k = 128;
              seed = 5;
              load = load ~workload:"phases" ~n:777 ();
              check = true;
            };
        budget_ms = Some 1500;
      };
      {
        Protocol.id = Some (Json.Int 0);
        op =
          Protocol.Miss_curve
            {
              Protocol.curve_policy = "lru";
              ks = [ 1; 2; 3 ];
              curve_seed = 9;
              curve_load = load ();
            };
        budget_ms = None;
      };
    ]
  in
  List.iter
    (fun req ->
      match Protocol.parse_request (Protocol.request_to_json req) with
      | Ok back ->
          Alcotest.(check string)
            "roundtrip"
            (Json.to_string (Protocol.request_to_json req))
            (Json.to_string (Protocol.request_to_json back))
      | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg)
    reqs

let check_rejected ~mentions j =
  match Protocol.parse_request j with
  | Ok _ -> Alcotest.failf "accepted %s" (Json.to_string j)
  | Error msg ->
      if not (Test_util.contains msg mentions) then
        Alcotest.failf "error %S does not mention %S" msg mentions

let test_protocol_validation () =
  check_rejected ~mentions:"op" (Json.Obj [ ("op", Json.String "reboot") ]);
  check_rejected ~mentions:"op" (Json.Obj []);
  check_rejected ~mentions:"object" (Json.Array []);
  check_rejected ~mentions:"policy"
    (Json.Obj [ ("op", Json.String "sim"); ("policy", Json.String "magic") ]);
  check_rejected ~mentions:"workload"
    (Json.Obj [ ("op", Json.String "sim"); ("workload", Json.String "nope") ]);
  check_rejected ~mentions:"n"
    (Json.Obj
       [ ("op", Json.String "sim"); ("n", Json.Int (Protocol.max_trace_n + 1)) ]);
  check_rejected ~mentions:"k"
    (Json.Obj [ ("op", Json.String "sim"); ("k", Json.Int 0) ]);
  check_rejected ~mentions:"id"
    (Json.Obj [ ("op", Json.String "health"); ("id", Json.Obj []) ]);
  check_rejected ~mentions:"ks"
    (Json.Obj
       [
         ("op", Json.String "miss-curve");
         ( "ks",
           Json.Array
             (List.init (Protocol.max_curve_points + 1) (fun i -> Json.Int (i + 1)))
         );
       ]);
  (* Defaults make the empty sim valid. *)
  match Protocol.parse_request (Json.Obj [ ("op", Json.String "sim") ]) with
  | Ok { Protocol.op = Protocol.Sim s; _ } ->
      Alcotest.(check string) "default policy" "lru" s.Protocol.policy
  | Ok _ -> Alcotest.fail "parsed to a non-sim op"
  | Error msg -> Alcotest.failf "defaults rejected: %s" msg

let test_protocol_reply_envelope () =
  let id = Json.String "req-1" in
  (match Protocol.reply_of_json (Protocol.ok ~id (Json.Int 5)) with
  | Ok (Some echoed, Protocol.Ok_result (Json.Int 5)) ->
      Alcotest.(check string) "id echo" "\"req-1\"" (Json.to_string echoed)
  | _ -> Alcotest.fail "ok envelope did not round-trip");
  (match Protocol.reply_of_json (Protocol.error ~kind:"overloaded" "full") with
  | Ok (None, Protocol.Err ("overloaded", "full")) -> ()
  | _ -> Alcotest.fail "error envelope did not round-trip");
  match Protocol.reply_of_json (Json.Obj [ ("status", Json.String "weird") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a malformed envelope"

(* ------------------------------------------------- workload_suite.build *)

let test_build_matches_standard () =
  let entries = Gc_trace.Workload_suite.standard ~n:4000 () in
  Alcotest.(check (list string))
    "catalog order"
    (List.map (fun e -> e.Gc_trace.Workload_suite.name) entries)
    Gc_trace.Workload_suite.standard_names;
  List.iter
    (fun e ->
      match Gc_trace.Workload_suite.build ~n:4000 e.Gc_trace.Workload_suite.name with
      | Error msg -> Alcotest.failf "build rejected %s: %s" e.Gc_trace.Workload_suite.name msg
      | Ok t ->
          let digest x =
            Digest.to_hex
              (Digest.bytes (Gc_trace.Trace_io.to_bytes x))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s identical to catalog entry" e.Gc_trace.Workload_suite.name)
            (digest e.Gc_trace.Workload_suite.trace)
            (digest t))
    (entries : Gc_trace.Workload_suite.entry list);
  match Gc_trace.Workload_suite.build "warp" with
  | Error msg ->
      Alcotest.(check bool)
        "lists the valid choices" true
        (Test_util.contains msg "zipf")
  | Ok _ -> Alcotest.fail "built an unknown workload"

(* ------------------------------------------- adversarial clients, live *)

let sock_seq = ref 0

let fresh_sock () =
  incr sock_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gcserve-%d-%d.sock" (Unix.getpid ()) !sock_seq)

(* Boot a real in-process server on a throwaway Unix socket, run the test
   body, then drain — the drain is part of every test's assertion set: a
   wedged server makes it hang visibly. *)
let with_server ?(config = Server.default_config) f =
  let path = fresh_sock () in
  let t = Server.create { config with Server.socket_path = Some path } in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Client.Unix_path path) t)

let small_server =
  { Server.default_config with Server.workers = 2; deadline = 20.; grace = 0.25 }

(* Poll the live stats endpoint until [pred] holds (the server settles
   asynchronously after disconnects). *)
let await_stats ?(timeout = 10.) addr pred ~what =
  let give_up = Unix.gettimeofday () +. timeout in
  let rec go () =
    let stats = result_exn (Client.request addr (op_req "stats")) in
    if pred stats then stats
    else if Unix.gettimeofday () > give_up then
      Alcotest.failf "server never settled: %s (last: %s)" what
        (Json.to_string stats)
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let test_serve_happy_path () =
  with_server ~config:small_server (fun addr _t ->
      let health = result_exn (Client.request addr (op_req "health")) in
      Alcotest.(check string) "serving" "serving" (string_field "state" health);
      let sim = result_exn (Client.request addr (sim_req ())) in
      let metrics =
        match field "metrics" sim with
        | Some m -> m
        | None -> Alcotest.fail "sim result has no metrics"
      in
      Alcotest.(check int) "all accesses simulated" 5000
        (int_field "accesses" metrics);
      let curve = result_exn (Client.request addr (curve_req ())) in
      match field "curve" curve with
      | Some (Json.Array [ _; _ ]) -> ()
      | _ -> Alcotest.failf "unexpected curve %s" (Json.to_string curve))

let test_serve_pipelined_ids () =
  (* Two requests down one connection; replies match up by echoed id. *)
  with_server ~config:small_server (fun addr _t ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send c (sim_req ~id:(Json.Int 1) ());
          Client.send c (sim_req ~id:(Json.Int 2) ~policy:"fifo" ());
          let take () =
            match Client.recv ~timeout:30. c with
            | Ok j -> reply_exn (Ok j)
            | Error e -> Alcotest.failf "recv: %s" e
          in
          let ids =
            List.sort compare
              (List.map
                 (fun (id, reply) ->
                   (match reply with
                   | Protocol.Ok_result _ -> ()
                   | Protocol.Err (k, m) -> Alcotest.failf "error %s: %s" k m);
                   match id with
                   | Some (Json.Int i) -> i
                   | _ -> Alcotest.fail "missing id echo")
                 [ take (); take () ])
          in
          Alcotest.(check (list int)) "both answered, ids echoed" [ 1; 2 ] ids))

let test_serve_malformed_json_keeps_connection () =
  with_server ~config:small_server (fun addr _t ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* A complete frame whose payload is not JSON: framed usage-layer
             error, connection survives. *)
          let junk = "{\"op\": \x01}" in
          let header =
            let n = String.length junk in
            let b = Bytes.create 4 in
            Bytes.set b 0 '\x00';
            Bytes.set b 1 '\x00';
            Bytes.set b 2 '\x00';
            Bytes.set b 3 (Char.chr n);
            Bytes.to_string b
          in
          let (_ : int) =
            Unix.write_substring (Client.fd c) (header ^ junk) 0
              (String.length header + String.length junk)
          in
          (match reply_exn (Client.recv ~timeout:10. c) with
          | _, Protocol.Err (kind, msg) ->
              Alcotest.(check string) "protocol kind" Protocol.kind_protocol kind;
              Alcotest.(check bool) "positioned diagnostic" true
                (Test_util.contains msg "offset")
          | _ -> Alcotest.fail "junk payload got an ok reply");
          (* Same connection still serves. *)
          Client.send c (op_req "health");
          match reply_exn (Client.recv ~timeout:10. c) with
          | _, Protocol.Ok_result h ->
              Alcotest.(check string) "still serving" "serving"
                (string_field "state" h)
          | _ -> Alcotest.fail "connection did not survive junk payload"))

let test_serve_oversized_frame () =
  let config = { small_server with Server.max_frame = 512 } in
  with_server ~config (fun addr _t ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Claim 64 KiB: the reply must name the cap and the connection
             must close (stream position is unrecoverable). *)
          let (_ : int) =
            Unix.write_substring (Client.fd c) "\x00\x01\x00\x00" 0 4
          in
          (match reply_exn (Client.recv ~timeout:10. c) with
          | _, Protocol.Err (kind, msg) ->
              Alcotest.(check string) "protocol kind" Protocol.kind_protocol kind;
              Alcotest.(check bool) "names the cap" true
                (Test_util.contains msg "frame cap")
          | _ -> Alcotest.fail "oversized frame got an ok reply");
          (match Client.recv ~timeout:5. c with
          | Error _ -> ()
          | Ok j ->
              Alcotest.failf "connection survived an oversized frame: %s"
                (Json.to_string j)));
      (* And the server itself is still perfectly serviceable. *)
      let sim = result_exn (Client.request addr (sim_req ())) in
      Alcotest.(check bool) "server still serves" true (field "metrics" sim <> None))

let test_serve_slow_loris () =
  let config = { small_server with Server.frame_timeout = 0.3 } in
  with_server ~config (fun addr _t ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* Start a frame, then dribble: one header byte, then silence.
             The server must cut us off with a framed protocol error
             instead of pinning the reader. *)
          let started = Unix.gettimeofday () in
          let (_ : int) = Unix.write_substring (Client.fd c) "\x00" 0 1 in
          (match reply_exn (Client.recv ~timeout:10. c) with
          | _, Protocol.Err (kind, _) ->
              Alcotest.(check string) "protocol kind" Protocol.kind_protocol kind
          | _ -> Alcotest.fail "slow-loris got an ok reply");
          let elapsed = Unix.gettimeofday () -. started in
          Alcotest.(check bool)
            (Printf.sprintf "cut off promptly (%.2fs)" elapsed)
            true (elapsed < 5.));
      let health = result_exn (Client.request addr (op_req "health")) in
      Alcotest.(check string) "still serving" "serving"
        (string_field "state" health))

let test_serve_disconnect_cancels () =
  with_server ~config:small_server (fun addr _t ->
      (* Park a request on a policy that spins until cancelled, then
         vanish.  The disconnect must cancel the in-flight work and
         reclaim the worker — in-flight returns to 0 long before the 20s
         deadline could. *)
      let c = Client.connect addr in
      Client.send c (sim_req ~policy:"broken:hang@0" ());
      let (_ : Json.t) =
        await_stats addr ~what:"hang admitted"
          (fun stats -> int_field "inflight" stats >= 1)
      in
      Client.close c;
      let stats =
        await_stats addr ~what:"disconnect cancels the in-flight hang"
          (fun stats ->
            int_field "inflight" stats = 0
            && metric_value stats "mid_request_disconnects" >= 1)
      in
      Alcotest.(check int) "queue drained too" 0 (int_field "queue_depth" stats);
      (* The reclaimed worker still serves. *)
      let sim = result_exn (Client.request addr (sim_req ())) in
      Alcotest.(check bool) "worker reclaimed" true (field "metrics" sim <> None))

let test_serve_deadline_timeout () =
  let config = { small_server with Server.deadline = 0.3; grace = 0.2 } in
  with_server ~config (fun addr _t ->
      match reply_exn (Client.request ~timeout:20. addr (sim_req ~policy:"broken:hang@0" ())) with
      | _, Protocol.Err (kind, msg) ->
          Alcotest.(check string) "timeout kind" Protocol.kind_timeout kind;
          Alcotest.(check bool) "names the deadline" true
            (Test_util.contains msg "deadline")
      | _ -> Alcotest.fail "a hung request produced an ok reply")

let test_serve_transient_retry () =
  (* broken:flaky raises Transient on pool attempt 1 and succeeds on the
     retry, so with one retry the client just sees an ok reply. *)
  with_server ~config:{ small_server with Server.retries = 1 } (fun addr _t ->
      let sim =
        result_exn (Client.request ~timeout:30. addr (sim_req ~policy:"broken:flaky@0" ()))
      in
      Alcotest.(check bool) "retried to success" true (field "metrics" sim <> None))

let test_serve_overload_sheds () =
  let config =
    { small_server with Server.workers = 1; queue_depth = 1; deadline = 1.5; grace = 0.25 }
  in
  with_server ~config (fun addr _t ->
      (* Pin the single worker, fill the depth-1 queue, then watch the
         next request get an explicit overloaded reply immediately. *)
      let pin = Client.connect addr in
      Client.send pin (sim_req ~id:(Json.Int 1) ~policy:"broken:hang@0" ());
      let (_ : Json.t) =
        await_stats addr ~what:"hang admitted"
          (fun stats -> int_field "inflight" stats >= 1)
      in
      let filler = Client.connect addr in
      Client.send filler (sim_req ~id:(Json.Int 2) ());
      let (_ : Json.t) =
        await_stats addr ~what:"queue full"
          (fun stats -> int_field "queue_depth" stats >= 1)
      in
      let started = Unix.gettimeofday () in
      (match reply_exn (Client.request ~timeout:10. addr (sim_req ~id:(Json.Int 3) ())) with
      | _, Protocol.Err (kind, msg) ->
          Alcotest.(check string) "shed with overloaded" Protocol.kind_overloaded
            kind;
          Alcotest.(check bool) "explains the queue" true
            (Test_util.contains msg "queue")
      | _ -> Alcotest.fail "request admitted past a full queue");
      Alcotest.(check bool) "shed in bounded time" true
        (Unix.gettimeofday () -. started < 2.);
      let stats =
        await_stats addr ~what:"shed counted"
          (fun stats -> metric_value stats "shed" >= 1)
      in
      Alcotest.(check bool) "latency histogram live" true
        (List.length (match field "metrics" stats with
          | Some (Json.Array rows) -> rows
          | _ -> []) > 0);
      Client.close pin;
      Client.close filler)

let test_serve_budget_expires () =
  (* Deadline propagation, adversarially: pin the single worker, enqueue
     requests whose client budgets lapse while they wait, and require
     that NONE of them executes — each must come back as a structured
     expired reply carrying a retry hint, and the expired sheds must be
     counted.  CoDel is off so the verdicts are purely budget-driven. *)
  let config =
    {
      small_server with
      Server.workers = 1;
      queue_depth = 8;
      deadline = 1.5;
      grace = 0.25;
      codel_target = 0.;
    }
  in
  with_server ~config (fun addr _t ->
      let pin = Client.connect addr in
      Client.send pin (sim_req ~id:(Json.Int 1) ~policy:"broken:hang@0" ());
      let (_ : Json.t) =
        await_stats addr ~what:"hang admitted"
          (fun stats -> int_field "inflight" stats >= 1)
      in
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () ->
          Client.close c;
          Client.close pin)
        (fun () ->
          let n = 3 in
          for i = 1 to n do
            Client.send c (sim_req ~id:(Json.Int (100 + i)) ~budget_ms:200 ())
          done;
          for _ = 1 to n do
            match Client.recv ~timeout:30. c with
            | Error e -> Alcotest.failf "recv: %s" e
            | Ok raw ->
                (match reply_exn (Ok raw) with
                | _, Protocol.Err (kind, msg) ->
                    Alcotest.(check string) "expired, never executed"
                      Protocol.kind_expired kind;
                    Alcotest.(check bool) "explains the lapsed budget" true
                      (Test_util.contains msg "budget")
                | _, Protocol.Ok_result _ ->
                    Alcotest.fail
                      "a request executed after its propagated budget lapsed");
                Alcotest.(check bool) "carries a retry hint" true
                  (Protocol.retry_after_ms raw <> None)
          done;
          let stats =
            await_stats addr ~what:"expired sheds counted"
              (fun stats -> metric_value stats "shed_expired" >= n)
          in
          Alcotest.(check bool) "total shed includes expired" true
            (metric_value stats "shed" >= n)))

let test_serve_graceful_drain () =
  with_server ~config:small_server (fun addr t ->
      (* A meaty request rides through the drain; a request sent after the
         drain begins is refused with a draining reply; both verdicts come
         back on the same connection, matched by id. *)
      let c = Client.connect addr in
      Client.send c
        (sim_req ~id:(Json.Int 1) ~load:(load ~workload:"zipf" ~n:2_000_000 ()) ());
      let (_ : Json.t) =
        await_stats addr ~what:"big sim admitted"
          (fun stats -> int_field "inflight" stats >= 1)
      in
      let drainer = Thread.create (fun () -> Server.drain t) () in
      let give_up = Unix.gettimeofday () +. 5. in
      while (not (Server.draining t)) && Unix.gettimeofday () < give_up do
        Thread.delay 0.01
      done;
      Alcotest.(check bool) "drain flag up" true (Server.draining t);
      Client.send c (sim_req ~id:(Json.Int 2) ());
      let take () =
        match Client.recv ~timeout:60. c with
        | Ok j -> reply_exn (Ok j)
        | Error e -> Alcotest.failf "recv during drain: %s" e
      in
      let verdicts =
        List.map
          (fun (id, reply) ->
            match id with
            | Some (Json.Int i) -> (i, kind_of (id, reply))
            | _ -> Alcotest.fail "missing id echo")
          [ take (); take () ]
      in
      Alcotest.(check string) "in-flight answered" "ok" (List.assoc 1 verdicts);
      Alcotest.(check string) "new work refused" Protocol.kind_draining
        (List.assoc 2 verdicts);
      Thread.join drainer;
      Client.close c;
      (* Fully stopped: the socket no longer accepts. *)
      match Client.connect addr with
      | c2 ->
          Client.close c2;
          Alcotest.fail "drained server still accepts connections"
      | exception Unix.Unix_error _ -> ())

(* A labeled histogram row in a stats reply's metric dump. *)
let histogram_row stats ~name ~op =
  match field "metrics" stats with
  | Some (Json.Array rows) ->
      List.find_opt
        (fun row ->
          string_field "name" row = name
          &&
          match field "labels" row with
          | Some (Json.Obj kvs) ->
              List.assoc_opt "op" kvs = Some (Json.String op)
          | _ -> false)
        rows
  | _ -> None

let test_serve_trace_reconciles_latency () =
  let trace_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcserve-trace-%d.json" (Unix.getpid ()))
  in
  let latency_us = ref 0 in
  with_server
    ~config:{ small_server with Server.trace = Some trace_path }
    (fun addr _t ->
      let (_ : Json.t) =
        result_exn (Client.request addr (sim_req ~id:(Json.Int 1) ()))
      in
      (* The latency observation lands just after the reply is written;
         poll stats until the histogram has it. *)
      let stats =
        await_stats addr ~what:"latency observed" (fun stats ->
            match histogram_row stats ~name:"latency_us" ~op:"sim" with
            | Some row -> int_field "count" row = 1
            | None -> false)
      in
      match histogram_row stats ~name:"latency_us" ~op:"sim" with
      | Some row -> latency_us := int_field "sum" row
      | None -> Alcotest.fail "no latency_us{op=sim} histogram")
  ;
  (* The drain — with_server's finally — wrote the Chrome trace. *)
  let trace = Test_util.parse_json_file trace_path in
  Sys.remove trace_path;
  let events =
    match field "traceEvents" trace with
    | Some (Json.Array evs) -> evs
    | _ -> Alcotest.fail "trace file has no traceEvents array"
  in
  let of_request name =
    List.filter
      (fun ev ->
        string_field "name" ev = name
        &&
        match field "args" ev with
        | Some args -> field "id" args = Some (Json.String "1")
        | None -> false)
      events
  in
  let dur ev =
    match field "dur" ev with
    | Some (Json.Float d) -> d
    | Some (Json.Int d) -> float_of_int d
    | _ -> Alcotest.fail "trace event without a dur"
  in
  Alcotest.(check bool) "decode span recorded" true (of_request "decode" <> []);
  (* decode precedes admission; the latency window opens at admission, so
     it reconciles against the four in-window phases. *)
  let sum_us =
    List.fold_left
      (fun acc name ->
        match of_request name with
        | [ ev ] -> acc +. dur ev
        | [] -> Alcotest.failf "no %s span for the request" name
        | _ -> Alcotest.failf "duplicate %s spans for the request" name)
      0.
      [ "queue-wait"; "execute"; "encode"; "reply" ]
  in
  let latency = float_of_int !latency_us in
  if sum_us > latency +. 1_000. then
    Alcotest.failf "spans sum to %.0fus, more than the measured latency %.0fus"
      sum_us latency;
  if latency -. sum_us > 50_000. then
    Alcotest.failf
      "spans sum to %.0fus, leaving %.0fus of the %.0fus latency unexplained"
      sum_us (latency -. sum_us) latency

(* ------------------------------------------------------------- e2e soak *)

let gcserved = "../bin/gcserved.exe"

let spawn_gcserved args =
  let err = Filename.temp_file "gcserved" ".err" in
  let err_fd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process gcserved
      (Array.of_list (gcserved :: args))
      Unix.stdin Unix.stdout err_fd
  in
  Unix.close err_fd;
  (pid, err)

let await_ready addr =
  let give_up = Unix.gettimeofday () +. 15. in
  let rec go () =
    match Client.request ~timeout:2. addr (op_req "health") with
    | Ok _ -> ()
    | Error _ when Unix.gettimeofday () < give_up ->
        Thread.delay 0.05;
        go ()
    | Error e -> Alcotest.failf "gcserved never became ready: %s" e
  in
  go ()

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_soak_drain () =
  match Sys.getenv_opt "GC_SERVE_SOAK" with
  | None ->
      print_endline
        "serve soak skipped (GC_SERVE_SOAK unset; run it with `dune build \
         @serve-soak`)"
  | Some _ ->
      let sock = fresh_sock () in
      let manifest = Filename.temp_file "gcserved" ".json" in
      let pid, err =
        spawn_gcserved
          [
            "serve"; "--socket"; sock; "--workers"; "2"; "--queue-depth"; "4";
            "--deadline"; "5"; "--manifest"; manifest;
          ]
      in
      let addr = Client.Unix_path sock in
      await_ready addr;
      let term_sent = Atomic.make false in
      let well_formed = Atomic.make 0
      and malformed = Atomic.make 0
      and refused_live = Atomic.make 0 in
      let hammer i =
        (* Each hammer thread owns a resilient client: reconnects and
           shed-retries are its job, so a refusal while the server is
           live means resilience failed, not that a dial lost a race. *)
        let rc =
          Gc_resil.Resilient_client.create ~timeout:30. ~seed:i addr
        in
        for j = 0 to 23 do
          let req =
            match (i + j) mod 4 with
            | 0 -> sim_req ~id:(Json.Int j) ~load:(load ~n:20_000 ()) ()
            | 1 -> sim_req ~id:(Json.Int j) ~policy:"broken:flaky@0" ()
            | 2 -> curve_req ~id:(Json.Int j) ()
            | _ -> op_req "stats"
          in
          match Gc_resil.Resilient_client.request rc req with
          | Ok j -> (
              match Protocol.reply_of_json j with
              | Ok _ -> Atomic.incr well_formed
              | Error _ -> Atomic.incr malformed)
          | Error _ ->
              (* Refused/reset/draining: fine once the drain began, a
                 failure before it. *)
              if not (Atomic.get term_sent) then Atomic.incr refused_live
        done;
        Gc_resil.Resilient_client.close rc
      in
      let adversary () =
        (* Garbage, partial frames, bogus lengths, instant hangups — all
           while the real clients hammer. *)
        for j = 0 to 40 do
          match Client.connect ~timeout:2. addr with
          | exception Unix.Unix_error _ -> ()
          | c ->
              (try
                 let payload =
                   match j mod 4 with
                   | 0 -> "\xde\xad\xbe\xef\x00garbage"
                   | 1 -> "\x00" (* partial header, then hangup *)
                   | 2 -> "\xff\xff\xff\xff" (* length bomb *)
                   | _ -> String.sub (Frame.encode (sim_req ())) 0 7
                 in
                 let (_ : int) =
                   Unix.write_substring (Client.fd c) payload 0
                     (String.length payload)
                 in
                 ()
               with Unix.Unix_error _ -> ());
              Thread.delay 0.002;
              Client.close c
        done
      in
      let clients = List.init 6 (fun i -> Thread.create hammer i) in
      let adv = Thread.create adversary () in
      Thread.delay 1.5;
      Atomic.set term_sent true;
      Unix.kill pid Sys.sigterm;
      List.iter Thread.join clients;
      Thread.join adv;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n ->
          Alcotest.failf "gcserved exited %d; stderr:\n%s" n (read_file err)
      | Unix.WSIGNALED s -> Alcotest.failf "gcserved killed by signal %d" s
      | Unix.WSTOPPED s -> Alcotest.failf "gcserved stopped by signal %d" s);
      Alcotest.(check int) "no malformed replies" 0 (Atomic.get malformed);
      Alcotest.(check int) "no refusals while live" 0 (Atomic.get refused_live);
      Alcotest.(check bool) "real work was answered" true
        (Atomic.get well_formed > 0);
      let m = read_file manifest in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "manifest mentions %s" needle)
            true (Test_util.contains m needle))
        [ "drained"; "shed"; "latency_us"; "queue_depth"; "gcserved" ];
      Alcotest.(check bool) "socket removed" false (Sys.file_exists sock);
      Sys.remove manifest;
      Sys.remove err

let test_soak_second_signal_hard_exit () =
  match Sys.getenv_opt "GC_SERVE_SOAK" with
  | None -> print_endline "serve soak skipped (GC_SERVE_SOAK unset)"
  | Some _ ->
      let sock = fresh_sock () in
      let pid, err =
        spawn_gcserved
          [ "serve"; "--socket"; sock; "--workers"; "1"; "--deadline"; "120" ]
      in
      let addr = Client.Unix_path sock in
      await_ready addr;
      (* Wedge the drain behind an effectively unbounded in-flight hang,
         then demand the supervisor's second-signal hard exit. *)
      let c = Client.connect addr in
      Client.send c (sim_req ~policy:"broken:hang@0" ());
      let (_ : Json.t) =
        await_stats addr ~what:"hang admitted"
          (fun stats -> int_field "inflight" stats >= 1)
      in
      Unix.kill pid Sys.sigterm;
      Thread.delay 0.5;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 130 -> ()
      | Unix.WEXITED n ->
          Alcotest.failf "expected the 130 hard exit, got %d; stderr:\n%s" n
            (read_file err)
      | _ -> Alcotest.fail "gcserved did not exit");
      Client.close c;
      (try Sys.remove sock with Sys_error _ -> ());
      Sys.remove err

(* ---------------------------------------------------------------- suite *)

let () =
  Alcotest.run "gc_serve"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "stream decode" `Quick test_frame_stream;
          Alcotest.test_case "positioned errors" `Quick test_frame_errors;
          Alcotest.test_case "length bomb" `Quick test_frame_length_bomb;
          Alcotest.test_case "zero and negative budgets" `Quick
            test_frame_zero_budget;
          Alcotest.test_case "deadline expires mid-frame" `Quick
            test_frame_deadline_mid_frame;
          Alcotest.test_case "EINTR storm honours the deadline" `Quick
            test_frame_eintr_storm;
        ] );
      ( "fuzz",
        [ fuzz_random_bytes; fuzz_truncations; fuzz_length_bombs ] );
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
          Alcotest.test_case "reply envelope" `Quick test_protocol_reply_envelope;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "build matches the catalog" `Quick
            test_build_matches_standard;
        ] );
      ( "server",
        [
          Alcotest.test_case "happy path" `Quick test_serve_happy_path;
          Alcotest.test_case "pipelined ids" `Quick test_serve_pipelined_ids;
          Alcotest.test_case "malformed json keeps the connection" `Quick
            test_serve_malformed_json_keeps_connection;
          Alcotest.test_case "oversized frame" `Quick test_serve_oversized_frame;
          Alcotest.test_case "slow loris" `Quick test_serve_slow_loris;
          Alcotest.test_case "disconnect cancels in-flight work" `Quick
            test_serve_disconnect_cancels;
          Alcotest.test_case "deadline timeout" `Quick test_serve_deadline_timeout;
          Alcotest.test_case "transient retry" `Quick test_serve_transient_retry;
          Alcotest.test_case "overload sheds explicitly" `Quick
            test_serve_overload_sheds;
          Alcotest.test_case "lapsed budgets expire unexecuted" `Quick
            test_serve_budget_expires;
          Alcotest.test_case "graceful drain" `Quick test_serve_graceful_drain;
          Alcotest.test_case "trace reconciles with latency" `Quick
            test_serve_trace_reconciles_latency;
        ] );
      ( "soak",
        [
          Alcotest.test_case "hammer + SIGTERM drain" `Quick test_soak_drain;
          Alcotest.test_case "second signal hard-exits" `Quick
            test_soak_second_signal_hard_exit;
        ] );
    ]
