(* Tests for Gc_lint: one golden fixture per rule (the convention is that
   every new rule ships with one — see doc/LINT.md), the suppression
   hierarchy (attribute, binding, file, lint.toml), path scoping, the
   lint.toml parser, the gclint binary's exit-code contract and stable
   --json surfaces, and finally the self-check: the repo's own tree must
   be lint-clean.

   Fixtures live in lint_fixtures/ and only ever need to PARSE — they are
   never compiled, so they can reference modules that do not exist.  The
   engine is pointed at them with [as_path] so path-scoped rules see a
   lib/ or bin/ location.  Cwd is _build/default/test; the fixtures are
   dune deps, so they are present there, and the gclint binary lives at
   ../bin/gclint.exe. *)

open Gc_lint

let gclint = "../bin/gclint.exe"
let fixtures = "lint_fixtures"

let check ?config ~as_path file =
  List.map Finding.to_string (Engine.check_file ?config ~as_path ~root:fixtures file)

let golden name ~as_path file expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) name expected (check ~as_path file))

(* Run a shell command, returning (exit code, combined stdout+stderr). *)
let exec cmd =
  let out = Filename.temp_file "gc_lint" ".out" in
  let code =
    Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out))
  in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------- one golden per rule *)

let fixture_tests =
  [
    golden "spawn-outside-pool" ~as_path:"lib/spawn.ml" "spawn.ml"
      [
        "lib/spawn.ml:2:14: error spawn-outside-pool: raw Domain.spawn \
         outside the supervised runtime (fix: run the task through \
         Gc_exec.Pool.run (lib/exec owns spawning))";
        "lib/spawn.ml:3:9: error spawn-outside-pool: raw Thread.create \
         outside the supervised runtime (fix: run the task through \
         Gc_exec.Pool.run (lib/exec owns spawning))";
      ];
    golden "swallowed-cancellation" ~as_path:"lib/swallow.ml" "swallow.ml"
      [
        "lib/swallow.ml:5:34: error swallowed-cancellation: catch-all \
         exception handler can swallow cooperative cancellation (fix: \
         narrow the pattern, or re-raise: `| (Cancel.Cancelled _ | \
         Pool.Transient _) as e -> raise e` before the catch-all)";
      ];
    golden "exit-contract" ~as_path:"bin/exitc.ml" "exitc.ml"
      [
        "bin/exitc.ml:4:14: error exit-contract: failwith bypasses the CLI \
         exit-code contract (fix: raise through \
         Cli_common.fail_usage/fail_runtime instead)";
        "bin/exitc.ml:5:16: error exit-contract: exit bypasses the \
         Cli_common.eval exit-code contract (fix: raise through \
         Cli_common.fail_usage/fail_runtime instead)";
        "bin/exitc.ml:6:21: error exit-contract: assert false aborts \
         outside the exit-code contract (fix: raise through \
         Cli_common.fail_usage/fail_runtime instead)";
      ];
    golden "nondeterministic-rng" ~as_path:"lib/rng.ml" "rng.ml"
      [
        "lib/rng.ml:3:15: error nondeterministic-rng: Stdlib.Random breaks \
         replayable runs (fix: thread a seeded Gc_trace.Rng.t through the \
         call site)";
        "lib/rng.ml:4:19: error nondeterministic-rng: Stdlib.Random breaks \
         replayable runs (fix: thread a seeded Gc_trace.Rng.t through the \
         call site)";
      ];
    golden "raw-artifact-write" ~as_path:"lib/artifact.ml" "artifact.ml"
      [
        "lib/artifact.ml:3:10: error raw-artifact-write: open_out creates \
         a file outside the crash-safe Export path (fix: write through \
         Gc_obs.Export (write_string/write_json are atomic))";
        "lib/artifact.ml:6:3: error raw-artifact-write: \
         Out_channel.with_open_text creates a file outside the crash-safe \
         Export path (fix: write through Gc_obs.Export \
         (write_string/write_json are atomic))";
      ];
    golden "unsafe-deser" ~as_path:"lib/deser.ml" "deser.ml"
      [
        "lib/deser.ml:2:26: error unsafe-deser: Marshal.from_channel \
         trusts its input's shape (fix: decode through a checked parser \
         (Trace_io / Gc_obs.Json style))";
        "lib/deser.ml:3:14: error unsafe-deser: Obj.magic defeats the type \
         system (fix: decode through a checked parser (Trace_io / \
         Gc_obs.Json style))";
      ];
    golden "bare-sleep" ~as_path:"lib/sleep.ml" "sleep.ml"
      [
        "lib/sleep.ml:2:16: error bare-sleep: Unix.sleepf is cut short by \
         signals (fix: call Gc_exec.Pool.nap, which retries the remaining \
         time on EINTR)";
        "lib/sleep.ml:3:22: error bare-sleep: Unix.sleep is cut short by \
         signals (fix: call Gc_exec.Pool.nap, which retries the remaining \
         time on EINTR)";
      ];
    (* Scoped under bin/ so the overlapping swallowed-cancellation rule
       (lib/-only) stays quiet and the retry findings stand alone. *)
    golden "unbounded-retry" ~as_path:"bin/retry.ml" "retry.ml"
      [
        "bin/retry.ml:6:39: error unbounded-retry: catch-all handler \
         re-enters the recursive binding: an unbounded retry with no \
         backoff (fix: drive the attempt through Gc_resil.Retry.run \
         (capped attempts, backoff, jitter), or bound the handler with a \
         `when` guard)";
        "bin/retry.ml:9:42: error unbounded-retry: catch-all handler \
         re-enters the recursive binding: an unbounded retry with no \
         backoff (fix: drive the attempt through Gc_resil.Retry.run \
         (capped attempts, backoff, jitter), or bound the handler with a \
         `when` guard)";
      ];
    golden "partial-stdlib" ~as_path:"lib/partial.ml" "partial.ml"
      [
        "lib/partial.ml:2:16: warn partial-stdlib: partial List.hd raises \
         a bare Failure (fix: match on the shape, or use the _opt variant \
         with an explicit error)";
        "lib/partial.ml:3:17: warn partial-stdlib: partial List.nth raises \
         a bare Failure (fix: match on the shape, or use the _opt variant \
         with an explicit error)";
        "lib/partial.ml:4:15: warn partial-stdlib: partial Option.get \
         raises a bare Invalid_argument (fix: match on the shape, or use \
         the _opt variant with an explicit error)";
      ];
    golden "wall-clock-timing" ~as_path:"lib/wallclock.ml" "wallclock.ml"
      [
        "lib/wallclock.ml:2:10: warn wall-clock-timing: Unix.gettimeofday \
         is a wall clock; durations need the monotonic Gc_prof.Clock (fix: \
         read Gc_prof.Clock.now_s (monotonic) for durations and deadlines)";
        "lib/wallclock.ml:3:11: warn wall-clock-timing: Sys.time measures \
         CPU time; durations need the monotonic Gc_prof.Clock (fix: read \
         Gc_prof.Clock.now_s (monotonic) for durations and deadlines)";
        "lib/wallclock.ml:4:15: warn wall-clock-timing: Unix.gettimeofday \
         is a wall clock; durations need the monotonic Gc_prof.Clock (fix: \
         read Gc_prof.Clock.now_s (monotonic) for durations and deadlines)";
      ];
    golden "print-in-lib" ~as_path:"lib/printlib.ml" "printlib.ml"
      [
        "lib/printlib.ml:2:19: error print-in-lib: print_endline writes to \
         stdout from library code (fix: return the data, or emit a Gc_obs \
         event/metric instead)";
        "lib/printlib.ml:3:16: error print-in-lib: Printf.printf writes to \
         stdout from library code (fix: return the data, or emit a Gc_obs \
         event/metric instead)";
      ];
    golden "fixed-deadline" ~as_path:"lib/serve/deadline.ml" "deadline.ml"
      [
        "lib/serve/deadline.ml:7:44: warn fixed-deadline: hardcoded time \
         bound in record field deadline: deadlines must derive from \
         Server.config or the propagated budget (fix: derive the value \
         from Server.config (or a caller-supplied budget); literals \
         belong in default_config only)";
        "lib/serve/deadline.ml:8:44: warn fixed-deadline: hardcoded time \
         bound in record field budget_ms: deadlines must derive from \
         Server.config or the propagated budget (fix: derive the value \
         from Server.config (or a caller-supplied budget); literals \
         belong in default_config only)";
        "lib/serve/deadline.ml:9:43: warn fixed-deadline: hardcoded time \
         bound in argument ~deadline: deadlines must derive from \
         Server.config or the propagated budget (fix: derive the value \
         from Server.config (or a caller-supplied budget); literals \
         belong in default_config only)";
        "lib/serve/deadline.ml:10:51: warn fixed-deadline: hardcoded time \
         bound in argument ~timeout: deadlines must derive from \
         Server.config or the propagated budget (fix: derive the value \
         from Server.config (or a caller-supplied budget); literals \
         belong in default_config only)";
      ];
    golden "hardcoded-endpoint" ~as_path:"lib/endpoint.ml" "endpoint.ml"
      [
        "lib/endpoint.ml:6:37: warn hardcoded-endpoint: string literal \
         \"/tmp/gcserved.sock\" pins a concrete endpoint: addresses are \
         deployment configuration (fix: take the address from config or \
         a parameter; derive fleet sockets via Fleet.replica_socket)";
        "lib/endpoint.ml:7:67: warn hardcoded-endpoint: string literal \
         \"127.0.0.1:8080\" pins a concrete endpoint: addresses are \
         deployment configuration (fix: take the address from config or \
         a parameter; derive fleet sockets via Fleet.replica_socket)";
        "lib/endpoint.ml:8:30: warn hardcoded-endpoint: string literal \
         \"localhost:9000\" pins a concrete endpoint: addresses are \
         deployment configuration (fix: take the address from config or \
         a parameter; derive fleet sockets via Fleet.replica_socket)";
      ];
    golden "parse-error" ~as_path:"lib/broken.ml" "broken.ml"
      [ "lib/broken.ml:4:1: error parse-error: file does not parse" ];
    golden "bad-allow" ~as_path:"lib/bad_allow.ml" "bad_allow.ml"
      [
        "lib/bad_allow.ml:4:16: error bare-sleep: Unix.sleepf is cut short \
         by signals (fix: call Gc_exec.Pool.nap, which retries the \
         remaining time on EINTR)";
        "lib/bad_allow.ml:4:35: error bad-allow: lint.allow names unknown \
         rule \"no-such-rule\"";
        "lib/bad_allow.ml:5:19: error print-in-lib: print_endline writes \
         to stdout from library code (fix: return the data, or emit a \
         Gc_obs event/metric instead)";
        "lib/bad_allow.ml:5:39: error bad-allow: lint.allow expects a \
         quoted rule id";
      ];
  ]

(* --------------------------------------------- suppression and scoping *)

let test_suppressed () =
  Alcotest.(check (list string))
    "expression/binding [@lint.allow] silences every site" []
    (check ~as_path:"lib/suppressed.ml" "suppressed.ml")

let test_file_allow () =
  Alcotest.(check (list string))
    "floating [@@@lint.allow] covers the whole file, wherever it sits" []
    (check ~as_path:"lib/file_allow.ml" "file_allow.ml")

let test_scope_bin_rule_in_lib () =
  (* exit-contract is a bin/-only rule: the same fixture that produces
     three findings under bin/ is clean under lib/. *)
  Alcotest.(check (list string))
    "exit-contract does not fire outside bin/" []
    (check ~as_path:"lib/exitc.ml" "exitc.ml")

let test_scope_lib_rule_in_bin () =
  Alcotest.(check (list string))
    "print-in-lib does not fire outside lib/" []
    (check ~as_path:"bin/printlib.ml" "printlib.ml")

let test_scope_wallclock_outside_lib () =
  (* wall-clock-timing is lib/-only: bench and bin keep Unix.gettimeofday
     for calendar stamps (section wall times, manifests). *)
  Alcotest.(check (list string))
    "wall-clock-timing does not fire outside lib/" []
    (check ~as_path:"bench/wallclock.ml" "wallclock.ml")

let test_scope_retry_exempt () =
  (* The fixture under lib/ also trips swallowed-cancellation (by
     design — the two rules overlap on catch-alls), so assert only on
     the retry findings. *)
  let retry_findings as_path =
    List.filter
      (fun s -> Test_util.contains s "unbounded-retry")
      (check ~as_path "retry.ml")
  in
  Alcotest.(check (list string))
    "lib/resil/ owns retrying" []
    (retry_findings "lib/resil/retry.ml");
  Alcotest.(check (list string))
    "pool.ml's bounded retry engine is sanctioned" []
    (retry_findings "lib/exec/pool.ml");
  Alcotest.(check (list string))
    "unbounded-retry does not fire outside lib/ and bin/" []
    (retry_findings "test/retry.ml")

let test_scope_endpoint_outside_lib () =
  (* hardcoded-endpoint is lib/-only: bin/ and test/ name concrete
     sockets on purpose (CLI defaults, fixtures, drills). *)
  Alcotest.(check (list string))
    "hardcoded-endpoint does not fire outside lib/" []
    (check ~as_path:"bin/endpoint.ml" "endpoint.ml");
  Alcotest.(check (list string))
    "nor under test/" []
    (check ~as_path:"test/endpoint.ml" "endpoint.ml")

let test_scope_exec_exempt () =
  Alcotest.(check (list string))
    "lib/exec/ owns spawning" []
    (check ~as_path:"lib/exec/spawn.ml" "spawn.ml")

let test_config_allow_applies () =
  let config =
    match
      Config.of_string ~known_rules:Rules.ids
        "[allow]\npartial-stdlib = [\"lib/*\"]\n"
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string))
    "lint.toml allowlist silences the rule for matching paths" []
    (check ~config ~as_path:"lib/partial.ml" "partial.ml");
  Alcotest.(check int)
    "but not for other paths" 3
    (List.length (check ~config ~as_path:"bench/partial.ml" "partial.ml"))

(* ------------------------------------------------------- config parser *)

let test_glob () =
  let yes p s = Alcotest.(check bool) (p ^ " ~ " ^ s) true (Config.glob_match ~pattern:p s)
  and no p s = Alcotest.(check bool) (p ^ " !~ " ^ s) false (Config.glob_match ~pattern:p s) in
  yes "test/*" "test/test_cli.ml";
  yes "test/*" "test/lint_fixtures/spawn.ml";
  (* '*' crosses '/' on purpose *)
  yes "lib/*.ml" "lib/cache/lru.ml";
  yes "b?n/x.ml" "bin/x.ml";
  no "test/*" "lib/test.ml";
  no "lib" "lib/x.ml";
  yes "*" "anything/at/all.ml"

let test_config_parse () =
  let ok =
    Config.of_string ~known_rules:Rules.ids
      "# policy\n\n[exclude]\npaths = [\"test/lint_fixtures/*\"]\n\n[allow]\n\
       partial-stdlib = [\"test/*\", \"bench/*\"]\nbare-sleep = []\n"
  in
  (match ok with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Alcotest.(check bool) "excluded" true
        (Config.excluded c ~file:"test/lint_fixtures/spawn.ml");
      Alcotest.(check bool) "allowed" true
        (Config.allowed c ~rule:"partial-stdlib" ~file:"bench/bench_cache.ml");
      Alcotest.(check bool) "empty glob list allows nothing" false
        (Config.allowed c ~rule:"bare-sleep" ~file:"lib/x.ml"));
  let err source =
    match Config.of_string ~known_rules:Rules.ids source with
    | Ok _ -> Alcotest.fail ("accepted: " ^ source)
    | Error e -> e
  in
  Alcotest.(check string) "unknown section"
    "line 1: unknown section [nope] (expected exclude or allow)"
    (err "[nope]\n");
  Alcotest.(check string) "unknown rule id"
    "line 2: unknown rule id \"no-such-rule\" in [allow]"
    (err "[allow]\nno-such-rule = [\"x\"]\n");
  Alcotest.(check string) "duplicate rule id"
    "line 3: duplicate rule id \"bare-sleep\" in [allow]"
    (err "[allow]\nbare-sleep = [\"a\"]\nbare-sleep = [\"b\"]\n");
  Alcotest.(check string) "key before any section"
    "line 1: \"paths\" appears before any section"
    (err "paths = [\"x\"]\n");
  Alcotest.(check string) "unquoted glob"
    "line 2: expected a quoted glob, got \"x\""
    (err "[exclude]\npaths = [x]\n")

(* ------------------------------------------------------- the gclint CLI *)

let test_cli_rules_json () =
  let code, out = exec (gclint ^ " rules --json") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check string)
    "rules --json is a stable, diffable surface"
    (String.trim (read_file "golden/lint_rules.json"))
    (String.trim out)

let test_cli_rules_text () =
  let code, out = exec (gclint ^ " rules") in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun id ->
      if not (Test_util.contains out id) then
        Alcotest.failf "rules output is missing %s" id)
    Rules.ids

let test_cli_explain () =
  let code, out = exec (gclint ^ " explain swallowed-cancellation") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "explains the fix" true (Test_util.contains out "Fix:");
  let code, _ = exec (gclint ^ " explain no-such-rule") in
  Alcotest.(check int) "unknown rule is a usage error" 2 code

let test_cli_check_findings () =
  (* Unprefixed fixture paths: path-scoped rules stay quiet, but the
     everywhere-rules still fire, so the exit code must be 1. *)
  let code, _ = exec (gclint ^ " check --root lint_fixtures deser.ml") in
  Alcotest.(check int) "findings exit 1" 1 code;
  (* [exec] merges the streams; the summary line on stderr is not JSON,
     so drop it inside a subshell before the merge. *)
  let code, out =
    exec ("(" ^ gclint ^ " check --json --root lint_fixtures deser.ml 2>/dev/null)")
  in
  Alcotest.(check int) "still 1 with --json" 1 code;
  match Gc_obs.Json.parse (String.trim out) with
  | Error e -> Alcotest.fail (Gc_obs.Json.string_of_parse_error e)
  | Ok json ->
      let count =
        match Gc_obs.Json.member "count" json with
        | Some n -> Gc_obs.Json.get_int n
        | None -> Alcotest.fail "no count field"
      in
      Alcotest.(check int) "count matches deser.ml's two findings" 2 count

let test_cli_check_usage () =
  let code, _ = exec (gclint ^ " check --root lint_fixtures missing.ml") in
  Alcotest.(check int) "nonexistent path is a usage error" 2 code;
  let code, _ = exec (gclint ^ " check --config no-such.toml") in
  Alcotest.(check int) "unreadable config is a usage error" 2 code;
  let code, _ = exec (gclint ^ " check --root no-such-dir") in
  Alcotest.(check int) "nonexistent root is a usage error, not clean" 2 code

(* ------------------------------------------------------- the self-check *)

(* The repo's own tree must stay lint-clean: new debt either gets fixed
   or carries an explicit [@lint.allow]/lint.toml entry with a
   justification.  Tests run from _build/default/test, so the real
   source tree is three levels up — found by locating the _build
   component rather than hard-coding the depth. *)
let source_root () =
  let cwd = Sys.getcwd () in
  let rec go dir =
    if Filename.basename dir = "_build" then Some (Filename.dirname dir)
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go cwd

let test_self_check () =
  match source_root () with
  | None -> () (* not running under _build; nothing to check *)
  | Some root ->
      if not (Sys.file_exists (Filename.concat root "dune-project")) then ()
      else begin
        let config =
          match Config.load ~known_rules:Rules.ids (Filename.concat root "lint.toml") with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check (list string))
          "the repo lints clean (fix the finding or suppress it with a \
           justified [@lint.allow] / lint.toml entry)"
          []
          (List.map Finding.to_string (Engine.check_tree ~config ~root []))
      end

let () =
  Alcotest.run "lint"
    [
      ("fixtures", fixture_tests);
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_suppressed;
          Alcotest.test_case "file-level" `Quick test_file_allow;
          Alcotest.test_case "config-allow" `Quick test_config_allow_applies;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "bin-rule-in-lib" `Quick test_scope_bin_rule_in_lib;
          Alcotest.test_case "lib-rule-in-bin" `Quick test_scope_lib_rule_in_bin;
          Alcotest.test_case "wallclock-outside-lib" `Quick
            test_scope_wallclock_outside_lib;
          Alcotest.test_case "endpoint-outside-lib" `Quick
            test_scope_endpoint_outside_lib;
          Alcotest.test_case "exec-exempt" `Quick test_scope_exec_exempt;
          Alcotest.test_case "retry-exempt" `Quick test_scope_retry_exempt;
        ] );
      ( "config",
        [
          Alcotest.test_case "glob" `Quick test_glob;
          Alcotest.test_case "parse" `Quick test_config_parse;
        ] );
      ( "cli",
        [
          Alcotest.test_case "rules-json" `Quick test_cli_rules_json;
          Alcotest.test_case "rules-text" `Quick test_cli_rules_text;
          Alcotest.test_case "explain" `Quick test_cli_explain;
          Alcotest.test_case "check-findings" `Quick test_cli_check_findings;
          Alcotest.test_case "check-usage" `Quick test_cli_check_usage;
        ] );
      ("self-check", [ Alcotest.test_case "repo-is-clean" `Quick test_self_check ]);
    ]
