(* The admission-control toolkit under test: the success-coupled retry
   token bucket (never exceeds its budget, refills only on success,
   deterministic — no hidden clock or rng), deadline propagation (no
   verdict ever exceeds the server deadline or the remaining client
   budget, and a lapsed budget is always Expired), the retry_after_ms
   hint jitter (seeded, bounded, replayable), the deque against a list
   model, and the AIMD limiter's clamps.

   The qcheck groups honour GC_FUZZ_COUNT like the other fuzz suites;
   `dune build @fuzz` raises the corpus to 25k cases. *)

module Token_bucket = Gc_admit.Token_bucket
module Deadline = Gc_admit.Deadline
module Deque = Gc_admit.Deque
module Aimd = Gc_admit.Aimd
module Codel = Gc_admit.Codel
module Rng = Gc_trace.Rng

let fuzz_count =
  match Option.bind (Sys.getenv_opt "GC_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 2500

let fuzz name gen prop = Test_util.qcheck ~count:fuzz_count name gen prop

(* ----------------------------------------------------- token bucket *)

(* An op sequence for the bucket: [true] = try_take, [false] = on_success. *)
let arbitrary_ops =
  QCheck.(list_of_size Gen.(int_range 0 200) bool)

let replay ops b =
  List.map
    (fun take ->
      if take then Token_bucket.try_take b
      else begin
        Token_bucket.on_success b;
        false
      end)
    ops

let fuzz_bucket_never_exceeds =
  fuzz "bucket: takes never exceed initial + refills" arbitrary_ops (fun ops ->
      let b = Token_bucket.create ~capacity:10. ~refill_per_success:0.2 () in
      let taken = ref 0 and successes = ref 0 in
      List.iter
        (fun take ->
          if take then begin
            if Token_bucket.try_take b then incr taken
          end
          else begin
            Token_bucket.on_success b;
            incr successes
          end)
        ops;
      (* Every grant is covered by the initial 10 tokens plus what the
         successes refilled — the budget is never overdrawn. *)
      Float.of_int !taken
      <= 10. +. (0.2 *. Float.of_int !successes) +. 1e-9)

let fuzz_bucket_level_bounded =
  fuzz "bucket: level stays within [0, capacity]" arbitrary_ops (fun ops ->
      let b = Token_bucket.create ~capacity:10. ~refill_per_success:0.2 () in
      List.for_all
        (fun take ->
          if take then ignore (Token_bucket.try_take b)
          else Token_bucket.on_success b;
          let level = Token_bucket.tokens b in
          level >= -1e-9 && level <= Token_bucket.capacity b +. 1e-9)
        ops)

let fuzz_bucket_exact_cap =
  (* The drift clamp's contract, with no epsilon: whatever fractional
     capacity and refill are in play, and however takes and successes
     interleave, the level never leaves [0, capacity] — not even by one
     ulp of accumulated float error. *)
  fuzz "bucket: fractional refills never carry the level past capacity"
    QCheck.(
      triple (float_range 0.5 20.) (float_range 0.001 3.) arbitrary_ops)
    (fun (capacity, refill_per_success, ops) ->
      let b = Token_bucket.create ~capacity ~refill_per_success () in
      List.for_all
        (fun take ->
          if take then ignore (Token_bucket.try_take b)
          else Token_bucket.on_success b;
          let level = Token_bucket.tokens b in
          level >= 0. && level <= Token_bucket.capacity b)
        ops)

let fuzz_bucket_deterministic =
  fuzz "bucket: same ops, same grants (no hidden clock)" arbitrary_ops
    (fun ops ->
      let mk () = Token_bucket.create ~capacity:10. ~refill_per_success:0.2 () in
      replay ops (mk ()) = replay ops (mk ()))

let test_bucket_refills_on_success () =
  let b = Token_bucket.create ~capacity:2. ~refill_per_success:1. () in
  Alcotest.(check bool) "take 1" true (Token_bucket.try_take b);
  Alcotest.(check bool) "take 2" true (Token_bucket.try_take b);
  Alcotest.(check bool) "empty" false (Token_bucket.try_take b);
  Alcotest.(check int) "denial counted" 1 (Token_bucket.denied b);
  Token_bucket.on_success b;
  Alcotest.(check bool) "refilled" true (Token_bucket.try_take b);
  (* Refill saturates at capacity: three successes cannot bank more than
     two takes. *)
  Token_bucket.on_success b;
  Token_bucket.on_success b;
  Token_bucket.on_success b;
  Alcotest.(check bool) "take a" true (Token_bucket.try_take b);
  Alcotest.(check bool) "take b" true (Token_bucket.try_take b);
  Alcotest.(check bool) "capped" false (Token_bucket.try_take b)

(* -------------------------------------------------------- deadlines *)

let arbitrary_deadline_case =
  QCheck.(
    triple (float_range 0.01 10.)
      (option (int_range 1 5_000))
      (float_range 0. 10.))

let fuzz_deadline_never_exceeds =
  fuzz "deadline: verdict never exceeds server or remaining budget"
    arbitrary_deadline_case (fun (server_deadline, budget_ms, sojourn) ->
      match Deadline.effective ~server_deadline ~budget_ms ~sojourn with
      | Deadline.Expired -> (
          (* Only a lapsed budget expires a job. *)
          match budget_ms with
          | None -> false
          | Some b -> Float.of_int b /. 1000. -. sojourn <= 0.)
      | Deadline.Within d -> (
          d > 0.
          && d <= server_deadline +. 1e-9
          &&
          match budget_ms with
          | None -> d = server_deadline
          | Some b -> d <= (Float.of_int b /. 1000.) -. sojourn +. 1e-9))

let fuzz_deadline_lapsed_is_expired =
  fuzz "deadline: a lapsed budget is always Expired, never Within"
    QCheck.(pair (int_range 1 5_000) (float_range 0. 10.))
    (fun (budget_ms, extra) ->
      let sojourn = (Float.of_int budget_ms /. 1000.) +. extra in
      Deadline.effective ~server_deadline:60. ~budget_ms:(Some budget_ms)
        ~sojourn
      = Deadline.Expired)

let fuzz_hint_bounded_and_seeded =
  fuzz "deadline: retry_after_ms is bounded and replayable"
    QCheck.(pair (int_range 1 10_000) small_nat)
    (fun (base_ms, seed) ->
      let draw () =
        let rng = Rng.create seed in
        List.init 16 (fun _ -> Deadline.retry_after_ms rng ~base_ms)
      in
      let a = draw () and b = draw () in
      a = b
      && List.for_all
           (fun ms ->
             let lo = max 1 (base_ms / 2) in
             ms >= lo && ms <= lo + base_ms)
           a)

(* ------------------------------------------------------------ deque *)

(* Ops: 0 = push_back, 1 = pop_front, 2 = pop_back, replayed against a
   plain-list model. *)
let arbitrary_deque_ops =
  QCheck.(list_of_size Gen.(int_range 0 200) (int_range 0 2))

let fuzz_deque_vs_model =
  fuzz "deque: matches the list model" arbitrary_deque_ops (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
              incr next;
              Deque.push_back d !next;
              model := !model @ [ !next ];
              Deque.length d = List.length !model
          | 1 -> (
              let got = Deque.pop_front_opt d in
              match !model with
              | [] -> got = None
              | x :: rest ->
                  model := rest;
                  got = Some x)
          | _ -> (
              let got = Deque.pop_back_opt d in
              match List.rev !model with
              | [] -> got = None
              | x :: rest_rev ->
                  model := List.rev rest_rev;
                  got = Some x))
        ops)

(* ------------------------------------------------------------- aimd *)

(* Ops: [true] = on_success, [false] = on_congestion at a strictly
   advancing clock (every congestion lands outside the cooldown). *)
let arbitrary_aimd_ops =
  QCheck.(list_of_size Gen.(int_range 0 300) bool)

let fuzz_aimd_bounded =
  fuzz "aimd: limit stays within [min, max]" arbitrary_aimd_ops (fun ops ->
      let a = Aimd.create ~min_limit:2 ~max_limit:16 () in
      let now = ref 0. in
      List.for_all
        (fun success ->
          if success then Aimd.on_success a
          else begin
            now := !now +. 1.;
            Aimd.on_congestion a ~now:!now
          end;
          let l = Aimd.limit a in
          l >= 2 && l <= 16)
        ops)

let test_aimd_shape () =
  let a = Aimd.create ~beta:0.5 ~cooldown:1. ~min_limit:1 ~max_limit:8 () in
  Alcotest.(check int) "starts wide" 8 (Aimd.limit a);
  Aimd.on_congestion a ~now:10.;
  Alcotest.(check int) "halved" 4 (Aimd.limit a);
  (* Inside the cooldown a second congestion signal is the same incident
     and must not halve again. *)
  Aimd.on_congestion a ~now:10.5;
  Alcotest.(check int) "cooldown holds" 4 (Aimd.limit a);
  Aimd.on_congestion a ~now:11.5;
  Alcotest.(check int) "halved again" 2 (Aimd.limit a);
  for _ = 1 to 100 do
    Aimd.on_success a
  done;
  Alcotest.(check int) "additive recovery reaches max" 8 (Aimd.limit a)

(* ------------------------------------------------------------ codel *)

let test_codel_below_target_never_sheds () =
  let c = Codel.create ~target:0.1 ~interval:0.5 in
  for i = 0 to 999 do
    let now = Float.of_int i *. 0.01 in
    match Codel.on_dequeue c ~now ~sojourn:0.05 with
    | Codel.Serve -> ()
    | Codel.Shed -> Alcotest.fail "shed below target"
  done;
  Alcotest.(check bool) "never overloaded" false (Codel.overloaded c)

let test_codel_sustained_overload_sheds () =
  let c = Codel.create ~target:0.1 ~interval:0.5 in
  let sheds = ref 0 in
  for i = 0 to 99 do
    let now = Float.of_int i *. 0.25 in
    match Codel.on_dequeue c ~now ~sojourn:1.0 with
    | Codel.Shed -> incr sheds
    | Codel.Serve -> ()
  done;
  Alcotest.(check bool) "sheds under sustained overload" true (!sheds > 0);
  Alcotest.(check bool) "reports overloaded" true (Codel.overloaded c);
  (* Recovery: once sojourns drop below target the dropping state ends. *)
  (match Codel.on_dequeue c ~now:100. ~sojourn:0.01 with
  | Codel.Serve -> ()
  | Codel.Shed -> Alcotest.fail "shed a below-target dequeue");
  Alcotest.(check bool) "recovers" false (Codel.overloaded c)

let test_codel_disabled () =
  let c = Codel.create ~target:0. ~interval:0.5 in
  Alcotest.(check bool) "disabled" false (Codel.enabled c);
  for i = 0 to 99 do
    match Codel.on_dequeue c ~now:(Float.of_int i) ~sojourn:100. with
    | Codel.Serve -> ()
    | Codel.Shed -> Alcotest.fail "a disabled controller must never shed"
  done

(* -------------------------------------------------------------- run *)

let () =
  Alcotest.run "admit"
    [
      ( "unit",
        [
          Alcotest.test_case "bucket-refill" `Quick
            test_bucket_refills_on_success;
          Alcotest.test_case "aimd-shape" `Quick test_aimd_shape;
          Alcotest.test_case "codel-below-target" `Quick
            test_codel_below_target_never_sheds;
          Alcotest.test_case "codel-overload" `Quick
            test_codel_sustained_overload_sheds;
          Alcotest.test_case "codel-disabled" `Quick test_codel_disabled;
        ] );
      ( "fuzz",
        [
          fuzz_bucket_never_exceeds;
          fuzz_bucket_level_bounded;
          fuzz_bucket_exact_cap;
          fuzz_bucket_deterministic;
          fuzz_deadline_never_exceeds;
          fuzz_deadline_lapsed_is_expired;
          fuzz_hint_bounded_and_seeded;
          fuzz_deque_vs_model;
          fuzz_aimd_bounded;
        ] );
    ]
