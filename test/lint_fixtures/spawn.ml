(* Fixture: spawn-outside-pool.  Parsed by test_lint.ml, never compiled. *)
let handle = Domain.spawn (fun () -> 41 + 1)
let t = Thread.create (fun () -> ()) ()
