(* Fixture: exit-contract.  Parsed by test_lint.ml, never compiled.
   The last binding is the sanctioned entry-point form and is not
   flagged. *)
let bad () = failwith "boom"
let worse () = exit 4
let impossible () = assert false
let () = exit (Cli_common.eval cmd)
