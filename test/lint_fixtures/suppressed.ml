(* Fixture: every violation below carries a [@lint.allow], so the file
   must lint clean.  Parsed by test_lint.ml, never compiled. *)
let handle = (Domain.spawn [@lint.allow "spawn-outside-pool"]) (fun () -> ())
let pause () = Unix.sleepf 0.25 [@lint.allow "bare-sleep"]
let first xs = List.hd xs [@@lint.allow "partial-stdlib"]
let two xs o = (List.nth xs 1, Option.get o) [@lint.allow "partial-stdlib"]
