(* wall-clock-timing fixture: wall clocks used for durations in lib/. *)
let t0 = Unix.gettimeofday ()
let cpu = Sys.time ()
let elapsed = Unix.gettimeofday () -. t0
let _ = (elapsed, cpu)
