(* Fixture: unbounded-retry.  Parsed by test_lint.ml, never compiled.
   A catch-all handler that re-enters its own [let rec] binding retries
   forever with no bound or backoff.  A [when] guard is a bound the
   author wrote down, and a narrow pattern is a deliberate
   classification — neither is flagged. *)
let rec dial () = try connect () with _ -> dial ()

let rec fetch url =
  match download url with body -> body | exception _ -> fetch url

(* Bounded by a guard: clean. *)
let rec poll n = try probe () with _ when n > 0 -> poll (n - 1)

(* Narrow pattern: clean (it names the one error it rides out). *)
let rec wait q = try take q with Empty -> wait q

(* A handler that does not re-enter the binding: clean. *)
let rec parse s = try really_parse s with _ -> default
