(* Fixture: raw-artifact-write.  Parsed by test_lint.ml, never
   compiled. *)
let oc = open_out "out.csv"

let save s =
  Out_channel.with_open_text "manifest.json" (fun oc ->
      Out_channel.output_string oc s)
