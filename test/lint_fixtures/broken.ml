(* Fixture: a file that does not parse must yield a parse-error finding,
   not crash the run.  Parsed by test_lint.ml, never compiled. *)
let oops = (
