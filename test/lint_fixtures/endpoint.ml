(* hardcoded-endpoint fixture: concrete socket paths and host:port
   literals in lib/.  Derived endpoints — format strings filled from
   configuration — are the sanctioned shape and stay clean, as do
   strings whose "port" is not numeric (diagnostics, doc text). *)

let flagged_sock = Client.Unix_path "/tmp/gcserved.sock"
let flagged_hostport = Client.Tcp ("127.0.0.1", 8080) |> describe "127.0.0.1:8080"
let flagged_localhost = dial "localhost:9000"

let clean_format base i = Printf.sprintf "%s.%d.sock" base i
let clean_hostport_format host port = Printf.sprintf "%s:%d" host port
let clean_diagnostic = error "expected HOST:PORT"
let _ = (flagged_sock, flagged_hostport, flagged_localhost)
