(* fixed-deadline fixture: hardcoded time bounds in lib/serve/.  The
   literals in [default_config] are sanctioned — that binding IS the
   configuration; everything else must derive from it. *)

let default_config = { deadline = 5.0; frame_timeout = 0.25; budget_ms = None }

let flagged_record = { default_config with deadline = 2.0 }
let flagged_option = { default_config with budget_ms = Some 250 }
let flagged_arg = Pool.run pool ~deadline:5.0 job
let flagged_timeout = Client.recv_result ~timeout:3 conn

let clean_record cfg = { cfg with deadline = cfg.deadline }
let clean_arg cfg conn = Client.recv_result ~timeout:cfg.frame_timeout conn
let _ = (flagged_record, flagged_option, flagged_arg, flagged_timeout)
