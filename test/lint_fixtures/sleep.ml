(* Fixture: bare-sleep.  Parsed by test_lint.ml, never compiled. *)
let pause () = Unix.sleepf 0.25
let pause_whole () = Unix.sleep 1
