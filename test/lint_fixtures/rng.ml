(* Fixture: nondeterministic-rng.  Parsed by test_lint.ml, never
   compiled. *)
let coin () = Random.bool ()
let scramble () = Random.self_init ()
