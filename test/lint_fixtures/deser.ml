(* Fixture: unsafe-deser.  Parsed by test_lint.ml, never compiled. *)
let load ic : int list = Marshal.from_channel ic
let cast x = Obj.magic x
