(* Fixture: partial-stdlib.  Parsed by test_lint.ml, never compiled. *)
let first xs = List.hd xs
let second xs = List.nth xs 1
let force o = Option.get o
