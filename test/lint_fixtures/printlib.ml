(* Fixture: print-in-lib.  Parsed by test_lint.ml, never compiled. *)
let announce () = print_endline "done"
let report n = Printf.printf "%d\n" n
