(* Fixture: a floating [@@@lint.allow] suppresses for the whole file,
   wherever it sits.  Parsed by test_lint.ml, never compiled. *)
let announce () = print_endline "done"

[@@@lint.allow "print-in-lib, bare-sleep"]

let pause () = Unix.sleepf 0.25
