(* Fixture: malformed/unknown lint.allow payloads are findings in their
   own right (bad-allow) and suppress nothing.  Parsed by test_lint.ml,
   never compiled. *)
let pause () = Unix.sleepf 0.25 [@lint.allow "no-such-rule"]
let announce () = print_endline "x" [@lint.allow]
