(* Fixture: swallowed-cancellation.  Parsed by test_lint.ml, never
   compiled.  [safe] is flagged; [cleanup_ok] is not, because a sibling
   case names the cancellation family; [narrow] is not, because the
   handler pattern is not a catch-all. *)
let safe work = try work () with _ -> None

let cleanup_ok work =
  match work () with
  | v -> Some v
  | exception ((Cancel.Cancelled _ | Pool.Transient _) as e) -> raise e
  | exception _ -> None

let narrow work = try work () with Not_found -> None
