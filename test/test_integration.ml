(* Cross-library integration tests: policies x workloads under the checked
   simulator, offline baselines dominating online ones, measured competitive
   ratios vs. the closed-form bounds, and the locality model against
   measured fault rates. *)

open Gc_trace
open Gc_cache

let rng () = Rng.create 4242

let policies = [ "lru"; "fifo"; "lfu"; "clock"; "plru"; "random"; "marking";
                 "block-lru"; "gcm"; "iblp"; "param-a:1"; "param-a:2";
                 "arc"; "2q"; "block-marking"; "iblp-adaptive"; "fwf";
                 "lru-k"; "s3-fifo"; "setassoc-lru"; "stride-prefetch" ]

let workloads seed =
  List.map
    (fun e -> (e.Gc_trace.Workload_suite.name, e.Gc_trace.Workload_suite.trace))
    (Gc_trace.Workload_suite.standard ~seed ())

let test_policy_workload_sweep () =
  (* Every policy on every workload, with model checking on: no violations
     and consistent counters. *)
  List.iter
    (fun (wname, trace) ->
      List.iter
        (fun pname ->
          let p = Registry.make pname ~k:256 ~blocks:trace.Trace.blocks ~seed:9 in
          let m = Simulator.run p trace in
          let label = Printf.sprintf "%s on %s" pname wname in
          Alcotest.(check int) (label ^ ": accesses") (Trace.length trace)
            m.Metrics.accesses;
          Alcotest.(check int)
            (label ^ ": hits+misses")
            m.Metrics.accesses
            (m.Metrics.hits + m.Metrics.misses);
          Alcotest.(check int)
            (label ^ ": hit split")
            m.Metrics.hits
            (m.Metrics.spatial_hits + m.Metrics.temporal_hits))
        policies)
    (workloads 1)

let test_offline_dominates_online () =
  List.iter
    (fun (wname, trace) ->
      let k = 256 in
      let belady = Gc_offline.Belady.cost ~k trace in
      let block_belady = Gc_offline.Block_belady.cost ~k trace in
      let clairvoyant = Gc_offline.Clairvoyant.cost ~k trace in
      (* Belady optimal among item caches. *)
      List.iter
        (fun name ->
          let p = Registry.make name ~k ~blocks:trace.Trace.blocks ~seed:3 in
          let online = Test_util.run_misses p trace in
          Alcotest.(check bool)
            (Printf.sprintf "belady <= %s on %s" name wname)
            true (belady <= online))
        [ "lru"; "fifo"; "lfu"; "clock" ];
      (* Block-Belady optimal among block caches. *)
      let bl = Registry.make "block-lru" ~k ~blocks:trace.Trace.blocks ~seed:3 in
      Alcotest.(check bool)
        (Printf.sprintf "block-belady <= block-lru on %s" wname)
        true
        (block_belady <= Test_util.run_misses bl trace);
      (* The GC-aware clairvoyant never does worse than the best
         single-granularity offline policy (it can always imitate it). *)
      Alcotest.(check bool)
        (Printf.sprintf "clairvoyant vs best single-granularity on %s" wname)
        true
        (float_of_int clairvoyant
        <= 1.05 *. float_of_int (min belady block_belady)))
    (workloads 2)

let test_iblp_measured_ratio_below_thm7 () =
  (* The Theorem-7 upper bound must dominate the measured ratio on the
     adversarial stress patterns (certified OPT in the denominator). *)
  let block_size = 16 in
  let i = 64 and b = 192 in
  let h = 12 in
  let bound =
    Gc_bounds.Iblp_upper.combined ~i:(float_of_int i) ~b:(float_of_int b)
      ~block_size:(float_of_int block_size) ~h:(float_of_int h)
  in
  let blocks = Block_map.uniform ~block_size in
  (* Spatial stress. *)
  let iblp = Iblp.create ~i ~b ~blocks () in
  let c =
    Attack.spatial_stress iblp ~h ~block_size ~t_load:8 ~spacing:(b / block_size)
      ~cycles:40
  in
  Alcotest.(check bool)
    (Printf.sprintf "spatial: measured %.2f <= thm7 %.2f"
       (Adversary.measured_ratio c) bound)
    true
    (Adversary.measured_ratio c <= bound +. 1e-9);
  (* Temporal stress (Sleator-Tarjan style, adaptive). *)
  let iblp2 = Iblp.create ~i ~b ~blocks () in
  let c2 = Attack.sleator_tarjan iblp2 ~k:(i + b) ~h ~cycles:40 in
  Alcotest.(check bool)
    (Printf.sprintf "temporal: measured %.2f <= thm7 %.2f"
       (Adversary.measured_ratio c2) bound)
    true
    (Adversary.measured_ratio c2 <= bound +. 1e-9)

let test_thm2_ratio_exceeds_sleator_tarjan () =
  (* The point of the paper's Theorem 2: in the GC model, the adversary
     hurts an Item Cache by ~B more than classical paging predicts. *)
  let k = 256 and h = 32 and block_size = 16 in
  let lru = Lru.create ~k in
  let c = Attack.item_cache lru ~k ~h ~block_size ~cycles:20 in
  let st = Gc_bounds.Sleator_tarjan.competitive_ratio ~k:(float_of_int k) ~h:(float_of_int h) in
  Alcotest.(check bool) "GC adversary ~8x worse than ST here" true
    (Adversary.measured_ratio c > 8. *. st)

let test_policy_family_ranking_on_spatial_traces () =
  (* On a spatially local workload the block-aware policies must beat the
     item-only ones decisively. *)
  let trace =
    Generators.spatial_mix (rng ()) ~n:40_000 ~universe:8192 ~block_size:16
      ~p_spatial:0.85
  in
  let misses name =
    Test_util.run_misses
      (Registry.make name ~k:512 ~blocks:trace.Trace.blocks ~seed:5)
      trace
  in
  let lru = misses "lru" and iblp = misses "iblp" and gcm = misses "gcm" in
  let marking = misses "marking" in
  Alcotest.(check bool) "iblp beats lru" true (iblp < lru);
  Alcotest.(check bool) "gcm beats marking" true (gcm < marking);
  Alcotest.(check bool) "substantial win" true
    (float_of_int iblp < 0.3 *. float_of_int lru)

let test_policy_family_ranking_on_temporal_traces () =
  (* With one hot item per block, whole-block caching wastes capacity. *)
  let trace =
    Generators.zipf_blocks (rng ()) ~n:40_000 ~blocks:2048 ~block_size:16
      ~alpha:0.7 ~within:`First
  in
  let misses name =
    Test_util.run_misses
      (Registry.make name ~k:512 ~blocks:trace.Trace.blocks ~seed:5)
      trace
  in
  Alcotest.(check bool) "lru beats block-lru" true
    (misses "lru" < misses "block-lru")

let test_fault_rate_vs_thm8_bound () =
  (* On the Theorem-8 family, any policy's measured fault rate must be at
     least (approximately) the theorem's lower bound for the locality pair
     used to build the trace. *)
  let module Thm8 = Gc_locality.Synthesis.Thm8 (Policy.Oracle) in
  let k = 48 in
  let f_inv m = m * m in
  let g n = max 1 (int_of_float (sqrt (float_of_int n)) / 4) in
  List.iter
    (fun name ->
      let p =
        Registry.make name ~k ~blocks:(Block_map.uniform ~block_size:16) ~seed:7
      in
      let r = Thm8.run p ~k ~f_inv ~g ~block_size:16 ~phases:8 in
      let measured =
        float_of_int r.Thm8.online_faults /. float_of_int r.Thm8.accesses
      in
      let bound = r.Thm8.bound_faults /. float_of_int r.Thm8.accesses in
      Alcotest.(check bool)
        (Printf.sprintf "%s: fault rate %.4f >= 0.8 * bound %.4f" name measured
           bound)
        true
        (measured >= 0.8 *. bound))
    [ "lru"; "iblp"; "block-lru" ]

let test_iblp_fault_rate_below_thm11 () =
  (* Measured IBLP fault rate on a power-law workload stays below the
     Theorem-11 bound evaluated with the locality functions fitted from the
     trace itself. *)
  let trace =
    Gc_locality.Synthesis.power_law (rng ()) ~n:50_000 ~p:2. ~rho:4.
      ~block_size:16
  in
  let i = 256 and b = 256 in
  let p = Iblp.create ~i ~b ~blocks:trace.Trace.blocks () in
  let m = Simulator.run p trace in
  let measured = Metrics.fault_rate m in
  (* Fit f from the measured profile (upper bounds are stated for the true
     f; the fitted one is close). *)
  let windows =
    List.filter (fun n -> n >= 64)
      (Gc_locality.Working_set.geometric_windows trace ~steps:16)
  in
  let fit_f =
    Gc_locality.Concave_fit.fit_power
      (List.map (fun (n, f, _) -> (n, f)) (Gc_locality.Working_set.profile trace ~windows))
  in
  let fit_g =
    Gc_locality.Concave_fit.fit_power
      (List.map (fun (n, _, g) -> (n, g)) (Gc_locality.Working_set.profile trace ~windows))
  in
  let f =
    Gc_bounds.Locality_fn.power ~coeff:fit_f.Gc_locality.Concave_fit.coeff
      ~p:fit_f.Gc_locality.Concave_fit.p ()
  in
  let g =
    Gc_bounds.Locality_fn.power ~coeff:fit_g.Gc_locality.Concave_fit.coeff
      ~p:fit_g.Gc_locality.Concave_fit.p ()
  in
  let bound =
    Gc_bounds.Fault_rate.iblp ~i:(float_of_int i) ~b:(float_of_int b)
      ~block_size:16. ~f ~g
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f <= bound %.4f" measured bound)
    true (measured <= bound)

let test_hierarchy_agrees_with_simulator () =
  (* The memory hierarchy is just a byte-address veneer over the simulator:
     running the line trace directly must give identical metrics. *)
  let geo = Gc_memhier.Geometry.create ~line_bytes:64 ~row_bytes:1024 in
  let addrs =
    Gc_memhier.Workloads.interleave
      (Gc_memhier.Workloads.sequential ~n:5000 ~start:0 ~step:64)
      (Gc_memhier.Workloads.pointer_chase (rng ()) ~n:5000 ~nodes:64
         ~node_bytes:1024 ~base:2_000_000)
  in
  let h =
    Gc_memhier.Hierarchy.create geo ~capacity_lines:128
      ~make_policy:(fun ~k ~blocks -> Registry.make "iblp" ~k ~blocks ~seed:13)
  in
  Gc_memhier.Hierarchy.run h addrs;
  let s = Gc_memhier.Hierarchy.stats h in
  let line_trace =
    Trace.make (Gc_memhier.Geometry.block_map geo)
      (Array.map (Gc_memhier.Geometry.line_of_addr geo) addrs)
  in
  let p = Registry.make "iblp" ~k:128 ~blocks:line_trace.Trace.blocks ~seed:13 in
  let m = Simulator.run p line_trace in
  Alcotest.(check int) "misses agree" m.Metrics.misses s.Gc_memhier.Hierarchy.misses;
  Alcotest.(check int) "hits agree" m.Metrics.hits s.Gc_memhier.Hierarchy.hits;
  Alcotest.(check int) "spatial hits agree" m.Metrics.spatial_hits
    s.Gc_memhier.Hierarchy.spatial_hits

let test_gcsim_run_artifacts () =
  (* Drive the real gcsim binary (a dune dep of this test) end to end:
     --json + --events + --histograms on a saved trace, then reconcile the
     manifest and the event stream against an independent in-process
     simulation with the same k and seed. *)
  let k = 128 and seed = 42 in
  let trace =
    Generators.spatial_mix (rng ()) ~n:4000 ~universe:1024 ~block_size:8
      ~p_spatial:0.6
  in
  let dir = Filename.temp_file "gcsim_obs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let trace_path = Filename.concat dir "trace.gct" in
  let json_path = Filename.concat dir "out.json" in
  let events_path = Filename.concat dir "events.jsonl" in
  Trace_io.save trace_path trace;
  let cmd =
    Printf.sprintf
      "../bin/gcsim.exe run --all -k %d --seed %d --no-check --json %s \
       --events %s --histograms %s > /dev/null"
      k seed (Filename.quote json_path) (Filename.quote events_path)
      (Filename.quote trace_path)
  in
  Alcotest.(check int) "gcsim exits 0" 0 (Sys.command cmd);
  let open Gc_obs in
  let manifest = Test_util.parse_json_file json_path in
  let events = Test_util.parse_jsonl_file events_path in
  List.iter Sys.remove [ trace_path; json_path; events_path ];
  Sys.rmdir dir;
  let field obj name = Option.get (Json.member name obj) in
  Alcotest.(check int) "schema version" 1 (Json.get_int (field manifest "version"));
  Alcotest.(check string) "trace digest recorded" (Trace.digest trace)
    (Json.get_string (field (field manifest "trace") "digest"));
  let runs = Json.get_list (field manifest "runs") in
  Alcotest.(check (list string))
    "one manifest run per registry policy" Gc_cache.Registry.names
    (List.map (fun r -> Json.get_string (field r "policy")) runs);
  (* Per-policy event tallies from the JSONL stream. *)
  let tally = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let key =
        ( Json.get_string (field ev "policy"),
          Json.get_string (field ev "ev") )
      in
      Hashtbl.replace tally key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    events;
  let count policy kind =
    Option.value ~default:0 (Hashtbl.find_opt tally (policy, kind))
  in
  List.iter
    (fun run ->
      let policy = Json.get_string (field run "policy") in
      let metrics = field run "metrics" in
      let metric name = Json.get_int (field metrics name) in
      (* The manifest's counters equal an independent simulation's. *)
      let p = Gc_cache.Registry.make policy ~k ~blocks:trace.Trace.blocks ~seed in
      let m = Simulator.run ~check:false p trace in
      Alcotest.(check int) (policy ^ ": hits") m.Metrics.hits (metric "hits");
      Alcotest.(check int) (policy ^ ": misses") m.Metrics.misses
        (metric "misses");
      Alcotest.(check int)
        (policy ^ ": spatial hits")
        m.Metrics.spatial_hits
        (metric "spatial_hits");
      (* The event stream reconciles with the manifest per policy. *)
      Alcotest.(check int)
        (policy ^ ": one access event per request")
        (Trace.length trace) (count policy "access");
      Alcotest.(check int)
        (policy ^ ": hit events")
        m.Metrics.hits (count policy "hit");
      Alcotest.(check int)
        (policy ^ ": miss events = load events")
        (count policy "miss") (count policy "load");
      Alcotest.(check int)
        (policy ^ ": hits + misses = accesses")
        (count policy "access")
        (count policy "hit" + count policy "miss");
      Alcotest.(check int)
        (policy ^ ": evict events")
        m.Metrics.evictions (count policy "evict");
      (* And the manifest's own per-kind event counts agree with the
         stream. *)
      let manifest_events = field run "events" in
      List.iter
        (fun kind ->
          Alcotest.(check int)
            (Printf.sprintf "%s: manifest count for %s" policy kind)
            (count policy kind)
            (Json.get_int (field manifest_events kind)))
        Event.kind_names)
    runs

let test_trace_io_roundtrip_preserves_simulation () =
  let trace =
    Generators.spatial_mix (rng ()) ~n:10_000 ~universe:2048 ~block_size:8
      ~p_spatial:0.5
  in
  let round = Trace_io.of_string (Trace_io.to_string trace) in
  List.iter
    (fun name ->
      let run t =
        Test_util.run_misses
          (Registry.make name ~k:128 ~blocks:t.Trace.blocks ~seed:21)
          t
      in
      Alcotest.(check int) (name ^ " misses preserved") (run trace) (run round))
    [ "lru"; "block-lru"; "iblp" ]

let () =
  Alcotest.run "integration"
    [
      ( "sweeps",
        [
          Alcotest.test_case "policies x workloads" `Slow test_policy_workload_sweep;
          Alcotest.test_case "offline dominates online" `Slow test_offline_dominates_online;
        ] );
      ( "bounds_vs_measured",
        [
          Alcotest.test_case "iblp ratio below thm7" `Quick test_iblp_measured_ratio_below_thm7;
          Alcotest.test_case "thm2 beats ST" `Quick test_thm2_ratio_exceeds_sleator_tarjan;
          Alcotest.test_case "fault rate above thm8" `Quick test_fault_rate_vs_thm8_bound;
          Alcotest.test_case "iblp fault rate below thm11" `Slow test_iblp_fault_rate_below_thm11;
        ] );
      ( "rankings",
        [
          Alcotest.test_case "spatial traces" `Quick test_policy_family_ranking_on_spatial_traces;
          Alcotest.test_case "temporal traces" `Quick test_policy_family_ranking_on_temporal_traces;
        ] );
      ( "cross_component",
        [
          Alcotest.test_case "hierarchy = simulator" `Quick test_hierarchy_agrees_with_simulator;
          Alcotest.test_case "io preserves simulation" `Quick test_trace_io_roundtrip_preserves_simulation;
          Alcotest.test_case "gcsim run artifacts" `Quick test_gcsim_run_artifacts;
        ] );
    ]
